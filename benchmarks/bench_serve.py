"""Load benchmark for ``sized serve`` — writes ``BENCH_serve.json``.

Boots a real server subprocess (``python -m repro serve --port 0``),
then drives it through three phases over one multiplexed connection:

* **cold** — unique programs, every one a verification cache miss;
* **warm** — the same programs repeated concurrently, so dedupe
  batching and the warm per-shard certificate caches carry the load;
* **fault** — run requests with worker-kill ops interleaved.

The acceptance gates (full mode; ``--quick`` only gates drops):

* every request gets exactly one response — zero dropped, zero wedged,
  including under fault injection;
* warm repeated-program throughput >= 5x cold first-sight throughput;
* >= 1000 concurrent in-flight requests in the warm phase.

Usage::

    python benchmarks/bench_serve.py            # full load, ~1000+ reqs
    python benchmarks/bench_serve.py --quick    # 200 mixed reqs (CI)
"""

import argparse
import asyncio
import json
import os
import re
import subprocess
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.serve.client import AsyncServeClient, RetryPolicy  # noqa: E402

LISTEN_RE = re.compile(r"listening on ([\d.]+):(\d+)")
WARM_RATIO_GATE = 5.0


def unique_program(i: int) -> str:
    """A distinct terminating program per index: distinct text, distinct
    cache key, same shape of work."""
    return (f"(define (f n) (if (zero? n) {1000 + i} (f (- n 1))))\n"
            f"(f {10 + i % 7})\n")


def start_server(workers: int):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", str(workers), "--allow-fault-injection"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=REPO)
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(
                f"server exited early (rc={proc.poll()})")
        m = LISTEN_RE.search(line)
        if m:
            return proc, m.group(1), int(m.group(2))
    proc.kill()
    raise RuntimeError("server never announced its port")


async def timed_burst(client, requests):
    """Fire all requests concurrently; return (responses, elapsed_s,
    sorted client-side latencies in ms).  Every request is awaited —
    a dropped response would hang here and trip the per-request
    timeout instead of being silently lost."""

    async def one(req):
        t0 = time.monotonic()
        response = await client.request(req, timeout=300)
        return response, (time.monotonic() - t0) * 1000.0

    t0 = time.monotonic()
    pairs = await asyncio.gather(*[one(r) for r in requests])
    elapsed = time.monotonic() - t0
    responses = [p[0] for p in pairs]
    latencies = sorted(p[1] for p in pairs)
    return responses, elapsed, latencies


def pct(sorted_ms, q):
    if not sorted_ms:
        return None
    idx = min(int(q * (len(sorted_ms) - 1) + 0.5), len(sorted_ms) - 1)
    return round(sorted_ms[idx], 3)


def phase_report(name, responses, elapsed, latencies):
    ok = sum(1 for r in responses if r.get("ok"))
    errors = {}
    for r in responses:
        if not r.get("ok"):
            etype = (r.get("error") or {}).get("type", "unknown")
            errors[etype] = errors.get(etype, 0) + 1
    report = {
        "requests": len(responses),
        "ok": ok,
        "errors": errors,
        "elapsed_s": round(elapsed, 3),
        "throughput_rps": round(len(responses) / elapsed, 2)
        if elapsed > 0 else None,
        "latency_ms": {"p50": pct(latencies, 0.50),
                       "p99": pct(latencies, 0.99),
                       "max": pct(latencies, 1.0)},
    }
    print(f"  {name}: {len(responses)} reqs in {elapsed:.2f}s "
          f"({report['throughput_rps']} rps), p50 "
          f"{report['latency_ms']['p50']}ms p99 "
          f"{report['latency_ms']['p99']}ms, errors {errors or 'none'}",
          flush=True)
    return report


async def drive(host, port, quick):
    # Phase sizes: --quick totals exactly 200 mixed requests (the CI
    # smoke contract); full holds >= 1000 concurrently in the warm phase.
    n_cold = 20 if quick else 60
    n_warm = 174 if quick else 1200
    n_fault_runs = 4 if quick else 40
    n_crashes = 2 if quick else 6

    # a seeded retry policy: transient overloaded/shard-unavailable
    # responses under the fault phase are absorbed, and the retry count
    # is itself a reported metric (crash ops are non-idempotent and are
    # never retried)
    client = await AsyncServeClient.connect(
        host, port, tag="bench",
        retry=RetryPolicy(retries=4, base=0.05, cap=1.0, seed=0))
    results = {"phases": {}}
    failures = []

    # -- cold: every program is new --------------------------------------
    cold_reqs = [{"op": "run", "program": unique_program(i)}
                 for i in range(n_cold)]
    responses, elapsed, lat = await timed_burst(client, cold_reqs)
    cold = phase_report("cold", responses, elapsed, lat)
    results["phases"]["cold"] = cold
    if cold["ok"] != n_cold:
        failures.append(f"cold phase: {n_cold - cold['ok']} failures")

    # -- warm: the same programs, repeated concurrently -------------------
    warm_reqs = [{"op": "run", "program": unique_program(i % n_cold)}
                 for i in range(n_warm)]
    responses, elapsed, lat = await timed_burst(client, warm_reqs)
    warm = phase_report("warm", responses, elapsed, lat)
    results["phases"]["warm"] = warm
    if warm["ok"] != n_warm:
        failures.append(f"warm phase: {n_warm - warm['ok']} failures")
    ratio = (warm["throughput_rps"] / cold["throughput_rps"]
             if cold["throughput_rps"] else None)
    results["warm_over_cold"] = round(ratio, 2) if ratio else None
    print(f"  warm/cold throughput ratio: {results['warm_over_cold']}x",
          flush=True)
    if not quick and (ratio is None or ratio < WARM_RATIO_GATE):
        failures.append(
            f"warm/cold ratio {results['warm_over_cold']} < "
            f"{WARM_RATIO_GATE}")

    # -- fault injection: kills interleaved with runs ----------------------
    fault_reqs = []
    for i in range(n_fault_runs):
        fault_reqs.append({"op": "run",
                           "program": unique_program(i % n_cold)})
        if i % max(n_fault_runs // n_crashes, 1) == 0 and \
                len([r for r in fault_reqs if r["op"] == "crash"]) \
                < n_crashes:
            fault_reqs.append({"op": "crash"})
    responses, elapsed, lat = await timed_burst(client, fault_reqs)
    fault = phase_report("fault", responses, elapsed, lat)
    results["phases"]["fault"] = fault
    # every crash op must come back as a structured worker-crash error;
    # every run must come back, as a value or a structured error
    unstructured = [r for r in responses
                    if not r.get("ok") and "error" not in r]
    if unstructured:
        failures.append(f"{len(unstructured)} unstructured failures")

    # -- totals ------------------------------------------------------------
    total_sent = len(cold_reqs) + len(warm_reqs) + len(fault_reqs)
    total_recv = sum(results["phases"][p]["requests"]
                     for p in results["phases"])
    results["total"] = {"sent": total_sent, "received": total_recv,
                        "dropped": total_sent - total_recv}
    print(f"  total: {total_sent} sent, {total_recv} received, "
          f"{total_sent - total_recv} dropped", flush=True)
    if total_recv != total_sent:
        failures.append(
            f"dropped {total_sent - total_recv} of {total_sent}")

    stats = await client.request({"op": "stats"}, timeout=60)
    results["server_stats"] = stats.get("stats")
    cache = (results["server_stats"] or {}).get("cache") or {}
    print(f"  server cache: hits {cache.get('hits')}, misses "
          f"{cache.get('misses')}, hit_rate {cache.get('hit_rate')}",
          flush=True)
    resilience = (results["server_stats"] or {}).get("resilience") or {}
    results["client_resilience"] = {
        "retries": client.retries_used,
        "connection_losses": client.connection_losses,
        "unmatched_responses": client.unmatched_responses,
    }
    print(f"  resilience: shed {resilience.get('shed_overloaded', 0)}"
          f"+{resilience.get('shed_shard_queue', 0)}, breaker "
          f"opened {resilience.get('breaker_opened', 0)} / closed "
          f"{resilience.get('breaker_closed', 0)} / rejected "
          f"{resilience.get('breaker_rejected', 0)}, client retries "
          f"{client.retries_used}", flush=True)

    await client.request({"op": "shutdown"}, timeout=60)
    await client.close()
    return results, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="200-request CI smoke (skips the "
                             "throughput-ratio gate)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--out", default="BENCH_serve.json")
    args = parser.parse_args(argv)

    print(f"booting sized serve ({args.workers} workers)...", flush=True)
    proc, host, port = start_server(args.workers)
    try:
        results, failures = asyncio.run(drive(host, port, args.quick))
    finally:
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()

    results["mode"] = "quick" if args.quick else "full"
    results["workers"] = args.workers
    results["failures"] = failures
    with open(args.out, "w") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}", flush=True)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr, flush=True)
        return 1
    print("all gates passed", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
