"""pytest-benchmark cells: the native tier vs compiled vs tree.

Machine-readable twins of ``python -m repro bench native`` — one
benchmark per (program, machine) over the smoke subset of the
fully-discharged corpus, amplified by the discharged ``bench-iter``
driver loop, so CI tracks the absolute times (the full report tracks
the ratios and the acceptance geomeans).

Run with::

    pytest benchmarks/bench_native.py --benchmark-only
"""

import pytest

from repro.analysis.discharge import discharge_for_run
from repro.bench.native import MACHINES, SMOKE_PROGRAMS, harness_amplified
from repro.corpus import get_program
from repro.eval.machine import Answer, make_env, run_program
from repro.sct.monitor import SCMonitor

ITERATIONS = 200

_ENVS = {}
_HARNESSED = {}


def _env(machine):
    family = "tree" if machine == "tree" else "compiled"
    if family not in _ENVS:
        _ENVS[family] = make_env(machine=family)
    return _ENVS[family]


def _harnessed(name, parsed):
    if name not in _HARNESSED:
        prog = get_program(name)
        source = harness_amplified(prog.source, ITERATIONS)
        tree = parsed(source)
        result = discharge_for_run(tree, text=source,
                                   result_kinds=prog.result_kinds)
        assert result.complete and result.policy, \
            f"{name} bench-iter harness no longer discharges"
        _HARNESSED[name] = (prog, tree, result.policy)
    return _HARNESSED[name]


def _run(program, prog, machine, policy):
    answer = run_program(
        program, mode="full", strategy="cm",
        monitor=SCMonitor(measures=prog.measures),
        env=_env(machine), machine=machine, discharge=policy,
    )
    assert answer.kind == Answer.VALUE, repr(answer)
    assert answer.tier == machine, answer.tier
    return answer


@pytest.mark.parametrize("machine", MACHINES)
@pytest.mark.parametrize("name", SMOKE_PROGRAMS)
def test_native(benchmark, parsed, name, machine):
    prog, program, policy = _harnessed(name, parsed)
    benchmark.group = f"native:{name}"
    benchmark(_run, program, prog, machine, policy)
