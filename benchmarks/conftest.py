"""Shared fixtures for the pytest-benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark corresponds to a cell of a paper table/figure; the
full-report harnesses (``python -m repro bench ...``) regenerate whole
tables at once.
"""

import pytest

from repro.lang.parser import parse_program


@pytest.fixture(scope="session")
def parsed():
    """Parse-once cache so benchmarks time evaluation, not reading."""
    cache = {}

    def get(source: str):
        if source not in cache:
            cache[source] = parse_program(source)
        return cache[source]

    return get
