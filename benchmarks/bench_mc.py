"""Benchmark cells for the monotonicity-constraint extension (§6.2).

Full report: ``python -m repro bench mc``.
"""

import pytest

from repro.bench.workloads import msort_source, sum_source
from repro.eval.machine import Answer, run_program
from repro.mc.graph import MCGraph, mc_graph_of_values
from repro.mc.monitor import MCMonitor
from repro.sct.graph import graph_of_values
from repro.sct.monitor import SCMonitor
from repro.sct.order import SizeOrder

SUM = sum_source(600)
MSORT = msort_source(64)

MONITORS = [
    ("unchecked", "off", lambda: SCMonitor()),
    ("sc", "full", lambda: SCMonitor()),
    ("mc", "full", lambda: MCMonitor()),
    ("mc-backoff", "full", lambda: MCMonitor(backoff=True)),
]


@pytest.mark.parametrize("name,mode,factory", MONITORS,
                         ids=[m[0] for m in MONITORS])
def test_mc_overhead_sum(benchmark, parsed, name, mode, factory):
    program = parsed(SUM)
    benchmark.group = "mc:sum"
    answer = benchmark(lambda: run_program(program, mode=mode,
                                           monitor=factory()))
    assert answer.kind == Answer.VALUE


@pytest.mark.parametrize("name,mode,factory", MONITORS,
                         ids=[m[0] for m in MONITORS])
def test_mc_overhead_msort(benchmark, parsed, name, mode, factory):
    program = parsed(MSORT)
    benchmark.group = "mc:merge-sort"
    answer = benchmark(lambda: run_program(program, mode=mode,
                                           monitor=factory()))
    assert answer.kind == Answer.VALUE


COUNT_UP = """
(define (range2 lo hi)
  (if (>= lo hi) '() (cons lo (range2 (+ lo 1) hi))))
(length (range2 0 400))
"""


def test_mc_accepts_count_up(benchmark, parsed):
    """The headline gain: no measure needed for the ascending loop."""
    program = parsed(COUNT_UP)
    benchmark.group = "mc:count-up"
    answer = benchmark(lambda: run_program(program, mode="full",
                                           monitor=MCMonitor()))
    assert answer.kind == Answer.VALUE and answer.value == 400


def test_sc_measure_baseline_count_up(benchmark, parsed):
    """The paper's alternative: SC with the custom hi−lo measure."""
    program = parsed(COUNT_UP)
    benchmark.group = "mc:count-up"

    def run():
        monitor = SCMonitor(measures={"range2": lambda a: (a[1] - a[0],)})
        return run_program(program, mode="full", monitor=monitor)

    answer = benchmark(run)
    assert answer.kind == Answer.VALUE


def test_graph_construction_cost(benchmark):
    """Micro: one MC graph build+close vs one SC graph build (arity 3)."""
    benchmark.group = "mc:graph-micro"
    old, new = (9, 4, 7), (8, 4, 7)
    benchmark(lambda: mc_graph_of_values(old, new))


def test_sc_graph_construction_cost(benchmark):
    benchmark.group = "mc:graph-micro"
    old, new = (9, 4, 7), (8, 4, 7)
    order = SizeOrder()
    benchmark(lambda: graph_of_values(old, new, order))


def test_mc_composition_cost(benchmark):
    benchmark.group = "mc:graph-micro"
    g = mc_graph_of_values((9, 4, 7), (8, 4, 7))
    benchmark(lambda: g.compose(g))
