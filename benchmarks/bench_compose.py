"""Benchmark cells for the bitmask graph engine vs the frozenset
reference (same tiers as ``python -m repro bench compose``).

Group names collect the two engines of each tier side by side, so the
pytest-benchmark table *is* the engine-comparison report:

* ``compose:chain-mN``  — raw ``;`` throughput at arity N,
* ``compose:monitor``   — the monitor's ``upd`` on a lexicographic
  countdown (composition-set maintenance + ``desc?`` per call),
* ``compose:scp``       — the LJB worklist closure of a dense synthetic
  call multigraph.
"""

import pytest

from repro.analysis.ljb import scp_check
from repro.bench.compose_bench import (
    _dense_edges,
    _graph_population,
    countdown_args,
)
from repro.ds.hamt import Hamt
from repro.lang.ast import Lam, Lit
from repro.sct import bitgraph
from repro.sct.graph import compose_run
from repro.sct.monitor import SCMonitor
from repro.sexp.datum import intern
from repro.values.env import GlobalEnv
from repro.values.values import Closure

ENGINES = ["reference", "bitmask"]


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("m", [2, 4, 8])
def test_compose_chain(benchmark, m, engine):
    benchmark.group = f"compose:chain-m{m}"
    benchmark.name = engine
    graphs = _graph_population(m, 1000)
    if engine == "reference":
        benchmark(lambda: compose_run(graphs))
    else:
        mk = bitgraph.masks(m)
        packed = [bitgraph.pack(g, m) for g in graphs]

        def run():
            s, w = packed[0]
            for (s1, w1) in packed[1:]:
                s, w = bitgraph.compose(mk, s, w, s1, w1)
            return s, w

        benchmark(run)


@pytest.mark.parametrize("engine", ENGINES)
def test_monitor_prog_check(benchmark, engine):
    benchmark.group = "compose:monitor"
    benchmark.name = engine
    arity = 6
    seq = countdown_args(arity, 3, 200)
    params = tuple(intern(f"p{i}") for i in range(arity))
    clo = Closure(Lam(params, Lit(1), name="bench"), GlobalEnv())

    def run():
        monitor = SCMonitor(engine=engine)
        table = Hamt.empty()
        for args in seq:
            table = monitor.upd(table, clo, args, None)
        return table

    benchmark(run)


@pytest.mark.parametrize("engine", ENGINES)
def test_scp_closure(benchmark, engine):
    benchmark.group = "compose:scp"
    benchmark.name = engine
    edges = _dense_edges(3, 3, 2)
    result = benchmark(lambda: scp_check(edges, engine=engine))
    assert result.ok is True
