"""Python front-end overhead: the Fig. 10 question asked of the
``@terminating`` decorator and the full-extent profiler.

The paper's shape to reproduce: overhead is a roughly input-independent
constant factor, negligible for call-sparse workloads, large for tight
loops; backoff trims it; full-extent (profile-hook) monitoring is the
most expensive mode.

Each workload is built by a factory so that applying the decorator
rebinds the *closure cell* the recursion goes through — every recursive
call is monitored, exactly like a decorated ``def`` at module scope.
"""

import pytest

from repro.pyterm import monitor_extent, terminating


def make_fact(decorate=None):
    def fact(n):
        return 1 if n == 0 else n * fact(n - 1)

    if decorate is not None:
        fact = decorate(fact)
    return fact


def make_sum(decorate=None):
    def sum_list(xs):
        return 0 if not xs else xs[0] + sum_list(xs[1:])

    if decorate is not None:
        sum_list = decorate(sum_list)
    return sum_list


def make_msort(decorate=None):
    def msort(xs):
        if len(xs) <= 1:
            return xs
        mid = len(xs) // 2
        return merge(msort(xs[:mid]), msort(xs[mid:]))

    def merge(xs, ys):
        if not xs:
            return ys
        if not ys:
            return xs
        if xs[0] <= ys[0]:
            return [xs[0]] + merge(xs[1:], ys)
        return [ys[0]] + merge(xs, ys[1:])

    if decorate is not None:
        msort = decorate(msort)
        merge = decorate(merge)
    return msort


_WORKLOADS = {
    "factorial": (make_fact, (300,), None),
    "sum": (make_sum, (list(range(300)),), None),
    "merge-sort": (make_msort, (list(range(64, 0, -1)),),
                   list(range(1, 65))),
}

_DECORATORS = {
    "unchecked": None,
    "terminating": terminating,
    "terminating-backoff": lambda f: terminating(f, backoff=True),
}


@pytest.mark.parametrize("workload", list(_WORKLOADS))
@pytest.mark.parametrize("mode", list(_DECORATORS))
def test_pyterm_overhead(benchmark, workload, mode):
    factory, args, expected = _WORKLOADS[workload]
    fn = factory(_DECORATORS[mode])
    benchmark.group = f"pyterm:{workload}"
    result = benchmark(lambda: fn(*args))
    if expected is not None:
        assert result == expected


@pytest.mark.parametrize("workload", list(_WORKLOADS))
def test_pyterm_extent_overhead(benchmark, workload):
    factory, args, expected = _WORKLOADS[workload]
    fn = factory(None)
    benchmark.group = f"pyterm:{workload}"

    def run():
        with monitor_extent():
            return fn(*args)

    result = benchmark(run)
    if expected is not None:
        assert result == expected


def test_extent_backoff(benchmark):
    """Backoff inside the profile hook recovers much of the extent cost."""
    fn = make_sum(None)
    xs = list(range(300))
    benchmark.group = "pyterm:sum"

    def run():
        with monitor_extent(backoff=True):
            return fn(xs)

    benchmark(run)


def test_mc_decorator_cost(benchmark):
    """MC graphs on the Python decorator: the count-up idiom it enables."""
    benchmark.group = "pyterm:count-up"

    def scan(decorate):
        def go(i, xs):
            return 0 if i >= len(xs) else xs[i] + go(i + 1, xs)

        return decorate(go) if decorate else go

    fn = scan(lambda f: terminating(f, graphs="mc"))
    xs = list(range(120))
    assert benchmark(lambda: fn(0, xs)) == sum(xs)


def test_measure_decorator_cost(benchmark):
    """The SC alternative: a custom measure for the same loop."""
    benchmark.group = "pyterm:count-up"

    def scan(decorate):
        def go(i, xs):
            return 0 if i >= len(xs) else xs[i] + go(i + 1, xs)

        return decorate(go) if decorate else go

    fn = scan(lambda f: terminating(
        f, measure=lambda a: (len(a[1]) - a[0],)))
    xs = list(range(120))
    assert benchmark(lambda: fn(0, xs)) == sum(xs)
