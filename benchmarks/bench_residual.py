"""pytest-benchmark cells: residual enforcement vs full monitoring.

Machine-readable twins of ``python -m repro bench residual`` — one
benchmark per (program, suite) on the compiled machine over the smoke
subset of the discharged corpus, so CI tracks the absolute times (the
full report tracks the ratios and the acceptance geomeans).

Run with::

    pytest benchmarks/bench_residual.py --benchmark-only
"""

import pytest

from repro.analysis.discharge import discharge_for_run
from repro.bench.interp import amplify_program
from repro.bench.residual import SMOKE_PROGRAMS
from repro.corpus import get_program
from repro.eval.machine import Answer, make_env, run_program
from repro.sct.monitor import SCMonitor

AMPLIFY = 20

_ENV = None
_POLICIES = {}


def _env():
    global _ENV
    if _ENV is None:
        _ENV = make_env(machine="compiled")
    return _ENV


def _policy(name, parsed, prog):
    if name not in _POLICIES:
        result = discharge_for_run(parsed, text=prog.source,
                                   result_kinds=prog.result_kinds)
        assert result.complete and result.policy, \
            f"{name} no longer discharges: {result.reasons}"
        _POLICIES[name] = result.policy
    return _POLICIES[name]


def _run(program, prog, mode, policy):
    answer = run_program(
        program, mode=mode, strategy="cm",
        monitor=SCMonitor(measures=prog.measures),
        env=_env(), machine="compiled", discharge=policy,
    )
    assert answer.kind == Answer.VALUE, repr(answer)
    return answer


@pytest.mark.parametrize("suite", ["unmonitored", "monitored", "discharged"])
@pytest.mark.parametrize("name", SMOKE_PROGRAMS)
def test_residual(benchmark, parsed, name, suite):
    prog = get_program(name)
    tree = parsed(prog.source)
    program = amplify_program(tree, AMPLIFY)
    mode = "off" if suite == "unmonitored" else "full"
    policy = _policy(name, tree, prog) if suite == "discharged" else None
    benchmark.group = f"residual:{name}"
    benchmark(_run, program, prog, mode, policy)
