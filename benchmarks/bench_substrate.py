"""Substrate micro-benchmarks: the data structures and algorithms the
monitor's per-call cost decomposes into.  Useful for directing optimization
effort (the paper: 'further optimization effort to trim down the constant
factor')."""

import pytest

from repro.ds.hamt import Hamt, IdKey
from repro.sct.graph import SCGraph, arc, graph_of_values
from repro.sct.order import SizeOrder
from repro.solver import LinExpr, Solver, ge, lt, ne
from repro.values.values import python_to_list


def test_hamt_set_get(benchmark):
    benchmark.group = "substrate:hamt"
    base = Hamt.empty()
    keys = [IdKey(object()) for _ in range(16)]
    for i, k in enumerate(keys):
        base = base.set(k, i)

    def run():
        m = base
        for k in keys[:4]:
            m = m.set(k, 99)
        return m.get(keys[0])

    assert benchmark(run) in (0, 99)


def test_graph_construction(benchmark):
    benchmark.group = "substrate:graphs"
    order = SizeOrder()
    old = (python_to_list(list(range(50))), 7, python_to_list([1, 2]))
    new = (python_to_list(list(range(49))), 7, python_to_list([1, 2]))

    def run():
        return graph_of_values(old, new, order)

    g = benchmark(run)
    assert g.has_strict_self_arc()


def test_graph_composition(benchmark):
    benchmark.group = "substrate:graphs"
    g1 = SCGraph([arc(0, "<", 0), arc(0, "=", 1), arc(1, "<", 1), arc(2, "=", 0)])
    g2 = SCGraph([arc(0, "=", 0), arc(1, "<", 0), arc(1, "=", 2)])

    def run():
        return g1.compose(g2).compose(g1)

    benchmark(run)


def test_solver_entailment(benchmark):
    benchmark.group = "substrate:solver"
    x, y = LinExpr.var("x"), LinExpr.var("y")
    zero, one = LinExpr.constant(0), LinExpr.constant(1)

    def run():
        solver = Solver()  # fresh: measure uncached query cost
        return solver.entails((ge(x, zero), ne(x, zero), ge(y, x)),
                              lt(x - one, x))

    assert benchmark(run) is True


def test_size_order_compare_large(benchmark):
    benchmark.group = "substrate:order"
    order = SizeOrder()
    big = python_to_list(list(range(2000)))
    smaller = big.cdr

    def run():
        return order.compare(big, smaller)

    assert benchmark(run) == 1  # DESC: memoized sizes make this O(1)
