"""Figure 10 cells as individual benchmarks.

Six workloads × three series.  The pytest-benchmark table *is* the figure's
data; group names collect the three series of each panel side by side.
"""

import pytest

from repro.bench.workloads import (
    factorial_source,
    msort_source,
    sum_source,
)
from repro.corpus.interpreter import (
    interpreted_factorial_source,
    interpreted_msort_source,
    interpreted_sum_source,
)
from repro.eval.machine import Answer, run_program
from repro.sct.monitor import SCMonitor

# One representative size per panel (the full sweep lives in
# `python -m repro bench fig10 --scale full`).
PANELS = {
    "factorial": factorial_source(150),
    "sum": sum_source(800),
    "merge-sort": msort_source(96),
    "interp-factorial": interpreted_factorial_source(40),
    "interp-sum": interpreted_sum_source(80),
    "interp-merge-sort": interpreted_msort_source(16),
}

SERIES = [
    ("unchecked", dict(mode="off")),
    ("cont-mark", dict(mode="full", strategy="cm")),
    ("imperative", dict(mode="full", strategy="imperative")),
]


@pytest.mark.parametrize("series,options", SERIES, ids=[s[0] for s in SERIES])
@pytest.mark.parametrize("panel", list(PANELS), ids=list(PANELS))
def test_fig10_cell(benchmark, parsed, panel, series, options):
    program = parsed(PANELS[panel])
    benchmark.group = f"fig10:{panel}"
    benchmark.name = series

    def run():
        return run_program(program, monitor=SCMonitor(), **options)

    answer = benchmark(run)
    assert answer.kind == Answer.VALUE
