"""Ablation benchmarks over the §5 implementation knobs, on the tight-loop
workload where monitoring overhead is most visible."""

import pytest

from repro.analysis.callgraph import loop_entry_labels
from repro.bench.workloads import msort_source, sum_source
from repro.eval.machine import Answer, run_program
from repro.lang.parser import parse_program
from repro.sct.monitor import SCMonitor
from repro.sct.order import ContainmentOrder

SUM = sum_source(800)
MSORT = msort_source(96)

CONFIGS = [
    ("unchecked", "off", "cm", lambda prog: SCMonitor()),
    ("cm", "full", "cm", lambda prog: SCMonitor()),
    ("imperative", "full", "imperative", lambda prog: SCMonitor()),
    ("backoff", "full", "cm", lambda prog: SCMonitor(backoff=True)),
    ("label-keying", "full", "cm", lambda prog: SCMonitor(keying="label")),
    ("loop-entries", "full", "cm",
     lambda prog: SCMonitor(loop_entries=loop_entry_labels(prog))),
]


@pytest.mark.parametrize("config,mode,strategy,factory", CONFIGS,
                         ids=[c[0] for c in CONFIGS])
def test_ablation_sum(benchmark, parsed, config, mode, strategy, factory):
    program = parsed(SUM)
    benchmark.group = "ablation:sum"

    def run():
        return run_program(program, mode=mode, strategy=strategy,
                           monitor=factory(program))

    answer = benchmark(run)
    assert answer.kind == Answer.VALUE


def test_containment_order_rejects_merge_sort(benchmark, parsed):
    """The Fig. 5 containment order cannot justify merge-sort's freshly
    allocated halves: a false positive, demonstrating why the size order
    is the default (see DESIGN.md)."""
    program = parsed(MSORT)
    benchmark.group = "ablation:order"

    def run():
        return run_program(program, mode="full",
                           monitor=SCMonitor(order=ContainmentOrder()))

    answer = benchmark(run)
    assert answer.kind == Answer.SC_ERROR


def test_size_order_accepts_merge_sort(benchmark, parsed):
    program = parsed(MSORT)
    benchmark.group = "ablation:order"

    def run():
        return run_program(program, mode="full", monitor=SCMonitor())

    answer = benchmark(run)
    assert answer.kind == Answer.VALUE
