"""§5.1.2 as benchmarks: time from program start to errorSC for each
diverging program (the paper reports this as 'immeasurable delay')."""

import pytest

from repro.corpus import diverging_programs
from repro.eval.machine import Answer, run_program
from repro.sct.monitor import SCMonitor

DIVERGING = diverging_programs()


@pytest.mark.parametrize("prog", DIVERGING, ids=[d.name for d in DIVERGING])
def test_time_to_detection(benchmark, parsed, prog):
    program = parsed(prog.source)
    benchmark.group = "divergence:time-to-errorSC"
    mode = "contract" if "terminating/c" in prog.source else "full"

    def run():
        return run_program(program, mode=mode,
                           monitor=SCMonitor(measures=prog.measures))

    answer = benchmark(run)
    assert answer.kind == Answer.SC_ERROR
