"""Table 1 as benchmarks: per-row dynamic-monitoring cost and static
verification cost, plus a whole-table regeneration check."""

import pytest

from repro.bench.table1 import run_table1
from repro.corpus import all_programs
from repro.eval.machine import Answer, run_program
from repro.sct.monitor import SCMonitor
from repro.symbolic import verify_source

PROGRAMS = all_programs()
_SLOW_DYNAMIC = {"scheme"}


@pytest.mark.parametrize("prog", PROGRAMS, ids=[p.name for p in PROGRAMS])
def test_table1_dynamic_row(benchmark, parsed, prog):
    """Monitored execution time per Table 1 row (Dyn. column)."""
    if prog.name in _SLOW_DYNAMIC:
        pytest.skip("benchmarked via fig10 interpreter panels")
    program = parsed(prog.source)
    benchmark.group = "table1:dynamic"

    def run():
        return run_program(program, mode="full",
                           monitor=SCMonitor(measures=prog.measures))

    answer = benchmark(run)
    assert answer.kind == Answer.VALUE


STATIC_ROWS = [p for p in PROGRAMS if p.entry is not None and p.name != "scheme"]


@pytest.mark.parametrize("prog", STATIC_ROWS, ids=[p.name for p in STATIC_ROWS])
def test_table1_static_row(benchmark, prog):
    """Static verification time per Table 1 row (Static column)."""
    benchmark.group = "table1:static"

    def run():
        return verify_source(prog.source, prog.entry[0], prog.entry[1],
                             result_kinds=prog.result_kinds)

    verdict = benchmark(run)
    assert verdict.verified == prog.ours_static


def test_table1_full_regeneration(benchmark):
    """End-to-end: regenerate the whole table once and check agreement."""
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    mismatches = [r.program.name for r in rows if not r.matches_paper]
    assert mismatches == ["deriv"]  # the one documented deviation
