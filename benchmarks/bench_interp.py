"""pytest-benchmark cells: compiled machine vs tree machine.

Machine-readable twins of ``python -m repro bench interp`` — one
benchmark per (program, suite, machine) for a small shape-diverse corpus
subset, so CI tracks the absolute times (the full report tracks the
ratios).

Run with::

    pytest benchmarks/bench_interp.py --benchmark-only
"""

import pytest

from repro.bench.interp import SMOKE_PROGRAMS, amplify_program
from repro.corpus import get_program
from repro.eval.machine import Answer, make_env, run_program
from repro.sct.monitor import SCMonitor

AMPLIFY = 20

_ENVS = {}


def _env(machine):
    if machine not in _ENVS:
        _ENVS[machine] = make_env(machine=machine)
    return _ENVS[machine]


def _run(program, prog, machine, mode):
    answer = run_program(
        program, mode=mode, strategy="cm",
        monitor=SCMonitor(measures=prog.measures),
        env=_env(machine), machine=machine,
    )
    assert answer.kind == Answer.VALUE, repr(answer)
    return answer


@pytest.mark.parametrize("machine", ["tree", "compiled"])
@pytest.mark.parametrize("name", SMOKE_PROGRAMS)
def test_interp_monitored_cm(benchmark, parsed, name, machine):
    prog = get_program(name)
    program = amplify_program(parsed(prog.source), AMPLIFY)
    benchmark.group = f"interp-cm:{name}"
    benchmark(_run, program, prog, machine, "full")


@pytest.mark.parametrize("machine", ["tree", "compiled"])
@pytest.mark.parametrize("name", SMOKE_PROGRAMS[:2])
def test_interp_unmonitored(benchmark, parsed, name, machine):
    prog = get_program(name)
    program = amplify_program(parsed(prog.source), AMPLIFY)
    benchmark.group = f"interp-off:{name}"
    benchmark(_run, program, prog, machine, "off")
