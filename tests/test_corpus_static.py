"""Table 1, Static column: run the verifier on every corpus row and pin
the verdicts (matching the paper, with deviations recorded in
EXPERIMENTS.md — currently only `deriv`, which our engine verifies where
the paper's tool reported ✗)."""

import pytest

from repro.corpus import all_programs
from repro.symbolic import verify_source

PROGRAMS = [p for p in all_programs() if p.entry is not None]

# Rows where our verdict deviates from the paper's Static column.
KNOWN_DEVIATIONS = {"deriv"}


@pytest.mark.parametrize("prog", PROGRAMS, ids=[p.name for p in PROGRAMS])
class TestTable1Static:
    def test_pinned_verdict(self, prog):
        v = verify_source(prog.source, prog.entry[0], prog.entry[1],
                          result_kinds=prog.result_kinds)
        assert v.verified == prog.ours_static, v.render()

    def test_matches_paper_unless_known_deviation(self, prog):
        paper_says_yes = prog.paper_static.startswith("Y")
        if prog.name in KNOWN_DEVIATIONS:
            assert prog.ours_static != paper_says_yes
        else:
            assert prog.ours_static == paper_says_yes

    def test_unverified_rows_have_reasons(self, prog):
        if prog.ours_static:
            pytest.skip("verified row")
        v = verify_source(prog.source, prog.entry[0], prog.entry[1],
                          result_kinds=prog.result_kinds)
        assert v.reasons


class TestStaticFindsTheNfaBug:
    """§5.1.2: 'Our static analysis was the first to discover this error
    after many years.'"""

    def test_buggy_nfa_not_verifiable(self):
        from repro.corpus.registry import DIVERGING

        buggy = DIVERGING["buggy-nfa"].source
        v = verify_source(buggy, "state1", ["list"])
        assert not v.verified
        assert v.witness is not None or v.reasons

    def test_fixed_nfa_verifies(self):
        from repro.corpus.registry import REGISTRY

        fixed = REGISTRY["nfa"].source
        v = verify_source(fixed, "state1", ["list"])
        assert v.verified, v.render()


class TestVerifierVirtuousCycle:
    """§2.3/§5: statically verified functions can be whitelisted away from
    dynamic monitoring entirely."""

    def test_verified_function_runs_unmonitored(self):
        from repro.eval.machine import Answer, run_source
        from repro.sct.monitor import SCMonitor

        src = """
        (define (len2 l) (if (null? l) 0 (+ 1 (len2 (cdr l)))))
        (len2 '(1 2 3 4))
        """
        v = verify_source(src, "len2", ["list"])
        assert v.verified
        monitor = SCMonitor(whitelist={"len2"})
        a = run_source(src, mode="full", monitor=monitor)
        assert a.kind == Answer.VALUE and a.value == 4
        assert monitor.calls_seen == 0
