"""The dynamic MC monitor: machine integration and Python decorator."""

import pytest

from repro.eval.machine import run_source
from repro.mc.monitor import MCMonitor
from repro.pyterm.decorator import SizeChangeError, terminating
from repro.sct.errors import SizeChangeViolation
from repro.sct.monitor import SCMonitor

RANGE = """
(define (range2 lo hi)
  (if (>= lo hi) '() (cons lo (range2 (+ lo 1) hi))))
(range2 0 8)
"""

ACK = """
(define (ack m n)
  (cond [(= 0 m) (+ 1 n)]
        [(= 0 n) (ack (- m 1) 1)]
        [else (ack (- m 1) (ack m (- n 1)))]))
(ack 2 3)
"""


class TestMachineIntegration:
    def test_counting_up_passes_without_measure(self):
        answer = run_source(RANGE, mode="full", monitor=MCMonitor())
        assert answer.is_value()

    def test_same_program_fails_under_sc_without_measure(self):
        answer = run_source(RANGE, mode="full", monitor=SCMonitor())
        assert answer.kind == answer.SC_ERROR

    def test_sc_accepts_with_the_paper_measure(self):
        monitor = SCMonitor(measures={"range2": lambda a: (a[1] - a[0],)})
        assert run_source(RANGE, mode="full", monitor=monitor).is_value()

    def test_descending_programs_still_pass(self):
        answer = run_source(ACK, mode="full", monitor=MCMonitor())
        assert answer.is_value()
        assert answer.value == 9

    def test_plain_ascent_is_caught(self):
        src = "(define (up x) (up (+ x 1))) (up 0)"
        answer = run_source(src, mode="full", monitor=MCMonitor(),
                            max_steps=500_000)
        assert answer.kind == answer.SC_ERROR

    def test_stationary_loop_is_caught(self):
        src = "(define (spin x) (spin x)) (spin 7)"
        answer = run_source(src, mode="full", monitor=MCMonitor(),
                            max_steps=500_000)
        assert answer.kind == answer.SC_ERROR

    def test_climber_chasing_a_rising_ceiling_is_caught(self):
        # Both arguments climb together, so no parameter is a ceiling and
        # the loop genuinely diverges.
        src = """
        (define (chase lo hi)
          (if (> lo hi) '() (chase (+ lo 1) (+ hi 1))))
        (chase 0 5)
        """
        answer = run_source(src, mode="full", monitor=MCMonitor(),
                            max_steps=500_000)
        assert answer.kind == answer.SC_ERROR

    def test_constant_ceiling_is_not_enough(self):
        # Bounded ascent needs the ceiling as a *parameter*: a terminating
        # count-up-to-a-constant still violates MC (the graph only records
        # x′ > x).  This is the documented limitation, mirroring the
        # paper's custom-order rows.
        src = "(define (up x) (if (< x 50) (up (+ x 1)) x)) (up 0)"
        answer = run_source(src, mode="full", monitor=MCMonitor())
        assert answer.kind == answer.SC_ERROR

    def test_imperative_strategy_agrees(self):
        ok = run_source(RANGE, mode="full", strategy="imperative",
                        monitor=MCMonitor())
        assert ok.is_value()
        bad = run_source("(define (up x) (up (+ x 1))) (up 0)",
                         mode="full", strategy="imperative",
                         monitor=MCMonitor(), max_steps=500_000)
        assert bad.kind == bad.SC_ERROR

    def test_contract_mode_wraps_only_marked_functions(self):
        src = """
        (define (upto lo hi) (if (>= lo hi) lo (upto (+ lo 1) hi)))
        (define safe-upto (terminating/c upto))
        (safe-upto 0 50)
        """
        answer = run_source(src, mode="contract", monitor=MCMonitor())
        assert answer.is_value()
        assert answer.value == 50
        # The same contract under SC graphs blames the term/c party.
        sc = run_source(src, mode="contract", monitor=SCMonitor())
        assert sc.kind == sc.SC_ERROR
        assert "term/c" in str(sc.violation.blame)

    def test_violation_reports_mc_composition(self):
        src = "(define (spin x) (spin x)) (spin 7)"
        answer = run_source(src, mode="full", monitor=MCMonitor(),
                            max_steps=500_000)
        violation = answer.violation
        assert isinstance(violation, SizeChangeViolation)
        assert violation.composition is not None
        assert not violation.composition.desc_ok()

    def test_backoff_still_catches_divergence(self):
        src = "(define (up x) (up (+ x 1))) (up 0)"
        answer = run_source(src, mode="full",
                            monitor=MCMonitor(backoff=True),
                            max_steps=2_000_000)
        assert answer.kind == answer.SC_ERROR

    def test_mc_accepts_everything_sc_accepts_on_corpus_samples(self):
        # MC graphs entail their SC projections; spot-check on real programs.
        from repro.corpus.registry import all_programs

        for prog in all_programs():
            if prog.measures or "scheme" in prog.tags:
                continue  # measured rows differ by design; scheme is slow
            sc = run_source(prog.source, mode="full", monitor=SCMonitor(),
                            max_steps=3_000_000)
            if not sc.is_value():
                continue
            mc = run_source(prog.source, mode="full", monitor=MCMonitor(),
                            max_steps=3_000_000)
            assert mc.is_value(), f"{prog.name}: SC accepted but MC rejected"


class TestPytermMC:
    def test_counting_up_needs_no_measure(self):
        @terminating(graphs="mc")
        def up_to(lo, hi):
            if lo >= hi:
                return []
            return [lo] + up_to(lo + 1, hi)

        assert up_to(0, 6) == [0, 1, 2, 3, 4, 5]

    def test_sc_graphs_reject_the_same_loop(self):
        @terminating
        def up_to(lo, hi):
            if lo >= hi:
                return []
            return [lo] + up_to(lo + 1, hi)

        with pytest.raises(SizeChangeError):
            up_to(0, 6)

    def test_runaway_ascent_caught_early(self):
        @terminating(graphs="mc")
        def runaway(x):
            return runaway(x + 1)

        with pytest.raises(SizeChangeError) as excinfo:
            runaway(0)
        assert excinfo.value.call_count <= 3

    def test_descending_recursion_unaffected(self):
        @terminating(graphs="mc")
        def fact(n):
            return 1 if n == 0 else n * fact(n - 1)

        assert fact(6) == 720

    def test_container_ceiling(self):
        # index climbs toward a fixed-length list
        @terminating(graphs="mc")
        def scan(i, items):
            if i >= len(items):
                return 0
            return items[i] + scan(i + 1, items)

        assert scan(0, [1, 2, 3]) == 6

    def test_invalid_graphs_option(self):
        with pytest.raises(ValueError):
            terminating(lambda x: x, graphs="nope")

    def test_mc_with_measure_composes(self):
        # a measure plus MC graphs: the measure output is compared
        @terminating(graphs="mc", measure=lambda a: (abs(a[0] - 3),))
        def converge(x):
            if x == 3:
                return 0
            return converge(x + 1 if x < 3 else x - 1)

        assert converge(0) == 0

    def test_blame_label_reported(self):
        @terminating(graphs="mc", blame="client-module")
        def spin(x):
            return spin(x)

        with pytest.raises(SizeChangeError) as excinfo:
            spin(1)
        assert excinfo.value.blame == "client-module"
