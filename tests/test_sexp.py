"""Reader/printer tests: atoms, lists, sugar, comments, errors, round-trip."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sexp.datum import Char, Dotted, Symbol, intern
from repro.sexp.printer import write_datum
from repro.sexp.reader import ReaderError, read, read_many


def rd(text):
    return read(text).strip()


class TestAtoms:
    def test_integers(self):
        assert rd("42") == 42
        assert rd("-7") == -7
        assert rd("+3") == 3

    def test_floats(self):
        assert rd("3.5") == 3.5
        assert rd("-0.25") == -0.25

    def test_symbols(self):
        assert rd("foo") is intern("foo")
        assert rd("list->string") is intern("list->string")
        assert rd("+") is intern("+")
        assert rd("-") is intern("-")
        assert rd("...") is intern("...")
        assert rd("1+") is intern("1+")

    def test_booleans(self):
        assert rd("#t") is True
        assert rd("#f") is False

    def test_strings(self):
        assert rd('"hello"') == "hello"
        assert rd('"a\\nb"') == "a\nb"
        assert rd('"say \\"hi\\""') == 'say "hi"'
        assert rd('""') == ""

    def test_chars(self):
        assert rd("#\\a") == Char("a")
        assert rd("#\\space") == Char(" ")
        assert rd("#\\newline") == Char("\n")
        assert rd("#\\(") == Char("(")


class TestLists:
    def test_simple(self):
        assert rd("(1 2 3)") == [1, 2, 3]

    def test_nested(self):
        assert rd("(a (b c) d)") == [intern("a"), [intern("b"), intern("c")], intern("d")]

    def test_brackets(self):
        assert rd("[1 2]") == [1, 2]
        assert rd("(cond [a b])") == [intern("cond"), [intern("a"), intern("b")]]

    def test_empty(self):
        assert rd("()") == []

    def test_dotted(self):
        d = rd("(1 . 2)")
        assert isinstance(d, Dotted)
        assert d.items == (1,) and d.tail == 2

    def test_dotted_multi(self):
        d = rd("(1 2 . 3)")
        assert d.items == (1, 2) and d.tail == 3

    def test_symbol_with_dots_is_not_dotted(self):
        assert rd("(a .b)") == [intern("a"), intern(".b")]


class TestSugar:
    def test_quote(self):
        assert rd("'x") == [intern("quote"), intern("x")]
        assert rd("'(1 2)") == [intern("quote"), [1, 2]]

    def test_quasiquote_unquote(self):
        assert rd("`(a ,b)") == [
            intern("quasiquote"),
            [intern("a"), [intern("unquote"), intern("b")]],
        ]

    def test_unquote_splicing(self):
        assert rd("`(,@xs)") == [
            intern("quasiquote"),
            [[intern("unquote-splicing"), intern("xs")]],
        ]


class TestComments:
    def test_line_comment(self):
        assert read_many("; hi\n42")[0].strip() == 42

    def test_block_comment(self):
        assert rd("#| anything (even ( |# 7") == 7

    def test_nested_block_comment(self):
        assert rd("#| a #| b |# c |# 9") == 9

    def test_datum_comment(self):
        assert rd("#;(skip me) 5") == 5

    def test_comment_inside_list(self):
        assert rd("(1 ; two\n 3)") == [1, 3]


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        ["(", ")", "(1 2", '"unterminated', "#\\", "(1 . )", "(. 2)",
         "(1 . 2 3)", "#| open", "(]"],
    )
    def test_malformed(self, bad):
        with pytest.raises(ReaderError):
            read_many(bad)

    def test_read_requires_exactly_one(self):
        with pytest.raises(ReaderError):
            read("1 2")


class TestLocations:
    def test_line_and_column(self):
        forms = read_many("(a)\n  (b)")
        assert forms[0].loc.line == 1 and forms[0].loc.col == 0
        assert forms[1].loc.line == 2 and forms[1].loc.col == 2

    def test_atom_location(self):
        stx = read("(foo bar)")
        assert stx.datum[1].loc.col == 5


# -- round trip ----------------------------------------------------------------

_atom = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.booleans(),
    st.sampled_from([intern(n) for n in ("a", "foo", "x1", "+", "lambda")]),
    st.text(alphabet="abc XY", max_size=5),
    st.sampled_from([Char("a"), Char(" "), Char("\n"), Char("(")]),
)

_datum = st.recursive(_atom, lambda inner: st.lists(inner, max_size=4), max_leaves=20)


@settings(max_examples=200, deadline=None)
@given(_datum)
def test_print_read_roundtrip(datum):
    text = write_datum(datum)
    assert read(text).strip() == datum
