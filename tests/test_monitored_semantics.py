"""Monitored-semantics tests: the paper's theorems as executable checks.

* Theorem 3.2 (soundness): a monitored run that produces a value agrees
  with the standard semantics.
* Corollary 3.3: diverging programs evaluate to errorSC under monitoring.
* §2.1 worked example: the exact Fig. 1 graph sequence for (ack 2 0).
* §2.2: the CPS len function passes because distinct closures get distinct
  table entries.
* λCSCT (§3.6): contracts monitor selectively, with blame.
"""

import pytest

from repro.eval.machine import Answer, run_source
from repro.sct.graph import SCGraph, arc
from repro.sct.monitor import SCMonitor

ACK = """
(define (ack m n)
  (cond [(= 0 m) (+ 1 n)]
        [(= 0 n) (ack (- m 1) 1)]
        [else (ack (- m 1) (ack m (- n 1)))]))
"""

BUGGY_ACK = """
(define (ack m n)
  (cond [(= 0 m) (+ 1 n)]
        [(= 0 n) (ack (- m 1) 1)]
        [else (ack m (ack m (- n 1)))]))
"""

TERMINATING_PROGRAMS = [
    ("ack", ACK + "(ack 2 3)", 9),
    ("fact", "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 8)", 40320),
    ("fib", "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 12)", 144),
    ("rev", """
        (define (rev l a) (if (null? l) a (rev (cdr l) (cons (car l) a))))
        (car (rev '(1 2 3) '()))
     """, 3),
    ("cps-len", """
        (define (len l) (go l (lambda (x) x)))
        (define (go l k)
          (cond [(empty? l) (k 0)]
                [(cons? l) (go (rest l) (lambda (n) (k (+ 1 n))))]))
        (len '(9 8 7 6 5))
     """, 5),
    ("msort", """
        (define (merge xs ys)
          (cond [(null? xs) ys]
                [(null? ys) xs]
                [(< (car xs) (car ys)) (cons (car xs) (merge (cdr xs) ys))]
                [else (cons (car ys) (merge xs (cdr ys)))]))
        (define (split l)
          (if (or (null? l) (null? (cdr l)))
              (cons l '())
              (let ([r (split (cddr l))])
                (cons (cons (car l) (car r)) (cons (cadr l) (cdr r))))))
        (define (msort l)
          (if (or (null? l) (null? (cdr l)))
              l
              (let ([halves (split l)])
                (merge (msort (car halves)) (msort (cdr halves))))))
        (car (msort '(5 2 9 1 7 3 8 4 6)))
     """, 1),
    ("even-odd", """
        (define (ev? n) (if (= n 0) #t (od? (- n 1))))
        (define (od? n) (if (= n 0) #f (ev? (- n 1))))
        (ev? 40)
     """, True),
    ("higher-order", """
        (define (twice f x) (f (f x)))
        (twice (lambda (x) (+ x 1)) 5)
     """, 7),
    ("map-prelude", "(foldl + 0 (map add1 '(1 2 3)))", 9),
    ("tree-sum", """
        (define (tsum t)
          (if (pair? t) (+ (tsum (car t)) (tsum (cdr t)))
              (if (number? t) t 0)))
        (tsum '((1 2) (3 (4 5))))
     """, 15),
]

DIVERGING_PROGRAMS = [
    ("self-loop", "(define (f x) (f x)) (f 1)"),
    ("grow", "(define (f x) (f (+ x 1))) (f 0)"),
    ("mutual", """
        (define (a x) (b x))
        (define (b x) (a x))
        (a 5)
     """),
    ("buggy-ack", BUGGY_ACK + "(ack 2 3)"),
    ("omega", "((lambda (x) (x x)) (lambda (x) (x x)))"),
    ("cps-loop", "(define (go k) (go (lambda (n) (k n)))) (go (lambda (x) x))"),
    ("grow-list", "(define (f l) (f (cons 1 l))) (f '())"),
]


@pytest.mark.parametrize("strategy", ["cm", "imperative"])
@pytest.mark.parametrize("name,src,expected", TERMINATING_PROGRAMS,
                         ids=[t[0] for t in TERMINATING_PROGRAMS])
class TestSoundness:
    def test_monitored_agrees_with_standard(self, name, src, expected, strategy):
        """Theorem 3.2: monitoring never changes the value of a program
        that satisfies the size-change property."""
        standard = run_source(src, mode="off")
        monitored = run_source(src, mode="full", strategy=strategy)
        assert standard.kind == Answer.VALUE
        assert monitored.kind == Answer.VALUE, (
            f"{name} spuriously flagged: {monitored.violation}"
        )
        assert standard.value == monitored.value == expected


@pytest.mark.parametrize("strategy", ["cm", "imperative"])
@pytest.mark.parametrize("name,src", DIVERGING_PROGRAMS,
                         ids=[t[0] for t in DIVERGING_PROGRAMS])
class TestDivergenceCaught:
    def test_divergence_becomes_errorSC(self, name, src, strategy):
        """Corollary 3.3: diverging programs are stopped with errorSC."""
        standard = run_source(src, mode="off", max_steps=200_000)
        assert standard.kind == Answer.TIMEOUT
        monitored = run_source(src, mode="full", strategy=strategy)
        assert monitored.kind == Answer.SC_ERROR

    def test_detection_is_early(self, name, src, strategy):
        """§5.1.2: violations show up within the first few calls."""
        monitor = SCMonitor()
        run_source(src, mode="full", strategy=strategy, monitor=monitor)
        assert monitor.calls_seen < 100


class TestWorkedExampleFig1:
    def test_ack_2_0_graph_sequence(self):
        """The dynamic graphs for (ack 2 0) match Fig. 1 exactly."""
        trace = []
        monitor = SCMonitor(trace=trace)
        a = run_source(ACK + "(ack 2 0)", mode="full", monitor=monitor)
        assert a.kind == Answer.VALUE and a.value == 3
        ack_steps = [(prev, new, g) for (fn, prev, new, g) in trace if fn == "ack"]
        expected = [
            # (ack 2 0) ↝ (ack 1 1): {m↓m, m↓n}
            ((2, 0), (1, 1), SCGraph([arc(0, "<", 0), arc(0, "<", 1)])),
            # (ack 1 1) ↝ (ack 1 0): {m↓=m, m↓n, n↓=m, n↓n}
            ((1, 1), (1, 0),
             SCGraph([arc(0, "=", 0), arc(0, "<", 1), arc(1, "=", 0), arc(1, "<", 1)])),
            # (ack 1 0) ↝ (ack 0 1): {m↓m, m↓=n, n↓=m}
            ((1, 0), (0, 1),
             SCGraph([arc(0, "<", 0), arc(0, "=", 1), arc(1, "=", 0)])),
            # back at (ack 1 1) ↝ (ack 0 2): {m↓m, n↓m}
            ((1, 1), (0, 2), SCGraph([arc(0, "<", 0), arc(1, "<", 0)])),
        ]
        assert ack_steps == expected

    def test_buggy_ack_witness_graph(self):
        """§2.1: the buggy call yields {m↓=m, n↓=m}, idempotent with no
        self-descent."""
        a = run_source(BUGGY_ACK + "(ack 2 0)", mode="full")
        assert a.kind == Answer.SC_ERROR
        v = a.violation
        assert v.composition.is_idempotent()
        assert not v.composition.has_strict_self_arc()


class TestContracts:
    def test_unmonitored_mode_ignores_contracts(self):
        a = run_source(
            "(define f (terminating/c (lambda (x) (f x)))) (f 1)",
            mode="off", max_steps=50_000,
        )
        assert a.kind == Answer.TIMEOUT

    def test_contract_mode_is_selective(self):
        """Only the extent of a wrapped call is monitored: an unwrapped
        diverging function still diverges (observed as a fuel timeout)."""
        src = "(define (f x) (f x)) (f 1)"
        a = run_source(src, mode="contract", max_steps=50_000)
        assert a.kind == Answer.TIMEOUT

    def test_contract_catches_wrapped_divergence(self):
        src = '(define f (terminating/c (lambda (x) (f x)) "me")) (f 1)'
        a = run_source(src, mode="contract")
        assert a.kind == Answer.SC_ERROR
        assert a.violation.blame == "me"

    def test_contract_monitors_whole_extent(self):
        """f is wrapped and calls unwrapped g; g's divergence is caught in
        f's extent and blamed on f (§2.3)."""
        src = """
        (define (g x) (g x))
        (define f (terminating/c (lambda (x) (g x)) "party-f"))
        (f 1)
        """
        a = run_source(src, mode="contract")
        assert a.kind == Answer.SC_ERROR
        assert a.violation.blame == "party-f"
        assert "g" in a.violation.function

    def test_inner_contract_shifts_blame(self):
        """If f's author wraps g too, the violation blames g's party."""
        src = """
        (define g (terminating/c (lambda (x) (g x)) "party-g"))
        (define f (terminating/c (lambda (x) (g x)) "party-f"))
        (f 1)
        """
        a = run_source(src, mode="contract")
        assert a.kind == Answer.SC_ERROR
        assert a.violation.blame == "party-g"

    def test_terminating_function_passes_contract(self):
        src = """
        (define fact
          (terminating/c (lambda (n) (if (zero? n) 1 (* n (fact (- n 1)))))))
        (fact 6)
        """
        a = run_source(src, mode="contract")
        assert a.kind == Answer.VALUE and a.value == 720

    def test_contract_on_non_closure_is_identity(self):
        a = run_source("(terminating/c 42)", mode="contract")
        assert a.kind == Answer.VALUE and a.value == 42

    def test_extent_ends_on_return(self):
        """After a wrapped call returns, monitoring stops: a later diverging
        call is not monitored (observed as timeout)."""
        src = """
        (define ok (terminating/c (lambda (n) n)))
        (define (loop x) (loop x))
        (ok 5)
        (loop 1)
        """
        a = run_source(src, mode="contract", max_steps=50_000)
        assert a.kind == Answer.TIMEOUT


class TestPolicies:
    def test_backoff_preserves_soundness(self):
        monitor = SCMonitor(backoff=True)
        a = run_source(ACK + "(ack 2 3)", mode="full", monitor=monitor)
        assert a.kind == Answer.VALUE and a.value == 9

    def test_backoff_still_catches(self):
        monitor = SCMonitor(backoff=True)
        a = run_source("(define (f x) (f x)) (f 1)", mode="full", monitor=monitor)
        assert a.kind == Answer.SC_ERROR

    def test_label_keying_runs_ack(self):
        monitor = SCMonitor(keying="label")
        a = run_source(ACK + "(ack 2 3)", mode="full", monitor=monitor)
        assert a.kind == Answer.VALUE and a.value == 9

    def test_whitelist_skips_function(self):
        monitor = SCMonitor(whitelist={"f"})
        # f diverges but is whitelisted: monitoring never fires, fuel does.
        a = run_source("(define (f x) (f x)) (f 1)", mode="full",
                       monitor=monitor, max_steps=50_000)
        assert a.kind == Answer.TIMEOUT

    def test_measure_allows_counting_up(self):
        monitor = SCMonitor(measures={"up": lambda a: (a[1] - a[0],)})
        src = "(define (up lo hi) (if (>= lo hi) '() (cons lo (up (+ lo 1) hi)))) (length (up 0 20))"
        a = run_source(src, mode="full", monitor=monitor)
        assert a.kind == Answer.VALUE and a.value == 20

    def test_counting_up_without_measure_violates(self):
        src = "(define (up lo hi) (if (>= lo hi) '() (cons lo (up (+ lo 1) hi)))) (up 0 20)"
        a = run_source(src, mode="full")
        assert a.kind == Answer.SC_ERROR
