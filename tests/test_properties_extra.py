"""Additional property suites: solver soundness against brute force,
well-founded-order laws, reader/printer round-trips, MC-dominates-SC on
generated programs, and monitor event-stream invariants."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.machine import Answer, run_source
from repro.mc.monitor import MCMonitor
from repro.sct.monitor import SCMonitor
from repro.sct.order import ContainmentOrder, DESC, EQ, NONE, SizeOrder
from repro.sct.trace import assemble_tree
from repro.sexp.reader import read_many
from repro.solver.interface import Solver
from repro.solver.linear import Atom, EQ as OP_EQ, LE as OP_LE, LinExpr, NE as OP_NE
from repro.values.equality import scheme_equal
from repro.values.values import (
    NIL,
    Pair,
    cons,
    from_datum,
    size_of,
    write_value,
)
from tests.test_properties import terminating_loop

# -- solver vs brute force ----------------------------------------------------------

_VARS = ("x", "y", "z")
_BOX = range(-4, 5)


@st.composite
def atoms(draw, nvars=2):
    coeffs = {
        _VARS[i]: draw(st.integers(min_value=-2, max_value=2))
        for i in range(nvars)
    }
    const = draw(st.integers(min_value=-3, max_value=3))
    op = draw(st.sampled_from([OP_LE, OP_EQ, OP_NE]))
    return Atom(op, LinExpr(coeffs, const))


def _eval_atom(atom: Atom, env: dict) -> bool:
    value = atom.expr.const + sum(
        c * env[v] for v, c in atom.expr.coeffs.items()
    )
    if atom.op == OP_LE:
        return value <= 0
    if atom.op == OP_EQ:
        return value == 0
    return value != 0


def _box_models(facts, nvars=2):
    for point in itertools.product(_BOX, repeat=nvars):
        env = dict(zip(_VARS, point))
        if all(_eval_atom(a, env) for a in facts):
            yield env


class TestSolverSoundness:
    @settings(max_examples=120, deadline=None)
    @given(st.lists(atoms(), min_size=1, max_size=4))
    def test_unsat_verdicts_have_no_box_model(self, facts):
        """If the solver says unsatisfiable, brute force over the box must
        find no model (the box can't refute SAT — unbounded models exist —
        but it can refute a wrong UNSAT)."""
        solver = Solver()
        if not solver.satisfiable(tuple(facts)):
            assert next(_box_models(facts), None) is None

    @settings(max_examples=120, deadline=None)
    @given(st.lists(atoms(), min_size=1, max_size=3), atoms())
    def test_entailment_holds_on_every_box_model(self, facts, goal):
        """facts ⊨ goal must mean every model of facts satisfies goal —
        checked exhaustively on the box."""
        solver = Solver()
        if solver.entails(tuple(facts), goal):
            for env in _box_models(facts):
                assert _eval_atom(goal, env), (facts, goal, env)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(atoms(), min_size=1, max_size=3))
    def test_entailment_is_reflexive_on_facts(self, facts):
        solver = Solver()
        if not solver.satisfiable(tuple(facts)):
            return  # ex falso: vacuous
        for fact in facts:
            assert solver.entails(tuple(facts), fact)


# -- well-founded order laws ------------------------------------------------------------

_value = st.recursive(
    st.integers(min_value=-20, max_value=20)
    | st.booleans()
    | st.just(NIL)
    | st.text(alphabet="ab", max_size=3),
    lambda inner: st.tuples(inner, inner).map(lambda t: cons(t[0], t[1])),
    max_leaves=8,
)

_ORDERS = [SizeOrder(), ContainmentOrder()]


class TestOrderLaws:
    @settings(max_examples=200, deadline=None)
    @given(_value)
    def test_irreflexive_strictness(self, v):
        for order in _ORDERS:
            assert order.compare(v, v) == EQ

    @settings(max_examples=200, deadline=None)
    @given(_value, _value)
    def test_desc_and_eq_exclusive(self, a, b):
        for order in _ORDERS:
            forward = order.compare(a, b)
            backward = order.compare(b, a)
            if forward == DESC:
                assert backward in (NONE, EQ) or backward != DESC
                # strict descent both ways would contradict well-foundedness
                assert backward != DESC

    @settings(max_examples=200, deadline=None)
    @given(_value, _value)
    def test_size_order_desc_means_measure_drops(self, a, b):
        if SizeOrder().compare(a, b) == DESC:
            assert size_of(b) < size_of(a)

    @settings(max_examples=200, deadline=None)
    @given(_value, _value)
    def test_eq_means_scheme_equal(self, a, b):
        for order in _ORDERS:
            if order.compare(a, b) == EQ:
                assert scheme_equal(a, b)

    @settings(max_examples=150, deadline=None)
    @given(_value, _value)
    def test_containment_implies_size_descent(self, a, b):
        """Fig. 5 containment is a subrelation of the size order — the
        fact that makes the size order the safe default."""
        if ContainmentOrder().compare(a, b) == DESC:
            assert SizeOrder().compare(a, b) == DESC

    @settings(max_examples=150, deadline=None)
    @given(_value, _value)
    def test_pair_components_are_below_the_pair(self, a, b):
        p = cons(a, b)
        containment = ContainmentOrder()
        assert containment.compare(p, a) == DESC
        assert containment.compare(p, b) == DESC

    @settings(max_examples=100, deadline=None)
    @given(_value)
    def test_no_infinite_descent_on_cdr_chains(self, v):
        order = SizeOrder()
        steps = 0
        while isinstance(v, Pair):
            assert order.compare(v, v.cdr) == DESC
            v = v.cdr
            steps += 1
            assert steps < 1000


# -- reader / printer round-trips ----------------------------------------------------------

_datum = st.recursive(
    st.integers(min_value=-999, max_value=999)
    | st.booleans()
    | st.text(alphabet="abc!? -", max_size=6)
    | st.sampled_from(["foo", "bar+baz", "x0"]).map(
        lambda s: __import__("repro.sexp.datum", fromlist=["intern"]).intern(s)
    ),
    lambda inner: st.lists(inner, max_size=4),
    max_leaves=10,
)


class TestRoundTrips:
    @settings(max_examples=200, deadline=None)
    @given(_datum)
    def test_write_then_read_is_identity(self, datum):
        value = from_datum(datum)
        text = write_value(value)
        [stx] = read_many(f"'{text}" if _needs_quote(text) else text,
                          "<prop>")
        reread = from_datum(_strip_quote(stx.strip()))
        assert scheme_equal(reread, value), (text, value)

    @settings(max_examples=100, deadline=None)
    @given(_value)
    def test_write_value_is_stable(self, v):
        assert write_value(v) == write_value(v)


def _needs_quote(text: str) -> bool:
    return text.startswith("(") or not text[:1].isdigit() and text[:1] not in '"#-'


def _strip_quote(datum):
    from repro.sexp.datum import S_QUOTE

    if isinstance(datum, list) and len(datum) == 2 and datum[0] is S_QUOTE:
        return datum[1]
    return datum


# -- MC dominates SC on generated programs ------------------------------------------------


class TestMCDominance:
    @settings(max_examples=40, deadline=None)
    @given(terminating_loop())
    def test_mc_accepts_whatever_sc_accepts(self, src):
        sc = run_source(src, mode="full", monitor=SCMonitor(),
                        max_steps=500_000)
        if sc.kind != Answer.VALUE:
            return
        mc = run_source(src, mode="full", monitor=MCMonitor(),
                        max_steps=500_000)
        assert mc.kind == Answer.VALUE
        assert scheme_equal(mc.value, sc.value)


# -- monitor event-stream invariants ----------------------------------------------------------


class TestEventStream:
    @settings(max_examples=40, deadline=None)
    @given(terminating_loop())
    def test_imperative_events_balance(self, src):
        events = []
        monitor = SCMonitor(enforce=False, events=events)
        answer = run_source(src, mode="full", strategy="imperative",
                            monitor=monitor, max_steps=500_000)
        if answer.kind != Answer.VALUE:
            return
        calls = sum(1 for e in events if e[0] == "call")
        returns = sum(1 for e in events if e[0] == "return")
        assert calls == returns == monitor.calls_seen

    @settings(max_examples=40, deadline=None)
    @given(terminating_loop())
    def test_forest_accounts_for_every_call(self, src):
        events = []
        monitor = SCMonitor(enforce=False, events=events)
        answer = run_source(src, mode="full", strategy="imperative",
                            monitor=monitor, max_steps=500_000)
        if answer.kind != Answer.VALUE:
            return
        roots = assemble_tree(events)
        assert sum(r.count() for r in roots) == monitor.calls_seen
