"""Contract combinator tests: blame, arrows, and total correctness."""

import pytest

from repro.contracts import (
    Blame,
    ContractViolation,
    and_c,
    any_c,
    arrow,
    attach,
    flat,
    listof,
    or_c,
    terminating_c,
    total,
)
from repro.pyterm import SizeChangeError

is_nat = flat(lambda v: isinstance(v, int) and not isinstance(v, bool) and v >= 0, "nat?")
is_int = flat(lambda v: isinstance(v, int) and not isinstance(v, bool), "int?")


class TestFlat:
    def test_pass(self):
        assert is_nat.wrap(5, Blame("s", "c")) == 5

    def test_fail_blames_positive(self):
        with pytest.raises(ContractViolation) as ei:
            is_nat.wrap(-1, Blame("server", "client"))
        assert ei.value.party == "server"
        assert "nat?" in str(ei.value)

    def test_crashing_predicate_blames_positive(self):
        bad = flat(lambda v: v.nope, "weird?")
        with pytest.raises(ContractViolation) as ei:
            bad.wrap(1, Blame("server", "client"))
        assert ei.value.party == "server"

    def test_any_c(self):
        assert any_c.wrap(object, Blame("s", "c")) is object


class TestCompound:
    def test_and_all_parts(self):
        even = flat(lambda v: v % 2 == 0, "even?")
        c = and_c(is_nat, even)
        assert c.wrap(4, Blame("s", "c")) == 4
        with pytest.raises(ContractViolation):
            c.wrap(3, Blame("s", "c"))

    def test_or_first_match(self):
        c = or_c(is_nat, flat(lambda v: isinstance(v, str), "string?"))
        assert c.wrap("x", Blame("s", "c")) == "x"
        assert c.wrap(3, Blame("s", "c")) == 3
        with pytest.raises(ContractViolation):
            c.wrap(-1.5, Blame("s", "c"))

    def test_listof(self):
        c = listof(is_nat)
        assert c.wrap([1, 2], Blame("s", "c")) == [1, 2]
        with pytest.raises(ContractViolation):
            c.wrap([1, -2], Blame("s", "c"))
        with pytest.raises(ContractViolation):
            c.wrap("not-a-list", Blame("s", "c"))


class TestArrow:
    def test_checks_domain_with_swapped_blame(self):
        c = arrow([is_nat], is_nat)
        f = c.wrap(lambda n: n + 1, Blame("server", "client"))
        assert f(1) == 2
        with pytest.raises(ContractViolation) as ei:
            f(-1)
        assert ei.value.party == "client"  # caller supplied the bad argument

    def test_checks_range_with_positive_blame(self):
        c = arrow([any_c], is_nat)
        f = c.wrap(lambda n: -5, Blame("server", "client"))
        with pytest.raises(ContractViolation) as ei:
            f(0)
        assert ei.value.party == "server"

    def test_arity(self):
        c = arrow([is_nat, is_nat], is_nat)
        f = c.wrap(lambda a, b: a + b, Blame("s", "c"))
        with pytest.raises(ContractViolation):
            f(1)

    def test_non_callable(self):
        with pytest.raises(ContractViolation):
            arrow([], is_nat).wrap(42, Blame("s", "c"))

    def test_higher_order_domain_blame_swap(self):
        """(-> (-> nat? nat?) nat?): if the *server* calls the client's
        function with a bad argument, the server is blamed."""
        fun_ctc = arrow([is_nat], is_nat)
        c = arrow([fun_ctc], is_nat)
        server = c.wrap(lambda g: g(-1), Blame("server", "client"))
        with pytest.raises(ContractViolation) as ei:
            server(lambda n: n)
        assert ei.value.party == "server"


class TestTerminatingContract:
    def test_terminating_passes(self):
        f = terminating_c().wrap(lambda n: n, Blame("s", "c"))
        assert f(5) == 5

    def test_nonterminating_blames_positive(self):
        def loop(n):
            return wrapped(n)

        wrapped = terminating_c().wrap(loop, Blame("the-server", "c"))
        with pytest.raises(SizeChangeError) as ei:
            wrapped(1)
        assert ei.value.blame == "the-server"

    def test_non_callable_passes_through(self):
        assert terminating_c().wrap(42, Blame("s", "c")) == 42

    def test_idempotent_wrap(self):
        f = terminating_c().wrap(lambda n: n, Blame("s", "c"))
        assert terminating_c().wrap(f, Blame("other", "c")) is f


class TestTotal:
    def test_total_correctness_contract(self):
        ctc = total([is_nat], is_nat)

        @attach(ctc, positive="factorial")
        def fact(n):
            return 1 if n == 0 else n * fact(n - 1)

        assert fact(5) == 120

    def test_total_rejects_bad_argument(self):
        ctc = total([is_nat], is_nat)
        f = attach(ctc, positive="server", negative="client")(lambda n: n)
        with pytest.raises(ContractViolation) as ei:
            f(-3)
        assert ei.value.party == "client"

    def test_total_rejects_divergence(self):
        ctc = total([is_int], is_int)

        def loop(n):
            return f(n)

        f = attach(ctc, positive="server")(loop)
        with pytest.raises(SizeChangeError) as ei:
            f(7)
        assert ei.value.blame == "server"

    def test_total_rejects_bad_range(self):
        ctc = total([is_nat], is_nat)
        f = attach(ctc, positive="server")(lambda n: "oops")
        with pytest.raises(ContractViolation) as ei:
            f(1)
        assert ei.value.party == "server"
