"""Property-based tests for monotonicity-constraint graphs.

The key algebraic facts the monitor and the closure algorithm rely on:
composition is associative, embeddings of size-change graphs commute with
composition and the local check, dynamic graphs are always satisfiable,
and adding constraints is monotone for entailment.
"""

from hypothesis import given, settings, strategies as st

from repro.mc.graph import GEQ, GT, MCGraph, mc_graph_of_sizes, mc_graph_of_values
from repro.sct.graph import SCGraph, STRICT, WEAK, graph_of_values
from repro.sct.order import SizeOrder

ARITY = 3
_NODES = st.integers(min_value=0, max_value=2 * ARITY - 1)
_CONSTRAINT = st.tuples(_NODES, st.sampled_from([GEQ, GT]), _NODES)


def mc_graphs(arity: int = ARITY):
    return st.lists(_CONSTRAINT, max_size=8).map(
        lambda cs: MCGraph.build(arity, arity, cs)
    )


def _canonical(arcs):
    """Strict dominates weak on the same (i, j) pair — the invariant
    ``graph_of_values`` and ``compose`` maintain."""
    strict = {(i, j) for (i, r, j) in arcs if r is STRICT}
    return SCGraph(
        [(i, r, j) for (i, r, j) in arcs
         if r is STRICT or (i, j) not in strict]
    )


def sc_graphs(arity: int = ARITY):
    params = st.integers(min_value=0, max_value=arity - 1)
    arcs = st.tuples(params, st.sampled_from([STRICT, WEAK]), params)
    return st.lists(arcs, max_size=6).map(_canonical)


_ARGS = st.tuples(*[st.integers(min_value=-8, max_value=8)] * ARITY)


class TestAlgebra:
    @given(mc_graphs(), mc_graphs(), mc_graphs())
    @settings(max_examples=150, deadline=None)
    def test_composition_associative(self, g1, g2, g3):
        assert g1.compose(g2).compose(g3) == g1.compose(g2.compose(g3))

    @given(mc_graphs())
    @settings(max_examples=100, deadline=None)
    def test_identity_graph_is_neutral(self, g):
        ident = MCGraph.build(
            ARITY, ARITY,
            [(i, GEQ, ARITY + i) for i in range(ARITY)]
            + [(ARITY + i, GEQ, i) for i in range(ARITY)],
        )
        if g.sat:
            left = ident.compose(g)
            right = g.compose(ident)
            # composing with pure renaming must not lose or gain arcs
            assert left == g
            assert right == g

    @given(mc_graphs(), mc_graphs())
    @settings(max_examples=150, deadline=None)
    def test_unsat_absorbs(self, g1, g2):
        u = MCGraph.unsat(ARITY, ARITY)
        assert not u.compose(g1).sat
        assert not g2.compose(u).sat

    @given(mc_graphs(), mc_graphs(), _CONSTRAINT)
    @settings(max_examples=150, deadline=None)
    def test_composition_monotone_in_constraints(self, g1, g2, extra):
        """Strengthening the first graph can only strengthen the result."""
        if not g1.sat:
            return
        stronger = MCGraph.build(
            ARITY, ARITY,
            [(u, w, v)
             for u in range(2 * ARITY) for v in range(2 * ARITY)
             for w in [g1.rows[u][v]] if w >= GEQ and u != v]
            + [extra],
        )
        weak_result = g1.compose(g2)
        strong_result = stronger.compose(g2)
        if not strong_result.sat or not weak_result.sat:
            return
        for u in range(2 * ARITY):
            for v in range(2 * ARITY):
                if u != v and weak_result.rows[u][v] >= GEQ:
                    assert strong_result.rows[u][v] >= weak_result.rows[u][v]


class TestEmbedding:
    @given(sc_graphs(), sc_graphs())
    @settings(max_examples=150, deadline=None)
    def test_embedding_commutes_with_composition(self, g1, g2):
        lifted = MCGraph.from_scgraph(g1, ARITY, ARITY).compose(
            MCGraph.from_scgraph(g2, ARITY, ARITY)
        )
        assert lifted.to_scgraph() == g1.compose(g2)

    @given(sc_graphs())
    @settings(max_examples=150, deadline=None)
    def test_embedding_preserves_the_local_check(self, g):
        assert MCGraph.from_scgraph(g, ARITY, ARITY).desc_ok() == g.desc_ok()

    @given(sc_graphs())
    @settings(max_examples=100, deadline=None)
    def test_embedding_roundtrip(self, g):
        assert MCGraph.from_scgraph(g, ARITY, ARITY).to_scgraph() == g


class TestDynamicGraphs:
    @given(_ARGS, _ARGS)
    @settings(max_examples=200, deadline=None)
    def test_concrete_graphs_are_satisfiable(self, old, new):
        assert mc_graph_of_values(old, new).sat

    @given(_ARGS, _ARGS)
    @settings(max_examples=200, deadline=None)
    def test_projection_covers_sc_arcs(self, old, new):
        """Every arc the SC monitor would record is entailed by the MC
        graph (MC monitoring is at least as informed)."""
        sc = graph_of_values(old, new, SizeOrder())
        mc = mc_graph_of_values(old, new).to_scgraph()
        assert sc.arcs <= mc.arcs

    @given(_ARGS, _ARGS, _ARGS)
    @settings(max_examples=150, deadline=None)
    def test_observed_compositions_are_satisfiable(self, a, b, c):
        """Composing graphs from one actual trajectory can never be unsat
        — the middle values witness the glued system."""
        g1 = mc_graph_of_values(a, b)
        g2 = mc_graph_of_values(b, c)
        assert g1.compose(g2).sat

    @given(_ARGS, _ARGS, _ARGS)
    @settings(max_examples=150, deadline=None)
    def test_composition_entails_endpoint_graph(self, a, b, c):
        """g(a→b) ; g(b→c) may lose information but never contradicts the
        directly observed g(a→c): every constraint it derives also holds
        between a and c."""
        composed = mc_graph_of_values(a, b).compose(mc_graph_of_values(b, c))
        direct = mc_graph_of_values(a, c)
        for u in range(2 * ARITY):
            for v in range(2 * ARITY):
                if u != v and composed.rows[u][v] >= GEQ:
                    assert direct.rows[u][v] >= composed.rows[u][v]

    @given(st.lists(st.integers(min_value=0, max_value=20) | st.none(),
                    min_size=1, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_self_transition_never_violates(self, sizes):
        """A call repeating the very same sizes yields the all-equal graph,
        which is idempotent and *rightly* fails desc_ok (a verbatim repeat
        is the canonical nontermination witness)."""
        g = mc_graph_of_sizes(sizes, sizes)
        has_info = any(s is not None for s in sizes)
        if has_info:
            assert g.is_idempotent()
            assert not g.desc_ok()
        else:
            assert g == MCGraph.top(len(sizes), len(sizes))
