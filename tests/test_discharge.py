"""The discharge pipeline: certificates, residual policies, the
verification cache, and the differential guarantee.

The differential claims are the PR's acceptance contract:

* **Discharged runs are observably identical** — same values, same
  output — on every corpus program, under both machines.
* **Residual checks are untouched** — on every program the verifier
  could *not* (fully) discharge, the violations raised are byte-identical
  to full monitoring's, including the diverging corpus.
* **Discharge is real** — on the fully discharged subset the monitor
  sees zero calls.
"""

import json
import os

import pytest

from repro.analysis.discharge import (
    MONITOR,
    SKIP,
    DischargeCertificate,
    VerificationCache,
    discharge_for_run,
    infer_workload,
    residual_policy,
)
from repro.corpus import all_programs, diverging_programs
from repro.eval.machine import Answer, run_program
from repro.lang.parser import parse_program
from repro.sct.monitor import SCMonitor
from repro.values.values import write_value

PROGRAMS = all_programs()
DIVERGING = diverging_programs()

# The big interpreter benchmark is slow; its discharge runs only on the
# compiled machine (every other program exercises both).
_SLOW = {"scheme"}

#: Programs whose workload must fully discharge (pinned: a regression
#: here silently reintroduces monitoring overhead on proven code).
EXPECTED_DISCHARGED = {
    "sct-1", "sct-2", "sct-3", "sct-4", "sct-5", "sct-6",
    "isabelle-perm", "acl2-fig-6", "lh-merge", "lh-tfact",
    "dderiv", "deriv", "nfa",
}


def _discharge(prog):
    parsed = parse_program(prog.source)
    result = discharge_for_run(parsed, text=prog.source,
                               result_kinds=prog.result_kinds)
    return parsed, result


class TestCertificates:
    def test_expected_subset_discharges(self):
        discharged = set()
        for prog in PROGRAMS:
            _, result = _discharge(prog)
            if result.complete and result.policy:
                discharged.add(prog.name)
        assert discharged == EXPECTED_DISCHARGED

    def test_certificate_shape(self):
        prog = next(p for p in PROGRAMS if p.name == "sct-3")
        _, result = _discharge(prog)
        [cert] = result.certificates
        assert cert.complete
        assert cert.entry_label in cert.discharged
        assert cert.decision(cert.entry_label) == SKIP
        assert cert.decision(-12345) == MONITOR
        assert "ack" in cert.discharged_names()
        assert cert.summary()["complete"] is True

    def test_partial_discharge(self):
        """An SCP failure in one loop leaves an unrelated proven loop
        discharged — the residual story, not all-or-nothing."""
        source = """
        (define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))
        (define (spin x) (spin x))
        (define (main n) (if (zero? n) (len '(1 2)) (spin n)))
        (main 1)
        """
        parsed = parse_program(source)
        result = discharge_for_run(parsed, text=source)
        assert not result.complete
        [cert] = result.certificates
        by_name = {cert.label_names.get(l, ""): l for l in cert.labels}
        assert cert.decision(by_name["len"]) == SKIP
        assert cert.decision(by_name["spin"]) == MONITOR
        assert cert.decision(by_name["main"]) == MONITOR
        assert result.policy.decision(by_name["len"]) == SKIP

    def test_taint_blocks_discharge(self):
        """A lost application (through a box) taints everything — even
        the λ that would verify in isolation."""
        source = """
        (define (good n) (if (zero? n) 0 (good (- n 1))))
        (define (main n) (begin (((unbox (box good)) n)) (good n)))
        (main 2)
        """
        parsed = parse_program(source)
        result = discharge_for_run(parsed, text=source)
        assert not result.policy.skip_labels
        [cert] = result.certificates
        assert cert.taint_reasons
        assert cert.discharged == frozenset()

    def test_opaque_fun_application_blocks_discharge(self):
        prog = next(p for p in PROGRAMS if p.name == "ho-sct-fold")
        _, result = _discharge(prog)
        [cert] = result.certificates
        assert any("opponent" in r for r in cert.taint_reasons)
        assert not result.policy

    def test_uninferable_workload(self):
        source = "(define (f x) x) (+ 1 2)"
        entries, reasons = infer_workload(parse_program(source))
        assert entries is None and reasons

    def test_policy_intersection(self):
        mk = lambda disch, labels, taint=(): DischargeCertificate(
            "e", (), 0, "sc", frozenset(labels), frozenset(disch),
            frozenset(), tuple(taint), {})
        # Discharged by one, unreachable in the other: skipped.
        p = residual_policy([mk({1, 2}, {0, 1, 2}), mk({5}, {5})])
        assert p.skip_labels == {1, 2, 5}
        # Monitored by the second: not skipped.
        p = residual_policy([mk({1}, {0, 1}), mk(set(), {1})])
        assert p.skip_labels == frozenset()
        # Any taint empties the policy outright.
        p = residual_policy([mk({1}, {0, 1}), mk(set(), {9}, ("havoc",))])
        assert p.skip_labels == frozenset()


class TestVerificationCache:
    def test_memory_hit_and_relabel(self):
        prog = next(p for p in PROGRAMS if p.name == "lh-tfact")
        cache = VerificationCache()
        parsed = parse_program(prog.source)
        r1 = discharge_for_run(parsed, text=prog.source, cache=cache)
        assert cache.misses == 1 and cache.hits == 0
        # A fresh parse carries fresh λ labels; the cached certificate
        # must relabel, not leak stale ones.
        reparsed = parse_program(prog.source)
        r2 = discharge_for_run(reparsed, text=prog.source, cache=cache)
        assert cache.hits == 1
        assert r2.complete
        assert r1.policy.skip_labels != r2.policy.skip_labels or \
            len(r2.policy.skip_labels) == len(r1.policy.skip_labels)
        mon = SCMonitor()
        a = run_program(reparsed, mode="full", monitor=mon,
                        discharge=r2.policy)
        assert a.kind == Answer.VALUE and mon.calls_seen == 0

    def test_disk_roundtrip(self, tmp_path):
        prog = next(p for p in PROGRAMS if p.name == "sct-1")
        store = str(tmp_path / "certs")
        c1 = VerificationCache(store)
        parsed = parse_program(prog.source)
        discharge_for_run(parsed, text=prog.source, cache=c1)
        assert c1.misses == 1
        files = list((tmp_path / "certs").iterdir())
        assert len(files) == 1
        data = json.loads(files[0].read_text())
        assert data["schema"] == "discharge-certificate/v1"
        assert all(":" in sid for sid in data["discharged"])
        # A second cache (a "new process") reads the store.
        c2 = VerificationCache(store)
        reparsed = parse_program(prog.source)
        r = discharge_for_run(reparsed, text=prog.source, cache=c2)
        assert c2.hits == 1 and c2.misses == 0
        assert r.complete
        mon = SCMonitor()
        a = run_program(reparsed, mode="full", monitor=mon,
                        discharge=r.policy)
        assert a.kind == Answer.VALUE and mon.calls_seen == 0

    def test_key_distinguishes_inputs(self):
        k = VerificationCache.key
        base = k("(f)", "f", ("nat",), None, "sc")
        assert base != k("(g)", "f", ("nat",), None, "sc")
        assert base != k("(f)", "f", ("int",), None, "sc")
        assert base != k("(f)", "f", ("nat",), {"f": "nat"}, "sc")
        assert base != k("(f)", "f", ("nat",), None, "mc")

    def test_key_depends_on_library_sources(self, monkeypatch):
        """An on-disk certificate names prelude/contracts λs by position,
        so it must die with the library text it was computed against."""
        from repro.analysis import discharge as mod

        base = VerificationCache.key("(f)", "f", ("nat",), None, "sc")
        monkeypatch.setattr(mod, "_LIBRARIES_DIGEST", "different")
        assert VerificationCache.key("(f)", "f", ("nat",), None, "sc") != base


class TestCacheQuarantine:
    """Corrupt on-disk entries are quarantined, not crashed on and not
    silently re-counted as misses."""

    def _populate(self, store):
        prog = next(p for p in PROGRAMS if p.name == "sct-1")
        cache = VerificationCache(store)
        parsed = parse_program(prog.source)
        discharge_for_run(parsed, text=prog.source, cache=cache)
        (entry,) = [f for f in os.listdir(store) if f.endswith(".json")]
        return prog, os.path.join(store, entry)

    def test_truncated_json_is_quarantined(self, tmp_path):
        store = str(tmp_path / "certs")
        prog, entry = self._populate(store)
        good = open(entry).read()
        with open(entry, "w") as f:
            f.write(good[: len(good) // 2])  # truncated mid-object
        cache = VerificationCache(store)
        parsed = parse_program(prog.source)
        r = discharge_for_run(parsed, text=prog.source, cache=cache)
        assert r.complete  # re-verified from scratch
        # Each lookup counts exactly once: this one was a *rejection*,
        # not a miss (hits + misses + rejected == lookups).
        assert cache.rejected == 1
        assert cache.misses == 0 and cache.hits == 0
        assert os.path.exists(entry + ".rejected")
        # put() self-healed the store: a third cache hits cleanly.
        c3 = VerificationCache(store)
        discharge_for_run(parse_program(prog.source), text=prog.source,
                          cache=c3)
        assert c3.hits == 1 and c3.rejected == 0

    def test_schema_mismatch_is_quarantined(self, tmp_path):
        store = str(tmp_path / "certs")
        prog, entry = self._populate(store)
        data = json.loads(open(entry).read())
        data["schema"] = "discharge-certificate/v999"
        with open(entry, "w") as f:
            f.write(json.dumps(data))
        cache = VerificationCache(store)
        discharge_for_run(parse_program(prog.source), text=prog.source,
                          cache=cache)
        assert cache.rejected == 1 and cache.hits == 0

    def test_reset_and_snapshot(self, tmp_path):
        store = str(tmp_path / "certs")
        prog, _ = self._populate(store)
        cache = VerificationCache(store)
        parsed = parse_program(prog.source)
        discharge_for_run(parsed, text=prog.source, cache=cache)
        discharge_for_run(parsed, text=prog.source, cache=cache)
        snap = cache.snapshot()
        assert snap["hits"] >= 1 and snap["entries"] >= 1
        assert snap["path"] == store and snap["rejected"] == 0
        cache.reset()
        snap = cache.snapshot()
        assert snap == {"hits": 0, "misses": 0, "rejected": 0,
                        "entries": 0, "path": store, "shard_depth": 0}

    def test_sharded_layout(self, tmp_path):
        prog = next(p for p in PROGRAMS if p.name == "sct-1")
        store = str(tmp_path / "certs")
        cache = VerificationCache(store, shard_depth=2)
        parsed = parse_program(prog.source)
        discharge_for_run(parsed, text=prog.source, cache=cache)
        subdirs = [d for d in os.listdir(store)
                   if os.path.isdir(os.path.join(store, d))]
        assert len(subdirs) == 1 and len(subdirs[0]) == 2
        # A differently-sharded reader misses; a same-sharded one hits.
        flat = VerificationCache(store)
        discharge_for_run(parse_program(prog.source), text=prog.source,
                          cache=flat)
        assert flat.hits == 0 and flat.misses == 1
        sharded = VerificationCache(store, shard_depth=2)
        discharge_for_run(parse_program(prog.source), text=prog.source,
                          cache=sharded)
        assert sharded.hits == 1


class TestMonitorSkipSet:
    def test_should_monitor_and_trivial_policy(self):
        from repro.values.values import Closure
        from repro.lang.ast import Lam
        from repro.sexp.datum import intern

        lam = Lam((intern("x"),), None)
        clo = Closure(lam, None)
        mon = SCMonitor(skip_labels={lam.label})
        assert not mon.should_monitor(clo)
        assert not mon.trivial_policy()
        assert mon.trivial_policy(ignore_skip_labels=True)
        other = SCMonitor()
        assert other.should_monitor(clo)
        assert other.trivial_policy()

    def test_policy_is_scoped_to_the_run(self):
        """run_program(discharge=…) must not leak the policy into a
        reused monitor: a later run without discharge monitors fully."""
        prog = next(p for p in PROGRAMS if p.name == "lh-tfact")
        parsed, result = _discharge(prog)
        mon = SCMonitor()
        a = run_program(parsed, mode="full", monitor=mon,
                        discharge=result.policy)
        assert a.kind == Answer.VALUE and mon.calls_seen == 0
        assert mon.skip_labels is None  # restored after the run
        b = run_program(parsed, mode="full", monitor=mon)
        assert b.kind == Answer.VALUE and mon.calls_seen > 0

    def test_mc_monitor_inherits_skip_set(self):
        from repro.mc.monitor import MCMonitor
        from repro.values.values import Closure
        from repro.lang.ast import Lam
        from repro.sexp.datum import intern

        lam = Lam((intern("x"),), None)
        mon = MCMonitor(skip_labels={lam.label})
        assert not mon.should_monitor(Closure(lam, None))


@pytest.mark.parametrize("prog", PROGRAMS, ids=[p.name for p in PROGRAMS])
class TestDifferentialCorpus:
    """Discharged execution is observably identical on every corpus
    program — fully discharged, partially discharged, or not at all."""

    def test_same_answer(self, prog):
        parsed, result = _discharge(prog)
        machines = ("compiled",) if prog.name in _SLOW \
            else ("compiled", "tree")
        for machine in machines:
            mon_full = SCMonitor(measures=prog.measures)
            full = run_program(parsed, mode="full", monitor=mon_full,
                               machine=machine, max_steps=30_000_000)
            mon_dis = SCMonitor(measures=prog.measures)
            dis = run_program(parsed, mode="full", monitor=mon_dis,
                              machine=machine, max_steps=30_000_000,
                              discharge=result.policy)
            assert dis.kind == full.kind == Answer.VALUE
            assert write_value(dis.value) == write_value(full.value)
            assert dis.output == full.output
            if result.complete and result.policy:
                assert mon_dis.calls_seen == 0, \
                    f"{prog.name}/{machine}: discharged run still monitored"


@pytest.mark.parametrize("prog", DIVERGING, ids=[d.name for d in DIVERGING])
class TestDifferentialDiverging:
    """On programs the verifier cannot discharge, the violation raised
    under the (attempted) discharge pipeline is byte-identical to full
    monitoring's — residual enforcement never weakens or reshapes the
    error."""

    def test_same_violation(self, prog):
        parsed = parse_program(prog.source)
        result = discharge_for_run(parsed, text=prog.source,
                                   result_kinds=None)
        assert not result.complete, \
            f"{prog.name}: a diverging program must never fully discharge"
        for machine in ("compiled", "tree"):
            full = run_program(parsed, mode="full",
                               monitor=SCMonitor(measures=prog.measures),
                               machine=machine, max_steps=3_000_000)
            dis = run_program(parsed, mode="full",
                              monitor=SCMonitor(measures=prog.measures),
                              machine=machine, max_steps=3_000_000,
                              discharge=result.policy)
            assert full.kind == Answer.SC_ERROR
            assert dis.kind == Answer.SC_ERROR
            assert str(dis.violation) == str(full.violation)
