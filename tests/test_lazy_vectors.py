"""The PR-6 language additions: ``delay``/``force`` promises and
immutable vectors — byte-identical across both machines and inert
under the monitor when used with descending loops."""

import pytest

from repro.eval.machine import Answer, run_source
from repro.values.values import write_value

MACHINES = ("tree", "compiled")


def run_both(source, **kw):
    answers = {}
    for machine in MACHINES:
        answers[machine] = run_source(source, machine=machine, **kw)
    a, b = answers["tree"], answers["compiled"]
    assert a.kind == b.kind, (a.kind, b.kind, a.error, b.error)
    if a.kind == Answer.VALUE:
        assert write_value(a.value) == write_value(b.value)
    if a.kind == Answer.SC_ERROR:
        assert str(a.violation) == str(b.violation)
    assert a.output == b.output
    return a


class TestPromises:
    def test_delay_is_lazy(self):
        a = run_both("""
(define b (box 0))
(define p (delay (begin (set-box! b (+ (unbox b) 1)) 5)))
(unbox b)
""", mode="off")
        assert a.value == 0

    def test_force_memoizes(self):
        a = run_both("""
(define b (box 0))
(define p (delay (begin (set-box! b (+ (unbox b) 1)) 5)))
(list (force p) (force p) (unbox b))
""", mode="off")
        assert write_value(a.value) == "(5 5 1)"

    def test_force_non_promise_is_identity(self):
        a = run_both("(list (force 7) (force '(1 2)))", mode="off")
        assert write_value(a.value) == "(7 (1 2))"

    def test_promise_predicate(self):
        a = run_both("(list (promise? (delay 1)) (promise? 1))", mode="off")
        assert write_value(a.value) == "(#t #f)"

    def test_promise_prints_opaquely(self):
        for stage in ("p", "(begin (force p) p)"):
            a = run_both(f"(define p (delay 3))\n{stage}", mode="off")
            assert write_value(a.value) == "#<promise>"

    def test_forced_recursion_monitor_clean(self):
        """A structurally descending loop through force stays silent
        under full monitoring on both machines and strategies."""
        src = """
(define (sum-forced l)
  (if (null? l) 0 (+ (force (car l)) (sum-forced (cdr l)))))
(sum-forced (list (delay 1) (delay 2) (delay 3)))
"""
        for strategy in ("cm", "imperative"):
            a = run_both(src, mode="full", strategy=strategy)
            assert a.kind == Answer.VALUE and a.value == 6


class TestVectors:
    def test_construction_and_access(self):
        a = run_both("""
(define v (vector 1 2 3))
(list (vector-length v) (vector-ref v 0) (vector-ref v 2))
""", mode="off")
        assert write_value(a.value) == "(3 1 3)"

    def test_make_vector_and_fill(self):
        a = run_both("(vector->list (make-vector 3 7))", mode="off")
        assert write_value(a.value) == "(7 7 7)"

    def test_functional_set(self):
        a = run_both("""
(define v (vector 1 2 3))
(define w (vector-set v 1 9))
(list (vector-ref v 1) (vector-ref w 1))
""", mode="off")
        assert write_value(a.value) == "(2 9)"

    def test_round_trip_and_equal(self):
        a = run_both("""
(list (equal? (vector 1 (list 2 3)) (vector 1 (list 2 3)))
      (equal? (vector 1 2) (vector 1 3))
      (equal? (list->vector '(4 5)) (vector 4 5)))
""", mode="off")
        assert write_value(a.value) == "(#t #f #t)"

    def test_rendering(self):
        a = run_both("(vector 1 (vector 2 #t) 'x)", mode="off")
        assert write_value(a.value) == "#(1 #(2 #t) x)"

    def test_descending_vector_loop_monitor_clean(self):
        """Iterating a vector with a descending counter is the
        monitor-compatible idiom (an ascending index has no strict
        descent and is — correctly — flagged by λSCT)."""
        src = """
(define (vsum v i acc)
  (if (zero? i)
      (+ acc (vector-ref v 0))
      (vsum v (- i 1) (+ acc (vector-ref v i)))))
(define v (vector 10 20 30 40))
(vsum v 3 0)
"""
        for strategy in ("cm", "imperative"):
            a = run_both(src, mode="full", strategy=strategy)
            assert a.kind == Answer.VALUE and a.value == 100

    def test_ascending_index_is_flagged(self):
        src = """
(define (count v i)
  (if (< i (vector-length v))
      (+ 1 (count v (+ i 1)))
      0))
(count (vector 1 2 3) 0)
"""
        a = run_both(src, mode="full")
        assert a.kind == Answer.SC_ERROR
