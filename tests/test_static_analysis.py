"""0-CFA and classic static SCT tests, including the §2.2 CPS-len story."""

from repro.analysis import (
    analyze_callgraph,
    loop_entry_labels,
    scp_check,
    static_sct_check,
)
from repro.analysis.callgraph import TOP
from repro.lang.parser import parse_program
from repro.sct.graph import SCGraph, arc

CPS_LEN = """
(define (len l) (go l (lambda (x) x)))
(define (go l k)
  (cond [(empty? l) (k 0)]
        [(cons? l) (go (rest l) (lambda (n) (k (+ 1 n))))]))
(len '(2 1 5 9))
"""


def _label_of(graph, name):
    for label, lam in graph.lambdas.items():
        if lam.name == name:
            return label
    raise AssertionError(f"no lambda named {name}")


class TestCallGraph:
    def test_direct_recursion(self):
        g = analyze_callgraph(parse_program(
            "(define (f n) (if (zero? n) 0 (f (- n 1)))) (f 3)"))
        f = _label_of(g, "f")
        assert (f, f) in g.edges
        assert (TOP, f) in g.edges

    def test_mutual_recursion(self):
        g = analyze_callgraph(parse_program("""
        (define (e? n) (if (zero? n) #t (o? (- n 1))))
        (define (o? n) (if (zero? n) #f (e? (- n 1))))
        """))
        e, o = _label_of(g, "e?"), _label_of(g, "o?")
        assert (e, o) in g.edges and (o, e) in g.edges

    def test_higher_order_flow(self):
        g = analyze_callgraph(parse_program("""
        (define (apply1 f x) (f x))
        (define (inc n) (+ n 1))
        (apply1 inc 3)
        """))
        ap, inc = _label_of(g, "apply1"), _label_of(g, "inc")
        assert (ap, inc) in g.edges

    def test_closures_through_data_structures(self):
        g = analyze_callgraph(parse_program("""
        (define (wrap f) (cons f '()))
        (define (use p x) ((car p) x))
        (define (id y) y)
        (use (wrap id) 1)
        """))
        use, ident = _label_of(g, "use"), _label_of(g, "id")
        assert (use, ident) in g.edges

    def test_cps_len_continuation_self_loop(self):
        """0-CFA conflates the continuations, creating the spurious k→k
        edge of §2.2."""
        g = analyze_callgraph(parse_program(CPS_LEN))
        conts = [label for label, lam in g.lambdas.items()
                 if lam.name is None and len(lam.params) == 1
                 and label in {b for (_a, b) in g.edges}]
        self_loops = [(a, b) for (a, b) in g.edges if a == b and a in conts]
        assert self_loops, "expected the conflated continuation self-loop"

    def test_loop_entries(self):
        prog = parse_program("""
        (define (once x) (+ x 1))
        (define (loop n) (if (zero? n) 0 (loop (- n 1))))
        (once (loop 3))
        """)
        entries = loop_entry_labels(prog)
        g = analyze_callgraph(prog)
        assert _label_of(g, "loop") in entries
        assert _label_of(g, "once") not in entries


class TestClassicStaticSCT:
    def test_rev_passes(self):
        r = static_sct_check(parse_program("""
        (define (rev l) (r1 l '()))
        (define (r1 l a) (if (null? l) a (r1 (cdr l) (cons (car l) a))))
        """))
        assert r.ok is True

    def test_ack_passes(self):
        r = static_sct_check(parse_program("""
        (define (ack m n)
          (cond [(= 0 m) (+ 1 n)]
                [(= 0 n) (ack (- m 1) 1)]
                [else (ack (- m 1) (ack m (- n 1)))]))
        """))
        assert r.ok is True

    def test_no_descent_fails(self):
        r = static_sct_check(parse_program("(define (f x) (f x))"))
        assert r.ok is False
        assert r.witness_graph.is_idempotent()

    def test_cps_len_rejected_statically(self):
        """The §2.2 headline: classic static SCT rejects CPS len (spurious
        continuation loop), while the dynamic monitor accepts it (see
        test_monitored_semantics)."""
        r = static_sct_check(parse_program(CPS_LEN))
        assert r.ok is False

    def test_witness_is_the_continuation(self):
        r = static_sct_check(parse_program(CPS_LEN))
        # The witness is an anonymous λ (a continuation), not go/len.
        assert r.witness_name.startswith("λ")

    def test_mutual_descent(self):
        r = static_sct_check(parse_program("""
        (define (e? n) (if (zero? n) #t (o? (- n 1))))
        (define (o? n) (if (zero? n) #f (e? (- n 1))))
        """))
        assert r.ok is True

    def test_growing_accumulator_ok(self):
        r = static_sct_check(parse_program("""
        (define (f i x) (if (null? i) x (g (cdr i) x i)))
        (define (g a b c) (f a (cons b c)))
        """))
        assert r.ok is True


class TestLJBClosure:
    def test_composition_found_across_edges(self):
        # f→g: {0↓=0}, g→f: {0↓=0}: the f→f composition is weak-only.
        edges = {
            (1, 2): {SCGraph([arc(0, "=", 0)])},
            (2, 1): {SCGraph([arc(0, "=", 0)])},
        }
        result = scp_check(edges)
        assert result.ok is False

    def test_cross_cycle_descent(self):
        edges = {
            (1, 2): {SCGraph([arc(0, "<", 0)])},
            (2, 1): {SCGraph([arc(0, "=", 0)])},
        }
        assert scp_check(edges).ok is True

    def test_late_left_compositions(self):
        # Three-node cycle where the violating composition needs both
        # directions of the worklist.
        w = SCGraph([arc(0, "=", 0)])
        edges = {(1, 2): {w}, (2, 3): {w}, (3, 1): {w}}
        assert scp_check(edges).ok is False

    def test_cap_returns_undetermined(self):
        import itertools

        # A dense multigraph that overflows a tiny cap.
        labels = range(4)
        arcs = [SCGraph([arc(i, "<", j)]) for i in range(2) for j in range(2)]
        edges = {}
        for a, b in itertools.product(labels, labels):
            edges[(a, b)] = set(arcs)
        assert scp_check(edges, max_graphs=10).ok is None

    def test_empty_edges_hold(self):
        assert scp_check({}).ok is True
