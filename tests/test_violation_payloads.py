"""Violation-payload byte identity: the rendered ``SizeChangeViolation``
must be identical across machine × engine for every diverging program.

The bitmask engine stores graphs as packed machine ints and unpacks to
the reference :class:`~repro.sct.graph.SCGraph` representation only
when raising, so the *observable* payload — blame label, call-pattern
rendering, the offending composed graph — must not depend on which
engine composed it, nor on which machine drove the evaluation."""

import pytest

from repro.corpus import conservative_programs, diverging_programs
from repro.eval.machine import Answer, run_source
from repro.fuzz.gen import generate_program
from repro.sct.monitor import SCMonitor

DIVERGING = diverging_programs()
CONSERVATIVE = conservative_programs()
MACHINES = ("tree", "compiled")
ENGINES = ("bitmask", "reference")


def _payloads(source, measures=None, fuel=300_000):
    out = {}
    for machine in MACHINES:
        for engine in ENGINES:
            monitor = SCMonitor(engine=engine, measures=measures)
            a = run_source(source, mode="full", monitor=monitor,
                           machine=machine, max_steps=fuel)
            out[(machine, engine)] = (a.kind, str(a.violation)
                                      if a.violation is not None else None)
    return out


@pytest.mark.parametrize("prog", DIVERGING, ids=[d.name for d in DIVERGING])
def test_corpus_diverging_payloads_identical(prog):
    payloads = _payloads(prog.source, measures=prog.measures)
    kinds = {k for k, _ in payloads.values()}
    assert kinds == {Answer.SC_ERROR}, payloads
    rendered = {v for _, v in payloads.values()}
    assert len(rendered) == 1, payloads


@pytest.mark.parametrize("prog", CONSERVATIVE,
                         ids=[p.name for p in CONSERVATIVE])
def test_conservative_flag_payloads_identical(prog):
    """The §1 'unavoidable wrinkle' programs terminate but are flagged —
    the *flag itself* must also be byte-identical everywhere."""
    payloads = _payloads(prog.source, fuel=30_000_000)
    kinds = {k for k, _ in payloads.values()}
    assert kinds == {Answer.SC_ERROR}, payloads
    rendered = {v for _, v in payloads.values()}
    assert len(rendered) == 1, payloads


@pytest.mark.parametrize("seed", [1, 3, 5, 7, 9])
def test_generated_diverging_payloads_identical(seed):
    program = generate_program(seed, "diverging")
    payloads = _payloads(program.source, fuel=program.fuel)
    # A planted loop is either flagged (usual) or, under a whitelist-free
    # monitor, always flagged before fuel runs out — either way every
    # cell must agree byte-for-byte.
    assert len(set(payloads.values())) == 1, payloads


def test_payload_is_stable_across_strategies():
    """The cm and imperative table strategies observe the same call
    pattern, so the payload matches there too."""
    prog = DIVERGING[0]
    rendered = set()
    for strategy in ("cm", "imperative"):
        monitor = SCMonitor(measures=prog.measures)
        a = run_source(prog.source, mode="full", strategy=strategy,
                       monitor=monitor, max_steps=300_000)
        assert a.kind == Answer.SC_ERROR
        rendered.add(str(a.violation))
    assert len(rendered) == 1
