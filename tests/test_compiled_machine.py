"""Differential suite: the compiled machine vs the tree machine.

The compiled machine (lexical-addressing pass + slot frames + monitor
fast path) must be *observably identical* to the tree machine: same
answer kind, same printed value, same output, same violation witness —
across every corpus program (Table 1, extras, conservative rejections,
diverging) under all three monitoring set-ups (none / cm / imperative),
plus resolver unit tests for the lexical addressing itself.
"""

import pytest

from repro.corpus import all_programs, diverging_programs
from repro.corpus.registry import CONSERVATIVE, EXTRAS
from repro.eval.machine import Answer, make_env, run_source
from repro.lang.parser import parse_program
from repro.lang.resolve import resolve
from repro.sct.monitor import SCMonitor
from repro.values.values import write_value

PROGRAMS = all_programs()
EXTRA_PROGRAMS = list(EXTRAS.values()) + list(CONSERVATIVE.values())
DIVERGING = diverging_programs()

# (suite name, mode, strategy) — the "three strategies" of the issue.
SETUPS = [
    ("none", "off", "cm"),
    ("cm", "full", "cm"),
    ("imperative", "full", "imperative"),
]

MAX_STEPS = 30_000_000


def run_both(source, *, mode, strategy, measures=None, max_steps=MAX_STEPS):
    answers = {}
    for machine in ("tree", "compiled"):
        monitor = SCMonitor(measures=measures)
        answers[machine] = run_source(
            source, mode=mode, strategy=strategy, monitor=monitor,
            max_steps=max_steps, machine=machine,
        )
    return answers["tree"], answers["compiled"]


def assert_same_answer(tree, compiled):
    assert compiled.kind == tree.kind, (
        f"kind mismatch: tree={tree!r} compiled={compiled!r}")
    assert compiled.output == tree.output
    if tree.kind == Answer.VALUE:
        assert write_value(compiled.value) == write_value(tree.value)
    if tree.kind == Answer.SC_ERROR:
        tv, cv = tree.violation, compiled.violation
        assert cv.function == tv.function
        assert cv.blame == tv.blame
        assert [write_value(a) for a in cv.prev_args] == \
            [write_value(a) for a in tv.prev_args]
        assert [write_value(a) for a in cv.new_args] == \
            [write_value(a) for a in tv.new_args]
        assert cv.composition == tv.composition
    if tree.kind == Answer.RT_ERROR:
        assert str(compiled.error) == str(tree.error)


@pytest.mark.parametrize("suite,mode,strategy", SETUPS,
                         ids=[s[0] for s in SETUPS])
@pytest.mark.parametrize("prog", PROGRAMS, ids=[p.name for p in PROGRAMS])
class TestCorpusDifferential:
    def test_identical_answers(self, prog, suite, mode, strategy):
        if prog.name == "scheme" and strategy == "imperative":
            pytest.skip("cm-only for the interpreter benchmark (slow)")
        tree, compiled = run_both(prog.source, mode=mode, strategy=strategy,
                                  measures=prog.measures)
        assert tree.kind == Answer.VALUE
        assert_same_answer(tree, compiled)


@pytest.mark.parametrize("prog", EXTRA_PROGRAMS,
                         ids=[p.name for p in EXTRA_PROGRAMS])
def test_extras_differential_cm(prog):
    tree, compiled = run_both(prog.source, mode="full", strategy="cm",
                              measures=prog.measures)
    assert_same_answer(tree, compiled)


@pytest.mark.parametrize("prog", DIVERGING, ids=[d.name for d in DIVERGING])
class TestDivergingDifferential:
    def test_identical_violation_cm(self, prog):
        tree, compiled = run_both(prog.source, mode="full", strategy="cm",
                                  measures=prog.measures,
                                  max_steps=3_000_000)
        assert tree.kind == Answer.SC_ERROR
        assert_same_answer(tree, compiled)

    def test_identical_violation_imperative(self, prog):
        tree, compiled = run_both(prog.source, mode="full",
                                  strategy="imperative",
                                  measures=prog.measures,
                                  max_steps=3_000_000)
        assert tree.kind == Answer.SC_ERROR
        assert_same_answer(tree, compiled)


class TestStepParity:
    """The compiled machine charges fuel per dispatch plus per applied
    argument, so its step count is bounded by the tree machine's."""

    @pytest.mark.parametrize("prog", PROGRAMS[:8],
                             ids=[p.name for p in PROGRAMS[:8]])
    def test_compiled_steps_bounded_by_tree(self, prog):
        tree, compiled = run_both(prog.source, mode="full", strategy="cm",
                                  measures=prog.measures)
        assert tree.kind == Answer.VALUE
        assert compiled.steps <= tree.steps + 4


class TestResolverAddressing:
    """Unit tests for the lexical-addressing pass itself."""

    def ev(self, src, **kw):
        a = run_source(src, machine="compiled", **kw)
        assert a.kind == Answer.VALUE, repr(a)
        return a.value

    def test_shadowing_inner_wins(self):
        assert self.ev("(define x 1) (let ([x 2]) (let ([x 3]) x))") == 3

    def test_duplicate_names_in_one_rib(self):
        # Racket-style lambda lists reject duplicates in the parser, but
        # nested lets exercise rib search order.
        assert self.ev("(let ([a 1] [b 2]) (let ([a b] [b a]) (- a b)))") == 1

    def test_set_through_captured_frame(self):
        src = """
        (define (make-counter)
          (let ([n 0])
            (lambda () (set! n (+ n 1)) n)))
        (define c (make-counter))
        (c) (c) (c)
        """
        assert self.ev(src) == 3

    def test_letrec_use_before_init_is_error(self):
        a = run_source("(letrec ([x y] [y 1]) x)", machine="compiled")
        assert a.kind == Answer.RT_ERROR
        assert "used before initialization" in str(a.error)

    def test_deep_nesting_addresses(self):
        src = """
        (define (f a)
          (lambda (b)
            (lambda (c)
              (let ([d (+ a b)])
                (+ (+ a b) (+ c d))))))
        (((f 1) 2) 3)
        """
        assert self.ev(src) == 9

    def test_free_slot_metadata(self):
        from repro.lang.resolve import CLam, T_LAM

        program = parse_program("(lambda (x) (lambda (y) (+ x y)))")
        code = resolve(program.forms[0].expr)
        assert isinstance(code, CLam)
        assert code.free == ()  # outer λ closes over nothing
        inner = code.body
        assert inner.tag == T_LAM
        # y is its parameter; x is free at (depth 0, slot 1) of the
        # captured frame (the outer λ's frame).
        assert inner.free == ((0, 1),)

    def test_lam_metadata(self):
        program = parse_program("(lambda (a b c) a)")
        code = resolve(program.forms[0].expr)
        assert code.nparams == 3
        assert code.frame_size == 4

    def test_tail_call_depth_is_constant(self):
        src = ("(define (loop n) (if (= n 0) 'done (loop (- n 1))))"
               " (loop 300000)")
        a = run_source(src, machine="compiled")
        assert a.kind == Answer.VALUE

    def test_machine_argument_validated(self):
        with pytest.raises(ValueError, match="unknown machine"):
            run_source("1", machine="bytecode")


class TestEnvFlavorGuard:
    def test_env_flavor_mismatch_raises(self):
        env = make_env(machine="tree")
        with pytest.raises(ValueError, match="tree"):
            run_source("1", env=env, machine="compiled")

    def test_env_flavor_match_ok(self):
        env = make_env(machine="compiled")
        a = run_source("(+ 1 2)", env=env, machine="compiled")
        assert a.value == 3


class TestSetUnboundGlobalRegression:
    """set! on an unbound global is UnboundVariable (never a bare
    KeyError), on both machines and under both strategies."""

    @pytest.mark.parametrize("machine", ["tree", "compiled"])
    @pytest.mark.parametrize("strategy", ["cm", "imperative"])
    def test_toplevel_set_unbound(self, machine, strategy):
        a = run_source("(set! nope 1)", machine=machine, strategy=strategy)
        assert a.kind == Answer.RT_ERROR
        assert "unbound variable: nope" in str(a.error)

    @pytest.mark.parametrize("machine", ["tree", "compiled"])
    def test_set_unbound_inside_lambda(self, machine):
        a = run_source("((lambda (x) (set! nope x)) 1)", machine=machine)
        assert a.kind == Answer.RT_ERROR
        assert "unbound variable: nope" in str(a.error)

    @pytest.mark.parametrize("machine", ["tree", "compiled"])
    def test_set_unbound_complex_rhs(self, machine):
        a = run_source("(set! nope (+ 1 2))", machine=machine)
        assert a.kind == Answer.RT_ERROR
        assert "unbound variable: nope" in str(a.error)

    def test_global_env_set_raises_unbound(self):
        from repro.sexp.datum import intern
        from repro.values.env import GlobalEnv, UnboundVariable

        env = GlobalEnv()
        with pytest.raises(UnboundVariable):
            env.set(intern("ghost"), 1)


class TestAdvanceFastAlgebra:
    """`advance_fast` (inlined arity-1/2 compose+desc, memoized sizes,
    int-keyed caches) must track the generic `advance` entry-for-entry:
    same check_args, same composition sets, same violations at the same
    calls — across arities, ties, pairs, floats, and shared objects."""

    def _sequences(self):
        from repro.values.values import Pair

        shared = Pair(1, Pair(2, 3))
        yield "m1-desc", [(8,), (5,), (3,), (2,), (1,)]
        yield "m1-tie", [(4,), (4,), (3,), (3,)]
        yield "m1-grow", [(2,), (5,), (9,)]
        yield "m2-swap", [(5, 3), (3, 5), (5, 3), (2, 5)]
        yield "m2-shared", [(shared, 1), (shared, 0), (shared, 0)]
        yield "m2-float", [(1.5, 4), (1.5, 3), (1.5, 2), (1.5, 2)]
        yield "m3-perm", [(9, 7, 5), (7, 5, 9), (5, 9, 7), (4, 8, 6),
                          (8, 6, 4)]
        yield "m3-mixed", [(Pair(1, 2), 10, "abc"), (Pair(1, 2), 9, "ab"),
                           (2, 9, "ab"), (1, 8, "a")]

    def _drive(self, seq, advance_name):
        from repro.lang.ast import Lam, Lit
        from repro.sexp.datum import intern
        from repro.values.env import GlobalEnv
        from repro.values.values import Closure

        monitor = SCMonitor(enforce=False)
        params = tuple(intern(f"p{i}") for i in range(len(seq[0])))
        clo = Closure(Lam(params, Lit(1), name="probe"), GlobalEnv())
        entry = monitor.initial_entry(clo, seq[0])
        step = getattr(monitor, advance_name)
        entries = [entry]
        for args in seq[1:]:
            entry = step(entry, clo, args, None)
            entries.append(entry)
        return monitor, entries

    def test_fast_tracks_generic(self):
        for name, seq in self._sequences():
            mon_f, ent_f = self._drive(seq, "advance_fast")
            mon_g, ent_g = self._drive(seq, "advance")
            for i, (ef, eg) in enumerate(zip(ent_f, ent_g)):
                ctx = f"{name} call {i}"
                assert ef.check_args == eg.check_args, ctx
                assert set(ef.comps) == set(eg.comps), ctx
                assert ef.count == eg.count, ctx
                assert ef.next_check == eg.next_check, ctx
            assert len(mon_f.violations) == len(mon_g.violations), name
            for vf, vg in zip(mon_f.violations, mon_g.violations):
                assert vf.composition == vg.composition, name
                assert vf.call_count == vg.call_count, name

    def test_fast_tracks_generic_random(self):
        import random

        rng = random.Random(20260729)
        for trial in range(40):
            m = rng.choice([1, 1, 2, 2, 3, 4])
            seq = [tuple(rng.randrange(6) for _ in range(m))
                   for _ in range(rng.randrange(2, 9))]
            mon_f, ent_f = self._drive(seq, "advance_fast")
            mon_g, ent_g = self._drive(seq, "advance")
            assert set(ent_f[-1].comps) == set(ent_g[-1].comps), (trial, seq)
            assert [v.composition for v in mon_f.violations] == \
                [v.composition for v in mon_g.violations], (trial, seq)


class TestMonitorFastPathEquivalence:
    """Policy knobs that disqualify the inline fast path must still agree
    between machines (they take the generic monitor path)."""

    SRC = """
    (define (dec n) (if (= n 0) 'done (dec (- n 1))))
    (dec 30)
    """

    def test_label_keying(self):
        answers = {}
        for machine in ("tree", "compiled"):
            mon = SCMonitor(keying="label")
            answers[machine] = run_source(self.SRC, mode="full",
                                          monitor=mon, machine=machine)
        assert answers["tree"].kind == answers["compiled"].kind == \
            Answer.VALUE

    def test_label_keying_partitions_match(self):
        """Label keying must alias closures identically on both machines:
        the captured-rib hash covers the whole immediate rib, including
        bindings the closure never reads (here ``junk``, which keeps the
        per-call closures distinct and the run violation-free)."""
        src = """
        (define (mk junk)
          (lambda (x)
            (if (< x 2) 'done
                ((mk x) (if (even? x) (- x 13) (+ x 11))))))
        ((mk 0) 20)
        """
        answers = {}
        for machine in ("tree", "compiled"):
            mon = SCMonitor(keying="label")
            answers[machine] = run_source(src, mode="full", monitor=mon,
                                          machine=machine, max_steps=200_000)
        assert answers["tree"].kind == answers["compiled"].kind, answers

    def test_label_keying_empty_let_rib(self):
        """λs created under an empty ``let`` rib hash an empty rib on both
        machines (the compiled machine keeps a frame even for zero
        binders, mirroring the tree machine's empty Env)."""
        src = """
        (define (spin n f)
          (if (= n 0) 'done
              (spin (- n 1) (let () (lambda (y) y)))))
        (spin 10 (let () (lambda (y) y)))
        """
        answers = {}
        for machine in ("tree", "compiled"):
            mon = SCMonitor(keying="label")
            answers[machine] = run_source(src, mode="full", monitor=mon,
                                          machine=machine, max_steps=200_000)
        assert answers["tree"].kind == answers["compiled"].kind, answers

    def test_backoff(self):
        checks = {}
        for machine in ("tree", "compiled"):
            mon = SCMonitor(backoff=True)
            a = run_source(self.SRC, mode="full", monitor=mon,
                           machine=machine)
            assert a.kind == Answer.VALUE
            checks[machine] = (mon.calls_seen, mon.checks_done)
        assert checks["tree"] == checks["compiled"]

    def test_whitelist_skips_monitoring(self):
        for machine in ("tree", "compiled"):
            mon = SCMonitor(whitelist={"dec"})
            a = run_source(self.SRC, mode="full", monitor=mon,
                           machine=machine)
            assert a.kind == Answer.VALUE
            assert mon.calls_seen == 0

    def test_calls_seen_parity(self):
        seen = {}
        for machine in ("tree", "compiled"):
            mon = SCMonitor()
            a = run_source(self.SRC, mode="full", monitor=mon,
                           machine=machine)
            assert a.kind == Answer.VALUE
            seen[machine] = (mon.calls_seen, mon.checks_done)
        assert seen["tree"] == seen["compiled"]

    def test_events_stream_parity(self):
        streams = {}
        for machine in ("tree", "compiled"):
            events = []
            mon = SCMonitor(events=events)
            a = run_source(self.SRC, mode="full", strategy="imperative",
                           monitor=mon, machine=machine)
            assert a.kind == Answer.VALUE
            streams[machine] = [
                (e[0], e[1], e[2]) if e[0] == "call" else e
                for e in events
            ]
        assert streams["tree"] == streams["compiled"]
