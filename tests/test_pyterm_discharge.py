"""``@terminating(discharge=...)`` and the keyword/default normalization
fix.

The discharge tests define their subjects at module level so
``inspect.getsource`` (which the Python → embedded-language translation
needs) can see them.
"""

import pytest

from repro.pyterm import SizeChangeError, terminating
from repro.pyterm.translate import Untranslatable, translate_function


# -- module-level subjects -------------------------------------------------------


def plain_fact(n):
    if n == 0:
        return 1
    return n * plain_fact(n - 1)


def plain_ack(m, n):
    if m == 0:
        return n + 1
    if n == 0:
        return plain_ack(m - 1, 1)
    return plain_ack(m - 1, plain_ack(m, n - 1))


def plain_gcd(a, b):
    if b == 0:
        return a
    return plain_gcd(b, a % b)


def plain_loop(x):
    return plain_loop(x)


@terminating(discharge="auto", kinds=("nat",))
def monitored_loop(x):
    return monitored_loop(x)


class TestTranslate:
    def test_fact_translates(self):
        source, entry, params = translate_function(plain_fact)
        assert entry == "plain_fact" and params == ("n",)
        assert "(define (plain_fact n)" in source
        assert "(- n 1)" in source

    def test_int_truthiness(self):
        def f(n):
            if n:
                return f(n - 1)
            return 0

        source, _, _ = translate_function(f)
        assert "(not (= n 0))" in source

    def test_untranslatable_shapes(self):
        def has_loop(n):
            while n:
                n -= 1
            return n

        def has_free(n):
            return other(n)  # noqa: F821

        def has_default(n, d=1):
            return n

        for bad in (has_loop, has_free, has_default, len):
            with pytest.raises(Untranslatable):
                translate_function(bad)


class TestDischarge:
    def test_auto_discharges_fact(self):
        fact = terminating(plain_fact, discharge="auto", kinds=("nat",),
                           result_kind="nat")
        assert fact is plain_fact  # instrumentation dropped entirely
        assert fact.__sct_discharged__ is True
        assert fact.__sct_terminating__ is True
        assert fact(10) == 3628800

    def test_auto_discharges_ack(self):
        ack = terminating(plain_ack, discharge="auto", kinds=("nat", "nat"),
                          result_kind="nat")
        assert ack.__sct_discharged__ is True
        assert ack(2, 3) == 9

    def test_auto_keeps_monitor_on_gcd(self):
        gcd = terminating(plain_gcd, discharge="auto", kinds=("nat", "nat"))
        assert gcd is not plain_gcd
        assert gcd.__sct_discharged__ is False
        assert "inconclusive" in gcd.__sct_discharge_reason__
        assert gcd(48, 18) == 6  # still monitored, still correct

    def test_auto_keeps_monitor_when_untranslatable(self):
        @terminating(discharge="auto")
        def total(xs):
            if not xs:
                return 0
            return xs[0] + total(xs[1:])

        # Locally defined: getsource sees the decorated statement, which
        # is outside the single-plain-function subset — monitored.
        assert total.__sct_discharged__ is False
        assert "not translatable" in total.__sct_discharge_reason__
        assert total([1, 2, 3]) == 6

    def test_monitored_fallback_still_enforces(self):
        # monitored_loop translates fine but cannot be proven (no
        # descent), so 'auto' keeps the instrumentation — which fires.
        assert monitored_loop.__sct_discharged__ is False
        with pytest.raises(SizeChangeError):
            monitored_loop(1)

    def test_require_raises_when_unprovable(self):
        with pytest.raises(ValueError, match="cannot statically verify"):
            terminating(plain_loop, discharge="require", kinds=("nat",))

    def test_decoration_is_cached(self):
        # Inject a private cache: no dependence on the process-wide
        # default_cache() (whose counters any other test may touch).
        from repro.analysis.discharge import VerificationCache

        cache = VerificationCache()
        terminating(plain_fact, discharge="auto", kinds=("nat",),
                    result_kind="nat", cache=cache)
        assert (cache.hits, cache.misses) == (0, 1)
        terminating(plain_fact, discharge="auto", kinds=("nat",),
                    result_kind="nat", cache=cache)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_bad_discharge_value(self):
        with pytest.raises(ValueError, match="discharge"):
            terminating(plain_fact, discharge="maybe")


class TestKeywordDefaults:
    def test_defaulted_tail_parameter_alignment(self):
        """Regression: the entry call leaves the defaulted parameter
        implicit, the recursion supplies it positionally.  Without
        ``apply_defaults`` on every call the first tuple is shorter, the
        descent on ``xs`` lands at a position the previous tuple lacks,
        and a spurious violation fires."""

        @terminating
        def walk(a, xs=(1, 2, 3)):
            if not xs:
                return a
            return walk(a, xs[1:])

        assert walk("x") == "x"

    def test_defaulted_middle_parameter_alignment(self):
        @terminating
        def step(n, flag=True, acc=0):
            if n == 0:
                return acc
            return step(n - 1, acc=acc + n)

        assert step(5) == 15

    def test_mixed_call_styles_align(self):
        @terminating
        def mix(a, b=10, c=0):
            if a == 0:
                return b + c
            if a % 2 == 0:
                return mix(a - 1, c=c)
            return mix(a - 1, 10, c)

        assert mix(6) == 10

    def test_real_violations_still_fire_with_defaults(self):
        @terminating
        def bad(n, pad=0):
            return bad(n, pad)

        with pytest.raises(SizeChangeError):
            bad(3)

    def test_varargs_normalize_consistently(self):
        @terminating
        def var(n, *rest):
            if n == 0:
                return len(rest)
            return var(n - 1)

        assert var(3, "a", "b") == 0
