"""SC-vs-MC verifier agreement, corpus-wide.

Monotonicity-constraint graphs entail their size-change projections, so
the two engines must relate one way only:

* **Containment** — wherever the SC engine's collected graphs pass the
  SCP (and nothing tainted the analysis), the MC engine must verify too;
  an MC ``VERIFIED`` on an SC-rejected program is legitimate *only* in
  the more-permissive direction (``lh-range``: the bounded-ascent
  context).  The unsound converse — MC verifying a program whose own MC
  evidence fails, or MC *losing* an SC-verified program — is what this
  suite rules out, label by label via the discharge certificates:
  ``sc.discharged ⊆ mc.discharged``.
* **Taint parity** — incompleteness is recorded in shared engine code
  (havoc, lost applications, path/summary budgets), so both engines must
  taint identically: same ``incomplete`` reasons, same
  ``discharge_unsafe`` reasons, byte for byte.
"""

import pytest

from repro.analysis.discharge import certificate_from_engine
from repro.corpus import all_programs
from repro.lang.parser import parse_program
from repro.mc.static import MCEngine
from repro.sexp.datum import intern
from repro.symbolic.engine import Budget, Engine

PROGRAMS = [p for p in all_programs() if p.entry is not None]


# One parse per corpus program, shared by both engines: λ labels are
# assigned at parse time, so certificate comparisons need label identity.
_PARSED = {}


def _parsed(prog):
    if prog.name not in _PARSED:
        _PARSED[prog.name] = parse_program(prog.source)
    return _PARSED[prog.name]


def _run_engine(cls, prog, budget=None):
    """The engine after analyzing ``prog``'s registry entry, or ``None``
    when the entry is not a statically known closure (e.g. ``ho-sc-ack``
    builds its entry through the Y combinator — ``verify_program``
    returns UNKNOWN before running either engine, identically)."""
    from repro.values.values import Closure

    engine = cls(_parsed(prog), budget=budget,
                 result_kinds=prog.result_kinds)
    entry, kinds = prog.entry
    clo = engine.globals.bindings.get(intern(entry))
    if not isinstance(clo, Closure):
        return None
    engine.run(clo, list(kinds))
    return engine


@pytest.mark.parametrize("prog", PROGRAMS, ids=[p.name for p in PROGRAMS])
class TestEngineAgreement:
    def test_mc_discharges_everything_sc_does(self, prog):
        sc = _run_engine(Engine, prog)
        mc = _run_engine(MCEngine, prog)
        assert (sc is None) == (mc is None), \
            f"{prog.name}: one engine resolved the entry, the other did not"
        if sc is None:
            return
        sc_cert = certificate_from_engine(sc)
        mc_cert = certificate_from_engine(mc)
        missing = sc_cert.discharged - mc_cert.discharged
        assert not missing, (
            f"{prog.name}: SC discharged "
            f"{sorted(sc_cert.label_names.get(l, l) for l in missing)} "
            "but MC did not — MC evidence must entail its SC projection")

    def test_taint_parity(self, prog):
        sc = _run_engine(Engine, prog)
        mc = _run_engine(MCEngine, prog)
        if sc is None or mc is None:
            assert (sc is None) == (mc is None)
            return
        assert sc.incomplete == mc.incomplete
        assert sc.discharge_unsafe == mc.discharge_unsafe
        assert sc.tainted_labels == mc.tainted_labels


class TestBudgetTaintParity:
    """Exhausted budgets must taint both engines identically — the
    certificate side of 'budget exhaustion downgrades to UNKNOWN'."""

    def _starved(self, cls, budget):
        prog = next(p for p in PROGRAMS if p.name == "sct-3")
        return _run_engine(cls, prog, budget=budget)

    def test_path_budget(self):
        sc = self._starved(Engine, Budget(max_paths_per_summary=3))
        mc = self._starved(MCEngine, Budget(max_paths_per_summary=3))
        assert "path budget exceeded" in sc.incomplete
        assert sc.incomplete == mc.incomplete
        assert certificate_from_engine(sc).discharged == frozenset()
        assert certificate_from_engine(mc).discharged == frozenset()

    def test_summary_budget(self):
        sc = self._starved(Engine, Budget(max_summaries=1))
        mc = self._starved(MCEngine, Budget(max_summaries=1))
        assert "summary budget exceeded" in sc.incomplete
        assert sc.incomplete == mc.incomplete
        assert certificate_from_engine(sc).discharged == frozenset()
        assert certificate_from_engine(mc).discharged == frozenset()
