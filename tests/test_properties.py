"""Hypothesis property tests over *generated programs*: the paper's
theorems on a random family rather than a fixed corpus.

Generated shapes:

* counting loops with arbitrary affine junk in the non-descending
  arguments (always terminate — Theorem 3.2 instances),
* loops whose first argument fails to descend (always diverge —
  Corollary 3.3 instances),
* pure first-order expressions (mode/strategy agreement).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.machine import Answer, run_source
from repro.values.equality import scheme_equal

# -- generators -------------------------------------------------------------------


@st.composite
def affine_expr(draw, params):
    """A random affine combination of parameters and constants."""
    var = draw(st.sampled_from(params))
    k = draw(st.integers(min_value=0, max_value=3))
    shape = draw(st.sampled_from(["var", "plus", "minus", "const", "double"]))
    if shape == "var":
        return var
    if shape == "plus":
        return f"(+ {var} {k})"
    if shape == "minus":
        return f"(- {var} {k})"
    if shape == "double":
        return f"(* 2 {var})"
    return str(k)


@st.composite
def terminating_loop(draw):
    """f(x0, …): x0 counts down to a guard; other args do anything affine.

    The guard is ``(< x0 step)`` so x0 never crosses below zero — under
    the |·| order a step over zero (e.g. 1 → -1) is *not* a descent, and
    such loops are (correctly, conservatively) flagged; see
    test_sct_conservativeness_crossing_zero.
    """
    arity = draw(st.integers(min_value=1, max_value=3))
    params = [f"x{i}" for i in range(arity)]
    step = draw(st.integers(min_value=1, max_value=3))
    others = [draw(affine_expr(params)) for _ in params[1:]]
    rec_args = " ".join([f"(- x0 {step})"] + others)
    base = draw(affine_expr(params))
    start = [str(draw(st.integers(min_value=0, max_value=12)))
             for _ in params]
    src = f"""
(define (f {' '.join(params)})
  (if (< x0 {step}) {base} (f {rec_args})))
(f {' '.join(start)})
"""
    return src


def test_sct_conservativeness_crossing_zero():
    """The 'one, unavoidable, wrinkle' (§1): some terminating programs
    violate the safety property.  Stepping from 1 to -1 is no descent
    under |·|, so this terminating loop is flagged — and a measure
    restores it."""
    from repro.sct.monitor import SCMonitor

    src = "(define (f x) (if (<= x 0) x (f (- x 2)))) (f 1)"
    assert run_source(src, mode="off").kind == Answer.VALUE
    assert run_source(src, mode="full").kind == Answer.SC_ERROR
    fixed = SCMonitor(measures={"f": lambda a: (max(a[0], 0),)})
    assert run_source(src, mode="full", monitor=fixed).kind == Answer.VALUE


@st.composite
def diverging_loop(draw):
    """f's first argument never descends (stays or grows)."""
    arity = draw(st.integers(min_value=1, max_value=2))
    params = [f"x{i}" for i in range(arity)]
    grow = draw(st.sampled_from(["x0", "(+ x0 1)", "(+ x0 2)", "(* 2 (+ x0 1))"]))
    others = [draw(affine_expr(params)) for _ in params[1:]]
    rec_args = " ".join([grow] + others)
    start = [str(draw(st.integers(min_value=1, max_value=5))) for _ in params]
    src = f"""
(define (f {' '.join(params)})
  (if (< x0 0) 0 (f {rec_args})))
(f {' '.join(start)})
"""
    return src


_pure_atom = st.one_of(
    st.integers(min_value=-9, max_value=9).map(str),
    st.sampled_from(["#t", "#f", "'()", "'sym", "\"s\""]),
)


@st.composite
def pure_expr(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        return draw(_pure_atom)
    shape = draw(st.sampled_from(
        ["add", "cons", "if", "let", "list", "car-safe", "app"]))
    a = draw(pure_expr(depth=depth - 1))
    b = draw(pure_expr(depth=depth - 1))
    if shape == "add":
        return f"(+ (if (number? {a}) {a} 0) (if (number? {b}) {b} 1))"
    if shape == "cons":
        return f"(cons {a} {b})"
    if shape == "if":
        c = draw(pure_expr(depth=depth - 1))
        return f"(if {a} {b} {c})"
    if shape == "let":
        return f"(let ([v {a}]) (list v {b}))"
    if shape == "list":
        return f"(list {a} {b})"
    if shape == "car-safe":
        return f"(let ([p {a}]) (if (pair? p) (car p) p))"
    return f"((lambda (u w) (list w u)) {a} {b})"


# -- properties -----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(terminating_loop())
def test_theorem_3_2_on_generated_loops(src):
    """Monitored evaluation agrees with the standard semantics on
    generated terminating loops (and never flags them)."""
    standard = run_source(src, mode="off", max_steps=500_000)
    assert standard.kind == Answer.VALUE
    for strategy in ("cm", "imperative"):
        monitored = run_source(src, mode="full", strategy=strategy,
                               max_steps=500_000)
        assert monitored.kind == Answer.VALUE, f"flagged:\n{src}"
        assert scheme_equal(monitored.value, standard.value)


@settings(max_examples=60, deadline=None)
@given(diverging_loop())
def test_corollary_3_3_on_generated_loops(src):
    """Generated diverging loops time out unmonitored and end in errorSC
    under both strategies."""
    standard = run_source(src, mode="off", max_steps=100_000)
    assert standard.kind == Answer.TIMEOUT
    for strategy in ("cm", "imperative"):
        monitored = run_source(src, mode="full", strategy=strategy,
                               max_steps=1_000_000)
        assert monitored.kind == Answer.SC_ERROR, f"missed:\n{src}"


@settings(max_examples=80, deadline=None)
@given(pure_expr())
def test_modes_and_strategies_agree_on_pure_expressions(src):
    """off / full×cm / full×imperative / contract all compute the same
    value for pure expressions."""
    answers = [
        run_source(src, mode="off", max_steps=300_000),
        run_source(src, mode="full", strategy="cm", max_steps=300_000),
        run_source(src, mode="full", strategy="imperative", max_steps=300_000),
        run_source(src, mode="contract", max_steps=300_000),
    ]
    kinds = {a.kind for a in answers}
    assert kinds == {Answer.VALUE}, src
    base = answers[0].value
    for a in answers[1:]:
        assert scheme_equal(a.value, base), src


@settings(max_examples=40, deadline=None)
@given(terminating_loop())
def test_backoff_preserves_values(src):
    from repro.sct.monitor import SCMonitor

    standard = run_source(src, mode="off", max_steps=500_000)
    monitored = run_source(src, mode="full",
                           monitor=SCMonitor(backoff=True), max_steps=500_000)
    assert monitored.kind == Answer.VALUE
    assert scheme_equal(monitored.value, standard.value)
