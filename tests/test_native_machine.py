"""Differential suite: the native tier vs the compiled and tree machines.

The native machine (exec-generated Python bodies for discharged λs,
trampoline-driven, compiled-machine ``eval_code`` fallback for anything
residual-monitored) must be *observably identical* to both other
machines: same answer kind, same printed value, same output bytes, same
violation witness, same error text — across the corpus, under no
monitoring, full monitoring (where every λ falls back), and a residual
policy (where proven λs run as native frames and the rest fall back in
the same run).  Plus the native-only contracts: the fuel boundary
(``fuel=0`` means no steps anywhere, exhaustion mid-native-frame is the
ordinary ``FuelExhausted``) and proper tail calls via the trampoline far
past CPython's recursion limit.
"""

import sys

import pytest

from repro.analysis.discharge import VerificationCache, discharge_for_run
from repro.corpus import all_programs, diverging_programs
from repro.eval import FuelExhausted
from repro.eval.machine import Answer, run_program, run_source
from repro.lang.parser import parse_program
from repro.sct.monitor import SCMonitor
from repro.values.values import write_value

MACHINES = ("tree", "compiled", "native")
PROGRAMS = all_programs()
DIVERGING = diverging_programs()

MAX_STEPS = 30_000_000


def run_everywhere(program, *, mode, strategy="cm", measures=None,
                   discharge=None, max_steps=MAX_STEPS, fuel=None):
    # ``program`` is a *parsed* Program: λ labels are assigned at parse
    # time, so a residual policy only matches the parse it was computed
    # from — every machine must run the very same object.
    if isinstance(program, str):
        program = parse_program(program)
    answers = {}
    for machine in MACHINES:
        answers[machine] = run_program(
            program, mode=mode, strategy=strategy,
            monitor=SCMonitor(measures=measures), max_steps=max_steps,
            fuel=fuel, machine=machine, discharge=discharge,
        )
    return answers


def assert_same_answer(reference, other):
    assert other.kind == reference.kind, (
        f"kind mismatch: {reference!r} vs {other!r}")
    assert other.output == reference.output
    if reference.kind == Answer.VALUE:
        assert write_value(other.value) == write_value(reference.value)
    if reference.kind == Answer.SC_ERROR:
        rv, ov = reference.violation, other.violation
        assert ov.function == rv.function
        assert ov.blame == rv.blame
        assert [write_value(a) for a in ov.prev_args] == \
            [write_value(a) for a in rv.prev_args]
        assert [write_value(a) for a in ov.new_args] == \
            [write_value(a) for a in rv.new_args]
        assert ov.composition == rv.composition
    if reference.kind == Answer.RT_ERROR:
        assert str(other.error) == str(reference.error)


def assert_all_same(answers):
    tree = answers["tree"]
    for machine in ("compiled", "native"):
        assert_same_answer(tree, answers[machine])


def discharged(source, result_kinds=None):
    parsed = parse_program(source)
    result = discharge_for_run(parsed, text=source,
                               result_kinds=result_kinds,
                               cache=VerificationCache(None))
    return parsed, result


@pytest.mark.parametrize("mode", ["off", "full"])
@pytest.mark.parametrize("prog", PROGRAMS, ids=[p.name for p in PROGRAMS])
class TestCorpusDifferential:
    """Byte-identity over the whole corpus.  ``off`` exercises pure
    native execution (nothing is monitored, every compiled λ is
    eligible); ``full`` without a policy exercises the all-fallback
    path (every λ is residual-monitored)."""

    def test_identical_answers(self, prog, mode):
        answers = run_everywhere(prog.source, mode=mode,
                                 measures=prog.measures)
        assert answers["tree"].kind == Answer.VALUE
        assert_all_same(answers)


class TestDischargedCorpus:
    """Byte-identity under residual policies — the tier-mixing runs the
    native machine exists for."""

    @pytest.mark.parametrize(
        "prog", PROGRAMS, ids=[p.name for p in PROGRAMS])
    def test_identical_answers_under_policy(self, prog):
        parsed, result = discharged(prog.source, prog.result_kinds)
        if result.policy is None:
            pytest.skip("no residual policy for this program")
        answers = run_everywhere(parsed, mode="full",
                                 measures=prog.measures,
                                 discharge=result.policy)
        assert answers["tree"].kind == Answer.VALUE
        assert_all_same(answers)


@pytest.mark.parametrize("prog", DIVERGING, ids=[d.name for d in DIVERGING])
class TestDivergingDifferential:
    """Violation payloads are produced by the fallback (every λ is
    monitored, nothing discharged) and must be witness-identical."""

    def test_identical_violation(self, prog):
        answers = run_everywhere(prog.source, mode="full",
                                 measures=prog.measures,
                                 max_steps=3_000_000)
        assert answers["tree"].kind == Answer.SC_ERROR
        assert_all_same(answers)


class TestFallbackBoundary:
    """One run mixing native frames (a proven λ) with monitored
    fallback frames (an unproven diverging λ): the violation must cross
    the boundary with an identical witness."""

    SRC = ("(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))\n"
           "(define (up l) (up (cons 1 l)))\n"
           "(len '(1 2 3))\n"
           "(up '())\n")

    def test_violation_identical_across_boundary(self):
        parsed, result = discharged(self.SRC)
        assert not result.complete          # up is unprovable
        assert result.policy is not None
        assert result.policy.skip_labels    # len is proven
        answers = {}
        monitors = {}
        for machine in MACHINES:
            monitors[machine] = SCMonitor()
            answers[machine] = run_program(
                parsed, mode="full", monitor=monitors[machine],
                max_steps=3_000_000, machine=machine,
                discharge=result.policy)
        assert answers["tree"].kind == Answer.SC_ERROR
        assert answers["tree"].violation.function == "up"
        assert_all_same(answers)
        # The native run really mixed tiers: native frames were entered
        # (len) while the monitor still saw the unproven λ's calls (up).
        assert answers["native"].tier == "native"
        assert monitors["native"].calls_seen > 0
        assert monitors["native"].calls_seen == monitors["tree"].calls_seen


class TestFuelBoundary:
    """The fuel contract on the native machine matches the other two:
    0 means no steps run anywhere, and exhaustion mid-native-frame is
    the ordinary distinct outcome."""

    LOOP = "(define (spin n) (spin (+ n 1)))\n(spin 0)\n"
    SUM = ("(define (sum n acc) (if (zero? n) acc (sum (- n 1) "
           "(+ acc n))))\n(sum 100000 0)\n")

    def test_fuel_zero_is_immediate_exhaustion(self):
        a = run_source(self.LOOP, mode="off", fuel=0, machine="native")
        assert a.kind == Answer.TIMEOUT
        assert isinstance(a.error, FuelExhausted)
        assert a.steps == 0

    def test_exhaustion_mid_native_frame(self):
        # Fully-discharged tight loop: the spinning frames are native
        # when the budget runs dry.
        parsed, result = discharged(self.SUM)
        assert result.complete
        a = run_program(parsed, mode="full", fuel=5_000,
                        machine="native", discharge=result.policy)
        assert a.kind == Answer.TIMEOUT
        assert isinstance(a.error, FuelExhausted)
        assert 0 < a.steps <= 5_000

    def test_ample_fuel_returns_value(self):
        parsed, result = discharged(self.SUM)
        a = run_program(parsed, mode="full", fuel=10_000_000,
                        machine="native", discharge=result.policy)
        assert a.kind == Answer.VALUE
        assert write_value(a.value) == "5000050000"


class TestTrampoline:
    """Proper tail calls and constant-stack non-tail returns far past
    CPython's own recursion limit."""

    def test_deep_non_tail_recursion(self):
        n = 50_000
        assert n > sys.getrecursionlimit()
        src = ("(define (count n) (if (zero? n) 0 (+ 1 (count (- n 1)))))\n"
               f"(count {n})\n")
        a = run_source(src, mode="off", machine="native")
        assert a.kind == Answer.VALUE
        assert a.value == n

    def test_deep_tail_recursion(self):
        n = 200_000
        src = ("(define (down n) (if (zero? n) 'done (down (- n 1))))\n"
               f"(down {n})\n")
        a = run_source(src, mode="off", machine="native")
        assert a.kind == Answer.VALUE
        assert write_value(a.value) == "done"

    def test_deep_non_tail_under_residual_policy(self):
        n = 20_000
        assert n > sys.getrecursionlimit()
        src = ("(define (count n) (if (zero? n) 0 (+ 1 (count (- n 1)))))\n"
               f"(count {n})\n")
        parsed, result = discharged(src)
        assert result.complete
        a = run_program(parsed, mode="full", machine="native",
                        discharge=result.policy)
        assert a.kind == Answer.VALUE
        assert a.value == n


class TestMutationOrder:
    """``set!`` pins evaluation order and storage identity: a volatile
    read must be copied before a sibling's mutation can run, and every
    let/letrec binding needs its own slot.  These are the observables
    the locals-mode emitter got wrong (review repros, PR 9) — each case
    asserts byte-identity against the tree machine plus the exact
    expected value."""

    PROBES = [
        # Left argument read before the right argument's set! fires.
        ("(define (f x) (+ x (begin (set! x 99) 1)))\n(f 1)\n", "2"),
        # A let binding from a letrec slot must not alias it.
        ("(define (f x) (letrec ((a x)) (let ((y a)) "
         "(begin (set! y 2) a))))\n(f 1)\n", "1"),
        # let rhs reads the parameter, the body then mutates it.
        ("(define (f x) (let ((y x)) (begin (set! x 50) (+ y x))))\n"
         "(f 1)\n", "51"),
        # letrec* ordering: the second rhs sees the first slot mutated.
        ("(define (f x) (letrec ((a x) (b (begin (set! a 7) a))) "
         "(+ a b)))\n(f 1)\n", "14"),
        # Parallel let: both rhss evaluate before either name binds.
        ("(define (f x) (let ((y x) (z (begin (set! x 9) x))) "
         "(+ (* 100 y) z)))\n(f 1)\n", "109"),
        # Nested lets: each binding gets distinct storage.
        ("(define (f x) (let ((a x)) (let ((b a)) "
         "(begin (set! b 8) (+ a b)))))\n(f 1)\n", "9"),
        # Sequenced rebinds through begin.
        ("(define (f x) (begin (set! x (+ x 1)) (set! x (* x 2)) x))\n"
         "(f 3)\n", "8"),
        # The let value is read out before the set! behind it.
        ("(define (f x) (+ (let ((u x)) (begin (set! x 40) u)) x))\n"
         "(f 2)\n", "42"),
    ]

    @pytest.mark.parametrize("src,expected", PROBES,
                             ids=[f"probe{i}" for i in range(len(PROBES))])
    def test_identical_across_machines(self, src, expected):
        answers = run_everywhere(src, mode="off")
        assert answers["tree"].kind == Answer.VALUE
        assert write_value(answers["tree"].value) == expected
        assert_all_same(answers)

    def test_frame_mode_capture_sees_mutation(self):
        # A nested λ forces frame mode; the closure must observe the
        # set! on the captured frame slot.
        src = ("(define (f x) (let ((g (lambda (y) (+ x y)))) "
               "(begin (set! x 9) (g 1))))\n(f 1)\n")
        answers = run_everywhere(src, mode="off")
        assert answers["tree"].kind == Answer.VALUE
        assert write_value(answers["tree"].value) == "10"
        assert_all_same(answers)

    def test_mutation_runs_on_the_native_tier_when_discharged(self):
        # The ordering contract must hold in actual native frames under
        # monitoring, not only in the unmonitored configuration.
        src = ("(define (f n) (if (zero? n) 0 "
               "(+ (let ((m n)) (+ m (begin (set! m 1) m))) "
               "(f (- n 1)))))\n(f 4)\n")
        parsed, result = discharged(src)
        assert result.complete
        answers = run_everywhere(parsed, mode="full",
                                 discharge=result.policy)
        assert answers["tree"].kind == Answer.VALUE
        assert_all_same(answers)
        a = run_program(parsed, mode="full", machine="native",
                        discharge=result.policy)
        assert a.tier == "native"
        assert write_value(a.value) == write_value(
            answers["tree"].value)


class TestTierReporting:
    """``Answer.tier`` names the tier that actually did the work."""

    def test_unmonitored_run_reports_native(self):
        # tier is "what ran a λ frame": a program with an actual
        # application reports native; pure top-level arithmetic never
        # enters a frame and honestly reports compiled.
        src = "(define (f n) (if (zero? n) 1 (f (- n 1))))\n(f 5)\n"
        a = run_source(src, mode="off", machine="native")
        assert a.kind == Answer.VALUE and a.value == 1
        assert a.tier == "native"

    def test_all_fallback_run_reports_compiled(self):
        # mode=full with no policy: nothing is discharged, so no native
        # frame ever runs and the answer honestly says so.
        src = "(define (f n) (if (zero? n) 1 (f (- n 1))))\n(f 5)\n"
        a = run_source(src, mode="full", machine="native")
        assert a.kind == Answer.VALUE and a.value == 1
        assert a.tier == "compiled"

    def test_other_machines_report_themselves(self):
        for machine in ("tree", "compiled"):
            a = run_source("(+ 1 2)", mode="off", machine=machine)
            assert a.tier == machine
