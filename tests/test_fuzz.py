"""The fuzz subsystem: generator discipline, differential oracle,
shrinker, and the regression archive format."""

import pytest

from repro.eval.machine import Answer
from repro.fuzz import (
    ALL_FEATURES,
    Divergence,
    archive_divergence,
    default_cells,
    generate_program,
    run_fuzz,
    run_matrix,
    shrink_divergence,
)
from repro.fuzz.gen import GenProgram
from repro.fuzz.shrink import load_regression, parse_forms, render_forms


class TestGenerator:
    def test_deterministic_by_seed(self):
        for mode in ("terminating", "diverging"):
            a = generate_program(7, mode)
            b = generate_program(7, mode)
            assert a.source == b.source
            assert a.entry == b.entry
            assert a.entry_kinds == b.entry_kinds
            assert a.features == b.features
            assert a.must_verify == b.must_verify
            assert a.must_discharge == b.must_discharge

    def test_seeds_vary(self):
        sources = {generate_program(s, "terminating").source
                   for s in range(20)}
        assert len(sources) > 10

    def test_oracle_flags(self):
        t = generate_program(3, "terminating")
        assert t.must_verify
        d = generate_program(3, "diverging")
        assert not d.must_verify and not d.must_discharge

    def test_feature_restriction(self):
        p = generate_program(5, "terminating", features=())
        assert p.features == ()
        with pytest.raises(ValueError):
            generate_program(0, "terminating", features=("warp",))
        with pytest.raises(ValueError):
            generate_program(0, "sideways")

    def test_features_eventually_all_used(self):
        used = set()
        for s in range(120):
            used |= set(generate_program(s, "terminating").features)
        assert used == set(ALL_FEATURES)


class TestCells:
    def test_full_is_eighteen(self):
        assert len(default_cells("full")) == 18

    def test_quick_covers_axes(self):
        cells = default_cells("quick")
        assert {c[0] for c in cells} == {"tree", "compiled", "native"}
        assert {c[1] for c in cells} == {"bitmask", "reference"}
        assert {c[2] for c in cells} == {"off", "monitored", "discharged"}

    def test_explicit_spec(self):
        assert default_cells("tree:bitmask:off") == [
            ("tree", "bitmask", "off")]
        with pytest.raises(ValueError):
            default_cells("tree:bitmask")
        with pytest.raises(ValueError):
            default_cells("tree:warp:off")


class TestMatrixOracle:
    def test_terminating_program_clean(self):
        program = generate_program(0, "terminating")
        result = run_matrix(program)
        assert result.divergences == []
        assert all(r.kind == Answer.VALUE for r in result.cells)

    def test_diverging_program_clean(self):
        program = generate_program(1, "diverging")
        result = run_matrix(program)
        assert result.divergences == []
        off = [r for r in result.cells if r.cell[2] == "off"]
        assert off and all(r.kind == Answer.TIMEOUT for r in off)
        assert set(result.verdicts.values()) == {"unknown"}

    def test_parse_error_is_a_divergence(self):
        program = GenProgram(seed=0, mode="terminating", source="(((",
                             entry="f", entry_kinds=("nat",), features=(),
                             must_verify=False, must_discharge=False,
                             fuel=1000)
        result = run_matrix(program)
        assert [d.klass for d in result.divergences] == ["parse-error"]

    def test_oracle_catches_lying_mode(self):
        """A terminating program labelled 'diverging' must trip the
        diverging-side oracle checks — this is the self-test that the
        differential harness actually looks at its observables."""
        program = _lying_diverging()
        result = run_matrix(program)
        classes = {d.klass for d in result.divergences}
        assert "diverging-survived" in classes
        assert "diverging-verified" in classes


def _lying_diverging() -> GenProgram:
    return GenProgram(
        seed=99, mode="diverging",
        source="(define (f n)\n  (if (zero? n) 0 (f (- n 1))))\n(f 3)\n",
        entry="f", entry_kinds=("nat",), features=(),
        must_verify=False, must_discharge=False, fuel=50_000)


class TestFuzzCampaign:
    def test_small_campaign_clean(self):
        report = run_fuzz(8, seed=0, mode="both", matrix="quick",
                          shrink=False)
        assert report.programs == 8
        assert report.by_mode == {"terminating": 4, "diverging": 4}
        assert report.divergences == []
        assert report.verified == report.verify_expected
        assert report.discharged == report.discharge_expected

    def test_report_json_schema(self):
        report = run_fuzz(2, seed=0, matrix="quick", shrink=False)
        payload = report.to_json()
        assert payload["schema"] == "sized-fuzz/v1"
        assert payload["programs"] == 2
        assert payload["divergences_found"] == 0
        assert "programs_per_sec" in payload


class TestShrinker:
    def test_forms_round_trip(self):
        text = "(define (f n)\n  (if (zero? n) 0 (f (- n 1))))\n(f 3)\n"
        assert parse_forms(render_forms(parse_forms(text))) == \
            parse_forms(text)

    def test_shrinks_synthetic_divergence(self):
        cells = default_cells("quick")
        program = _lying_diverging()
        result = run_matrix(program, cells=cells)
        div = next(d for d in result.divergences
                   if d.klass == "diverging-survived")
        shrunk = shrink_divergence(div, cells=cells, max_attempts=40)
        assert len(shrunk) <= len(program.source)
        # The minimized repro still exhibits the class.
        replay = GenProgram(seed=program.seed, mode=program.mode,
                            source=shrunk, entry=program.entry,
                            entry_kinds=program.entry_kinds, features=(),
                            must_verify=False, must_discharge=False,
                            fuel=program.fuel)
        again = run_matrix(replay, cells=cells)
        assert any(d.klass == "diverging-survived"
                   for d in again.divergences)

    def test_archive_round_trip(self, tmp_path):
        program = _lying_diverging()
        div = Divergence("diverging-survived", "synthetic: terminates",
                        program)
        path = archive_divergence(div, directory=str(tmp_path))
        loaded = load_regression(path)
        assert loaded.mode == program.mode
        assert loaded.entry == program.entry
        assert loaded.entry_kinds == program.entry_kinds
        assert loaded.fuel == program.fuel
        assert loaded.must_verify == program.must_verify
        assert parse_forms(loaded.source) == parse_forms(program.source)
