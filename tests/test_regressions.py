"""Replay every archived fuzz regression under the full 12-cell matrix.

Each ``tests/regressions/*.scm`` file carries its own oracle metadata
(mode, entry, kinds, must-verify/must-discharge, fuel) in its leading
comments, so a repro archived by one campaign keeps asserting the
corrected expectations forever — the files double as documentation of
what the fuzzer found and how the oracle was recalibrated."""

import glob
import os

import pytest

from repro.fuzz import run_matrix
from repro.fuzz.shrink import load_regression

HERE = os.path.dirname(__file__)
REGRESSIONS = sorted(glob.glob(os.path.join(HERE, "regressions", "*.scm")))


def test_archive_is_not_empty():
    assert REGRESSIONS, "tests/regressions/ must hold at least one repro"


@pytest.mark.parametrize(
    "path", REGRESSIONS,
    ids=[os.path.splitext(os.path.basename(p))[0] for p in REGRESSIONS])
def test_replay_passes_oracle(path):
    program = load_regression(path)
    result = run_matrix(program)
    assert result.divergences == [], [
        f"{d.klass}: {d.detail}" for d in result.divergences]


@pytest.mark.parametrize(
    "path", REGRESSIONS,
    ids=[os.path.splitext(os.path.basename(p))[0] for p in REGRESSIONS])
def test_metadata_complete(path):
    program = load_regression(path)
    assert program.entry
    assert program.entry_kinds
    assert program.mode in ("terminating", "diverging")
    assert program.fuel > 0
    assert program.source.strip()
