"""Extra benchmarks and the documented conservativeness cases."""

import pytest

from repro.corpus import conservative_programs, extra_programs
from repro.eval.machine import Answer, run_source
from repro.sct.monitor import SCMonitor
from repro.symbolic import verify_source
from repro.values.values import write_value

EXTRAS = extra_programs()
CONSERVATIVE = conservative_programs()


@pytest.mark.parametrize("prog", EXTRAS, ids=[p.name for p in EXTRAS])
class TestExtras:
    def test_standard_value(self, prog):
        a = run_source(prog.source, mode="off", max_steps=30_000_000)
        assert a.kind == Answer.VALUE
        assert write_value(a.value) == prog.expected

    def test_monitored_agrees(self, prog):
        for strategy in ("cm", "imperative"):
            a = run_source(prog.source, mode="full", strategy=strategy,
                           max_steps=30_000_000)
            assert a.kind == Answer.VALUE, f"flagged: {a.violation}"
            assert write_value(a.value) == prog.expected

    def test_static_verdict_pinned(self, prog):
        if prog.entry is None:
            pytest.skip("no static entry")
        v = verify_source(prog.source, prog.entry[0], prog.entry[1],
                          result_kinds=prog.result_kinds)
        assert v.verified == prog.ours_static, v.render()


@pytest.mark.parametrize("prog", CONSERVATIVE,
                         ids=[p.name for p in CONSERVATIVE])
class TestConservativeness:
    """§1's 'unavoidable wrinkle': these programs terminate, yet violate
    the size-change safety property — the monitor must flag them, and the
    flag is the documented, expected behaviour."""

    def test_terminates_under_standard_semantics(self, prog):
        a = run_source(prog.source, mode="off", max_steps=30_000_000)
        assert a.kind == Answer.VALUE
        assert write_value(a.value) == prog.expected

    def test_monitor_conservatively_flags(self, prog):
        a = run_source(prog.source, mode="full", max_steps=30_000_000)
        assert a.kind == Answer.SC_ERROR


class TestConservativenessRepairs:
    def test_cross_zero_repaired_by_measure(self):
        from repro.corpus.registry import CONSERVATIVE as C

        monitor = SCMonitor(measures={"cross": lambda a: (max(a[0], 0),)})
        a = run_source(C["cross-zero"].source, mode="full", monitor=monitor)
        assert a.kind == Answer.VALUE

    def test_graph_reach_repaired_by_worklist_measure(self):
        """The classic worklist argument (unvisited-count, |frontier|)
        expressed as a measure accepts the growing-frontier search."""
        from repro.corpus.registry import CONSERVATIVE as C

        prog = C["graph-reach"]
        monitor = SCMonitor(measures=prog.measures)
        a = run_source(prog.source, mode="full", monitor=monitor)
        assert a.kind == Answer.VALUE and a.value == 5

    def test_cpstak_repaired_by_whitelisting_after_offline_proof(self):
        """cpstak's termination argument is beyond SCT; a user who has
        proved it by other means can whitelist it (§5's virtuous cycle)."""
        from repro.corpus.registry import CONSERVATIVE as C

        monitor = SCMonitor(whitelist={"cpstak"})
        a = run_source(C["cpstak"].source, mode="full", monitor=monitor)
        assert a.kind == Answer.VALUE and a.value == 3
