"""Tests for the Python-native @terminating decorator."""

import threading

import pytest

from repro.pyterm import SizeChangeError, extent_table_depth, py_size, terminating
from repro.pyterm.order import DESC, EQ, NONE, PySizeOrder


class TestPySize:
    def test_ints(self):
        assert py_size(5) == 5 and py_size(-5) == 5

    def test_bool_before_int(self):
        assert py_size(True) == 1

    def test_float_none(self):
        assert py_size(1.5) is None

    def test_containers_by_len(self):
        assert py_size([1, 2, 3]) == 3
        assert py_size((1,)) == 1
        assert py_size("abcd") == 4
        assert py_size({1: 2}) == 1
        assert py_size(set()) == 0

    def test_none_is_zero(self):
        assert py_size(None) == 0

    def test_deep_size(self):
        assert py_size([[1, 1], [1]], deep=True) == 1 + (1 + 1 + 1) + (1 + 1)

    def test_deep_size_cycle_safe(self):
        xs = [1]
        xs.append(xs)
        assert py_size(xs, deep=True) is None

    def test_sct_size_hook(self):
        class Tree:
            def __init__(self, n):
                self.n = n

            def __sct_size__(self):
                return self.n

        assert py_size(Tree(7)) == 7
        order = PySizeOrder()
        assert order.compare(Tree(7), Tree(3)) == DESC

    def test_objects_incomparable(self):
        order = PySizeOrder()
        assert order.compare(object(), object()) == NONE
        o = object()
        assert order.compare(o, o) == EQ


class TestTerminatingDecorator:
    def test_factorial(self):
        @terminating
        def fact(n):
            return 1 if n == 0 else n * fact(n - 1)

        assert fact(10) == 3628800

    def test_ackermann(self):
        @terminating
        def ack(m, n):
            if m == 0:
                return n + 1
            if n == 0:
                return ack(m - 1, 1)
            return ack(m - 1, ack(m, n - 1))

        assert ack(2, 3) == 9

    def test_list_recursion(self):
        @terminating
        def total(xs):
            return 0 if not xs else xs[0] + total(xs[1:])

        assert total(list(range(50))) == sum(range(50))

    def test_merge_sort_halves(self):
        @terminating
        def msort(xs):
            if len(xs) <= 1:
                return xs
            mid = len(xs) // 2
            left, right = msort(xs[:mid]), msort(xs[mid:])
            out = []
            while left and right:
                out.append(left.pop(0) if left[0] <= right[0] else right.pop(0))
            return out + left + right

        assert msort([5, 2, 8, 1, 9, 3]) == [1, 2, 3, 5, 8, 9]

    def test_infinite_loop_caught(self):
        @terminating
        def bad(n):
            return bad(n)

        with pytest.raises(SizeChangeError):
            bad(1)

    def test_growing_loop_caught(self):
        @terminating
        def bad(n):
            return bad(n + 1)

        with pytest.raises(SizeChangeError):
            bad(0)

    def test_mutual_recursion_through_undecorated_helper(self):
        def helper(n):
            return bad(n)

        @terminating
        def bad(n):
            return helper(n)

        with pytest.raises(SizeChangeError):
            bad(3)

    def test_table_restored_after_violation(self):
        @terminating
        def bad(n):
            return bad(n)

        with pytest.raises(SizeChangeError):
            bad(1)
        assert extent_table_depth() == 0

    def test_table_restored_after_success(self):
        @terminating
        def ok(n):
            return 0 if n == 0 else ok(n - 1)

        ok(5)
        assert extent_table_depth() == 0

    def test_fresh_extent_per_top_call(self):
        """Top-level calls are separate extents: same-argument calls from
        the top are fine; only in-extent repetition violates."""

        @terminating
        def f(n):
            return n

        assert f(5) == 5
        assert f(5) == 5  # no violation across extents

    def test_kwargs_normalized(self):
        @terminating
        def f(a, b):
            return 0 if a == 0 else f(a=a - 1, b=b)

        assert f(3, b=9) == 0

    def test_blame_label(self):
        @terminating(blame="my-party")
        def bad(n):
            return bad(n)

        with pytest.raises(SizeChangeError) as ei:
            bad(1)
        assert ei.value.blame == "my-party"

    def test_default_blame_is_qualname(self):
        @terminating
        def bad(n):
            return bad(n)

        with pytest.raises(SizeChangeError) as ei:
            bad(1)
        assert "bad" in ei.value.blame

    def test_measure_for_counting_up(self):
        @terminating(measure=lambda a: (a[1] - a[0],))
        def up(lo, hi):
            return [] if lo >= hi else [lo] + up(lo + 1, hi)

        assert up(0, 10) == list(range(10))

    def test_counting_up_without_measure_fails(self):
        @terminating
        def up(lo, hi):
            return [] if lo >= hi else [lo] + up(lo + 1, hi)

        with pytest.raises(SizeChangeError):
            up(0, 10)

    def test_backoff_catches_eventually(self):
        calls = [0]

        @terminating(backoff=True)
        def bad(n):
            calls[0] += 1
            if calls[0] > 1000:  # safety net for the test itself
                raise RuntimeError("monitor failed to stop the loop")
            return bad(n)

        with pytest.raises(SizeChangeError):
            bad(1)
        assert calls[0] < 20

    def test_deep_ordering(self):
        @terminating(deep=True)
        def count_tree(t):
            # shrinks total node count but not necessarily len()
            if isinstance(t, list) and t:
                return 1 + count_tree(t[0]) + count_tree(t[1:] if len(t) > 1 else [])
            return 0

        assert count_tree([[1, 2], 3]) >= 0

    def test_exception_restores_table(self):
        @terminating
        def boom(n):
            raise ValueError("inner")

        with pytest.raises(ValueError):
            boom(1)
        assert extent_table_depth() == 0

    def test_thread_isolation(self):
        @terminating
        def walk(n):
            return 0 if n == 0 else walk(n - 1)

        results = []

        def worker():
            results.append(walk(100))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == [0, 0, 0, 0]

    def test_two_decorated_functions_interleave(self):
        @terminating
        def evens(n):
            return True if n == 0 else odds(n - 1)

        @terminating
        def odds(n):
            return False if n == 0 else evens(n - 1)

        assert evens(20) is True

    def test_violation_witness_fields(self):
        @terminating
        def stuck(a, b):
            return stuck(a, b)

        with pytest.raises(SizeChangeError) as ei:
            stuck(3, 4)
        v = ei.value
        assert v.prev_args == (3, 4) and v.new_args == (3, 4)
        assert v.composition.is_idempotent()
        assert not v.composition.has_strict_self_arc()
        assert v.param_names == ["a", "b"]

    def test_wrapper_marks_itself(self):
        @terminating
        def f(n):
            return n

        assert f.__sct_terminating__ is True
        assert f.__wrapped__ is not None
