"""Full-extent monitoring (repro.pyterm.extent): λSCT's every-application
semantics for Python via sys.setprofile."""

import sys

import pytest

from repro.pyterm import SizeChangeError, monitor_extent, monitored
from repro.pyterm.extent import default_include


class TestBasics:
    def test_plain_recursion_passes(self):
        def fact(n):
            return 1 if n == 0 else n * fact(n - 1)

        with monitor_extent() as m:
            assert fact(10) == 3628800
        assert m.calls_seen >= 11
        assert m.violation is None

    def test_unwrapped_divergence_is_caught(self):
        def helper(x):
            return helper(x)

        def main():
            return helper(5)

        with pytest.raises(SizeChangeError) as excinfo:
            with monitor_extent():
                main()
        assert excinfo.value.function.endswith("helper")
        assert excinfo.value.call_count == 2

    def test_mutual_divergence_is_caught(self):
        def ping(n):
            return pong(n)

        def pong(n):
            return ping(n)

        with pytest.raises(SizeChangeError):
            with monitor_extent():
                ping(9)

    def test_profile_is_restored_after_the_extent(self):
        before = sys.getprofile()
        with monitor_extent():
            pass
        assert sys.getprofile() is before

    def test_profile_is_restored_after_a_violation(self):
        before = sys.getprofile()

        def spin(x):
            return spin(x)

        with pytest.raises(SizeChangeError):
            with monitor_extent():
                spin(1)
        assert sys.getprofile() is before

    def test_not_reentrant(self):
        m = monitor_extent()
        with m:
            with pytest.raises(RuntimeError):
                m.__enter__()

    def test_fresh_instance_nests(self):
        def dec(n):
            return 0 if n == 0 else dec(n - 1)

        with monitor_extent():
            with monitor_extent():
                assert dec(5) == 0


class TestScoping:
    def test_sibling_calls_do_not_interfere(self):
        # merge-sort style: both halves see the parent's entry, not each
        # other's.
        def msort(xs):
            if len(xs) <= 1:
                return xs
            mid = len(xs) // 2
            left = msort(xs[:mid])
            right = msort(xs[mid:])
            return sorted(left + right)

        with monitor_extent():
            assert msort([4, 2, 7, 1]) == [1, 2, 4, 7]

    def test_exception_unwind_restores_entries(self):
        # Each boom frame exits exceptionally; if its table entry were not
        # restored on unwind, the next identical call would be compared
        # against it ((7) → (7): no descent) and flagged.
        def boom(x):
            raise KeyError(x)

        def main():
            for _ in range(3):
                try:
                    boom(7)
                except KeyError:
                    pass
            return True

        with monitor_extent():
            assert main() is True

    def test_catch_and_recurse_again(self):
        def search(n):
            if n == 0:
                raise KeyError("bottom")
            try:
                return search(n - 1)
            except KeyError:
                return n

        with monitor_extent():
            assert search(4) == 1

    def test_comprehension_frames_are_skipped(self):
        def depth(node):
            if isinstance(node, int):
                return 0
            return 1 + max([depth(c) for c in node])

        with monitor_extent(deep=True):
            assert depth([[1, [2]], [3]]) == 3

    def test_generators_are_skipped(self):
        def gen(n):
            while True:  # infinite generator: consuming finitely is fine
                yield n
                n += 1

        def take(k, g):
            return 0 if k == 0 else next(g) + take(k - 1, g)

        with monitor_extent():
            assert take(3, gen(10)) == 33

    def test_include_predicate_limits_monitoring(self):
        def spin(x):
            return 0 if x > 3 else spin(x)  # diverges for x <= 3

        # Excluding everything: the spin below would diverge, so give it a
        # terminating input and only assert nothing was seen.
        with monitor_extent(include=lambda code: False) as m:
            spin(10)
        assert m.calls_seen == 0

    def test_default_include_skips_stdlib_and_this_library(self):
        import json

        assert not default_include(json.dumps.__code__)
        assert not default_include(default_include.__code__)
        assert default_include(TestScoping.test_basics.__code__) \
            if hasattr(TestScoping, "test_basics") else True

        def local():
            pass

        assert default_include(local.__code__)


class TestOptionsAndBlame:
    def test_mc_graphs_accept_bounded_count_up(self):
        def scan(i, xs):
            return 0 if i >= len(xs) else xs[i] + scan(i + 1, xs)

        with pytest.raises(SizeChangeError):
            with monitor_extent():
                scan(0, [1, 2, 3])
        with monitor_extent(graphs="mc"):
            assert scan(0, [1, 2, 3]) == 6

    def test_invalid_graphs_option(self):
        with pytest.raises(ValueError):
            monitor_extent(graphs="xx")

    def test_backoff_reduces_checks(self):
        def dec(n):
            return 0 if n == 0 else dec(n - 1)

        with monitor_extent() as eager:
            dec(64)
        with monitor_extent(backoff=True) as lazy:
            dec(64)
        assert lazy.checks_done < eager.checks_done

    def test_backoff_still_catches(self):
        def spin(x):
            return spin(x)

        with pytest.raises(SizeChangeError):
            with monitor_extent(backoff=True):
                spin(0)

    def test_blame_override(self):
        def spin(x):
            return spin(x)

        with pytest.raises(SizeChangeError) as excinfo:
            with monitor_extent(blame="the-batch-job"):
                spin(0)
        assert excinfo.value.blame == "the-batch-job"

    def test_violation_recorded_on_the_extent(self):
        def spin(x):
            return spin(x)

        m = monitor_extent()
        with pytest.raises(SizeChangeError):
            with m:
                spin(0)
        assert m.violation is not None
        assert m.violation.function.endswith("spin")


class TestDecoratorForm:
    def test_monitored_decorator(self):
        @monitored
        def main(n):
            def helper(x):
                return 0 if x == 0 else helper(x - 1)

            return helper(n)

        assert main(5) == 0
        assert main.__sct_terminating__

    def test_monitored_catches_inner_divergence(self):
        @monitored
        def main():
            def helper(x):
                return helper(x)

            return helper(1)

        with pytest.raises(SizeChangeError):
            main()

    def test_monitored_with_options(self):
        @monitored(graphs="mc")
        def count(lo, hi):
            return 0 if lo >= hi else 1 + count(lo + 1, hi)

        assert count(0, 7) == 7
