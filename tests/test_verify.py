"""Static verifier tests (§4): the Fig. 9 worked example, path
sensitivity, higher-order handling, and honest UNKNOWNs."""

import pytest

from repro.sct.graph import SCGraph, arc
from repro.symbolic import verify_source
from repro.symbolic.engine import Budget

ACK = """
(define (ack m n)
  (cond [(= 0 m) (+ 1 n)]
        [(= 0 n) (ack (- m 1) 1)]
        [else (ack (- m 1) (ack m (- n 1)))]))
"""


class TestAckWorkedExample:
    def test_ack_verifies(self):
        v = verify_source(ACK, "ack", ["nat", "nat"],
                          result_kinds={"ack": "nat"})
        assert v.verified, v.render()

    def test_ack_edge_graphs_match_fig9(self):
        """§4.2 / Fig. 9: exactly {m↓m} and {m↓=m, n↓n}."""
        v = verify_source(ACK, "ack", ["nat", "nat"],
                          result_kinds={"ack": "nat"})
        [(edge, graphs)] = list(v.engine.edges.items())
        assert edge[0] == edge[1]  # the single self edge
        expected = {
            SCGraph([arc(0, "<", 0)]),
            SCGraph([arc(0, "=", 0), arc(1, "<", 1)]),
        }
        assert graphs == expected

    def test_ack_without_result_contract_is_unknown(self):
        """Without knowing ack's range is nat, the outer nested call loses
        the descent evidence — the §4.2 reliance on contracts, observable."""
        v = verify_source(ACK, "ack", ["nat", "nat"])
        assert not v.verified

    def test_ack_on_unconstrained_ints_is_unknown(self):
        """(- m 1) does not descend under |·| for arbitrary integers."""
        v = verify_source(ACK, "ack", ["int", "int"],
                          result_kinds={"ack": "nat"})
        assert not v.verified


class TestPathSensitivity:
    def test_subtraction_needs_the_guard(self):
        src = """
        (define (count n) (if (zero? n) 0 (count (- n 1))))
        """
        assert verify_source(src, "count", ["nat"]).verified
        # Without the natural-number precondition the guard (zero? n)
        # leaves n possibly negative, where |n-1| may grow.
        assert not verify_source(src, "count", ["int"]).verified

    def test_guarded_step_size(self):
        src = """
        (define (div x y)
          (if (< x y) 0 (+ 1 (div (- x y) y))))
        """
        # y ≥ 1 must come from somewhere: with nat args alone, y could be
        # 0 and x - y = x does not descend.
        assert not verify_source(src, "div", ["nat", "nat"]).verified
        src_guarded = """
        (define (div x y)
          (if (< y 1) 0
              (if (< x y) 0 (+ 1 (div (- x y) y)))))
        """
        assert verify_source(src_guarded, "div", ["nat", "nat"]).verified

    def test_infeasible_paths_are_pruned(self):
        src = """
        (define (f x)
          (if (< x 0)
              (if (> x 10) (f x) 0)
              0))
        """
        # The only recursive call sits on an infeasible path (x<0 ∧ x>10).
        v = verify_source(src, "f", ["int"])
        assert v.verified, v.render()


class TestStructuralDescent:
    def test_cdr_descent(self):
        src = "(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))"
        assert verify_source(src, "len", ["list"]).verified

    def test_growing_argument_fails(self):
        src = "(define (f l) (f (cons 1 l)))"
        assert not verify_source(src, "f", ["list"]).verified

    def test_indirect_recursion_through_helper(self):
        src = """
        (define (f i x) (if (null? i) x (g (cdr i) x i)))
        (define (g a b c) (f a (cons b c)))
        """
        assert verify_source(src, "f", ["list", "any"]).verified

    def test_deep_projection(self):
        src = "(define (h l) (if (null? l) 0 (if (null? (cdr l)) 0 (h (cddr l)))))"
        assert verify_source(src, "h", ["list"]).verified

    def test_swap_descent(self):
        src = """
        (define (perm xs ys)
          (cond [(null? xs) ys]
                [(null? ys) xs]
                [else (perm (cdr ys) (cdr xs))]))
        """
        assert verify_source(src, "perm", ["list", "list"]).verified


class TestUninterpretedOperations:
    @pytest.mark.parametrize("op", ["quotient", "modulo", "remainder"])
    def test_division_like_ops_are_opaque(self, op):
        src = f"(define (f x) (if (<= x 0) 0 (f ({op} x 2))))"
        v = verify_source(src, "f", ["nat"])
        assert not v.verified

    def test_nonlinear_products_are_opaque(self):
        src = "(define (f x y) (if (zero? y) x (f (* x x) (- y 1))))"
        # y descends, so this one still verifies...
        assert verify_source(src, "f", ["nat", "nat"]).verified
        src2 = "(define (f x y) (if (zero? y) x (f x (* y y))))"
        # ...but descent through a product does not.
        assert not verify_source(src2, "f", ["nat", "nat"]).verified


class TestHigherOrder:
    def test_unknown_callback_is_fine(self):
        src = "(define (map1 f l) (if (null? l) '() (cons (f (car l)) (map1 f (cdr l)))))"
        assert verify_source(src, "map1", ["fun", "list"]).verified

    def test_concrete_closure_flow_through_args(self):
        src = """
        (define (apply2 f x) (f x))
        (define (down n) (if (zero? n) 0 (apply2 down (- n 1))))
        """
        v = verify_source(src, "down", ["nat"])
        assert v.verified, v.render()

    def test_lost_function_application_is_unknown(self):
        """Applying a value the analysis lost (a summarized result) cannot
        be verified — the `scheme` benchmark's failure mode."""
        src = """
        (define (make) (lambda (x) x))
        (define (use n) ((make) n))
        """
        v = verify_source(src, "use", ["nat"])
        assert not v.verified
        assert any("lost" in r for r in v.reasons)

    def test_hash_dispatch_case_split(self):
        src = """
        (define (op-a x) (if (null? x) 0 (dispatch (cdr x))))
        (define (op-b x) 1)
        (define table (hash 'a op-a 'b op-b))
        (define (dispatch x)
          (if (null? x) 0 ((hash-ref table (car x)) x)))
        """
        v = verify_source(src, "dispatch", ["list"])
        assert v.verified, v.render()


class TestVerdictHygiene:
    def test_missing_entry(self):
        v = verify_source("(define x 1)", "nope", [])
        assert not v.verified

    def test_non_closure_entry(self):
        v = verify_source("(define x 1)", "x", [])
        assert not v.verified

    def test_arity_mismatch_reported(self):
        v = verify_source("(define (f x) x)", "f", ["nat", "nat"])
        assert not v.verified

    def test_budget_exhaustion_is_unknown_not_verified(self):
        src = """
        (define (spin n) (if (zero? n) 0 (spin (- n 1))))
        """
        v = verify_source(src, "spin", ["nat"],
                          budget=Budget(max_paths_per_summary=1))
        assert not v.verified
        assert any("budget" in r for r in v.reasons)

    def test_witness_rendered(self):
        v = verify_source("(define (f x) (f x))", "f", ["nat"])
        assert not v.verified
        assert "f" in v.render()

    def test_mutation_is_conservative(self):
        src = """
        (define (f x seen)
          (begin
            (set! seen (cons x seen))
            (if (zero? x) seen (f (- x 1) seen))))
        """
        # set! havocs `seen`, but descent on x still verifies.
        v = verify_source(src, "f", ["nat", "list"])
        assert v.verified, v.render()


class TestLibraryAwareVerification:
    """The engine binds the prelude and contract library, so user code
    that calls them can be analyzed."""

    def test_map_from_the_prelude(self):
        src = "(define (squares l) (map (lambda (x) (* x x)) l))"
        assert verify_source(src, "squares", ["list"]).verified

    def test_foldr_from_the_prelude(self):
        src = "(define (total l) (foldr + 0 l))"
        assert verify_source(src, "total", ["list"]).verified

    def test_prelude_range_counts_up(self):
        # range ascends: SC stays unknown; the MC verifier proves it.
        from repro.mc.static import verify_source_mc

        src = "(define (upto n) (range 0 n))"
        assert not verify_source(src, "upto", ["nat"]).verified
        assert verify_source_mc(src, "upto", ["nat"]).verified

    def test_prelude_can_be_disabled(self):
        from repro.lang.parser import parse_program
        from repro.symbolic.engine import Engine

        engine = Engine(parse_program("(define (id x) x)"),
                        include_prelude=False)
        from repro.sexp.datum import intern

        assert intern("map") not in engine.globals.bindings

    def test_define_contract_entry_is_gracefully_unknown(self):
        # Contract attachment is a run-time application the summary-based
        # engine cannot resolve to a closure; the verdict must be a clean
        # UNKNOWN, not a crash.  (Verify the raw function instead.)
        src = """
        (define/contract (fact n) (->t/c nat/c nat/c)
          (if (zero? n) 1 (* n (fact (- n 1)))))
        """
        v = verify_source(src, "fact", ["nat"])
        assert not v.verified
        assert "not a statically known closure" in v.reasons[0]
