"""The object-language contract system: library combinators, the arrow
macros, define/contract, blame discipline, and total-correctness
contracts (§2.3: terminating/c composed with pre/post conditions)."""

import pytest

from repro.errors import BlameError
from repro.eval.machine import run_source
from repro.lang.contracts_lib import CONTRACT_LIBRARY_NAMES
from repro.lang.parser import ParseError, parse_program


def run(src: str, **kwargs):
    return run_source(src, **kwargs)


def value_of(src: str, **kwargs):
    answer = run(src, **kwargs)
    assert answer.is_value(), f"expected a value, got {answer!r}"
    return answer


def blame_of(src: str, **kwargs) -> BlameError:
    answer = run(src, **kwargs)
    assert answer.kind == answer.RT_ERROR, f"expected blame, got {answer!r}"
    assert isinstance(answer.error, BlameError), answer.error
    return answer.error


class TestLibraryIsLoaded:
    def test_every_documented_name_is_bound(self):
        probes = " ".join(f"(procedure? {n})" if "/" not in n or n[0] != "a"
                          else n for n in [])
        for name in CONTRACT_LIBRARY_NAMES:
            answer = run(f"(void {name})")
            assert answer.is_value(), f"{name} is not bound"

    def test_library_does_not_leak_into_prims(self):
        from repro.lang.prims import PRIM_NAMES

        assert "contract" not in PRIM_NAMES
        assert "blame-error" in PRIM_NAMES


class TestFlatContracts:
    def test_accepting_returns_the_value(self):
        assert value_of("(contract nat/c 42 'p 'n)").value == 42

    def test_rejection_blames_positive(self):
        err = blame_of("(contract nat/c -1 'server 'client)")
        assert err.party == "server"
        assert err.contract_name == "natural?"

    def test_flat_c_wraps_any_predicate(self):
        assert value_of("(contract (flat/c even?) 4 'p 'n)").value == 4
        blame_of("(contract (flat/c even?) 3 'p 'n)")

    def test_named_flat_reports_its_name(self):
        err = blame_of(
            "(contract (flat-named/c 'small? (lambda (v) (< v 10))) 99 'p 'n)"
        )
        assert err.contract_name == "small?"

    def test_comparison_contracts(self):
        assert value_of("(contract (between/c 1 5) 3 'p 'n)").value == 3
        blame_of("(contract (between/c 1 5) 9 'p 'n)")
        assert value_of("(contract (>=/c 0) 0 'p 'n)").value == 0
        blame_of("(contract (</c 0) 0 'p 'n)")
        blame_of("(contract (=/c 7) 8 'p 'n)")

    def test_type_contracts(self):
        assert value_of("(contract bool/c #f 'p 'n)").value is False
        assert value_of("(contract sym/c 'a 'p 'n)").value.name == "a"
        assert value_of('(contract str/c "s" \'p \'n)').value == "s"
        blame_of("(contract str/c 's 'p 'n)")
        assert value_of("(contract nil/c '() 'p 'n)")
        blame_of("(contract nil/c '(1) 'p 'n)")

    def test_any_c_accepts_everything(self):
        for v in ("42", "#f", "'()", "car"):
            assert value_of(f"(contract any/c {v} 'p 'n)").is_value()

    def test_none_c_rejects_everything(self):
        blame_of("(contract none/c 42 'p 'n)")

    def test_crashing_predicate_is_a_runtime_error(self):
        answer = run("(contract (flat/c car) 5 'p 'n)")
        assert answer.kind == answer.RT_ERROR


class TestCombinators:
    def test_and_c_checks_in_order(self):
        assert value_of("(contract (and/c int/c (>=/c 0)) 3 'p 'n)").value == 3
        err = blame_of("(contract (and/c int/c (>=/c 0)) 'x 'p 'n)")
        assert err.contract_name == "integer?"
        err = blame_of("(contract (and/c int/c (>=/c 0)) -3 'p 'n)")
        assert err.contract_name == ">=/c"

    def test_empty_and_c_is_any_c(self):
        assert value_of("(contract (and/c) 'anything 'p 'n)").is_value()

    def test_empty_or_c_is_none_c(self):
        blame_of("(contract (or/c) 5 'p 'n)")

    def test_or_c_dispatches_on_first_order_test(self):
        assert value_of("(contract (or/c nat/c bool/c) #t 'p 'n)").value is True
        assert value_of("(contract (or/c nat/c bool/c) 4 'p 'n)").value == 4
        err = blame_of("(contract (or/c nat/c bool/c) 'sym 'p 'n)")
        assert err.contract_name == "or/c"

    def test_or_c_with_a_function_branch(self):
        src = """
        (define checked (contract (or/c nat/c (->/c nat/c nat/c))
                                  (lambda (x) (+ x 1)) 'p 'n))
        (checked 4)
        """
        assert value_of(src).value == 5

    def test_not_c(self):
        assert value_of("(contract (not/c nat/c) -1 'p 'n)").value == -1
        blame_of("(contract (not/c nat/c) 1 'p 'n)")

    def test_listof_c_flat(self):
        assert value_of("(contract (listof/c nat/c) '(1 2 3) 'p 'n)")
        blame_of("(contract (listof/c nat/c) '(1 -2 3) 'p 'n)")
        blame_of("(contract (listof/c nat/c) 5 'p 'n)")

    def test_listof_c_empty_list(self):
        assert value_of("(contract (listof/c nat/c) '() 'p 'n)")

    def test_listof_c_higher_order_elements(self):
        src = """
        (define fs (contract (listof/c (->/c nat/c nat/c))
                             (list (lambda (x) x) (lambda (x) (- x 9)))
                             'maker 'user))
        ((second fs) 3)
        """
        err = blame_of(src)
        assert err.party == "maker"

    def test_cons_c(self):
        assert value_of("(contract (cons/c nat/c sym/c) (cons 1 'a) 'p 'n)")
        blame_of("(contract (cons/c nat/c sym/c) (cons -1 'a) 'p 'n)")
        blame_of("(contract (cons/c nat/c sym/c) 7 'p 'n)")

    def test_nonempty_listof_c(self):
        assert value_of("(contract (nonempty-listof/c int/c) '(1) 'p 'n)")
        blame_of("(contract (nonempty-listof/c int/c) '() 'p 'n)")

    def test_first_order_accessor(self):
        assert value_of("((contract-first-order nat/c) 3)").value is True
        assert value_of("((contract-first-order nat/c) -3)").value is False
        assert value_of("((contract-first-order (and/c int/c (>/c 2))) 1)").value is False


class TestArrowContracts:
    def test_zero_arity(self):
        src = "(define f (contract (->/c nat/c) (lambda () 7) 'p 'n)) (f)"
        assert value_of(src).value == 7

    def test_domain_violation_blames_negative(self):
        src = """
        (define f (contract (->/c nat/c nat/c) (lambda (x) x) 'server 'client))
        (f -1)
        """
        assert blame_of(src).party == "client"

    def test_range_violation_blames_positive(self):
        src = """
        (define f (contract (->/c nat/c nat/c) (lambda (x) (- x 10)) 'server 'client))
        (f 3)
        """
        assert blame_of(src).party == "server"

    def test_non_procedure_blames_positive(self):
        err = blame_of("(contract (->/c nat/c nat/c) 5 'server 'client)")
        assert err.party == "server"
        assert err.contract_name == "->/c"

    def test_higher_order_domain_double_swap(self):
        # The server misuses the callback the client supplied: the callback's
        # domain swaps twice, so the *server* is blamed.
        src = """
        (define use (contract (->/c (->/c nat/c nat/c) nat/c)
                              (lambda (k) (k -5))
                              'server 'client))
        (use (lambda (x) x))
        """
        assert blame_of(src).party == "server"

    def test_higher_order_range_blames_client(self):
        # The client's callback returns garbage: the callback's range has
        # singly-swapped blame, charging the client.
        src = """
        (define use (contract (->/c (->/c nat/c nat/c) nat/c)
                              (lambda (k) (k 5))
                              'server 'client))
        (use (lambda (x) (- x 100)))
        """
        assert blame_of(src).party == "client"

    def test_contracts_evaluate_once(self):
        # The domain expression runs once at contract construction.
        src = """
        (define hits (box 0))
        (define (counting-nat)
          (set-box! hits (+ 1 (unbox hits)))
          nat/c)
        (define f (contract (->/c (counting-nat) nat/c) (lambda (x) x) 'p 'n))
        (f 1) (f 2) (f 3)
        (unbox hits)
        """
        assert value_of(src).value == 1

    def test_multi_argument_positions(self):
        src = """
        (define f (contract (->/c nat/c sym/c nat/c) (lambda (n s) n) 'p 'n))
        (f 1 'ok)
        """
        assert value_of(src).value == 1
        err = blame_of("""
        (define f (contract (->/c nat/c sym/c nat/c) (lambda (n s) n) 'p 'n))
        (f 1 2)
        """)
        assert err.contract_name == "symbol?"


class TestDefineContract:
    def test_function_form(self):
        src = """
        (define/contract (inc x) (->/c int/c int/c) (+ x 1))
        (inc 4)
        """
        assert value_of(src).value == 5

    def test_value_form(self):
        src = """
        (define/contract limit nat/c 100)
        limit
        """
        assert value_of(src).value == 100

    def test_value_form_rejects(self):
        err = blame_of("(define/contract limit nat/c -1) limit")
        assert err.party == "limit"

    def test_parties_are_derived_from_the_name(self):
        err = blame_of("""
        (define/contract (f x) (->/c nat/c nat/c) x)
        (f -1)
        """)
        assert err.party == "f-caller"

    def test_internal_define_contract(self):
        src = """
        (define (outer)
          (define/contract (inner x) (->/c nat/c nat/c) (* x x))
          (inner 3))
        (outer)
        """
        assert value_of(src).value == 9

    def test_recursive_calls_go_through_the_contract(self):
        # The body's recursive reference resolves to the wrapped binding,
        # so a bad internal call is caught and blames the caller party.
        src = """
        (define/contract (countdown x) (->/c nat/c nat/c)
          (if (zero? x) 0 (countdown (- x 2))))
        (countdown 5)
        """
        err = blame_of(src)
        assert err.party == "countdown-caller"

    def test_malformed_forms_raise_parse_errors(self):
        with pytest.raises(ParseError):
            parse_program("(define/contract f nat/c)")
        with pytest.raises(ParseError):
            parse_program("(define/contract (f x) nat/c)")
        with pytest.raises(ParseError):
            parse_program("(define/contract 3 nat/c 4)")


class TestTotalCorrectness:
    FACT = """
    (define/contract (fact n) (->t/c nat/c nat/c)
      (if (zero? n) 1 (* n (fact (- n 1)))))
    """

    def test_terminating_function_passes(self):
        assert value_of(self.FACT + "(fact 5)", mode="contract").value == 120

    def test_divergence_is_an_sc_error(self):
        src = """
        (define/contract (spin n) (->t/c nat/c nat/c)
          (if (zero? n) 0 (spin n)))
        (spin 3)
        """
        answer = run(src, mode="contract")
        assert answer.kind == answer.SC_ERROR
        assert "->t/c" in str(answer.violation.blame)

    def test_domain_still_checked(self):
        err = blame_of(self.FACT + "(fact -1)", mode="contract")
        assert err.party == "fact-caller"

    def test_range_still_checked(self):
        src = """
        (define/contract (bad n) (->t/c nat/c nat/c) (- n 10))
        (bad 3)
        """
        assert blame_of(src, mode="contract").party == "bad"

    def test_unmonitored_mode_skips_termination_but_keeps_types(self):
        # mode='off' never monitors, but the flat checks still run.
        err = blame_of(self.FACT + "(fact -1)", mode="off")
        assert err.party == "fact-caller"

    def test_total_contract_under_full_monitoring(self):
        assert value_of(self.FACT + "(fact 6)", mode="full").value == 720

    def test_composes_with_and_c(self):
        src = """
        (define/contract (len l) (and/c proc/c (->t/c (listof/c any/c) nat/c))
          (if (null? l) 0 (+ 1 (len (cdr l)))))
        (len '(a b c))
        """
        assert value_of(src, mode="contract").value == 3


class TestContractsUnderMonitoring:
    def test_projection_wrappers_do_not_trip_the_monitor(self):
        # Wrappers call the raw function with the same (checked) arguments;
        # under full monitoring this must not be reported as a size-change
        # violation of the wrapper itself.
        src = """
        (define/contract (sum l) (->/c (listof/c int/c) int/c)
          (if (null? l) 0 (+ (car l) (sum (cdr l)))))
        (sum '(1 2 3 4))
        """
        assert value_of(src, mode="full").value == 10

    def test_listof_projection_is_itself_size_change_terminating(self):
        # The letrec'd wrap loop descends on the list structure.  (The list
        # is built by a *descending* loop: the prelude's iota counts up and
        # is itself rejected by full monitoring.)
        src = """
        (define (down n) (if (zero? n) '() (cons n (down (- n 1)))))
        (contract (listof/c nat/c) (down 50) 'p 'n)
        """
        assert value_of(src, mode="full").is_value()
