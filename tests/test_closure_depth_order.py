"""The Jones–Bohr closure-depth extension (§2.2 future work)."""

from repro.eval.machine import Answer, run_source
from repro.sct.monitor import SCMonitor
from repro.sct.order import DESC, EQ, NONE, ClosureDepthOrder

# peel recurses on a closure "onion": with incomparable closures the
# monitor must flag it; the depth order proves the descent.
ONION = """
(define (make-onion n)
  (if (zero? n)
      (lambda () 'core)
      (let ([inner (make-onion (- n 1))])
        (lambda () inner))))
(define (peel f)
  (let ([inner (f)])
    (if (procedure? inner) (peel inner) inner)))
(peel (make-onion 6))
"""


class TestDepthComputation:
    def _closures(self):
        from repro.lang.parser import parse_program
        from repro.eval.machine import make_env, run_program

        src = """
        (define flat (lambda () 1))
        (define nested (let ([inner (lambda () 2)]) (lambda () inner)))
        (list flat nested)
        """
        answer = run_source(src)
        assert answer.kind == Answer.VALUE
        flat = answer.value.car
        nested = answer.value.cdr.car
        return flat, nested

    def test_depths(self):
        order = ClosureDepthOrder()
        flat, nested = self._closures()
        assert order.closure_depth(flat) == 1
        assert order.closure_depth(nested) == 2

    def test_compare_closures(self):
        order = ClosureDepthOrder()
        flat, nested = self._closures()
        assert order.compare(nested, flat) == DESC
        assert order.compare(flat, nested) == NONE
        assert order.compare(flat, flat) == EQ

    def test_falls_back_to_size_for_other_values(self):
        order = ClosureDepthOrder()
        assert order.compare(5, 3) == DESC
        assert order.compare(3, 3) == EQ

    def test_cycles_do_not_hang(self):
        src = """
        (define (rec) rec)
        rec
        """
        answer = run_source(src)
        order = ClosureDepthOrder()
        assert order.closure_depth(answer.value) >= 1


class TestOnionProgram:
    def test_default_order_flags_the_onion(self):
        """Closures are incomparable under the default order (the paper's
        §2.2 choice), so closure-only descent is rejected."""
        answer = run_source(ONION, mode="full")
        assert answer.kind == Answer.SC_ERROR

    def test_depth_order_accepts_the_onion(self):
        monitor = SCMonitor(order=ClosureDepthOrder())
        answer = run_source(ONION, mode="full", monitor=monitor)
        assert answer.kind == Answer.VALUE
        assert answer.value.name == "core"

    def test_depth_order_still_catches_divergence(self):
        src = """
        (define (spin f) (spin (lambda () f)))
        (spin (lambda () 1))
        """
        monitor = SCMonitor(order=ClosureDepthOrder())
        answer = run_source(src, mode="full", monitor=monitor)
        assert answer.kind == Answer.SC_ERROR  # depth grows, never shrinks

    def test_depth_order_preserves_corpus_soundness(self):
        from repro.corpus.registry import REGISTRY

        prog = REGISTRY["sct-3"]
        monitor = SCMonitor(order=ClosureDepthOrder())
        answer = run_source(prog.source, mode="full", monitor=monitor)
        assert answer.kind == Answer.VALUE
