"""Solver tests: Fourier–Motzkin over ℤ with tightening and ≠-splits."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver import Atom, LinExpr, Solver, eq, ge, gt, le, lt, ne
from repro.solver.fm import unsat

X = LinExpr.var("x")
Y = LinExpr.var("y")
Z = LinExpr.var("z")
ONE = LinExpr.constant(1)
ZERO = LinExpr.constant(0)


def c(n):
    return LinExpr.constant(n)


class TestLinExpr:
    def test_arith(self):
        e = X + X + c(3) - Y
        assert e.coeffs == {"x": 2, "y": -1} and e.const == 3

    def test_zero_coeffs_dropped(self):
        assert (X - X).coeffs == {}

    def test_scale(self):
        assert (X + ONE).scale(3).coeffs == {"x": 3}
        assert (X + ONE).scale(3).const == 3

    def test_equality_and_hash(self):
        assert X + Y == Y + X
        assert hash(X + Y) == hash(Y + X)


class TestUnsat:
    def test_constant_contradiction(self):
        assert unsat((le(ONE, ZERO),))
        assert not unsat((le(ZERO, ONE),))

    def test_bounds_conflict(self):
        # x ≥ 5 ∧ x ≤ 3
        assert unsat((ge(X, c(5)), le(X, c(3))))
        assert not unsat((ge(X, c(3)), le(X, c(5))))

    def test_transitive_chain(self):
        # x < y ∧ y < z ∧ z < x
        assert unsat((lt(X, Y), lt(Y, Z), lt(Z, X)))

    def test_equality_split(self):
        assert unsat((eq(X, c(2)), le(X, c(1))))
        assert not unsat((eq(X, c(2)), le(X, c(2)),))

    def test_integer_tightening(self):
        # 2x ≥ 1 ∧ 2x ≤ 1 has the rational solution x = 1/2 but no integer one.
        two_x = X.scale(2)
        assert unsat((ge(two_x, ONE), le(two_x, ONE)))

    def test_disequality_split(self):
        # x ≥ 0 ∧ x ≤ 0 ∧ x ≠ 0
        assert unsat((ge(X, ZERO), le(X, ZERO), ne(X, ZERO)))
        assert not unsat((ge(X, ZERO), ne(X, ZERO)))

    def test_nat_nonzero_means_positive(self):
        # x ≥ 0 ∧ x ≠ 0 ∧ x ≤ 0  — the ack branch-2 pattern.
        assert unsat((ge(X, ZERO), ne(X, ZERO), le(X, ZERO)))


class TestEntailment:
    def setup_method(self):
        self.s = Solver()

    def test_le_entailment(self):
        assert self.s.entails((ge(X, c(5)),), ge(X, c(3)))
        assert not self.s.entails((ge(X, c(3)),), ge(X, c(5)))

    def test_the_ack_descent_query(self):
        """m ≥ 0 ∧ m ≠ 0 ⊨ m - 1 < m is trivial, but also ⊨ m - 1 ≥ 0
        (the |m-1| = m-1 sign fact) — the §4.2 reasoning chain."""
        facts = (ge(X, ZERO), ne(X, ZERO))
        assert self.s.entails(facts, ge(X - ONE, ZERO))
        assert self.s.entails(facts, lt(X - ONE, X))

    def test_equality_entailment(self):
        facts = (eq(X, Y), eq(Y, c(3)))
        assert self.s.entails(facts, eq(X, c(3)))
        assert not self.s.entails((eq(X, Y),), eq(X, c(3)))

    def test_two_var_reasoning(self):
        # x ≥ 1 ∧ y ≥ x ⊨ y ≥ 1
        facts = (ge(X, ONE), ge(Y, X))
        assert self.s.entails(facts, ge(Y, ONE))

    def test_subtraction_descent(self):
        # x ≥ y ∧ y ≥ 1 ⊨ x - y < x  (the div benchmark pattern)
        facts = (ge(X, Y), ge(Y, ONE))
        assert self.s.entails(facts, lt(X - Y, X))
        assert self.s.entails(facts, ge(X - Y, ZERO))

    def test_unknown_stays_unproven(self):
        assert not self.s.entails((), lt(X, Y))
        assert not self.s.entails((ge(X, ZERO),), lt(X.scale(2), X))

    def test_satisfiable(self):
        assert self.s.satisfiable((ge(X, ZERO),))
        assert not self.s.satisfiable((ge(X, ONE), le(X, ZERO)))

    def test_caching_consistency(self):
        facts = (ge(X, c(5)),)
        r1 = self.s.entails(facts, ge(X, c(3)))
        r2 = self.s.entails(facts, ge(X, c(3)))
        assert r1 == r2 is True


# -- properties: validate against brute-force over small domains ----------------

_small = st.integers(min_value=-3, max_value=3)


@st.composite
def _system(draw):
    nvars = draw(st.integers(min_value=1, max_value=3))
    names = ["x", "y", "z"][:nvars]
    n_atoms = draw(st.integers(min_value=1, max_value=4))
    atoms = []
    for _ in range(n_atoms):
        coeffs = {n: draw(_small) for n in names}
        const = draw(st.integers(min_value=-4, max_value=4))
        op = draw(st.sampled_from(["<=", "==", "!="]))
        atoms.append(Atom(op, LinExpr(coeffs, const)))
    return names, tuple(atoms)


def _brute_force_sat(names, atoms, lo=-6, hi=6):
    import itertools

    for values in itertools.product(range(lo, hi + 1), repeat=len(names)):
        env = dict(zip(names, values))
        ok = True
        for atom in atoms:
            val = atom.expr.const + sum(
                c * env[v] for v, c in atom.expr.coeffs.items()
            )
            if atom.op == "<=" and not val <= 0:
                ok = False
            elif atom.op == "==" and val != 0:
                ok = False
            elif atom.op == "!=" and val == 0:
                ok = False
            if not ok:
                break
        if ok:
            return True
    return False


@settings(max_examples=300, deadline=None)
@given(_system())
def test_unsat_never_contradicts_a_witness(sys_):
    """Soundness: if brute force finds a model in a small box, unsat must
    not claim unsatisfiability."""
    names, atoms = sys_
    if _brute_force_sat(names, atoms):
        assert not unsat(atoms)
