"""The ``fuel`` knob: a step bound whose exhaustion is a *distinct*
outcome (:class:`~repro.eval.errors.FuelExhausted`) while remaining a
``MachineTimeout`` subclass, so every existing ``Answer.TIMEOUT``
consumer keeps working unchanged."""

import pytest

from repro.eval import FuelExhausted, MachineTimeout
from repro.eval.machine import Answer, run_source
from repro.lang.parser import parse_program
from repro.eval.machine import run_program

LOOP = "(define (spin n) (spin (+ n 1)))\n(spin 0)\n"
QUICK = "(define (f n) (if (zero? n) 42 (f (- n 1))))\n(f 10)\n"

MACHINES = ("tree", "compiled")


@pytest.mark.parametrize("machine", MACHINES)
class TestFuel:
    def test_exhaustion_is_timeout_kind(self, machine):
        a = run_source(LOOP, mode="off", fuel=5_000, machine=machine)
        assert a.kind == Answer.TIMEOUT
        assert isinstance(a.error, FuelExhausted)
        assert isinstance(a.error, MachineTimeout)
        assert "fuel exhausted" in str(a.error)

    def test_ample_fuel_returns_value(self, machine):
        a = run_source(QUICK, mode="off", fuel=1_000_000, machine=machine)
        assert a.kind == Answer.VALUE and a.value == 42

    def test_fuel_wins_over_max_steps(self, machine):
        a = run_source(LOOP, mode="off", fuel=5_000,
                       max_steps=50_000_000, machine=machine)
        assert a.kind == Answer.TIMEOUT
        assert isinstance(a.error, FuelExhausted)

    def test_run_program_accepts_fuel(self, machine):
        program = parse_program(LOOP, source="<fuel-test>")
        a = run_program(program, mode="off", fuel=5_000, machine=machine)
        assert a.kind == Answer.TIMEOUT
        assert isinstance(a.error, FuelExhausted)

    def test_monitored_run_accepts_fuel(self, machine):
        a = run_source(QUICK, mode="full", fuel=1_000_000, machine=machine)
        assert a.kind == Answer.VALUE and a.value == 42


class TestFuelCli:
    def test_run_fuel_exit_code_and_message(self, tmp_path, capsys):
        from repro.cli import main

        f = tmp_path / "loop.scm"
        f.write_text(LOOP)
        code = main(["run", str(f), "--mode", "off", "--fuel", "5000"])
        assert code == 4
        assert "fuel exhausted" in capsys.readouterr().err

    def test_max_steps_alias_same_exit_code(self, tmp_path, capsys):
        """--max-steps is an alias for the same budget: exit code 4
        either way (the paper-era spelling keeps working)."""
        from repro.cli import main

        f = tmp_path / "loop.scm"
        f.write_text(LOOP)
        code = main(["run", str(f), "--mode", "off",
                     "--max-steps", "5000"])
        assert code == 4
        assert "exhausted" in capsys.readouterr().err
