"""The ``fuel`` knob: a step bound whose exhaustion is a *distinct*
outcome (:class:`~repro.eval.errors.FuelExhausted`) while remaining a
``MachineTimeout`` subclass, so every existing ``Answer.TIMEOUT``
consumer keeps working unchanged."""

import pytest

from repro.eval import FuelExhausted, MachineTimeout
from repro.eval.machine import Answer, run_source
from repro.lang.parser import parse_program
from repro.eval.machine import run_program

LOOP = "(define (spin n) (spin (+ n 1)))\n(spin 0)\n"
QUICK = "(define (f n) (if (zero? n) 42 (f (- n 1))))\n(f 10)\n"

MACHINES = ("tree", "compiled")


@pytest.mark.parametrize("machine", MACHINES)
class TestFuel:
    def test_exhaustion_is_timeout_kind(self, machine):
        a = run_source(LOOP, mode="off", fuel=5_000, machine=machine)
        assert a.kind == Answer.TIMEOUT
        assert isinstance(a.error, FuelExhausted)
        assert isinstance(a.error, MachineTimeout)
        assert "fuel exhausted" in str(a.error)

    def test_ample_fuel_returns_value(self, machine):
        a = run_source(QUICK, mode="off", fuel=1_000_000, machine=machine)
        assert a.kind == Answer.VALUE and a.value == 42

    def test_fuel_wins_over_max_steps(self, machine):
        a = run_source(LOOP, mode="off", fuel=5_000,
                       max_steps=50_000_000, machine=machine)
        assert a.kind == Answer.TIMEOUT
        assert isinstance(a.error, FuelExhausted)

    def test_run_program_accepts_fuel(self, machine):
        program = parse_program(LOOP, source="<fuel-test>")
        a = run_program(program, mode="off", fuel=5_000, machine=machine)
        assert a.kind == Answer.TIMEOUT
        assert isinstance(a.error, FuelExhausted)

    def test_monitored_run_accepts_fuel(self, machine):
        a = run_source(QUICK, mode="full", fuel=1_000_000, machine=machine)
        assert a.kind == Answer.VALUE and a.value == 42


@pytest.mark.parametrize("machine", MACHINES)
class TestFuelBoundaries:
    """The fuel contract at its edges — identical on both machines:
    ``fuel=0`` is immediate exhaustion, the reported limit is the real
    limit, ``Answer.steps`` is metered on *every* outcome kind, and the
    completes/exhausts boundary is exact."""

    def test_fuel_zero_is_immediate_exhaustion(self, machine):
        a = run_source(QUICK, mode="off", fuel=0, machine=machine)
        assert a.kind == Answer.TIMEOUT
        assert isinstance(a.error, FuelExhausted)
        assert a.steps == 0
        assert "after 0 steps" in str(a.error)

    def test_fuel_one(self, machine):
        a = run_source(QUICK, mode="off", fuel=1, machine=machine)
        assert a.kind == Answer.TIMEOUT
        assert isinstance(a.error, FuelExhausted)
        assert a.steps == 1
        assert "after 1 steps" in str(a.error)

    def test_exhaustion_reports_real_limit(self, machine):
        for limit in (0, 1, 17, 5_000):
            a = run_source(LOOP, mode="off", fuel=limit, machine=machine)
            assert isinstance(a.error, FuelExhausted)
            assert a.error.limit == limit
            assert f"after {limit} steps" in str(a.error)
            assert a.steps == limit

    def test_exact_step_boundary(self, machine):
        # Measure the true cost S, then check fuel=S completes while
        # fuel=S-1 exhausts: the budget is exact, not off-by-one.
        a = run_source(QUICK, mode="off", fuel=1_000_000, machine=machine)
        assert a.kind == Answer.VALUE
        cost = a.steps
        assert 0 < cost < 1_000_000
        exact = run_source(QUICK, mode="off", fuel=cost, machine=machine)
        assert exact.kind == Answer.VALUE and exact.value == 42
        assert exact.steps == cost
        short = run_source(QUICK, mode="off", fuel=cost - 1,
                           machine=machine)
        assert short.kind == Answer.TIMEOUT
        assert isinstance(short.error, FuelExhausted)

    def test_steps_metered_on_runtime_error(self, machine):
        a = run_source("(define (f n) (if (zero? n) (car 1) (f (- n 1))))\n"
                       "(f 5)\n", mode="off", fuel=100_000, machine=machine)
        assert a.kind == Answer.RT_ERROR
        assert 0 < a.steps < 100_000

    def test_steps_metered_on_violation(self, machine):
        from repro.sct.monitor import SCMonitor

        program = parse_program(LOOP, source="<fuel-test>")
        a = run_program(program, mode="full", monitor=SCMonitor(),
                        fuel=5_000_000, machine=machine)
        assert a.kind == Answer.SC_ERROR
        assert 0 < a.steps < 5_000_000

    def test_unlimited_fuel_reports_zero_steps(self, machine):
        # fuel=None means "unmetered": steps stays 0 rather than lying.
        a = run_source(QUICK, mode="off", fuel=None, machine=machine)
        assert a.kind == Answer.VALUE and a.steps == 0

    def test_trace_source_same_fuel_zero_semantics(self, machine):
        from repro.sct.trace import trace_source

        r = trace_source(QUICK, mode="full", fuel=0, machine=machine)
        assert r.answer.kind == Answer.TIMEOUT
        assert isinstance(r.answer.error, FuelExhausted)
        assert r.answer.steps == 0


class TestFuelParity:
    """The compiled machine charges fuel on the same schedule as the
    tree machine *per monitored call* (one unit per argument at APPLY —
    see the comment in machine.py), but spends fewer units on plumbing.
    The admitted-call ratio is therefore a small stable constant, not
    unbounded drift; pin it below 5x so a fuel-accounting regression on
    either machine trips this test."""

    COUNTED = ("(define (count n)\n"
               "  (if (zero? n) 0 (begin (display n) (count (- n 1)))))\n"
               "(count 1000000)\n")

    @staticmethod
    def _admitted(machine, fuel):
        a = run_source(TestFuelParity.COUNTED, mode="off", fuel=fuel,
                       machine=machine)
        assert a.kind == Answer.TIMEOUT
        return len(a.output.split())

    def test_compiled_admits_bounded_multiple(self):
        for fuel in (5_000, 20_000):
            tree = self._admitted("tree", fuel)
            compiled = self._admitted("compiled", fuel)
            assert tree > 0 and compiled > 0
            assert compiled >= tree  # compiled is never *slower* per unit
            assert compiled <= 5 * tree

    def test_same_fuel_same_outcome_kind(self):
        # Whatever the per-unit cost, the *contract* is identical:
        # exhaustion kind, error type, limit reporting.
        for fuel in (0, 1, 1_000):
            t = run_source(LOOP, mode="off", fuel=fuel, machine="tree")
            c = run_source(LOOP, mode="off", fuel=fuel, machine="compiled")
            assert t.kind == c.kind == Answer.TIMEOUT
            assert type(t.error) is type(c.error) is FuelExhausted
            assert t.error.limit == c.error.limit == fuel
            assert t.steps == c.steps == fuel


class TestFuelCli:
    def test_run_fuel_exit_code_and_message(self, tmp_path, capsys):
        from repro.cli import main

        f = tmp_path / "loop.scm"
        f.write_text(LOOP)
        code = main(["run", str(f), "--mode", "off", "--fuel", "5000"])
        assert code == 4
        assert "fuel exhausted" in capsys.readouterr().err

    def test_fuel_zero_exits_4_immediately(self, tmp_path, capsys):
        # --fuel 0 must not be mistaken for "unlimited" by a falsy-zero
        # check anywhere on the CLI path.
        from repro.cli import main

        f = tmp_path / "quick.scm"
        f.write_text(QUICK)
        code = main(["run", str(f), "--mode", "off", "--fuel", "0"])
        assert code == 4
        assert "after 0 steps" in capsys.readouterr().err

    def test_max_steps_alias_same_exit_code(self, tmp_path, capsys):
        """--max-steps is an alias for the same budget: exit code 4
        either way (the paper-era spelling keeps working)."""
        from repro.cli import main

        f = tmp_path / "loop.scm"
        f.write_text(LOOP)
        code = main(["run", str(f), "--mode", "off",
                     "--max-steps", "5000"])
        assert code == 4
        assert "exhausted" in capsys.readouterr().err
