"""Fig. 6 call-sequence semantics: the completeness lemmas, executably.

Lemma 3.4: terminating programs evaluate to the standard value under ↓↓.
Lemma 3.5 (+ converse, by determinism): the enforcing semantics answers
errorSC iff ↓↓ witnesses a prog?-violating table entry.
"""

import pytest

from repro.corpus import all_programs, diverging_programs
from repro.eval.callseq import run_callseq
from repro.eval.machine import Answer, run_source

TERMINATING = [p for p in all_programs()
               if p.measures is None and p.name != "scheme"]
DIVERGING = [d for d in diverging_programs() if d.measures is None]


@pytest.mark.parametrize("prog", TERMINATING, ids=[p.name for p in TERMINATING])
class TestLemma34:
    def test_callseq_agrees_with_standard(self, prog):
        standard = run_source(prog.source, mode="off", max_steps=10_000_000)
        callseq, _monitor = run_callseq(prog.source, max_steps=10_000_000)
        assert standard.kind == Answer.VALUE
        assert callseq.kind == Answer.VALUE
        from repro.values.equality import scheme_equal

        assert scheme_equal(standard.value, callseq.value)


@pytest.mark.parametrize("prog", TERMINATING, ids=[p.name for p in TERMINATING])
class TestLemma35TerminatingSide:
    def test_no_violation_recorded_iff_monitoring_succeeds(self, prog):
        monitored = run_source(prog.source, mode="full", max_steps=10_000_000)
        _answer, monitor = run_callseq(prog.source, max_steps=10_000_000)
        assert monitored.kind == Answer.VALUE
        assert monitor.violations == []


@pytest.mark.parametrize("prog", DIVERGING, ids=[d.name for d in DIVERGING])
class TestLemma35DivergingSide:
    def test_violation_witnessed_without_enforcement(self, prog):
        """If ⬇ gives errorSC, ↓↓ accumulates a table whose entry violates
        prog? — observed as a recorded violation."""
        monitored = run_source(prog.source, mode="full")
        assert monitored.kind == Answer.SC_ERROR
        answer, monitor = run_callseq(prog.source, max_steps=300_000)
        assert monitor.violations, "call-sequence semantics saw no witness"
        # The non-enforcing run either times out (it really diverges) or
        # crashes in its own way — it must NOT produce a clean value.
        assert answer.kind != Answer.VALUE

    def test_first_witness_matches_enforcing_witness(self, prog):
        """Determinism: the first recorded witness is the one enforcement
        raises (same function, same violating composition)."""
        monitored = run_source(prog.source, mode="full")
        _a, monitor = run_callseq(prog.source, max_steps=300_000)
        enforced = monitored.violation
        witnessed = monitor.violations[0]
        assert witnessed.function == enforced.function
        assert witnessed.composition == enforced.composition


class TestCollectingMonitorKeepsExtending:
    def test_tables_extend_past_the_violation(self):
        """Fig. 6's ext never aborts: after a violation the tables keep
        accumulating graphs (here: several violations recorded)."""
        src = """
        (define (f n) (if (zero? n) 0 (f 5)))
        (f 5)
        """
        # f(5) → f(5) → ... is an infinite loop; bounded by fuel.
        answer, monitor = run_callseq(src, max_steps=50_000)
        assert answer.kind == Answer.TIMEOUT
        assert len(monitor.violations) > 1
