"""Monitor (`upd`) tests: entries, incremental SCP, backoff, keying,
equivalence with the paper's quadratic `prog?`."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ds.hamt import Hamt
from repro.lang.ast import Lam, Lit
from repro.sct.errors import SizeChangeViolation
from repro.sct.graph import SCGraph, graph_of_values, prog_ok
from repro.sct.monitor import SCMonitor
from repro.sct.order import SizeOrder
from repro.sexp.datum import intern
from repro.values.env import Env, GlobalEnv
from repro.values.values import Closure


def _closure(name="f", nparams=2):
    params = tuple(intern(f"p{i}") for i in range(nparams))
    lam = Lam(params, Lit(1), name=name)
    return Closure(lam, GlobalEnv())


def run_calls(monitor, clo, arg_seq, blame="test"):
    """Thread a persistent table through a sequence of calls to clo."""
    table = Hamt.empty()
    for args in arg_seq:
        table = monitor.upd(table, clo, tuple(args), blame)
    return table


class TestUpd:
    def test_first_call_trivial_entry(self):
        m = SCMonitor()
        clo = _closure()
        table = run_calls(m, clo, [(2, 0)])
        entry = table[m.key_for(clo)]
        assert entry.count == 1
        assert entry.comps == frozenset()
        assert entry.check_args == (2, 0)

    def test_descending_calls_ok(self):
        m = SCMonitor()
        clo = _closure()
        run_calls(m, clo, [(5, 5), (4, 5), (3, 5), (2, 5)])

    def test_flat_calls_violate(self):
        m = SCMonitor()
        clo = _closure()
        with pytest.raises(SizeChangeViolation):
            run_calls(m, clo, [(5, 5), (5, 5)])

    def test_ascending_calls_violate(self):
        m = SCMonitor()
        clo = _closure("g", 1)
        with pytest.raises(SizeChangeViolation):
            run_calls(m, clo, [(1,), (2,)])

    def test_violation_carries_witness(self):
        m = SCMonitor()
        clo = _closure("myfun")
        with pytest.raises(SizeChangeViolation) as exc_info:
            run_calls(m, clo, [(3, 3), (3, 3)], blame="the-party")
        v = exc_info.value
        assert v.function == "myfun"
        assert v.blame == "the-party"
        assert v.prev_args == (3, 3)
        assert v.new_args == (3, 3)
        assert not v.composition.desc_ok()
        assert "myfun" in str(v) and "the-party" in str(v)

    def test_alternating_descent_violates_via_composition(self):
        """Neither arg descends every call, and no cross-descent is ever
        observed: the composition of the two graphs is empty → violation."""
        m = SCMonitor()
        clo = _closure()
        # (10, 1) → (9, 100): p0 descends. (9, 100) → (100, 99): p1 descends
        # but p0 ascends; composing {0↓0} ; {1↓1} = {} which is idempotent
        # with no strict self arc.
        with pytest.raises(SizeChangeViolation):
            run_calls(m, clo, [(10, 1), (9, 100), (100, 99)])

    def test_lexicographic_descent_ok(self):
        """(m, n) lexicographic: m↓ with n anything, or m= and n↓ — the
        classic SCT success case (like ack)."""
        m = SCMonitor()
        clo = _closure()
        run_calls(m, clo, [(3, 3), (3, 2), (3, 1), (2, 9), (2, 8), (1, 100)])

    def test_separate_closures_separate_entries(self):
        m = SCMonitor()
        f, g = _closure("f", 1), _closure("g", 1)
        table = Hamt.empty()
        table = m.upd(table, f, (5,), None)
        table = m.upd(table, g, (5,), None)  # same args, different closure
        assert len(table) == 2

    def test_dynamic_extent_reverts(self):
        """Sibling calls compare against the parent's entry, not each other
        (the table is a persistent value; the caller's table is unchanged)."""
        m = SCMonitor()
        clo = _closure("msort", 1)
        parent = m.upd(Hamt.empty(), clo, (10,), None)
        m.upd(parent, clo, (5,), None)   # left child
        m.upd(parent, clo, (5,), None)   # right child: same size as left,
        # but compared against the parent's 10 — no violation.


class TestBackoff:
    def test_backoff_skips_checks(self):
        m = SCMonitor(backoff=True)
        clo = _closure("f", 1)
        # With backoff, checks happen at calls 2, 4, 8, ...
        run_calls(m, clo, [(100 - i,) for i in range(50)])
        assert m.checks_done < 10

    def test_backoff_still_catches_divergence(self):
        m = SCMonitor(backoff=True)
        clo = _closure("f", 1)
        with pytest.raises(SizeChangeViolation):
            run_calls(m, clo, [(5,)] * 10)

    def test_no_backoff_checks_every_call(self):
        m = SCMonitor(backoff=False)
        clo = _closure("f", 1)
        run_calls(m, clo, [(50 - i,) for i in range(40)])
        assert m.checks_done == 39


class TestPolicy:
    def test_whitelist_skips(self):
        m = SCMonitor(whitelist={"trusted"})
        assert not m.should_monitor(_closure("trusted"))
        assert m.should_monitor(_closure("other"))

    def test_loop_entries_filter(self):
        f = _closure("f")
        m = SCMonitor(loop_entries={f.lam.label})
        assert m.should_monitor(f)
        assert not m.should_monitor(_closure("g"))

    def test_identity_keying_distinguishes_twins(self):
        m = SCMonitor(keying="identity")
        lam = Lam((intern("x"),), Lit(1), name="k")
        env = GlobalEnv()
        c1, c2 = Closure(lam, env), Closure(lam, env)
        assert m.key_for(c1) != m.key_for(c2)

    def test_label_keying_conflates_same_rib(self):
        m = SCMonitor(keying="label")
        lam = Lam((intern("x"),), Lit(1), name="k")
        parent = GlobalEnv()
        c1 = Closure(lam, Env({intern("y"): 1}, parent))
        c2 = Closure(lam, Env({intern("y"): 1}, parent))
        c3 = Closure(lam, Env({intern("y"): 2}, parent))
        assert m.key_for(c1) == m.key_for(c2)
        assert m.key_for(c1) != m.key_for(c3)

    def test_measures_rewrite_arguments(self):
        """A counting-up loop passes with a hi-lo measure (the paper's
        'custom partial order' mechanism for lh-range)."""
        clo = _closure("up", 2)
        plain = SCMonitor()
        with pytest.raises(SizeChangeViolation):
            run_calls(plain, clo, [(0, 5), (1, 5), (2, 5)])
        measured = SCMonitor(measures={"up": lambda a: (a[1] - a[0],)})
        run_calls(measured, clo, [(0, 5), (1, 5), (2, 5), (3, 5)])

    def test_trace_records_graphs(self):
        trace = []
        m = SCMonitor(trace=trace)
        clo = _closure("f", 1)
        run_calls(m, clo, [(3,), (2,), (1,)])
        assert len(trace) == 2
        assert all(isinstance(t[3], SCGraph) for t in trace)


class TestImperativeStrategy:
    def test_upd_mut_and_restore(self):
        m = SCMonitor()
        clo = _closure("f", 1)
        table = {}
        key, prev = m.upd_mut(table, clo, (5,), None)
        assert key in table
        key2, prev2 = m.upd_mut(table, clo, (4,), None)
        assert table[key2].count == 2
        m.restore_mut(table, key2, prev2)
        assert table[key].count == 1
        m.restore_mut(table, key, prev)
        assert key not in table

    def test_upd_mut_violation(self):
        m = SCMonitor()
        clo = _closure("f", 1)
        table = {}
        m.upd_mut(table, clo, (5,), None)
        with pytest.raises(SizeChangeViolation):
            m.upd_mut(table, clo, (5,), None)


# -- incremental closure ≡ quadratic prog? --------------------------------------

_int_args = st.lists(st.integers(0, 4), min_size=2, max_size=2)


@settings(max_examples=300, deadline=None)
@given(st.lists(_int_args, min_size=1, max_size=8))
def test_incremental_scp_equals_reference_prog(arg_vectors):
    """Feeding a call sequence through the monitor raises iff the paper's
    quadratic prog? fails on the accumulated graph sequence."""
    order = SizeOrder()
    graphs_newest_first = []
    for prev, cur in zip(arg_vectors, arg_vectors[1:]):
        graphs_newest_first.insert(0, graph_of_values(tuple(prev), tuple(cur), order))
    expected_ok = prog_ok(graphs_newest_first)

    monitor = SCMonitor()
    clo = _closure("h", 2)
    try:
        run_calls(monitor, clo, [tuple(a) for a in arg_vectors])
        got_ok = True
    except SizeChangeViolation:
        got_ok = False
    assert got_ok == expected_ok
