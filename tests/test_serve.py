"""``sized serve``: the batched termination-checking service.

Everything here boots a real :class:`~repro.serve.server.SizedServer`
in-process (ephemeral port, real worker processes) and talks to it over
the wire — the same path ``sized serve`` and ``bench_serve.py`` use.
The PR's concurrency contract:

* **Dedupe is real** — N identical concurrent requests cost one
  verification (one cache miss, one batch of N).
* **Crashes are absorbed** — a killed worker is rebuilt and the batch
  requeued exactly once; a second death is a structured
  ``worker-crash`` error, never a dropped request.
* **Budgets are enforced** — an exhausted tenant gets a structured
  ``budget-exhausted`` error while other tenants keep running.
* **Serve is semantics-preserving** — responses are byte-identical to
  a direct ``run_program`` on the whole corpus.
"""

import asyncio
import contextlib
import json

import pytest

from repro.corpus import all_programs
from repro.serve import AsyncServeClient, ServeConfig, SizedServer

LOOP = "(define (spin n) (spin (+ n 1)))\n(spin 0)\n"
QUICK = "(define (f n) (if (zero? n) 42 (f (- n 1))))\n(f 10)\n"


@contextlib.asynccontextmanager
async def serve(**kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("batch_window_ms", 2.0)
    server = SizedServer(ServeConfig(**kwargs))
    await server.start()
    client = await AsyncServeClient.connect("127.0.0.1", server.port)
    try:
        yield server, client
    finally:
        await client.close()
        await server.stop()


def run(coro):
    return asyncio.run(coro)


class TestProtocolBasics:
    def test_ping_stats_and_unknown_op(self):
        async def body():
            async with serve() as (_, c):
                assert (await c.request({"op": "ping"}))["pong"] is True
                stats = (await c.request({"op": "stats"}))["stats"]
                assert stats["requests"]["ping"] == 1
                bad = await c.request({"op": "frobnicate"})
                assert bad["ok"] is False
                assert bad["error"]["type"] == "bad-request"
        run(body())

    def test_bad_requests_are_structured(self):
        async def body():
            async with serve() as (_, c):
                for req in (
                    {"op": "run"},                        # no program
                    {"op": "run", "program": "   "},      # blank program
                    {"op": "run", "program": QUICK, "fuel": -1},
                    {"op": "run", "program": QUICK, "fuel": True},
                    {"op": "run", "program": QUICK, "mode": "sideways"},
                    {"op": "run", "program": "(((", "fuel": 100},
                ):
                    r = await c.request(req)
                    assert r["ok"] is False, req
                    assert r["error"]["type"] == "bad-request", req
                # the connection (and server) survived all of it
                assert (await c.request({"op": "ping"}))["pong"] is True
        run(body())

    def test_non_json_line_is_answered_not_fatal(self):
        async def body():
            async with serve() as (server, c):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(b"this is not json\n")
                await writer.drain()
                line = await reader.readline()
                r = json.loads(line)
                assert r["ok"] is False
                assert r["error"]["type"] == "bad-request"
                writer.close()
                await writer.wait_closed()
                assert (await c.request({"op": "ping"}))["pong"] is True
        run(body())


class TestDedupe:
    def test_n_identical_requests_one_verification(self):
        async def body():
            async with serve(batch_window_ms=25.0) as (_, c):
                n = 24
                rs = await asyncio.gather(*[
                    c.request({"op": "run", "program": QUICK})
                    for _ in range(n)])
                assert all(r["ok"] and r["value"] == "42" for r in rs)
                assert all(r["kind"] == "value" and r["exit"] == 0
                           for r in rs)
                # exactly one leader, n-1 joiners
                assert sum(not r["batched"] for r in rs) == 1
                stats = (await c.request({"op": "stats"}))["stats"]
                assert stats["batches"]["dispatched"] == 1
                assert stats["batches"]["max_size"] == n
                # one verification: a single cache miss for the program
                assert stats["cache"]["misses"] == 1
                assert stats["cache"]["hits"] == 0
        run(body())

    def test_distinct_programs_not_deduped(self):
        async def body():
            async with serve(batch_window_ms=25.0) as (_, c):
                progs = [QUICK,
                         QUICK.replace("42", "43"),
                         QUICK.replace("(f 10)", "(f 3)")]
                rs = await asyncio.gather(*[
                    c.request({"op": "run", "program": p}) for p in progs])
                assert [r["value"] for r in rs] == ["42", "43", "42"]
                assert len({r["key"] for r in rs}) == 3
        run(body())

    def test_fuel_is_part_of_the_key(self):
        async def body():
            async with serve(batch_window_ms=25.0) as (_, c):
                a, b = await asyncio.gather(
                    c.request({"op": "run", "program": QUICK, "fuel": 0}),
                    c.request({"op": "run", "program": QUICK,
                               "fuel": 1_000_000}))
                assert a["kind"] == "timeout" and a["steps"] == 0
                assert a["fuel_exhausted"] is True
                assert b["kind"] == "value" and b["value"] == "42"
        run(body())

    def test_warm_cache_hit_on_repeat(self):
        async def body():
            async with serve() as (_, c):
                r1 = await c.request({"op": "run", "program": QUICK})
                r2 = await c.request({"op": "run", "program": QUICK})
                assert r1["cache"]["misses"] == 1
                assert r2["cache"]["hits"] == 1
                assert r2["cache"]["misses"] == 0
                # same key → same shard → warm in-memory certificate
                assert r1["worker"] == r2["worker"]
        run(body())


class TestNativeTier:
    def test_discharged_repeat_traffic_runs_native(self):
        """The warm path the native tier exists for: repeat traffic whose
        termination checks fully discharge must execute native, and the
        stats surface must count it."""
        async def body():
            async with serve() as (_, c):
                for _ in range(3):
                    r = await c.request({"op": "run", "program": QUICK})
                    assert r["ok"] and r["value"] == "42"
                    assert r["discharge"]["complete"] is True
                    assert r["tier"] == "native"
                stats = (await c.request({"op": "stats"}))["stats"]
                assert stats["tiers"].get("native", 0) >= 3
        run(body())

    def test_machine_is_selectable_and_keyed(self):
        async def body():
            async with serve(batch_window_ms=25.0) as (_, c):
                a, b = await asyncio.gather(
                    c.request({"op": "run", "program": QUICK,
                               "machine": "compiled"}),
                    c.request({"op": "run", "program": QUICK,
                               "machine": "native"}))
                assert a["ok"] and a["tier"] == "compiled"
                assert b["ok"] and b["tier"] == "native"
                # different machines must never coalesce into one batch
                assert a["key"] != b["key"]
                assert a["value"] == b["value"] == "42"
                bad = await c.request({"op": "run", "program": QUICK,
                                       "machine": "warp"})
                assert bad["ok"] is False
                assert bad["error"]["type"] == "bad-request"
        run(body())


class TestFaultInjection:
    def test_crash_requires_opt_in(self):
        async def body():
            async with serve() as (_, c):
                r = await c.request({"op": "crash"})
                assert r["ok"] is False
                assert r["error"]["type"] == "fault-injection-disabled"
        run(body())

    def test_crash_now_is_structured_and_survivable(self):
        async def body():
            async with serve(allow_fault_injection=True) as (_, c):
                r = await c.request({"op": "crash"})
                assert r["ok"] is False
                assert r["error"]["type"] == "worker-crash"
                assert r["error"]["requeued"] is True
                # the shard was rebuilt: the server still serves
                ok = await c.request({"op": "run", "program": QUICK})
                assert ok["ok"] and ok["value"] == "42"
                stats = (await c.request({"op": "stats"}))["stats"]
                assert stats["workers"]["rebuilds"] >= 1
                assert stats["workers"]["crashes"] >= 1
                assert stats["workers"]["requeues"] >= 1
        run(body())

    def test_crash_once_requeue_succeeds(self, tmp_path):
        """The requeue path end-to-end: the first attempt kills the
        worker, the marker file makes the requeued attempt succeed —
        the client sees success, not an error."""
        async def body():
            marker = str(tmp_path / "crash-once")
            async with serve(allow_fault_injection=True) as (_, c):
                r = await c.request({"op": "crash", "once": True,
                                     "marker": marker, "shard": 0})
                assert r["ok"] is True
                assert r["kind"] == "crash-already-injected"
                stats = (await c.request({"op": "stats"}))["stats"]
                assert stats["workers"]["requeues"] == 1
                assert stats["workers"]["rebuilds"] == 1
        run(body())

    def test_no_request_dropped_under_worker_kill(self):
        """The acceptance bar: fault injection mid-burst, every request
        still gets exactly one response."""
        async def body():
            async with serve(allow_fault_injection=True,
                             workers=2, breaker_open_s=0.3) as (_, c):
                expected = {QUICK.replace("42", str(100 + i)):
                            str(100 + i) for i in range(12)}
                progs = list(expected)
                jobs = [c.request({"op": "run", "program": p})
                        for p in progs]
                jobs.append(c.request({"op": "crash", "shard": 0}))
                jobs.append(c.request({"op": "crash", "shard": 1}))
                rs = await asyncio.gather(*jobs)
                assert len(rs) == len(progs) + 2
                for p, r in zip(progs, rs[:len(progs)]):
                    # a crash racing a batch may consume its requeue
                    # (or trip the shard's breaker); the response must
                    # still be structured, never lost
                    if r["ok"]:
                        assert r["value"] == expected[p]
                    else:
                        assert r["error"]["type"] in (
                            "worker-crash", "timeout", "shard-unavailable")
                # a tripped breaker half-opens after breaker_open_s and
                # the probe closes it — the server recovers on its own
                ok = None
                for _ in range(20):
                    ok = await c.request({"op": "run", "program": QUICK})
                    if ok.get("ok"):
                        break
                    await asyncio.sleep(0.2)
                assert ok["ok"] and ok["value"] == "42"
        run(body())


class TestBudgets:
    def test_tenant_budget_exhaustion_is_structured(self):
        async def body():
            async with serve(tenant_budget=5_000) as (_, c):
                # First request: admitted, clamped to the budget, runs
                # to exhaustion, consumes the full reservation.
                r1 = await c.request({"op": "run", "program": LOOP,
                                      "fuel": 1_000_000, "tenant": "t1"})
                assert r1["ok"] is True and r1["kind"] == "timeout"
                assert r1["steps"] == 5_000
                # Second request: the tenant is dry — structured error.
                r2 = await c.request({"op": "run", "program": QUICK,
                                      "tenant": "t1"})
                assert r2["ok"] is False
                assert r2["error"]["type"] == "budget-exhausted"
                assert r2["error"]["remaining"] == 0
                # Other tenants are unaffected.
                r3 = await c.request({"op": "run", "program": QUICK,
                                      "tenant": "t2"})
                assert r3["ok"] is True and r3["value"] == "42"
        run(body())

    def test_settle_refunds_unspent_fuel(self):
        async def body():
            async with serve(tenant_budget=100_000) as (_, c):
                r = await c.request({"op": "run", "program": QUICK,
                                     "tenant": "t"})
                assert r["ok"] and r["value"] == "42"
                spent = r["steps"]
                assert 0 < spent < 100_000
                stats = (await c.request({"op": "stats"}))["stats"]
                assert stats["budgets"]["tenants"]["t"]["remaining"] == \
                    100_000 - spent
        run(body())

    def test_fuel_zero_is_admitted(self):
        # fuel=0 is a *valid* budget (immediate exhaustion), distinct
        # from budget-exhausted -- same semantics as everywhere else.
        async def body():
            async with serve(tenant_budget=10) as (_, c):
                r = await c.request({"op": "run", "program": QUICK,
                                     "fuel": 0, "tenant": "t"})
                assert r["ok"] is True
                assert r["kind"] == "timeout" and r["steps"] == 0
                assert r["fuel_exhausted"] is True
        run(body())


class TestTimeouts:
    def test_wall_clock_timeout_recycles_worker(self):
        async def body():
            async with serve(request_timeout=1.0, workers=1,
                             batch_window_ms=0.0) as (_, c):
                r = await c.request({"op": "run", "program": LOOP,
                                     "fuel": None})
                assert r["ok"] is False
                assert r["error"]["type"] == "timeout"
                assert "recycled" in r["error"]["message"]
                stats = (await c.request({"op": "stats"}))["stats"]
                assert stats["workers"]["request_timeouts"] >= 2
                assert stats["workers"]["rebuilds"] >= 1
                # the recycled worker serves the next request
                ok = await c.request({"op": "run", "program": QUICK})
                assert ok["ok"] and ok["value"] == "42"
        run(body())


class TestSemanticsPreserved:
    def test_serve_matches_direct_run_on_corpus(self):
        """Byte-identical external values and output vs a direct
        ``run_program`` with the same configuration, for every corpus
        program — serve adds plumbing, not semantics."""
        from repro.analysis.discharge import (VerificationCache,
                                              discharge_for_run)
        from repro.eval.machine import Answer, run_program
        from repro.lang.parser import parse_program
        from repro.sct.monitor import SCMonitor
        from repro.values.values import write_value

        programs = all_programs()
        direct = {}
        cache = VerificationCache()
        for p in programs:
            parsed = parse_program(p.source)
            policy = discharge_for_run(parsed, text=p.source,
                                       cache=cache).policy
            a = run_program(parsed, mode="contract", monitor=SCMonitor(),
                            fuel=5_000_000, machine="compiled",
                            discharge=policy)
            assert a.kind == Answer.VALUE, p.name
            direct[p.name] = (write_value(a.value), a.output)

        async def body():
            async with serve(workers=2) as (_, c):
                rs = await asyncio.gather(*[
                    c.request({"op": "run", "program": p.source,
                               "fuel": 5_000_000})
                    for p in programs])
                for p, r in zip(programs, rs):
                    assert r["ok"], (p.name, r)
                    assert r["kind"] == "value", p.name
                    assert (r["value"], r["output"]) == direct[p.name], \
                        p.name
                    assert r["value"] == p.expected, p.name
        run(body())

    def test_verify_op_on_corpus_sample(self):
        async def body():
            async with serve() as (_, c):
                p = all_programs()[0]
                r = await c.request({"op": "verify", "program": p.source})
                assert r["ok"] is True
                assert r["kind"] == "discharge"
                assert isinstance(r["verified"], bool)
                assert r["exit"] in (0, 3)
        run(body())


class TestShutdown:
    def test_shutdown_rejects_new_jobs(self):
        async def body():
            async with serve() as (_, c):
                r = await c.request({"op": "shutdown"})
                assert r["ok"] is True and r["stopping"] is True
                r = await c.request({"op": "run", "program": QUICK})
                assert r["ok"] is False
                assert r["error"]["type"] == "shutting-down"
        run(body())


class TestOnDiskStore:
    def test_certificates_persist_across_servers(self, tmp_path):
        store = str(tmp_path / "certs")

        async def first():
            async with serve(cache_dir=store, workers=1) as (_, c):
                r = await c.request({"op": "run", "program": QUICK})
                assert r["cache"]["misses"] == 1

        async def second():
            async with serve(cache_dir=store, workers=1) as (_, c):
                r = await c.request({"op": "run", "program": QUICK})
                assert r["cache"]["hits"] == 1
                assert r["cache"]["misses"] == 0

        run(first())
        # sharded layout on disk (shard_depth=2 default)
        import os
        subdirs = [d for d in os.listdir(store)
                   if os.path.isdir(os.path.join(store, d))]
        assert subdirs and all(len(d) == 2 for d in subdirs)
        run(second())
