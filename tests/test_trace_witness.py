"""The Fig. 1 call-tree tracer (repro.sct.trace) and the SCP failure
witness with provenance (repro.analysis.witness)."""

import pytest

from repro.analysis.ljb import scp_check
from repro.analysis.witness import scp_check_with_witness
from repro.mc.monitor import MCMonitor
from repro.sct.graph import SCGraph, arc
from repro.sct.monitor import SCMonitor
from repro.sct.trace import assemble_tree, render_tree, trace_source
from repro.symbolic.verify import verify_source

ACK = """
(define (ack m n)
  (cond [(= 0 m) (+ 1 n)]
        [(= 0 n) (ack (- m 1) 1)]
        [else (ack (- m 1) (ack m (- n 1)))]))
(ack 2 0)
"""


class TestFigure1:
    """§2.1's worked example, regenerated node by node."""

    def test_tree_shape(self):
        result = trace_source(ACK)
        assert result.answer.is_value() and result.answer.value == 3
        [root] = result.roots
        assert root.label() == "(ack 2 0)"
        assert root.graph is None  # trivial first entry
        [n11] = root.children
        assert n11.label() == "(ack 1 1)"
        assert [c.label() for c in n11.children] == ["(ack 1 0)", "(ack 0 2)"]
        [n01] = n11.children[0].children
        assert n01.label() == "(ack 0 1)"
        assert result.total_calls() == 5

    def test_graphs_match_the_paper(self):
        result = trace_source(ACK)
        [root] = result.roots
        n11 = root.children[0]
        # (ack 2 0) ↝ (ack 1 1): {(m ↓ m), (m ↓ n)}
        assert n11.graph == SCGraph([arc(0, "<", 0), arc(0, "<", 1)])
        # (ack 1 1) ↝ (ack 1 0): {(m ↓= m), (m ↓ n), (n ↓= m), (n ↓ n)}
        assert n11.children[0].graph == SCGraph(
            [arc(0, "=", 0), arc(0, "<", 1), arc(1, "=", 0), arc(1, "<", 1)]
        )
        # (ack 1 0) ↝ (ack 0 1): {(m ↓ m), (m ↓= n), (n ↓= m)}
        assert n11.children[0].children[0].graph == SCGraph(
            [arc(0, "<", 0), arc(0, "=", 1), arc(1, "=", 0)]
        )
        # (ack 1 1) ↝ (ack 0 2): {(m ↓ m), (n ↓ m)}
        assert n11.children[1].graph == SCGraph(
            [arc(0, "<", 0), arc(1, "<", 0)]
        )

    def test_rendering_uses_parameter_names(self):
        out = render_tree(trace_source(ACK).roots)
        assert "(ack 2 0)" in out.splitlines()[0]
        assert "{m ↓ m, m ↓ n} → (ack 1 1)" in out
        assert "└─" in out and "├─" in out

    def test_sibling_not_nested(self):
        # (ack 0 2)'s graph compares against (ack 1 1), not against the
        # returned sibling (ack 1 0) — the dynamic-extent semantics.
        result = trace_source(ACK)
        n02 = result.roots[0].children[0].children[1]
        assert n02.label() == "(ack 0 2)"
        assert n02.graph == SCGraph([arc(0, "<", 0), arc(1, "<", 0)])


class TestTracer:
    def test_forest_for_multiple_toplevel_calls(self):
        src = """
        (define (dec n) (if (zero? n) 0 (dec (- n 1))))
        (dec 2) (dec 1)
        """
        result = trace_source(src)
        labels = [r.label() for r in result.roots]
        assert labels == ["(dec 2)", "(dec 1)"]

    def test_violation_tree_is_kept(self):
        result = trace_source("(define (spin x) (spin x)) (spin 7)")
        assert result.answer.kind == result.answer.SC_ERROR
        # the tree still shows the two calls observed before the stop
        assert result.total_calls() >= 1
        assert result.roots[0].label() == "(spin 7)"

    def test_enforce_false_traces_past_violations(self):
        monitor = SCMonitor(enforce=False)
        src = """
        (define (down n) (if (zero? n) 'done (down (- n 1))))
        (define (same n) (if (zero? n) (same 1) 'never))
        (down 3)
        (same 0)
        """
        result = trace_source(src, monitor=monitor, max_steps=100000)
        assert len(monitor.violations) >= 1

    def test_mc_monitor_traces_mc_graphs(self):
        src = """
        (define (r lo hi) (if (>= lo hi) '() (cons lo (r (+ lo 1) hi))))
        (r 0 3)
        """
        result = trace_source(src, monitor=MCMonitor())
        assert result.answer.is_value()
        out = render_tree(result.roots)
        assert "lo′ > lo" in out  # ascent recorded, accepted

    def test_backoff_shows_unchecked_calls(self):
        src = "(define (dec n) (if (zero? n) 0 (dec (- n 1)))) (dec 8)"
        result = trace_source(src, monitor=SCMonitor(backoff=True))
        nodes = []
        stack = list(result.roots)
        while stack:
            n = stack.pop()
            nodes.append(n)
            stack.extend(n.children)
        skipped = [n for n in nodes if n.graph is None]
        assert len(skipped) > 1  # backoff left gaps beyond the first call

    def test_assemble_tree_tolerates_unbalanced_returns(self):
        roots = assemble_tree([("return",), ("call", "f", (1,), None, ["x"]),
                               ("return",), ("return",)])
        assert len(roots) == 1

    def test_max_depth_elides(self):
        out = render_tree(trace_source(ACK).roots, max_depth=1)
        assert "…" in out

    def test_max_nodes_budget(self):
        src = "(define (dec n) (if (zero? n) 0 (dec (- n 1)))) (dec 50)"
        out = render_tree(trace_source(src).roots, max_nodes=5)
        assert len(out.splitlines()) == 5


class TestWitnessProvenance:
    def test_same_verdicts_as_plain_scp_check(self):
        cases = [
            {},
            {(0, 0): {SCGraph([arc(0, "<", 0)])}},
            {(0, 0): {SCGraph([arc(0, "=", 0)])}},
            {(0, 1): {SCGraph([arc(0, "=", 0)])},
             (1, 0): {SCGraph([arc(0, "<", 0)])}},
        ]
        for edges in cases:
            assert scp_check(edges).ok == scp_check_with_witness(edges).ok

    def test_direct_failure_has_single_step_path(self):
        g = SCGraph([arc(0, "=", 0)])
        result = scp_check_with_witness({(0, 0): {g}})
        assert result.ok is False
        assert [(s.source, s.target) for s in result.path] == [(0, 0)]
        assert result.path[0].graph == g

    def test_composed_failure_flattens_to_base_edges(self):
        stay = SCGraph([arc(0, "=", 0)])
        result = scp_check_with_witness({(0, 1): {stay}, (1, 0): {stay}})
        assert result.ok is False
        path = [(s.source, s.target) for s in result.path]
        # a cycle through both edges, in temporal order
        assert path in ([(0, 1), (1, 0)], [(1, 0), (0, 1)])
        assert path[0][1] == path[1][0]

    def test_path_composition_equals_witness_graph(self):
        g1 = SCGraph([arc(0, "=", 1), arc(1, "=", 0)])
        g2 = SCGraph([arc(0, "=", 1), arc(1, "<", 0)])
        result = scp_check_with_witness({(0, 0): {g1, g2}})
        if result.ok is False:
            composed = result.path[0].graph
            for step in result.path[1:]:
                composed = composed.compose(step.graph)
            assert composed == result.witness_graph

    def test_render_path_names_labels(self):
        stay = SCGraph([arc(0, "=", 0)])
        result = scp_check_with_witness({(3, 7): {stay}, (7, 3): {stay}})
        text = result.render_path({3: "f", 7: "g"}, {3: ["n"], 7: ["n"]})
        assert "f" in text and "g" in text and "→" in text

    def test_verdict_includes_call_path(self):
        src = """
        (define (bad n) (if (zero? n) 0 (worse n)))
        (define (worse n) (bad n))
        """
        verdict = verify_source(src, "bad", ["nat"])
        assert not verdict.verified
        assert verdict.witness_path
        assert "bad" in verdict.witness_path
        assert "worse" in verdict.witness_path
        assert "along the call path" in verdict.render()

    def test_verified_program_has_no_path(self):
        verdict = verify_source(
            "(define (dec n) (if (zero? n) 0 (dec (- n 1))))", "dec", ["nat"])
        assert verdict.verified
        assert verdict.witness_path is None


class TestCLITrace:
    def test_trace_command(self, tmp_path, capsys):
        from repro.cli import main

        f = tmp_path / "ack.scm"
        f.write_text(ACK)
        assert main(["trace", str(f)]) == 0
        out = capsys.readouterr().out
        assert "(ack 2 0)" in out
        assert "⇒ 3" in out

    def test_trace_command_mc(self, tmp_path, capsys):
        from repro.cli import main

        f = tmp_path / "range.scm"
        f.write_text("(define (r lo hi) (if (>= lo hi) '() (r (+ lo 1) hi)))"
                     "(r 0 4)")
        assert main(["trace", str(f), "--mc"]) == 0
        assert "lo′ > lo" in capsys.readouterr().out

    def test_trace_command_violation_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        f = tmp_path / "spin.scm"
        f.write_text("(define (spin x) (spin x)) (spin 1)")
        assert main(["trace", str(f)]) == 3

    def test_run_command_mc_flag(self, tmp_path, capsys):
        from repro.cli import main

        f = tmp_path / "range.scm"
        f.write_text("(define (r lo hi) (if (>= lo hi) '() (r (+ lo 1) hi)))"
                     "(r 0 4)")
        assert main(["run", str(f), "--mode", "full"]) == 3
        assert main(["run", str(f), "--mode", "full", "--mc"]) == 0

    def test_verify_command_mc_flag(self, tmp_path, capsys):
        from repro.cli import main

        f = tmp_path / "range.scm"
        f.write_text("(define (r lo hi) (if (>= lo hi) '() (r (+ lo 1) hi)))")
        assert main(["verify", str(f), "--entry", "r",
                     "--kinds", "nat,nat"]) == 3
        assert main(["verify", str(f), "--entry", "r", "--kinds", "nat,nat",
                     "--mc"]) == 0
