"""The serve resilience layer, unit by unit, plus a seeded chaos smoke.

Companion to ``tests/test_serve.py`` (which proves the service's happy
paths and single-fault recovery).  This file pins the degraded paths the
chaos campaign exercises at scale:

* circuit breakers trip, fast-reject, half-open, and close — on an
  injectable clock, no sleeps;
* retry policies back off with capped jitter, deterministically under a
  seed, and honour the server's ``retry_after`` hint;
* a cold :class:`~repro.serve.metrics.Metrics` snapshot is all zeros —
  never ``None``, never a ``ZeroDivisionError``;
* a dead connection resolves (not hangs) pending async requests with a
  structured ``connection-lost`` error;
* a timed-out sync request cannot desynchronise the response stream;
* load shedding is structured and retryable, and every shed request
  settles its budget reservation;
* budgets are conserved across client disconnects and worker crashes;
* drain answers stragglers with ``shutting-down``;
* a small ``sized chaos`` campaign passes end to end (the smoke gate —
  CI runs this per-PR, the nightly runs the full campaign).
"""

import asyncio
import contextlib
import socket
import threading

import pytest

from repro.serve import (AsyncServeClient, RetryPolicy, ServeConfig,
                         SizedServer, protocol)
from repro.serve.breaker import CircuitBreaker
from repro.serve.client import ServeClient
from repro.serve.metrics import Metrics, percentile

QUICK = "(define (f n) (if (zero? n) 42 (f (- n 1))))\n(f 10)\n"


def quick(i):
    return (f"(define (f n) (if (zero? n) {100 + i} (f (- n 1))))\n"
            f"(f 10)\n")


@contextlib.asynccontextmanager
async def serve(**kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("batch_window_ms", 2.0)
    server = SizedServer(ServeConfig(**kwargs))
    await server.start()
    client = await AsyncServeClient.connect("127.0.0.1", server.port)
    try:
        yield server, client
    finally:
        await client.close()
        await server.stop()


def run(coro):
    return asyncio.run(coro)


class TestCircuitBreaker:
    def _clocked(self, **kwargs):
        now = [0.0]
        breaker = CircuitBreaker(clock=lambda: now[0], **kwargs)
        return breaker, now

    def test_trips_after_threshold_in_window(self):
        breaker, _ = self._clocked(failure_threshold=3, window_s=10.0)
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.record_failure()       # third failure trips
        assert breaker.state == "open"
        allowed, retry_after = breaker.allow()
        assert not allowed and retry_after > 0

    def test_old_failures_age_out_of_window(self):
        breaker, now = self._clocked(failure_threshold=3, window_s=5.0)
        breaker.record_failure()
        breaker.record_failure()
        now[0] = 6.0                          # both fall out of the window
        assert not breaker.record_failure()
        assert breaker.state == "closed"

    def test_success_clears_the_window(self):
        breaker, _ = self._clocked(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        assert not breaker.record_failure()   # count restarted
        assert breaker.state == "closed"

    def test_half_open_admits_one_probe_then_closes(self):
        breaker, now = self._clocked(failure_threshold=1, open_s=5.0)
        assert breaker.record_failure()
        now[0] = 5.1
        allowed, _ = breaker.allow()          # the probe
        assert allowed and breaker.state == "half-open"
        also, hint = breaker.allow()          # concurrent request
        assert not also and hint > 0
        assert breaker.record_success()       # probe closes it
        assert breaker.state == "closed"
        assert breaker.snapshot()["closes"] == 1

    def test_probe_failure_reopens(self):
        breaker, now = self._clocked(failure_threshold=1, open_s=5.0)
        breaker.record_failure()
        now[0] = 5.1
        assert breaker.allow()[0]
        assert breaker.record_failure()       # probe died: back to open
        assert breaker.state == "open"
        assert not breaker.allow()[0]
        assert breaker.snapshot()["opens"] == 2


class TestRetryPolicy:
    def test_delay_is_capped_and_non_negative(self):
        policy = RetryPolicy(retries=8, base=0.1, cap=0.5, seed=1)
        for attempt in range(12):
            delay = policy.delay(attempt)
            assert 0.0 <= delay <= 0.5

    def test_server_hint_floors_the_delay(self):
        policy = RetryPolicy(base=0.01, cap=0.02, seed=1)
        assert policy.delay(0, hint=0.75) == 0.75

    def test_seeded_schedule_is_deterministic(self):
        a = RetryPolicy(seed=42)
        b = RetryPolicy(seed=42)
        assert [a.delay(i) for i in range(6)] == \
            [b.delay(i) for i in range(6)]


class TestMetricsEmptyWindows:
    def test_percentile_of_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([], 0.99) == 0.0

    def test_cold_snapshot_is_all_zeros_not_none(self):
        snap = Metrics().snapshot()
        assert snap["cache"]["hit_rate"] == 0.0
        assert snap["batches"]["mean_size"] == 0.0
        lat = snap["latency_ms"]
        assert (lat["count"], lat["p50"], lat["p99"], lat["max"],
                lat["mean"]) == (0, 0.0, 0.0, 0.0, 0.0)
        assert snap["throughput_rps"] >= 0.0
        for value in snap["resilience"].values():
            assert value == 0


class TestConnectionLoss:
    def test_eof_resolves_pending_requests_structured(self):
        """A server that dies mid-request must *resolve* every pending
        future with a ``connection-lost`` error — never hang them."""

        async def scenario():
            async def handler(reader, writer):
                await reader.readline()       # swallow the request...
                writer.close()                # ...and die without answering

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = await AsyncServeClient.connect("127.0.0.1", port)
            response = await asyncio.wait_for(
                client.request({"op": "ping"}), timeout=5)
            server.close()
            await client.close()
            return response, client.connection_losses

        response, losses = run(scenario())
        assert response["ok"] is False
        assert response["error"]["type"] == protocol.E_CONNECTION_LOST
        assert protocol.is_retryable(response)
        assert losses == 1

    def test_retrying_client_reconnects_after_cut(self):
        """connection-lost + a RetryPolicy = re-dial and resend; the
        caller sees only the final answer."""

        async def scenario():
            calls = [0]

            async def handler(reader, writer):
                line = await reader.readline()
                calls[0] += 1
                if calls[0] == 1:
                    writer.close()            # first attempt: cut
                    return
                import json
                rid = json.loads(line)["id"]
                writer.write(protocol.encode(
                    {"id": rid, "ok": True, "kind": "pong"}))
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = await AsyncServeClient.connect(
                "127.0.0.1", port, retry=RetryPolicy(
                    retries=3, base=0.01, cap=0.05, seed=7))
            response = await asyncio.wait_for(
                client.request({"op": "ping"}), timeout=5)
            server.close()
            await client.close()
            return response, client.retries_used

        response, retries = run(scenario())
        assert response.get("ok") and response["kind"] == "pong"
        assert retries >= 1


class TestSyncClientDesync:
    def test_timeout_does_not_poison_the_stream(self):
        """After a per-request timeout, the late response must be
        discarded by id — the *next* call gets its own answer, not the
        stale one (the classic lock-step desync bug)."""
        started = threading.Event()
        stop = threading.Event()
        port_box = []

        def server_thread():
            async def main():
                async def handler(reader, writer):
                    import json
                    while True:
                        line = await reader.readline()
                        if not line:
                            return
                        req = json.loads(line)
                        if req["op"] == "slow":
                            await asyncio.sleep(0.6)
                        writer.write(protocol.encode(
                            {"id": req["id"], "ok": True,
                             "kind": req["op"]}))
                        await writer.drain()

                server = await asyncio.start_server(
                    handler, "127.0.0.1", 0)
                port_box.append(server.sockets[0].getsockname()[1])
                started.set()
                while not stop.is_set():
                    await asyncio.sleep(0.05)
                server.close()

            asyncio.run(main())

        thread = threading.Thread(target=server_thread, daemon=True)
        thread.start()
        assert started.wait(5)
        client = ServeClient("127.0.0.1", port_box[0], timeout=5.0)
        try:
            with pytest.raises((TimeoutError, socket.timeout)):
                client.request({"op": "slow"}, timeout=0.15)
            # the late 'slow' response is still in flight; this answer
            # must be 'fast', matched by id, not the stale line
            response = client.request({"op": "fast"}, timeout=5.0)
            assert response["ok"] and response["kind"] == "fast"
            assert client.stale_discarded >= 1
        finally:
            stop.set()
            client.close()
            thread.join(timeout=5)


class TestLoadShedding:
    def test_shed_is_structured_and_settles_budget(self):
        """With a one-request in-flight cap, a concurrent burst of
        distinct programs is load-shed with retryable ``overloaded`` +
        ``retry_after`` — and every shed settles its reservation."""

        async def scenario():
            async with serve(tenant_budget=10_000_000,
                             max_inflight=1) as (server, client):
                requests = [
                    client.request({"op": "run", "program": quick(i),
                                    "fuel": 1000, "tenant": "t"},
                                   timeout=30)
                    for i in range(8)
                ]
                responses = await asyncio.gather(*requests)
                snap = server.budgets.snapshot()
                stats = server.metrics.snapshot()
                return responses, snap, stats

        responses, snap, stats = run(scenario())
        shed = [r for r in responses if not r.get("ok")]
        served = [r for r in responses if r.get("ok")]
        assert served, "at least the first request must run"
        assert shed, "a 1-deep server under an 8-burst must shed"
        for r in shed:
            assert r["error"]["type"] == protocol.E_OVERLOADED
            assert r["error"]["retry_after"] > 0
            assert protocol.is_retryable(r)
        assert stats["resilience"]["shed_overloaded"] == len(shed)
        # satellite invariant: shed requests settled their reservations
        assert snap["open_reservations"] == 0
        row = snap["tenants"]["t"]
        assert row["spent"] + row["remaining"] == 10_000_000

    def test_retrying_client_rides_out_shedding(self):
        async def scenario():
            async with serve(max_inflight=1) as (server, _):
                client = await AsyncServeClient.connect(
                    "127.0.0.1", server.port,
                    retry=RetryPolicy(retries=8, base=0.02, cap=0.2,
                                      seed=3))
                responses = await asyncio.gather(*[
                    client.request({"op": "run", "program": quick(i),
                                    "fuel": 1000}, timeout=30)
                    for i in range(8)
                ])
                await client.close()
                return responses, client.retries_used

        responses, retries = run(scenario())
        assert all(r.get("ok") for r in responses)
        assert retries >= 1


class TestBudgetConservationUnderFailure:
    def test_disconnect_mid_request_still_settles(self):
        """A client that vanishes mid-request must not leak its
        reservation: the job completes server-side and settles."""

        async def scenario():
            async with serve(tenant_budget=10_000_000) as (server, _):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(protocol.encode(
                    {"op": "run", "id": "gone", "tenant": "t",
                     "program": QUICK, "fuel": 1000}))
                await writer.drain()
                writer.close()                # vanish before the answer
                deadline = asyncio.get_running_loop().time() + 10
                while not (server.metrics.requests.get("run")
                           and server.budgets.open_reservations() == 0):
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.05)
                return server.budgets.snapshot()

        snap = run(scenario())
        assert snap["open_reservations"] == 0
        row = snap["tenants"]["t"]
        assert row["spent"] > 0
        assert row["spent"] + row["remaining"] == 10_000_000

    def test_worker_crashes_do_not_leak_reservations(self):
        """Runs racing repeated shard kills end in *some* structured
        response — and whatever the outcome, the fuel ledger balances."""

        async def scenario():
            async with serve(tenant_budget=50_000_000,
                             allow_fault_injection=True,
                             breaker_open_s=0.2) as (server, client):
                jobs = [
                    client.request({"op": "run", "program": quick(i),
                                    "fuel": 1000, "tenant": "t"},
                                   timeout=60)
                    for i in range(6)
                ]
                kills = [
                    client.request({"op": "crash", "shard": i % 2},
                                   timeout=60)
                    for i in range(4)
                ]
                responses = await asyncio.gather(*jobs, *kills)
                deadline = asyncio.get_running_loop().time() + 10
                while server.budgets.open_reservations():
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.05)
                return responses, server.budgets.snapshot()

        responses, snap = run(scenario())
        assert all(isinstance(r, dict) for r in responses)
        assert snap["open_reservations"] == 0
        row = snap["tenants"]["t"]
        assert row["spent"] + row["remaining"] == 50_000_000


class TestDrain:
    def test_drain_completes_quick_inflight_work(self):
        async def scenario():
            async with serve() as (server, client):
                job = asyncio.ensure_future(client.request(
                    {"op": "run", "program": QUICK, "fuel": 100_000},
                    timeout=30))
                await asyncio.sleep(0.05)
                await server.drain(5.0)
                return await job, server.metrics.drains

        response, drains = run(scenario())
        assert response["ok"] and response["value"] == "42"
        assert drains == 1

    def test_drain_deadline_fails_stragglers_structured(self):
        """A wedged in-flight job at the drain deadline is answered
        with ``shutting-down`` — the client is told, not abandoned."""

        async def scenario():
            async with serve(allow_fault_injection=True,
                             request_timeout=30.0) as (server, client):
                job = asyncio.ensure_future(client.request(
                    {"op": "hang", "seconds": 10.0}, timeout=30))
                await asyncio.sleep(0.2)      # let it reach a worker
                await server.drain(0.3)
                response = await asyncio.wait_for(job, timeout=5)
                return response, server.metrics.snapshot()

        response, stats = run(scenario())
        assert response["ok"] is False
        assert response["error"]["type"] == protocol.E_SHUTDOWN
        assert stats["resilience"]["drain_cancelled"] >= 1


class TestChaosSmoke:
    def test_small_campaign_all_invariants_hold(self):
        """The PR-blocking smoke: a small seeded campaign with every
        fault kind enabled must satisfy all invariants."""
        from repro.serve.chaos import run_campaign

        report, failures = run_campaign(n=30, seed=0)
        assert failures == [], failures
        assert sum(report["injected"].values()) > 0
        assert sum(report["outcomes"].values()) == 30
        names = {i["name"] for i in report["invariants"]}
        assert {"zero-lost", "zero-duplicated", "byte-identity",
                "budgets-conserved", "server-healthy"} <= names

    def test_unknown_fault_kind_is_rejected(self):
        from repro.serve.chaos import run_campaign

        with pytest.raises(ValueError):
            run_campaign(n=1, faults=("no-such-fault",))
