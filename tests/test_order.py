"""Well-founded partial order tests (paper Fig. 5 and the size order)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.ast import Lam, Lit
from repro.sct.order import DESC, EQ, NONE, ContainmentOrder, SizeOrder
from repro.sexp.datum import Char, intern
from repro.values.env import GlobalEnv
from repro.values.values import NIL, Closure, Pair, cons, python_to_list


def _closure(name="f"):
    lam = Lam((intern("x"),), Lit(1), name=name)
    return Closure(lam, GlobalEnv())


class TestSizeOrder:
    def setup_method(self):
        self.o = SizeOrder()

    def test_integers_by_abs(self):
        assert self.o.compare(5, 3) == DESC
        assert self.o.compare(5, -3) == DESC
        assert self.o.compare(-5, 3) == DESC
        assert self.o.compare(3, 5) == NONE
        assert self.o.compare(3, 3) == EQ
        assert self.o.compare(3, -3) == NONE  # same size, not equal

    def test_list_tail_descends(self):
        lst = python_to_list([1, 2, 3])
        assert self.o.compare(lst, lst.cdr) == DESC
        assert self.o.compare(lst.cdr, lst) == NONE

    def test_fresh_equal_lists_are_equal(self):
        a = python_to_list([1, 2])
        b = python_to_list([1, 2])
        assert self.o.compare(a, b) == EQ

    def test_merge_sort_halves_descend(self):
        # Freshly allocated half-lists are smaller even though they are not
        # substructures — the reason the size order is the default.
        whole = python_to_list([4, 8, 15, 16, 23, 42])
        half = python_to_list([4, 15, 23])
        assert self.o.compare(whole, half) == DESC

    def test_closures_incomparable(self):
        f, g = _closure("f"), _closure("g")
        assert self.o.compare(f, g) == NONE
        assert self.o.compare(f, f) == EQ

    def test_closure_never_descends_to_closure(self):
        assert self.o.compare(_closure(), _closure()) == NONE

    def test_floats_never_strict(self):
        assert self.o.compare(2.0, 1.0) == NONE
        assert self.o.compare(1.0, 1.0) == EQ

    def test_string_by_length(self):
        assert self.o.compare("abc", "ab") == DESC
        assert self.o.compare("ab", "ba") == NONE
        assert self.o.compare("ab", "ab") == EQ

    def test_nil_below_pair(self):
        assert self.o.compare(cons(1, NIL), NIL) == DESC

    def test_cross_kind_by_size(self):
        # The global natural measure permits cross-kind strictness; it stays
        # well-founded because every strict arc decreases one ℕ measure.
        assert self.o.compare(python_to_list([1, 1, 1]), 1) == DESC


class TestContainmentOrder:
    def setup_method(self):
        self.o = ContainmentOrder()

    def test_integers_by_abs(self):
        assert self.o.compare(5, -3) == DESC
        assert self.o.compare(3, 5) == NONE

    def test_tail_is_contained(self):
        lst = python_to_list([1, 2, 3])
        assert self.o.compare(lst, lst.cdr) == DESC

    def test_element_is_contained(self):
        lst = python_to_list([7, 2])
        assert self.o.compare(lst, 7) == DESC

    def test_deep_containment(self):
        tree = cons(cons(1, cons(2, NIL)), cons(3, NIL))
        assert self.o.compare(tree, cons(2, NIL)) == DESC

    def test_fresh_half_not_contained(self):
        # The Fig. 5 order does NOT justify merge-sort's fresh halves.
        whole = python_to_list([1, 2, 3, 4])
        half = python_to_list([1, 3])
        assert self.o.compare(whole, half) == NONE

    def test_equal_is_eq(self):
        assert self.o.compare(python_to_list([1]), python_to_list([1])) == EQ

    def test_smaller_int_inside_pair(self):
        p = cons(10, NIL)
        assert self.o.compare(p, 4) == DESC  # 4 ≺ 10 ⪯ (10 . ())


_values = st.recursive(
    st.one_of(st.integers(-20, 20), st.booleans(),
              st.sampled_from([intern("a"), intern("b"), Char("c"), NIL])),
    lambda inner: st.tuples(inner, inner).map(lambda t: cons(t[0], t[1])),
    max_leaves=10,
)


@settings(max_examples=300, deadline=None)
@given(_values, _values)
def test_orders_agree_on_reflexivity_and_antisymmetry(a, b):
    for order in (SizeOrder(), ContainmentOrder()):
        ab = order.compare(a, b)
        ba = order.compare(b, a)
        # strictness is antisymmetric
        assert not (ab == DESC and ba == DESC)
        # equality is symmetric
        assert (ab == EQ) == (ba == EQ)


@settings(max_examples=300, deadline=None)
@given(_values, _values)
def test_containment_strict_implies_size_strict(a, b):
    """The size order subsumes Fig. 5: containment descent ⇒ size descent."""
    if ContainmentOrder().compare(a, b) == DESC:
        assert SizeOrder().compare(a, b) == DESC


@settings(max_examples=200, deadline=None)
@given(_values)
def test_no_infinite_descent_possible(v):
    """Sizes are naturals, so strict chains from v are bounded by size(v)."""
    from repro.values.values import size_of

    s = size_of(v)
    assert s is not None and s >= 0
