"""Unit and property tests for the persistent HAMT."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ds.hamt import Hamt, IdKey


class TestBasics:
    def test_empty(self):
        m = Hamt.empty()
        assert len(m) == 0
        assert m.get("x") is None
        assert m.get("x", 42) == 42
        assert "x" not in m

    def test_empty_is_shared(self):
        assert Hamt.empty() is Hamt.empty()

    def test_set_get(self):
        m = Hamt.empty().set("a", 1)
        assert m["a"] == 1
        assert "a" in m
        assert len(m) == 1

    def test_persistence(self):
        m0 = Hamt.empty()
        m1 = m0.set("a", 1)
        m2 = m1.set("a", 2)
        m3 = m1.set("b", 3)
        assert m0.get("a") is None
        assert m1["a"] == 1
        assert m2["a"] == 2
        assert m3["a"] == 1 and m3["b"] == 3

    def test_overwrite_keeps_count(self):
        m = Hamt.empty().set("a", 1).set("a", 2)
        assert len(m) == 1

    def test_set_same_value_returns_self(self):
        one = object()
        m = Hamt.empty().set("a", one)
        assert m.set("a", one) is m

    def test_delete(self):
        m = Hamt.empty().set("a", 1).set("b", 2)
        d = m.delete("a")
        assert "a" not in d and d["b"] == 2
        assert m["a"] == 1  # original untouched
        assert len(d) == 1

    def test_delete_absent_is_noop(self):
        m = Hamt.empty().set("a", 1)
        assert m.delete("zzz") is m

    def test_delete_to_empty(self):
        m = Hamt.empty().set("a", 1).delete("a")
        assert len(m) == 0

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            Hamt.empty()["nope"]

    def test_from_dict_and_back(self):
        d = {i: i * i for i in range(100)}
        m = Hamt.from_dict(d)
        assert m.to_dict() == d

    def test_iteration(self):
        m = Hamt.from_dict({"a": 1, "b": 2})
        assert sorted(m.keys()) == ["a", "b"]
        assert sorted(m.values()) == [1, 2]

    def test_equality_order_independent(self):
        m1 = Hamt.empty().set("a", 1).set("b", 2)
        m2 = Hamt.empty().set("b", 2).set("a", 1)
        assert m1 == m2
        assert hash(m1) == hash(m2)

    def test_inequality(self):
        assert Hamt.empty().set("a", 1) != Hamt.empty().set("a", 2)
        assert Hamt.empty().set("a", 1) != Hamt.empty()


class _Collider:
    """All instances share one hash: forces collision nodes."""

    def __init__(self, tag):
        self.tag = tag

    def __hash__(self):
        return 7

    def __eq__(self, other):
        return isinstance(other, _Collider) and other.tag == self.tag


class TestCollisions:
    def test_full_hash_collisions(self):
        keys = [_Collider(i) for i in range(20)]
        m = Hamt.empty()
        for i, k in enumerate(keys):
            m = m.set(k, i)
        assert len(m) == 20
        for i, k in enumerate(keys):
            assert m[k] == i

    def test_collision_delete(self):
        keys = [_Collider(i) for i in range(5)]
        m = Hamt.empty()
        for i, k in enumerate(keys):
            m = m.set(k, i)
        m = m.delete(keys[2])
        assert len(m) == 4
        assert m.get(keys[2]) is None
        assert m[keys[3]] == 3

    def test_collision_overwrite(self):
        m = Hamt.empty().set(_Collider(1), "x").set(_Collider(1), "y")
        assert len(m) == 1
        assert m[_Collider(1)] == "y"


class TestIdKey:
    def test_identity_not_equality(self):
        a = [1, 2]
        b = [1, 2]
        m = Hamt.empty().set(IdKey(a), "a").set(IdKey(b), "b")
        assert len(m) == 2
        assert m[IdKey(a)] == "a"
        assert m[IdKey(b)] == "b"

    def test_same_object_same_entry(self):
        a = [1]
        m = Hamt.empty().set(IdKey(a), 1).set(IdKey(a), 2)
        assert len(m) == 1 and m[IdKey(a)] == 2


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["set", "delete"]),
            st.integers(min_value=0, max_value=40),
            st.integers(),
        ),
        max_size=80,
    )
)
def test_model_based_against_dict(ops):
    """The HAMT agrees with a plain dict under arbitrary set/delete mixes."""
    model = {}
    m = Hamt.empty()
    for op, key, value in ops:
        if op == "set":
            model[key] = value
            m = m.set(key, value)
        else:
            model.pop(key, None)
            m = m.delete(key)
        assert len(m) == len(model)
    assert m.to_dict() == model
    for k, v in model.items():
        assert m[k] == v


@settings(max_examples=100, deadline=None)
@given(st.dictionaries(st.text(max_size=6), st.integers(), max_size=40))
def test_persistence_under_updates(d):
    """Updating never mutates earlier versions."""
    base = Hamt.from_dict(d)
    snapshot = base.to_dict()
    derived = base
    for i in range(10):
        derived = derived.set(f"new{i}", i)
    assert base.to_dict() == snapshot
