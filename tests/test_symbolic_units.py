"""Unit tests for the symbolic-execution substrate: path conditions,
arc proving, and primitive models."""

from repro.solver.interface import Solver
from repro.solver.linear import LinExpr, ge
from repro.sct.order import DESC, EQ, NONE
from repro.symbolic.arcs import as_linexpr, relate
from repro.symbolic.pathcond import K_INT, K_NIL, K_PAIR, PathCond
from repro.symbolic.prims_model import PrimModels
from repro.symbolic.values import SExpr, STest, SVar
from repro.lang.prims import PRIMITIVES
from repro.sexp.datum import intern
from repro.values.values import NIL, Pair

ZERO = LinExpr.constant(0)


def prim(name: str):
    return PRIMITIVES[intern(name)]


class TestPathCond:
    def test_assume_dedupes(self):
        pc = PathCond()
        atom = ge(LinExpr.var("x"), ZERO)
        pc1 = pc.assume(atom)
        assert pc1.assume(atom) is pc1
        assert len(pc1.atoms) == 1

    def test_refine_conflict_kills_path(self):
        pc = PathCond().refine("u", K_PAIR)
        assert pc.refine("u", K_NIL) is None
        assert pc.refine("u", K_PAIR) is pc

    def test_feasibility(self):
        solver = Solver()
        x = LinExpr.var("x")
        pc = PathCond().assume(ge(x, LinExpr.constant(5)))
        assert pc.feasible(solver)
        pc2 = pc.assume(ge(LinExpr.constant(3), x))
        assert not pc2.feasible(solver)

    def test_substructure_transitive(self):
        pc = PathCond()
        pc = pc.with_node("l", SVar("l.a"), SVar("l.d"), ("l.a", "l.d"))
        pc = pc.with_node("l.d", SVar("l.d.a"), SVar("l.d.d"),
                          ("l.d.a", "l.d.d"))
        assert pc.descends_to("l.d", "l")
        assert pc.descends_to("l.d.d", "l")
        assert not pc.descends_to("l", "l.d")


class TestRelate:
    def setup_method(self):
        self.solver = Solver()

    def test_same_symbol_is_equal(self):
        v = SVar("v")
        assert relate(v, v, PathCond(), self.solver) == EQ

    def test_proved_integer_descent(self):
        pc = PathCond().refine("m", K_INT)
        pc = pc.assume(ge(LinExpr.var("m"), LinExpr.constant(1)))
        old = SVar("m")
        new = SExpr(LinExpr.var("m").plus_const(-1))
        assert relate(old, new, pc, self.solver) == DESC

    def test_unknown_sign_no_arc(self):
        pc = PathCond().refine("m", K_INT)
        old = SVar("m")
        new = SExpr(LinExpr.var("m").plus_const(-1))
        assert relate(old, new, pc, self.solver) == NONE

    def test_substructure_descent(self):
        pc = PathCond().refine("l", K_PAIR)
        cdr = SVar("l.d")
        pc = pc.with_node("l", SVar("l.a"), cdr, ("l.a", "l.d"))
        assert relate(SVar("l"), cdr, pc, self.solver) == DESC

    def test_nil_below_pair(self):
        pc = PathCond().refine("l", K_PAIR)
        assert relate(SVar("l"), NIL, pc, self.solver) == DESC

    def test_concrete_fallback(self):
        assert relate(5, 3, PathCond(), self.solver) == DESC
        assert relate(Pair(1, NIL), Pair(1, NIL), PathCond(), self.solver) == EQ

    def test_as_linexpr_kinds(self):
        pc = PathCond().refine("p", K_PAIR)
        assert as_linexpr(SVar("p"), pc) is None
        assert as_linexpr(7, pc).const == 7
        assert as_linexpr(SVar("fresh"), pc) is not None  # unknown: int view


class TestPrimModels:
    def setup_method(self):
        self.solver = Solver()
        self.models = PrimModels(self.solver)

    def _one(self, name, args, pc=None):
        results = self.models.apply(prim(name), args, pc or PathCond())
        assert len(results) == 1, results
        return results[0]

    def test_ground_falls_through(self):
        value, _ = self._one("+", [2, 3])
        assert value == 5

    def test_ground_error_prunes(self):
        assert self.models.apply(prim("car"), [5], PathCond()) == []

    def test_affine_arithmetic(self):
        x = SVar("x")
        value, pc = self._one("+", [x, 3])
        assert isinstance(value, SExpr)
        assert value.expr.coeffs == {"x": 1} and value.expr.const == 3
        assert pc.kind_of("x") == K_INT

    def test_mul_by_const_stays_linear(self):
        x = SVar("x")
        value, _ = self._one("*", [2, x])
        assert isinstance(value, SExpr) and value.expr.coeffs == {"x": 2}

    def test_var_product_is_opaque(self):
        value, _ = self._one("*", [SVar("x"), SVar("y")])
        assert isinstance(value, SVar)  # havoc

    def test_quotient_uninterpreted(self):
        value, _ = self._one("quotient", [SVar("x"), 2])
        assert isinstance(value, SVar)

    def test_comparison_becomes_atom(self):
        value, _ = self._one("<", [SVar("x"), 5])
        assert isinstance(value, STest)

    def test_null_forks_unknown(self):
        results = self.models.apply(prim("null?"), [SVar("u")], PathCond())
        outcomes = {v for v, _ in results}
        assert outcomes == {True, False}
        yes = next(p for v, p in results if v is True)
        assert yes.kind_of("u") == K_NIL

    def test_null_respects_known_kind(self):
        pc = PathCond().refine("u", K_PAIR)
        results = self.models.apply(prim("null?"), [SVar("u")], pc)
        assert [v for v, _ in results] == [False]

    def test_car_materializes_heap(self):
        results = self.models.apply(prim("car"), [SVar("l")], PathCond())
        [(value, pc)] = results
        assert isinstance(value, SVar)
        assert pc.kind_of("l") == K_PAIR
        assert pc.descends_to(value.name, "l")

    def test_car_on_nil_prunes(self):
        pc = PathCond().refine("l", K_NIL)
        assert self.models.apply(prim("car"), [SVar("l")], pc) == []

    def test_cadr_chain(self):
        [(value, pc)] = self.models.apply(prim("cadr"), [SVar("l")], PathCond())
        assert pc.descends_to(value.name, "l")

    def test_cons_records_children(self):
        x = SVar("x")
        [(node, pc)] = self.models.apply(prim("cons"), [x, NIL], PathCond())
        assert pc.kind_of(node.name) == K_PAIR
        assert pc.descends_to("x", node.name)

    def test_hash_ref_case_splits(self):
        from repro.values.values import HashValue

        table = HashValue.empty().set(intern("a"), 1).set(intern("b"), 2)
        results = self.models.apply(prim("hash-ref"), [table, SVar("k")],
                                    PathCond())
        assert {v for v, _ in results} == {1, 2}

    def test_error_prunes(self):
        assert self.models.apply(prim("error"), [SVar("x")], PathCond()) == []

    def test_length_is_a_nat(self):
        [(value, pc)] = self.models.apply(prim("length"), [SVar("l")],
                                          PathCond())
        solver = Solver()
        assert pc.entails(solver, ge(LinExpr.var(value.name), ZERO))

    def test_abs_with_known_sign(self):
        pc = PathCond().refine("x", K_INT)
        pc = pc.assume(ge(ZERO, LinExpr.var("x")))  # x ≤ 0
        [(value, _)] = self.models.apply(prim("abs"), [SVar("x")], pc)
        assert isinstance(value, SExpr)
        assert value.expr.coeffs == {"x": -1}

    def test_not_on_test(self):
        test = STest(ge(LinExpr.var("x"), ZERO))
        [(value, _)] = self.models.apply(prim("not"), [test], PathCond())
        assert isinstance(value, STest)

    def test_equal_on_ints_becomes_atom(self):
        [(value, _)] = self.models.apply(prim("equal?"), [SVar("x"), 3],
                                         PathCond())
        assert isinstance(value, STest)
