"""Benchmark-harness tests: the report machinery and small real runs."""

from repro.bench.divergence import render_divergence, run_divergence
from repro.bench.fig10 import Fig10Point, render_fig10, run_fig10, summarize_shape
from repro.bench.report import fmt_factor, fmt_ms, render_table
from repro.bench.table1 import Table1Row, render_table1
from repro.corpus.registry import REGISTRY


class TestReport:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [["x", 1], ["longer", 22]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "longer" in out and "22" in out

    def test_formatters(self):
        assert fmt_ms(0.0015) == "1.50ms"
        assert fmt_factor(2.0) == "2.0x"


class TestFig10Harness:
    def test_real_run_single_workload(self):
        points = run_fig10(scale="quick", repeats=1, workloads=["factorial"])
        assert len(points) == 3  # three sizes
        for p in points:
            assert p.unchecked > 0 and p.cm > 0 and p.imperative > 0
        rendered = render_fig10(points)
        assert "factorial" in rendered and "cm-slowdown" in rendered

    def test_shape_summary_flags_misses(self):
        # Synthetic data violating the tight-loop claim must be reported.
        pts = [
            Fig10Point("sum", 10, 1.0, 1.5, 1.2),
            Fig10Point("factorial", 10, 1.0, 9.0, 8.0),
        ]
        summary = summarize_shape(pts)
        assert "MISS" in summary

    def test_shape_summary_accepts_paper_shape(self):
        pts = [
            Fig10Point("sum", 10, 1.0, 80.0, 40.0),
            Fig10Point("sum", 20, 1.0, 85.0, 42.0),
            Fig10Point("factorial", 10, 1.0, 1.2, 1.1),
        ]
        summary = summarize_shape(pts)
        assert "MISS" not in summary


class TestDivergenceHarness:
    def test_run_and_render(self):
        points = run_divergence(standard_budget=100_000)
        assert all(p.caught for p in points)
        rendered = render_divergence(points)
        assert "buggy-nfa" in rendered
        assert f"{len(points)}/{len(points)} diverging programs stopped" in rendered


class TestTable1Render:
    def test_render_marks_deviations(self):
        prog = REGISTRY["sct-1"]
        good = Table1Row(prog, True, "", True)
        bad = Table1Row(prog, False, "", True)
        out = render_table1([good, bad])
        assert "DEVIATES" in out and "yes" in out

    def test_measure_annotation_shown(self):
        prog = REGISTRY["acl2-fig-2"]
        row = Table1Row(prog, True, "O", False)
        out = render_table1([row])
        assert "YO" in out


class TestMCHarness:
    def test_static_rows_cover_entry_corpus(self):
        from repro.bench.mc_ablation import run_mc_static
        from repro.corpus.registry import all_programs

        rows = run_mc_static()
        with_entry = [p for p in all_programs() if p.entry is not None]
        assert len(rows) == len(with_entry)
        by_name = {r.name: r for r in rows}
        assert by_name["lh-range"].note == "gained by MC"
        assert not any(r.sc and not r.mc for r in rows), \
            "MC must subsume SC on every row"

    def test_dynamic_rows_and_render(self):
        from repro.bench.mc_ablation import (
            render_mc,
            run_mc_dynamic,
            run_mc_static,
        )

        dynamic = run_mc_dynamic(scale="quick", repeats=1)
        workloads = {r.workload for r in dynamic}
        assert workloads == {"sum", "merge-sort", "count-up"}
        count_up = {r.monitor: r for r in dynamic if r.workload == "count-up"}
        assert count_up["sc"].outcome == "errorSC"
        assert count_up["mc"].outcome == "value"
        out = render_mc(run_mc_static(), dynamic)
        assert "rows gained by MC: lh-range" in out
        assert "rows lost by MC:   none" in out

    def test_cli_bench_mc(self, capsys):
        from repro.cli import main

        assert main(["bench", "mc", "--repeats", "1"]) == 0
        assert "gained by MC" in capsys.readouterr().out


class TestResidualHarness:
    def test_run_render_and_report(self, tmp_path):
        from repro.bench.residual import (
            discharged_subset,
            render_residual,
            residual_report,
            run_residual,
            write_residual_json,
        )

        cells = run_residual(scale="smoke", repeats=1,
                             programs=("sct-1", "lh-tfact"))
        assert {c.program for c in cells} == {"sct-1", "lh-tfact"}
        for c in cells:
            assert c.unmonitored_s > 0 and c.discharged_s > 0
            assert c.skipped_labels >= 1
        rendered = render_residual(cells)
        assert "discharged" in rendered and "geomean" in rendered
        report = residual_report(cells, scale="smoke", repeats=1)
        assert report["schema"] == "bench-residual/v1"
        assert set(report["geomeans"]) == {"monitored", "discharged"}
        out = tmp_path / "BENCH_residual.json"
        write_residual_json(cells, str(out), scale="smoke", repeats=1)
        assert out.exists()

    def test_subset_excludes_unverified(self):
        from repro.bench.residual import discharged_subset
        from repro.corpus import get_program

        subset = discharged_subset([get_program("lh-gcd"),
                                    get_program("sct-1")])
        assert [prog.name for prog, _, _ in subset] == ["sct-1"]
