"""Size-change graph tests, straight from paper Fig. 4 and §2.1."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sct.graph import (
    EMPTY_GRAPH,
    SCGraph,
    arc,
    compose_run,
    graph_of_values,
    prog_ok,
)
from repro.sct.order import SizeOrder
from repro.values.values import python_to_list


def g(*arcs_):
    return SCGraph(arcs_)


# Named positions for the ack example: m = 0, n = 1.
M, N = 0, 1


class TestCompose:
    def test_paper_ack_composition(self):
        """§2.1: {(m↓m)} ; {(m↓=m), (n↓n)} = {(m↓m)}."""
        g1 = g(arc(M, "<", M))
        g2 = g(arc(M, "=", M), arc(N, "<", N))
        assert g1.compose(g2) == g(arc(M, "<", M))

    def test_strict_propagates_either_leg(self):
        assert g(arc(0, "<", 0)).compose(g(arc(0, "=", 0))) == g(arc(0, "<", 0))
        assert g(arc(0, "=", 0)).compose(g(arc(0, "<", 0))) == g(arc(0, "<", 0))

    def test_weak_only_without_strict_path(self):
        assert g(arc(0, "=", 0)).compose(g(arc(0, "=", 0))) == g(arc(0, "=", 0))

    def test_strict_path_shadows_weak_path(self):
        # 0→1 two ways: strict via 1, weak via 2; result must be strict.
        g1 = g(arc(0, "<", 1), arc(0, "=", 2))
        g2 = g(arc(1, "=", 1), arc(2, "=", 1))
        composed = g1.compose(g2)
        assert composed == g(arc(0, "<", 1))

    def test_no_connection_gives_empty(self):
        assert g(arc(0, "<", 1)).compose(g(arc(0, "<", 1))) == EMPTY_GRAPH

    def test_compose_run(self):
        run = [g(arc(0, "<", 0))] * 3
        assert compose_run(run) == g(arc(0, "<", 0))

    def test_empty_graph_composition(self):
        assert EMPTY_GRAPH.compose(g(arc(0, "<", 0))) == EMPTY_GRAPH


class TestDesc:
    def test_idempotent_with_self_descent_ok(self):
        gr = g(arc(M, "<", M))
        assert gr.is_idempotent() and gr.desc_ok()

    def test_idempotent_without_self_descent_bad(self):
        gr = g(arc(M, "=", M))
        assert gr.is_idempotent() and not gr.desc_ok()

    def test_empty_graph_is_violation(self):
        assert EMPTY_GRAPH.is_idempotent()
        assert not EMPTY_GRAPH.desc_ok()

    def test_non_idempotent_unconstrained(self):
        gr = g(arc(0, "<", 1))  # g;g = {} ≠ g
        assert not gr.is_idempotent()
        assert gr.desc_ok()

    def test_buggy_ack_graph(self):
        """§2.1: {(m↓=m), (n↓=m)} is idempotent with no self-descent."""
        gr = g(arc(M, "=", M), arc(N, "=", M))
        assert gr.is_idempotent()
        assert not gr.desc_ok()


class TestProg:
    def test_good_ack_sequence(self):
        seq_newest_first = [
            g(arc(M, "=", M), arc(N, "<", N)),
            g(arc(M, "<", M)),
        ]
        assert prog_ok(seq_newest_first)

    def test_violating_sequence(self):
        assert not prog_ok([g(arc(M, "=", M))])

    def test_violation_only_in_composition(self):
        # Individually fine (non-idempotent), but the composition of the two
        # swap graphs is the identity-free idempotent empty graph.
        swap1 = g(arc(0, "<", 1))
        swap2 = g(arc(0, "<", 1))
        assert swap1.desc_ok() and swap2.desc_ok()
        assert not prog_ok([swap2, swap1])

    def test_swap_with_descent_is_fine(self):
        # f(x,y) -> f(y-1, x-1): both cross arcs strict; compositions cycle
        # between the swap graph and a strict identity graph.
        swap = g(arc(0, "<", 1), arc(1, "<", 0))
        assert prog_ok([swap])
        assert prog_ok([swap, swap])
        assert prog_ok([swap, swap, swap])


class TestGraphOfValues:
    def setup_method(self):
        self.order = SizeOrder()

    def test_ack_2_0_first_step(self):
        """(ack 2 0) ↝ (ack 1 1): {(m↓m), (m↓n)} (§2.1 / Fig. 1)."""
        got = graph_of_values((2, 0), (1, 1), self.order)
        assert got == g(arc(M, "<", M), arc(M, "<", N))

    def test_ack_1_1_to_1_0(self):
        got = graph_of_values((1, 1), (1, 0), self.order)
        assert got == g(
            arc(M, "=", M), arc(M, "<", N), arc(N, "=", M), arc(N, "<", N)
        )

    def test_ack_1_0_to_0_1(self):
        """Fig. 1: {(m↓m), (m↓=n), (n↓=m)}."""
        got = graph_of_values((1, 0), (0, 1), self.order)
        assert got == g(arc(M, "<", M), arc(M, "=", N), arc(N, "=", M))

    def test_ack_1_1_to_0_2(self):
        """Fig. 1: {(m↓m), (n↓m)}."""
        got = graph_of_values((1, 1), (0, 2), self.order)
        assert got == g(arc(M, "<", M), arc(N, "<", M))

    def test_lists_descend(self):
        lst = python_to_list([1, 2, 3])
        got = graph_of_values((lst,), (lst.cdr,), self.order)
        assert got == g(arc(0, "<", 0))

    def test_mixed_arity(self):
        got = graph_of_values((5,), (4, 5), self.order)
        assert got == g(arc(0, "<", 0), arc(0, "=", 1))


# -- properties ---------------------------------------------------------------

_arcs = st.lists(
    st.tuples(st.integers(0, 2), st.booleans(), st.integers(0, 2)),
    max_size=6,
).map(SCGraph)


@settings(max_examples=300, deadline=None)
@given(_arcs, _arcs, _arcs)
def test_composition_is_associative(a, b, c):
    assert a.compose(b).compose(c) == a.compose(b.compose(c))


@settings(max_examples=200, deadline=None)
@given(_arcs, _arcs)
def test_composition_strictness_monotone(a, b):
    """Every composed arc comes from a connecting path, and strict arcs
    require a strict leg."""
    composed = a.compose(b)
    for (i, r, k) in composed.arcs:
        paths = [
            (r0, r1)
            for (i0, r0, j0) in a.arcs
            for (j1, r1, k1) in b.arcs
            if i0 == i and k1 == k and j0 == j1
        ]
        assert paths
        if r:  # strict arc: some path has a strict leg
            assert any(r0 or r1 for r0, r1 in paths)
