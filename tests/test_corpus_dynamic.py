"""Table 1, Dyn. column: every corpus program runs to its expected value
under full monitoring; every diverging program is stopped with errorSC.

This is the executable form of the paper's §5.1.1/§5.1.2 dynamic claims.
"""

import pytest

from repro.corpus import all_programs, diverging_programs
from repro.eval.machine import Answer, run_source
from repro.sct.monitor import SCMonitor
from repro.values.values import write_value

PROGRAMS = all_programs()
DIVERGING = diverging_programs()

# The big interpreter benchmark is slow under the imperative strategy in CI;
# run it under cm only (both are exercised for every other program).
_SLOW = {"scheme"}


@pytest.mark.parametrize("prog", PROGRAMS, ids=[p.name for p in PROGRAMS])
class TestTable1Dynamic:
    def test_standard_value(self, prog):
        a = run_source(prog.source, mode="off", max_steps=30_000_000)
        assert a.kind == Answer.VALUE
        assert write_value(a.value) == prog.expected

    def test_monitored_cm(self, prog):
        monitor = SCMonitor(measures=prog.measures)
        a = run_source(prog.source, mode="full", monitor=monitor,
                       max_steps=30_000_000)
        assert a.kind == Answer.VALUE, f"spurious violation: {a.violation}"
        assert write_value(a.value) == prog.expected

    def test_monitored_imperative(self, prog):
        if prog.name in _SLOW:
            pytest.skip("cm-only for the interpreter benchmark")
        monitor = SCMonitor(measures=prog.measures)
        a = run_source(prog.source, mode="full", monitor=monitor,
                       strategy="imperative", max_steps=30_000_000)
        assert a.kind == Answer.VALUE, f"spurious violation: {a.violation}"
        assert write_value(a.value) == prog.expected

    def test_monitored_with_backoff(self, prog):
        if prog.name in _SLOW:
            pytest.skip("cm-only for the interpreter benchmark")
        monitor = SCMonitor(measures=prog.measures, backoff=True)
        a = run_source(prog.source, mode="full", monitor=monitor,
                       max_steps=30_000_000)
        assert a.kind == Answer.VALUE, f"spurious violation: {a.violation}"

    def test_paper_dyn_column_is_yes(self, prog):
        assert prog.paper_dyn.startswith("Y")


@pytest.mark.parametrize("prog", DIVERGING, ids=[d.name for d in DIVERGING])
class TestDivergingDynamic:
    def test_standard_semantics_diverges(self, prog):
        a = run_source(prog.source, mode="off", max_steps=300_000)
        assert a.kind == Answer.TIMEOUT

    def test_monitor_stops_it(self, prog):
        monitor = SCMonitor(measures=prog.measures)
        a = run_source(prog.source, mode="full", monitor=monitor)
        assert a.kind == Answer.SC_ERROR

    def test_detection_within_few_calls(self, prog):
        """§5.1.2: 'our dynamic contracts catch the error very early'."""
        monitor = SCMonitor(measures=prog.measures)
        run_source(prog.source, mode="full", monitor=monitor)
        assert monitor.calls_seen < 500

    def test_imperative_strategy_agrees(self, prog):
        monitor = SCMonitor(measures=prog.measures)
        a = run_source(prog.source, mode="full", monitor=monitor,
                       strategy="imperative")
        assert a.kind == Answer.SC_ERROR


class TestLambdaInterpreter:
    def test_fig2_c1_terminates(self):
        from repro.corpus.lambda_interp import FIG2_OK

        a = run_source(FIG2_OK, mode="contract")
        assert a.kind == Answer.VALUE and a.value is True

    def test_fig2_c2_blamed(self):
        from repro.corpus.lambda_interp import FIG2_LOOPS

        a = run_source(FIG2_LOOPS, mode="contract")
        assert a.kind == Answer.SC_ERROR
        assert a.violation.blame == "c2"

    def test_compilation_itself_terminates(self):
        """§2.4: compilation is structural recursion — monitoring comp-lc
        alone never fires."""
        from repro.corpus.lambda_interp import LAMBDA_INTERP_PRELUDE

        src = LAMBDA_INTERP_PRELUDE + "(procedure? (comp-lc '((λ (x) (x x)) (λ (y) (y y)))))"
        a = run_source(src, mode="contract")
        assert a.kind == Answer.VALUE and a.value is True


class TestInterpretedWorkloads:
    def test_interpreted_factorial(self):
        from repro.corpus.interpreter import interpreted_factorial_source

        a = run_source(interpreted_factorial_source(10), mode="full")
        assert a.kind == Answer.VALUE and a.value == 3628800

    def test_interpreted_sum(self):
        from repro.corpus.interpreter import interpreted_sum_source

        a = run_source(interpreted_sum_source(60), mode="full")
        assert a.kind == Answer.VALUE and a.value == 1830

    def test_interpreted_msort(self):
        from repro.corpus.interpreter import interpreted_msort_source

        a = run_source(interpreted_msort_source(12), mode="full")
        assert a.kind == Answer.VALUE
        assert write_value(a.value) == "(" + " ".join(map(str, range(12))) + ")"
