;; sized-fuzz regression (replay: sized fuzz --replay <this file>)
;; class: native-fallback-mismatch
;; seed: 9001
;; mode: terminating
;; entry: f0
;; entry-kinds: nat
;; must-verify: #t
;; must-discharge: #t
;; fuel: 2000000
;; detail: review repro, PR 9.  The native emitter's freeze() returned
;;   any identifier unchanged, but in locals mode a parameter read is
;;   just the slot name (_p0) — never copied, so the sibling argument's
;;   set! clobbered the value read on its left and the native tier
;;   answered 100 where tree/compiled answer 2 (left-to-right order).
;;   Fixed by tracking mutable storage slots in the emitter and copying
;;   reads of them into fresh temps; the generator's `mutation` feature
;;   now covers this class (set! sibling-argument effects).
(define (f0 n0) (+ n0 (begin (set! n0 99) 1)))
(f0 1)
