;; sized-fuzz regression (replay: sized fuzz --replay <this file>)
;; class: terminating-unverified
;; seed: 1942
;; mode: terminating
;; entry: f0
;; entry-kinds: pair
;; must-verify: #f
;; must-discharge: #f
;; fuel: 2000000
;; detail: campaign seed=1000 n=1500 reported "expected VERIFIED, got
;;   unknown": the generator passed (force (delay 0)) in the descent
;;   position of a cross-DAG call, so the symbolic engine havocs f1's
;;   parameter 0 and its (- n1 1) descent is unprovable.  The generator
;;   now keeps cross-call descent arguments transparent; this archive
;;   pins the correct oracle for the old shape: terminating, monitor-
;;   silent, 12-cell byte-identical, but NOT verifiable.

(define (f0 l0)
  (if (null? l0)
      0
      (+ (f1 (force (delay 0))) (f0 (cdr l0)))))
(define (f1 n1)
  (if (zero? n1)
      0
      (+ 2 (f1 (- n1 1)))))
(f0 '(0))
