;; sized-fuzz regression (replay: sized fuzz --replay <this file>)
;; class: terminating-unverified
;; seed: 1360
;; mode: terminating
;; entry: f0
;; entry-kinds: pair fun
;; must-verify: #f
;; must-discharge: #f
;; fuel: 2000000
;; detail: campaign seed=1000 n=1500: (vector-ref (vector 3 2 (length
;;   l0)) 2) in the descent position of the cross-call to f1 — the
;;   engine does not model vector-ref, so f1's parameter 0 havocs and
;;   the entry is unverifiable.  The higher-order entry parameter also
;;   (independently, by design) keeps the program from discharging.

(define (f0 l0 h0)
  (if (null? l0)
      2
      (+ (f1 (vector-ref (vector 3 2 (length l0)) 2))
         (f0 (cdr l0) (lambda (x) x)))))
(define (f1 n1)
  (if (zero? n1)
      9
      (+ 1 (f1 (- n1 1)))))
(f0 '(2) (lambda (x) (+ (* x x) 1)))
