;; sized-fuzz regression (replay: sized fuzz --replay <this file>)
;; class: native-fallback-mismatch
;; seed: 9002
;; mode: terminating
;; entry: f0
;; entry-kinds: nat
;; must-verify: #t
;; must-discharge: #t
;; fuel: 2000000
;; detail: review repro, PR 9.  emit_let adopted any `_t`-prefixed
;;   identifier as the new binding's storage slot, so a rhs that read an
;;   outer letrec slot (itself a _tN Python local) made the let variable
;;   alias the letrec variable: set! on y mutated a, and the native tier
;;   answered 2 where tree/compiled answer 1.  Fixed by adopting only
;;   temps minted while compiling that rhs (everything else gets a fresh
;;   gensym slot); the generator's `mutation` feature now covers this
;;   class (letrec/let binding-aliasing probes).
(define (f0 n0) (letrec ((a n0)) (let ((y a)) (begin (set! y 2) a))))
(f0 1)
