;; sized-fuzz regression (replay: sized fuzz --replay <this file>)
;; class: terminating-unverified
;; seed: 112
;; mode: terminating
;; entry: f0
;; entry-kinds: pair nat
;; must-verify: #f
;; must-discharge: #f
;; fuel: 2000000
;; detail: campaign seed=0 n=500: the self-call rebinds the accumulator
;;   a00 through a havoc wrap (vector-ref), so after one iteration a00's
;;   kind is gone; the cross-call (f1 (* a00 2)) then passes an unknown
;;   into f1's descent position and the entry cannot verify, even though
;;   the descent-position *expression* carries no havoc wrap itself.
;;   Second-order version of the 1190/1360/... hole: kind-stability of a
;;   descent argument depends on every cycle rebind of the variables it
;;   references, not just on its own shape.  Generator fixed to reference
;;   only parameter 0 (always rebound kind-preservingly) in transparent
;;   mode; oracle here corrected to must-verify #f.

(define (f0 l0 a00)
  (if (null? l0)
      2
      (+ (f1 (* a00 2)) (f0 (cdr l0) (vector-ref (vector 0 2 (+ a00 1)) 2)))))
(define (f1 n1)
  (if (zero? n1)
      8
      (+ 2 (f1 (- n1 1)))))
(f0 '(2 3 4) 0)
