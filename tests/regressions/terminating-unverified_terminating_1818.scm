;; sized-fuzz regression (replay: sized fuzz --replay <this file>)
;; class: terminating-unverified
;; seed: 1818
;; mode: terminating
;; entry: f0
;; entry-kinds: pair
;; must-verify: #f
;; must-discharge: #f
;; fuel: 2000000
;; detail: campaign seed=1000 n=1500: (unbox (box 0)) in the descent
;;   position of the cross-call to f1 havocs f1's parameter 0, so the
;;   entry cannot verify even though every run is monitor-silent.  The
;;   contract wrap on f1's recursive branch is innocent (contract wraps
;;   alone verify fine).  Oracle corrected to must-verify #f.

(define (f0 l0)
  (if (null? l0)
      0
      (+ (f1 (unbox (box 0))) (f0 (cdr l0)))))
(define (f1 n1)
  (if (zero? n1)
      5
      ((terminating/c (lambda (r) r) "gen-f1") (+ 3 (f1 (- n1 1))))))
(f0 '(1))
