"""Standard-semantics machine tests: evaluation, desugaring behaviour,
errors, tail calls, fuel."""

import pytest

from repro.eval.machine import Answer, run_source
from repro.sexp.datum import intern
from repro.values.values import NIL, VOID, Pair


def ev(text, **kw):
    a = run_source(text, **kw)
    assert a.kind == Answer.VALUE, f"expected value, got {a!r}"
    return a.value


def rt_error(text, **kw):
    a = run_source(text, **kw)
    assert a.kind == Answer.RT_ERROR, f"expected errorRT, got {a!r}"
    return a.error


class TestBasics:
    def test_literals(self):
        assert ev("42") == 42
        assert ev("#t") is True
        assert ev('"s"') == "s"

    def test_arith(self):
        assert ev("(+ 1 2 3)") == 6
        assert ev("(- 10 3 2)") == 5
        assert ev("(- 5)") == -5
        assert ev("(* 2 3 4)") == 24
        assert ev("(quotient 7 2)") == 3
        assert ev("(quotient -7 2)") == -3
        assert ev("(remainder -7 2)") == -1
        assert ev("(modulo -7 2)") == 1
        assert ev("(expt 2 10)") == 1024

    def test_comparison_chains(self):
        assert ev("(< 1 2 3)") is True
        assert ev("(< 1 3 2)") is False
        assert ev("(<= 1 1 2)") is True

    def test_lambda_application(self):
        assert ev("((lambda (x y) (+ x y)) 3 4)") == 7

    def test_greek_lambda(self):
        assert ev("((λ (x) (* x x)) 5)") == 25

    def test_closures_capture(self):
        assert ev("(define (adder n) (lambda (x) (+ x n))) ((adder 10) 5)") == 15

    def test_if(self):
        assert ev("(if #t 1 2)") == 1
        assert ev("(if #f 1 2)") == 2
        assert ev("(if 0 1 2)") == 1  # only #f is false
        assert ev("(if '() 1 2)") == 1
        assert ev("(if #f 1)") is False

    def test_define_and_recursion(self):
        assert ev("(define (fact n) (if (= n 0) 1 (* n (fact (- n 1))))) (fact 10)") == 3628800

    def test_mutual_recursion(self):
        src = """
        (define (even2? n) (if (= n 0) #t (odd2? (- n 1))))
        (define (odd2? n) (if (= n 0) #f (even2? (- n 1))))
        (even2? 101)
        """
        assert ev(src) is False


class TestDesugaring:
    def test_cond(self):
        assert ev("(cond [#f 1] [#t 2] [else 3])") == 2
        assert ev("(cond [#f 1] [else 3])") == 3
        assert ev("(cond [#f 1])") is False

    def test_cond_test_only_clause(self):
        assert ev("(cond [#f] [7] [else 9])") == 7

    def test_case(self):
        assert ev("(case (+ 1 1) [(1) 'one] [(2 3) 'few] [else 'many])") is intern("few")
        assert ev("(case 9 [(1) 'one] [else 'many])") is intern("many")

    def test_and_or(self):
        assert ev("(and)") is True
        assert ev("(and 1 2 3)") == 3
        assert ev("(and 1 #f 3)") is False
        assert ev("(or)") is False
        assert ev("(or #f 2 3)") == 2
        assert ev("(or #f #f)") is False

    def test_or_evaluates_once(self):
        src = """
        (define counter 0)
        (define (bump!) (set! counter (+ counter 1)) counter)
        (or (bump!) 99)
        counter
        """
        assert ev(src) == 1

    def test_when_unless(self):
        assert ev("(when #t 1 2)") == 2
        assert ev("(when #f 1 2)") is False
        assert ev("(unless #f 5)") == 5

    def test_let(self):
        assert ev("(let ([x 1] [y 2]) (+ x y))") == 3

    def test_let_is_parallel(self):
        assert ev("(define x 10) (let ([x 1] [y x]) y)") == 10

    def test_let_star(self):
        assert ev("(let* ([x 1] [y (+ x 1)]) y)") == 2

    def test_letrec(self):
        src = "(letrec ([e? (lambda (n) (if (= n 0) #t (o? (- n 1))))]\n" \
              "         [o? (lambda (n) (if (= n 0) #f (e? (- n 1))))])\n" \
              "  (e? 10))"
        assert ev(src) is True

    def test_named_let(self):
        assert ev("(let loop ([i 5] [acc 1]) (if (= i 0) acc (loop (- i 1) (* acc i))))") == 120

    def test_internal_define(self):
        src = """
        (define (f x)
          (define (g y) (* y 2))
          (define z 10)
          (+ (g x) z))
        (f 4)
        """
        assert ev(src) == 18

    def test_begin(self):
        assert ev("(begin 1 2 3)") == 3

    def test_set(self):
        assert ev("(define x 1) (set! x 5) x") == 5

    def test_quasiquote(self):
        v = ev("`(1 ,(+ 1 1) 3)")
        assert v.car == 1 and v.cdr.car == 2 and v.cdr.cdr.car == 3

    def test_quasiquote_splicing(self):
        v = ev("`(0 ,@(list 1 2) 3)")
        assert [v.car, v.cdr.car, v.cdr.cdr.car, v.cdr.cdr.cdr.car] == [0, 1, 2, 3]

    def test_nested_quasiquote_structure(self):
        v = ev("`(a (b ,(+ 1 2)))")
        assert v.cdr.car.cdr.car == 3


class TestMatch:
    def test_literal_and_var(self):
        assert ev("(match 5 [4 'no] [x (+ x 1)])") == 6

    def test_wildcard(self):
        assert ev("(match 'anything [_ 'hit])") is intern("hit")

    def test_quote_pattern(self):
        assert ev("(match '(a b) ['(a b) 1] [_ 2])") == 1

    def test_quasipattern(self):
        src = """
        (match '(lam (x) y)
          [`(lam (,v) ,body) (list v body)]
          [_ 'no])
        """
        v = ev(src)
        assert v.car is intern("x") and v.cdr.car is intern("y")

    def test_predicate_pattern(self):
        assert ev("(match 'sym [(? symbol? s) s] [_ 'no])") is intern("sym")
        assert ev("(match 42 [(? symbol? s) s] [_ 'no])") is intern("no")

    def test_cons_pattern(self):
        assert ev("(match '(1 2) [(cons a b) a])") == 1

    def test_list_pattern(self):
        assert ev("(match '(1 2 3) [(list a b c) (+ a b c)])") == 6
        assert ev("(match '(1 2) [(list a b c) 'no] [_ 'short])") is intern("short")

    def test_no_clause_is_error(self):
        rt_error("(match 1 [2 'no])")

    def test_fig2_style_dispatch(self):
        src = """
        (define (classify e)
          (match e
            [`(λ (,x) ,b) 'lam]
            [`(,e1 ,e2) 'app]
            [(? symbol? x) 'var]))
        (list (classify 'x) (classify '(λ (x) x)) (classify '(f y)))
        """
        v = ev(src)
        assert [v.car.name, v.cdr.car.name, v.cdr.cdr.car.name] == ["var", "lam", "app"]


class TestListsAndPrims:
    def test_list_ops(self):
        assert ev("(length '(1 2 3))") == 3
        assert ev("(car (append '(1) '(2 3)))") == 1
        assert ev("(reverse '(1 2 3))").car == 3
        assert ev("(list-ref '(a b c) 1)") is intern("b")
        assert ev("(member 2 '(1 2 3))").car == 2
        assert ev("(member 9 '(1 2 3))") is False
        assert ev("(assq 'b '((a 1) (b 2)))").car is intern("b")

    def test_prelude_map_filter_fold(self):
        assert ev("(map (lambda (x) (* x x)) '(1 2 3))").cdr.car == 4
        assert ev("(filter even? '(1 2 3 4))").car == 2
        assert ev("(foldl + 0 '(1 2 3 4))") == 10
        assert ev("(foldr cons '() '(1 2))").car == 1
        assert ev("(andmap number? '(1 2))") is True
        assert ev("(ormap symbol? '(1 a))") is True

    def test_prelude_builders(self):
        assert ev("(length (iota 5))") == 5
        assert ev("(car (range 3 6))") == 3
        assert ev("(length (range 3 6))") == 3
        assert ev("(list-ref (build-list 4 (lambda (i) (* i i))) 3)") == 9

    def test_strings_and_chars(self):
        assert ev('(string-length "hello")') == 5
        assert ev('(string-append "a" "b" "c")') == "abc"
        assert ev("(char=? #\\a #\\a)") is True
        assert ev('(car (string->list "xy"))').value == "x"
        assert ev('(string->symbol "foo")') is intern("foo")
        assert ev('(substring "hello" 1 3)') == "el"

    def test_hash_ops(self):
        assert ev("(hash-ref (hash-set (hash) 'k 1) 'k)") == 1
        assert ev("(hash-ref (hash 'a 1 'b 2) 'b)") == 2
        assert ev("(hash-ref (hash) 'missing 'dflt)") is intern("dflt")
        assert ev("(hash-count (hash 'a 1))") == 1
        assert ev("(hash-has-key? (hash 'a 1) 'a)") is True

    def test_boxes(self):
        assert ev("(define b (box 1)) (set-box! b 9) (unbox b)") == 9

    def test_display_output(self):
        a = run_source('(display "hi") (newline) (display (list 1 2))')
        assert a.output == "hi\n(1 2)"

    def test_write_vs_display_strings(self):
        a = run_source('(write "hi")')
        assert a.output == '"hi"'


class TestErrors:
    def test_unbound_variable(self):
        assert "unbound" in str(rt_error("nope"))

    def test_apply_non_procedure(self):
        assert "non-procedure" in str(rt_error("(1 2)"))

    def test_closure_arity(self):
        assert "expected 1" in str(rt_error("((lambda (x) x) 1 2)"))

    def test_prim_arity(self):
        rt_error("(car)")
        rt_error("(cons 1)")

    def test_prim_domain(self):
        assert "car" in str(rt_error("(car 5)"))
        rt_error("(quotient 1 0)")
        rt_error("(+ 1 'a)")

    def test_error_prim(self):
        assert "boom" in str(rt_error('(error "boom" 42)'))

    def test_letrec_use_before_init(self):
        rt_error("(letrec ([x y] [y 1]) x)")


class TestTailCallsAndFuel:
    def test_deep_tail_recursion_completes(self):
        src = "(define (count n) (if (= n 0) 'done (count (- n 1)))) (count 200000)"
        assert ev(src) is intern("done")

    def test_deep_non_tail_recursion_completes(self):
        # non-tail: the continuation grows on the heap, not Python's stack
        src = "(define (sum n) (if (= n 0) 0 (+ n (sum (- n 1))))) (sum 50000)"
        assert ev(src) == 50000 * 50001 // 2

    def test_fuel_timeout_on_divergence(self):
        a = run_source("(define (f) (f)) (f)", max_steps=10000)
        assert a.kind == Answer.TIMEOUT

    def test_fuel_shared_across_forms(self):
        a = run_source("(define (f n) (if (= n 0) 0 (f (- n 1)))) (f 10) (f 10)",
                       max_steps=100000)
        assert a.kind == Answer.VALUE
