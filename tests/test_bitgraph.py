"""Bitmask engine conformance: the packed representation must agree with
the reference ``SCGraph`` on every operation, for random graphs up to
arity 8, plus an idempotence/associativity algebra suite and end-to-end
engine equivalence for the monitor and the static closure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ljb import scp_check
from repro.ds.hamt import Hamt
from repro.lang.ast import Lam, Lit
from repro.sct import bitgraph as bg
from repro.sct.errors import SizeChangeViolation
from repro.sct.graph import SCGraph, graph_of_values, prog_ok
from repro.sct.monitor import SCMonitor
from repro.sct.order import SizeOrder
from repro.sexp.datum import intern
from repro.values.env import GlobalEnv
from repro.values.values import Closure

MAX_ARITY = 8


def _normalized(pairs):
    """Random (i, j) → relation dicts become normalized graphs: one arc
    per position pair, strict winning (what ``graph_of_values`` and
    ``compose`` emit — the only graphs the engines ever iterate)."""
    arcs = {}
    for (i, r, j) in pairs:
        arcs[(i, j)] = arcs.get((i, j), False) or r
    return SCGraph([(i, r, j) for (i, j), r in arcs.items()])


_graphs = st.lists(
    st.tuples(st.integers(0, MAX_ARITY - 1), st.booleans(),
              st.integers(0, MAX_ARITY - 1)),
    max_size=12,
).map(_normalized)


# -- agreement with the reference ------------------------------------------------


@settings(max_examples=400, deadline=None)
@given(_graphs, _graphs)
def test_compose_agrees_with_reference(a, b):
    mk = bg.masks(MAX_ARITY)
    pa = bg.pack(a, MAX_ARITY)
    pb = bg.pack(b, MAX_ARITY)
    assert bg.unpack(mk, *bg.compose(mk, *pa, *pb)) == a.compose(b)


@settings(max_examples=400, deadline=None)
@given(_graphs)
def test_desc_ok_agrees_with_reference(g):
    mk = bg.masks(MAX_ARITY)
    p = bg.pack(g, MAX_ARITY)
    assert bg.is_idempotent(mk, *p) == g.is_idempotent()
    assert bg.has_strict_self_arc(mk, p[0]) == g.has_strict_self_arc()
    assert bg.desc_ok(mk, *p) == g.desc_ok()


@settings(max_examples=200, deadline=None)
@given(st.lists(_graphs, min_size=1, max_size=6))
def test_prog_ok_agrees_with_reference(graphs):
    mk = bg.masks(MAX_ARITY)
    packed = [bg.pack(g, MAX_ARITY) for g in graphs]
    assert bg.prog_ok(mk, packed) == prog_ok(graphs)


@settings(max_examples=300, deadline=None)
@given(_graphs, _graphs)
def test_factored_compose_agrees(a, b):
    """The precomputed column/row forms are the same function as the
    plain compose."""
    mk = bg.masks(MAX_ARITY)
    pa = bg.pack(a, MAX_ARITY)
    pb = bg.pack(b, MAX_ARITY)
    expected = bg.compose(mk, *pa, *pb)
    assert bg.compose_left(mk, bg.left_factor(mk, *pa), *pb) == expected
    assert bg.compose_right(mk, *pa, bg.right_factor(mk, *pb)) == expected


@settings(max_examples=300, deadline=None)
@given(st.lists(st.integers(0, 5), min_size=1, max_size=4),
       st.lists(st.integers(0, 5), min_size=1, max_size=4))
def test_graph_of_values_agrees(old, new):
    order = SizeOrder()
    m = max(len(old), len(new))
    mk = bg.masks(m)
    packed = bg.graph_of_values(tuple(old), tuple(new), order, mk)
    assert bg.unpack(mk, *packed) == graph_of_values(tuple(old), tuple(new),
                                                     order)


# -- encoding round trips --------------------------------------------------------


@settings(max_examples=300, deadline=None)
@given(_graphs)
def test_pack_unpack_round_trip(g):
    mk = bg.masks(MAX_ARITY)
    assert bg.unpack(mk, *bg.pack(g, MAX_ARITY)) == g


@settings(max_examples=300, deadline=None)
@given(_graphs, st.integers(MAX_ARITY, MAX_ARITY + 4))
def test_widen_preserves_graph(g, wider):
    packed = bg.pack(g, MAX_ARITY)
    widened = bg.widen(packed, MAX_ARITY, wider)
    assert bg.unpack(bg.masks(wider), *widened) == g


def test_pack_rejects_out_of_range_arcs():
    g = SCGraph([(0, True, 5)])
    with pytest.raises(ValueError):
        bg.pack(g, 3)


def test_widen_rejects_shrinking():
    with pytest.raises(ValueError):
        bg.widen((0, 0), 4, 3)


# -- algebra: idempotence / associativity ----------------------------------------


@settings(max_examples=300, deadline=None)
@given(_graphs, _graphs, _graphs)
def test_packed_composition_is_associative(a, b, c):
    mk = bg.masks(MAX_ARITY)
    pa, pb, pc = (bg.pack(g, MAX_ARITY) for g in (a, b, c))
    left = bg.compose(mk, *bg.compose(mk, *pa, *pb), *pc)
    right = bg.compose(mk, *pa, *bg.compose(mk, *pb, *pc))
    assert left == right


@settings(max_examples=300, deadline=None)
@given(_graphs)
def test_strict_and_weak_masks_stay_disjoint(g):
    mk = bg.masks(MAX_ARITY)
    p = bg.pack(g, MAX_ARITY)
    assert p[0] & p[1] == 0
    s, w = bg.compose(mk, *p, *p)
    assert s & w == 0


@settings(max_examples=200, deadline=None)
@given(_graphs)
def test_self_compose_of_idempotent_is_fixed_point(g):
    mk = bg.masks(MAX_ARITY)
    p = bg.pack(g, MAX_ARITY)
    if bg.is_idempotent(mk, *p):
        assert bg.compose(mk, *p, *p) == p


# -- end-to-end engine equivalence -----------------------------------------------


def _closure_value(nparams):
    params = tuple(intern(f"p{i}") for i in range(nparams))
    return Closure(Lam(params, Lit(1), name="f"), GlobalEnv())


def _run_monitor(engine, arg_vectors):
    monitor = SCMonitor(engine=engine)
    clo = _closure_value(len(arg_vectors[0]))
    table = Hamt.empty()
    try:
        for args in arg_vectors:
            table = monitor.upd(table, clo, tuple(args), "bench")
        return True
    except SizeChangeViolation:
        return False


@settings(max_examples=200, deadline=None)
@given(st.integers(1, 3).flatmap(
    lambda k: st.lists(
        st.lists(st.integers(0, 4), min_size=k, max_size=k),
        min_size=1, max_size=8)))
def test_monitor_engines_raise_identically(arg_vectors):
    assert (_run_monitor("bitmask", arg_vectors)
            == _run_monitor("reference", arg_vectors))


_edge_graphs = st.lists(
    st.tuples(st.integers(0, 2), st.booleans(), st.integers(0, 2)),
    max_size=6,
).map(_normalized)


@settings(max_examples=150, deadline=None)
@given(st.dictionaries(
    st.tuples(st.integers(0, 2), st.integers(0, 2)),
    st.sets(_edge_graphs, min_size=1, max_size=3),
    max_size=4,
))
def test_scp_check_engines_agree(edges):
    ref = scp_check(edges, engine="reference")
    bit = scp_check(edges, engine="bitmask")
    assert ref.ok == bit.ok
    if ref.ok is True:
        # Completed closures visit graph-for-graph the same fixpoint.
        assert ref.total_graphs == bit.total_graphs
    if ref.ok is False:
        # Early exits may surface different (equally valid) witnesses;
        # the bitmask witness must still be a genuine SCP counterexample.
        w = bit.witness_graph
        assert w.is_idempotent() and not w.has_strict_self_arc()


def test_monitor_engine_knob_validated():
    with pytest.raises(ValueError):
        SCMonitor(engine="quantum")
    with pytest.raises(ValueError):
        scp_check({}, engine="quantum")
