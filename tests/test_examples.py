"""Every example script runs cleanly and tells its story."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)

EXPECTED_SNIPPETS = {
    "quickstart.py": ["ackermann(2, 3) = 9", "size-change violation",
                      "factorial(10) = 3628800"],
    "embedded_ack.py": ["(ack 2 0) = 3", "{m ↓ m, m ↓ n}",
                        "the entry component"],
    "lambda_interpreter.py": ["procedure", "size-change violation"],
    "static_verification.py": ["verdict: verified", "{m ↓ m}",
                               "state1", "verdict: unknown"],
    "cps_len.py": ["REJECTED", "= 5", "violation"],
    "scheme_interpreter.py": ["result: (0 1 2", "violations: none",
                              "size-change violation"],
    "nfa_bug.py": ["verdict: unknown", "input ↓= input",
                   "verdict: verified", "caught in milliseconds"],
    "total_correctness.py": ["msort([5,1,4,2]) = [1, 2, 4, 5]",
                             "caught before hanging",
                             "termination violation",
                             "contract violation, blaming fact-caller"],
    "monotonicity_constraints.py": ["SC: unknown", "MC: verified",
                                    "lo\u2032 > lo", "under MC:",
                                    "rejected by SC graphs"],
    "full_extent_python.py": ["caught:", "pipeline: [4, 4]",
                              "with backoff:"],
}


@pytest.mark.parametrize("example", EXAMPLES, ids=[e.name for e in EXAMPLES])
def test_example_runs(example):
    proc = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True, text=True, timeout=240,
    )
    assert proc.returncode == 0, proc.stderr
    for snippet in EXPECTED_SNIPPETS.get(example.name, []):
        assert snippet in proc.stdout, (
            f"{example.name} missing {snippet!r} in:\n{proc.stdout}"
        )


def test_all_examples_have_expectations():
    assert {e.name for e in EXAMPLES} == set(EXPECTED_SNIPPETS)
