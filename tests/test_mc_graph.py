"""Unit tests for monotonicity-constraint graphs (repro.mc.graph)."""

import pytest

from repro.mc.graph import (
    GEQ,
    GT,
    MCGraph,
    NO_EDGE,
    mc_graph_of_sizes,
    mc_graph_of_values,
)
from repro.sct.graph import SCGraph, arc
from repro.values.values import NIL, Pair, cons


def graph(pre, post, *constraints):
    return MCGraph.build(pre, post, constraints)


class TestBuildAndClose:
    def test_empty_graph_is_satisfiable(self):
        g = MCGraph.top(2, 2)
        assert g.sat
        assert not g.has_descent()

    def test_transitive_closure_derives_strict(self):
        # x > y, y ≥ x' ⟹ x > x'
        g = graph(2, 2, (0, GT, 1), (1, GEQ, 2))
        assert g.entails(0, GT, 2)

    def test_weak_chain_stays_weak(self):
        g = graph(2, 2, (0, GEQ, 1), (1, GEQ, 2))
        assert g.entails(0, GEQ, 2)
        assert not g.entails(0, GT, 2)

    def test_strict_cycle_is_unsat(self):
        g = graph(1, 1, (0, GT, 1), (1, GT, 0))
        assert not g.sat

    def test_weak_cycle_is_equality_and_sat(self):
        g = graph(1, 1, (0, GEQ, 1), (1, GEQ, 0))
        assert g.sat
        assert g.entails(0, GEQ, 1) and g.entails(1, GEQ, 0)

    def test_mixed_cycle_is_unsat(self):
        # x ≥ x' and x' > x cannot both hold
        g = graph(1, 1, (0, GEQ, 1), (1, GT, 0))
        assert not g.sat

    def test_self_strict_constraint_is_unsat(self):
        g = MCGraph.build(1, 1, [(0, GT, 0)])
        assert not g.sat

    def test_self_weak_constraint_is_dropped(self):
        g = MCGraph.build(1, 1, [(0, GEQ, 0)])
        assert g == MCGraph.top(1, 1)

    def test_duplicate_constraints_collapse(self):
        g1 = graph(1, 1, (0, GT, 1), (0, GT, 1), (0, GEQ, 1))
        g2 = graph(1, 1, (0, GT, 1))
        assert g1 == g2

    def test_closure_makes_equality_canonical(self):
        # x = y stated two ways closes to the same graph
        a = graph(2, 2, (0, GEQ, 1), (1, GEQ, 0))
        b = graph(2, 2, (1, GEQ, 0), (0, GEQ, 1))
        assert a == b
        assert hash(a) == hash(b)

    def test_constraint_accessor(self):
        g = graph(1, 1, (0, GT, 1))
        assert g.constraint(0, 1) == GT
        assert g.constraint(1, 0) == NO_EDGE

    def test_unsat_constraint_accessor_raises(self):
        with pytest.raises(ValueError):
            MCGraph.unsat(1, 1).constraint(0, 0)

    def test_unsat_entails_everything(self):
        u = MCGraph.unsat(2, 2)
        assert u.entails(0, GT, 3)
        assert u.entails(3, GT, 0)


class TestCompose:
    def test_identity_transition_is_idempotent(self):
        ident = graph(1, 1, (0, GEQ, 1), (1, GEQ, 0))
        assert ident.compose(ident) == ident
        assert ident.is_idempotent()

    def test_equality_survives_composition_both_directions(self):
        ident = graph(1, 1, (0, GEQ, 1), (1, GEQ, 0))
        gg = ident.compose(ident)
        assert gg.entails(0, GEQ, 1)
        assert gg.entails(1, GEQ, 0)

    def test_strict_propagates_through_weak(self):
        desc = graph(1, 1, (0, GT, 1))
        ident = graph(1, 1, (0, GEQ, 1), (1, GEQ, 0))
        assert desc.compose(ident).entails(0, GT, 1)
        assert ident.compose(desc).entails(0, GT, 1)

    def test_arity_mismatch_raises(self):
        with pytest.raises(ValueError):
            graph(2, 2).compose(graph(3, 3))

    def test_cross_arity_composition(self):
        # f(x) -> g(x, x) -> h(x): 1->2 composed with 2->1
        g1 = graph(1, 2, (0, GEQ, 1), (0, GEQ, 2))
        g2 = graph(2, 1, (0, GT, 2))
        c = g1.compose(g2)
        assert c.pre_arity == 1 and c.post_arity == 1
        assert c.entails(0, GT, 1)

    def test_contradictory_context_composes_to_unsat(self):
        # swap under guard x > y: composing it with itself requires
        # y > x in the middle — impossible.
        swap = graph(
            2, 2,
            (0, GT, 1),            # x > y
            (1, GEQ, 2), (2, GEQ, 1),  # x' = y
            (0, GEQ, 3), (3, GEQ, 0),  # y' = x
        )
        assert swap.sat
        assert not swap.compose(swap).sat
        assert swap.desc_ok()  # not idempotent (self-composition unsat)

    def test_unsat_absorbs(self):
        u = MCGraph.unsat(2, 2)
        g = MCGraph.top(2, 2)
        assert not u.compose(g).sat
        assert not g.compose(u).sat

    def test_composition_is_associative_on_examples(self):
        g1 = graph(2, 2, (0, GT, 2), (1, GEQ, 3))
        g2 = graph(2, 2, (0, GEQ, 3), (1, GT, 2), (0, GT, 1))
        g3 = graph(2, 2, (1, GEQ, 2), (3, GT, 1))
        assert g1.compose(g2).compose(g3) == g1.compose(g2.compose(g3))


class TestTerminationLocalCheck:
    def test_descent_passes(self):
        g = graph(1, 1, (0, GT, 1))
        assert g.is_idempotent()
        assert g.has_descent()
        assert g.desc_ok()

    def test_plain_ascent_fails(self):
        g = graph(1, 1, (1, GT, 0))  # x' > x, nothing else
        assert g.is_idempotent()
        assert not g.desc_ok()

    def test_stationary_loop_fails(self):
        g = graph(1, 1, (0, GEQ, 1), (1, GEQ, 0))  # x' = x forever
        assert not g.desc_ok()

    def test_bounded_ascent_passes(self):
        # lo climbs, hi is a non-rising ceiling, lo' stays ≤ hi'
        g = graph(
            2, 2,
            (2, GT, 0),    # lo' > lo
            (1, GEQ, 3), (3, GEQ, 1),  # hi' = hi
            (3, GEQ, 2),   # hi' ≥ lo'
        )
        assert g.is_idempotent()
        assert not g.has_descent()
        assert g.bounded_ascent_witness() == (1, 0)
        assert g.desc_ok()

    def test_ascent_without_ceiling_link_fails(self):
        # lo climbs, hi fixed, but nothing ties lo below hi
        g = graph(2, 2, (2, GT, 0), (1, GEQ, 3), (3, GEQ, 1))
        assert g.is_idempotent()
        assert not g.desc_ok()

    def test_ascent_with_rising_ceiling_fails(self):
        # both climb: no witness
        g = graph(2, 2, (2, GT, 0), (3, GT, 1), (3, GEQ, 2))
        assert g.bounded_ascent_witness() is None
        assert not g.desc_ok()

    def test_unsat_always_passes(self):
        assert MCGraph.unsat(2, 2).desc_ok()

    def test_non_square_has_no_witness(self):
        g = graph(1, 2, (1, GT, 0))
        assert g.bounded_ascent_witness() is None


class TestConversions:
    def test_scgraph_embedding_strict(self):
        sc = SCGraph([arc(0, "<", 0), arc(1, "=", 1)])
        mc = MCGraph.from_scgraph(sc, 2, 2)
        assert mc.entails(0, GT, 2)
        assert mc.entails(1, GEQ, 3)
        assert not mc.entails(1, GT, 3)

    def test_embedding_then_projection_roundtrips(self):
        sc = SCGraph([arc(0, "<", 1), arc(1, "=", 0)])
        assert MCGraph.from_scgraph(sc, 2, 2).to_scgraph() == sc

    def test_projection_keeps_derived_arcs(self):
        # context x > y plus y ≥ x' gives the SC arc x ↓ x' after closure
        mc = graph(2, 2, (0, GT, 1), (1, GEQ, 2))
        sc = mc.to_scgraph()
        assert arc(0, "<", 0) in sc.arcs

    def test_unsat_projects_to_empty_scgraph(self):
        assert MCGraph.unsat(2, 2).to_scgraph() == SCGraph()

    def test_mc_desc_ok_no_weaker_than_sc_on_embeddings(self):
        # If the SC graph fails desc?, its MC embedding must also fail.
        failing = SCGraph([arc(0, "=", 0)])
        assert not failing.desc_ok()
        assert not MCGraph.from_scgraph(failing, 1, 1).desc_ok()


class TestGraphOfValues:
    def test_total_order_on_integers(self):
        g = mc_graph_of_values((5, 3), (3, 5))
        assert g.entails(0, GT, 1)       # 5 > 3 (context!)
        assert g.entails(0, GT, 2)       # old x > new x
        assert g.entails(0, GEQ, 3) and g.entails(3, GEQ, 0)  # y' = x

    def test_sizes_compare_pairs_and_nil(self):
        lst = cons(1, cons(2, NIL))
        g = mc_graph_of_values((lst,), (lst.cdr,))
        assert g.entails(0, GT, 1)

    def test_floats_contribute_nothing(self):
        g = mc_graph_of_values((1.5,), (0.5,))
        assert g == MCGraph.top(1, 1)

    def test_none_sizes_in_graph_of_sizes(self):
        g = mc_graph_of_sizes([None, 4], [2, None])
        assert g.entails(1, GT, 2)
        assert g.constraint(0, 2) == NO_EDGE

    def test_dynamic_graph_is_never_unsat(self):
        # Concrete values witness their own constraints.
        for old, new in [((0, 0), (0, 0)), ((9, 1), (1, 9)), ((3,), (4,))]:
            assert mc_graph_of_values(old, new).sat

    def test_projection_agrees_with_scgraph_on_sizes(self):
        from repro.sct.graph import graph_of_values
        from repro.sct.order import SizeOrder

        old, new = (7, 2), (2, 7)
        mc_sc = mc_graph_of_values(old, new).to_scgraph()
        sc = graph_of_values(old, new, SizeOrder())
        # every SC arc appears in the MC projection (MC sees size equality
        # where SC demands structural equality, so ⊇ not =)
        assert sc.arcs <= mc_sc.arcs


class TestPretty:
    def test_pretty_names_primed_targets(self):
        g = graph(1, 1, (0, GT, 1))
        assert g.pretty(["n"]) == "{n > n′}"

    def test_pretty_unsat(self):
        assert MCGraph.unsat(1, 1).pretty() == "{unsat}"

    def test_repr_contains_constraints(self):
        assert "x0 > x0′" in repr(graph(1, 1, (0, GT, 1)))
