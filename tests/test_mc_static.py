"""Static MC verification (repro.mc.static) and phase 2 (repro.mc.analyze)."""

import pytest

from repro.corpus.registry import all_programs, get_program
from repro.mc.analyze import mc_check
from repro.mc.graph import GEQ, GT, MCGraph
from repro.mc.static import verify_source_mc
from repro.symbolic.verify import verify_source


class TestMCCheck:
    def test_empty_multigraph_holds(self):
        assert mc_check({}).ok is True

    def test_single_descending_self_loop_holds(self):
        g = MCGraph.build(1, 1, [(0, GT, 1)])
        assert mc_check({(0, 0): {g}}).ok is True

    def test_stationary_self_loop_fails_with_witness(self):
        g = MCGraph.build(1, 1, [(0, GEQ, 1), (1, GEQ, 0)])
        result = mc_check({(0, 0): {g}})
        assert result.ok is False
        assert result.witness_label == 0
        assert result.witness_graph == g

    def test_unsat_graphs_are_discarded_not_checked(self):
        result = mc_check({(0, 0): {MCGraph.unsat(1, 1)}})
        assert result.ok is True
        assert result.discarded_unsat == 1

    def test_swap_pair_terminates_via_unsat_pruning(self):
        # g1: guarded swap (x > y); g2: descend x under y > x.
        g1 = MCGraph.build(2, 2, [(0, GT, 1), (1, GEQ, 2), (2, GEQ, 1),
                                  (0, GEQ, 3), (3, GEQ, 0)])
        g2 = MCGraph.build(2, 2, [(1, GT, 0), (0, GT, 2),
                                  (1, GEQ, 3), (3, GEQ, 1)])
        result = mc_check({(0, 0): {g1, g2}})
        assert result.ok is True
        assert result.discarded_unsat > 0

    def test_the_same_pair_without_context_fails(self):
        # Dropping the guards readmits the swap;swap loop.
        g1 = MCGraph.build(2, 2, [(1, GEQ, 2), (2, GEQ, 1),
                                  (0, GEQ, 3), (3, GEQ, 0)])
        g2 = MCGraph.build(2, 2, [(0, GT, 2), (1, GEQ, 3), (3, GEQ, 1)])
        assert mc_check({(0, 0): {g1, g2}}).ok is False

    def test_mutual_recursion_composes_across_edges(self):
        # f -> g halves nothing, g -> f descends: the f -> f composition
        # must inherit the descent.
        fg = MCGraph.build(1, 1, [(0, GEQ, 1), (1, GEQ, 0)])
        gf = MCGraph.build(1, 1, [(0, GT, 1)])
        assert mc_check({(0, 1): {fg}, (1, 0): {gf}}).ok is True

    def test_closure_cap_returns_undetermined(self):
        graphs = set()
        for i in range(4):
            for j in range(4):
                graphs.add(MCGraph.build(4, 4, [(i, GT, 4 + j)]))
        result = mc_check({(0, 0): graphs}, max_graphs=10)
        assert result.ok is None


class TestStaticVerification:
    def test_counting_up_verifies(self):
        src = """
        (define (range2 lo hi)
          (if (>= lo hi) '() (cons lo (range2 (+ lo 1) hi))))
        """
        assert verify_source_mc(src, "range2", ["nat", "nat"]).verified

    def test_same_program_unknown_under_sc(self):
        src = """
        (define (range2 lo hi)
          (if (>= lo hi) '() (cons lo (range2 (+ lo 1) hi))))
        """
        assert not verify_source(src, "range2", ["nat", "nat"]).verified

    def test_unbounded_ascent_stays_unknown(self):
        verdict = verify_source_mc("(define (up x) (up (+ x 1)))",
                                   "up", ["nat"])
        assert not verdict.verified
        assert verdict.witness is not None

    def test_witness_rendering_names_parameters(self):
        verdict = verify_source_mc("(define (up x) (up (+ x 1)))",
                                   "up", ["nat"])
        assert "x′ > x" in verdict.render()

    def test_ack_verifies_under_mc(self):
        prog = get_program("sct-3")
        entry, kinds = prog.entry
        assert verify_source_mc(prog.source, entry, kinds,
                                result_kinds=prog.result_kinds).verified

    def test_constant_ceiling_stays_unknown(self):
        # acl2-fig-2's convergence to the constant 3 has no ceiling
        # parameter, so MC cannot verify it either.
        prog = get_program("acl2-fig-2")
        entry, kinds = prog.entry
        assert not verify_source_mc(prog.source, entry, kinds).verified

    def test_unknown_entry_reported(self):
        verdict = verify_source_mc("(define x 1)", "x", [])
        assert not verdict.verified
        assert "not a statically known closure" in verdict.reasons[0]

    def test_arity_mismatch_reported(self):
        verdict = verify_source_mc("(define (f x) x)", "f", ["nat", "nat"])
        assert not verdict.verified
        assert "preconditions" in verdict.reasons[0]

    def test_mc_never_loses_a_verified_corpus_row(self):
        """MC graphs entail their SC projections, so every corpus row the
        SC verifier proves must also be proved by MC — and lh-range is
        additionally gained."""
        gained = []
        for prog in all_programs():
            if prog.entry is None:
                continue
            entry, kinds = prog.entry
            sc = verify_source(prog.source, entry, kinds,
                               result_kinds=prog.result_kinds)
            if not sc.verified:
                continue
            mc = verify_source_mc(prog.source, entry, kinds,
                                  result_kinds=prog.result_kinds)
            assert mc.verified, f"{prog.name}: SC verified but MC did not"
        prog = get_program("lh-range")
        entry, kinds = prog.entry
        assert verify_source_mc(prog.source, entry, kinds).verified

    def test_descent_before_swap_also_needs_context(self):
        # Reordered cond arms should make no difference.
        src = """
        (define (swapper x y)
          (cond [(zero? x) 0]
                [(zero? y) 0]
                [(< x y) (swapper (- x 1) y)]
                [(> x y) (swapper y x)]
                [else 0]))
        """
        assert verify_source_mc(src, "swapper", ["nat", "nat"]).verified
