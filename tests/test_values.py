"""Value model tests: sizes, memoization, equality, conversions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sexp.datum import Char, intern
from repro.values.env import Env, GlobalEnv, UnboundVariable
from repro.values.equality import scheme_equal, scheme_eqv, value_hash
from repro.values.values import (
    NIL,
    VOID,
    Box,
    HashValue,
    Pair,
    cons,
    from_datum,
    list_to_python,
    python_to_list,
    size_of,
    value_to_datum,
    write_value,
)

import pytest


class TestSizes:
    def test_int_size_is_abs(self):
        assert size_of(5) == 5
        assert size_of(-5) == 5
        assert size_of(0) == 0

    def test_bool_size(self):
        assert size_of(True) == 1
        assert size_of(False) == 1

    def test_float_has_no_size(self):
        assert size_of(1.5) is None

    def test_nil(self):
        assert size_of(NIL) == 0

    def test_pair_size_memoized(self):
        p = cons(1, cons(2, NIL))
        assert p.size == 1 + 1 + (1 + 2 + 0)
        assert size_of(p) == p.size

    def test_tail_smaller_than_list(self):
        lst = python_to_list([1, 2, 3])
        assert size_of(lst.cdr) < size_of(lst)

    def test_string_size_is_length(self):
        assert size_of("abc") == 3

    def test_atom_sizes(self):
        assert size_of(intern("s")) == 1
        assert size_of(Char("x")) == 1

    def test_hash_size_counts_entries(self):
        h0 = HashValue.empty()
        h1 = h0.set(intern("a"), 5)
        assert h1.size > h0.size


class TestEquality:
    def test_eqv_numbers(self):
        assert scheme_eqv(3, 3)
        assert not scheme_eqv(3, 4)
        assert not scheme_eqv(3, 3.0)

    def test_bool_is_not_int(self):
        assert not scheme_eqv(True, 1)
        assert not scheme_equal(False, 0)

    def test_symbols(self):
        assert scheme_eqv(intern("a"), intern("a"))
        assert not scheme_eqv(intern("a"), intern("b"))

    def test_chars(self):
        assert scheme_eqv(Char("a"), Char("a"))
        assert not scheme_eqv(Char("a"), Char("b"))

    def test_pairs_structural(self):
        a = from_datum([1, [2, 3]])
        # build an equal structure separately
        b = cons(1, cons(cons(2, cons(3, NIL)), NIL))
        assert scheme_equal(a, b)
        assert not scheme_eqv(a, b)

    def test_unequal_pairs(self):
        assert not scheme_equal(python_to_list([1, 2]), python_to_list([1, 3]))
        assert not scheme_equal(python_to_list([1, 2]), python_to_list([1, 2, 3]))

    def test_pair_vs_other(self):
        assert not scheme_equal(cons(1, NIL), 1)
        assert not scheme_equal(NIL, False)

    def test_strings(self):
        assert scheme_equal("ab", "ab")
        assert not scheme_equal("ab", "ba")

    def test_hash_equal(self):
        h1 = HashValue.empty().set(intern("a"), 1).set(intern("b"), 2)
        h2 = HashValue.empty().set(intern("b"), 2).set(intern("a"), 1)
        assert scheme_equal(h1, h2)
        assert not scheme_equal(h1, h1.set(intern("c"), 3))

    def test_hash_structural_keys(self):
        key1 = python_to_list([1, 2])
        key2 = python_to_list([1, 2])
        h = HashValue.empty().set(key1, "v")
        assert h.get(key2, None) == "v"

    def test_value_hash_consistent_with_equal(self):
        a = python_to_list([1, "x", intern("s")])
        b = python_to_list([1, "x", intern("s")])
        assert scheme_equal(a, b)
        assert value_hash(a) == value_hash(b)


class TestConversions:
    def test_from_datum_list(self):
        v = from_datum([1, 2])
        assert type(v) is Pair and v.car == 1 and v.cdr.car == 2 and v.cdr.cdr is NIL

    def test_roundtrip(self):
        datum = [1, [intern("a"), "s"], Char("c"), True]
        assert value_to_datum(from_datum(datum)) == datum

    def test_list_to_python_rejects_improper(self):
        with pytest.raises(ValueError):
            list_to_python(cons(1, 2))


class TestWrite:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (True, "#t"),
            (False, "#f"),
            (NIL, "()"),
            (VOID, "#<void>"),
            (intern("sym"), "sym"),
            ("hi", '"hi"'),
            (Char("a"), "#\\a"),
            (cons(1, 2), "(1 . 2)"),
        ],
    )
    def test_write(self, value, expected):
        assert write_value(value) == expected

    def test_write_list(self):
        assert write_value(python_to_list([1, 2, 3])) == "(1 2 3)"

    def test_box_repr(self):
        assert "5" in repr(Box(5))


class TestEnv:
    def test_global_define_lookup(self):
        g = GlobalEnv()
        g.define(intern("x"), 1)
        assert g.lookup(intern("x")) == 1

    def test_global_unbound(self):
        with pytest.raises(UnboundVariable):
            GlobalEnv().lookup(intern("nope"))

    def test_chained_lookup(self):
        g = GlobalEnv({intern("x"): 1})
        e = Env({intern("y"): 2}, g)
        e2 = Env({intern("y"): 3}, e)
        assert e2.lookup(intern("y")) == 3
        assert e.lookup(intern("y")) == 2
        assert e2.lookup(intern("x")) == 1

    def test_set_walks_chain(self):
        g = GlobalEnv({intern("x"): 1})
        e = Env({intern("y") : 2}, g)
        e.set(intern("x"), 10)
        assert g.lookup(intern("x")) == 10

    def test_set_unbound_raises(self):
        with pytest.raises(UnboundVariable):
            Env({}, GlobalEnv()).set(intern("zz"), 1)

    def test_snapshot_isolates(self):
        g = GlobalEnv({intern("x"): 1})
        s = g.snapshot()
        s.define(intern("x"), 99)
        assert g.lookup(intern("x")) == 1


@settings(max_examples=100, deadline=None)
@given(st.recursive(
    st.one_of(st.integers(-50, 50), st.booleans(), st.text(max_size=3)),
    lambda inner: st.lists(inner, max_size=3),
    max_leaves=15,
))
def test_size_positive_and_equal_structures_share_size(datum):
    v1 = from_datum(datum)
    v2 = from_datum(datum)
    assert scheme_equal(v1, v2)
    assert size_of(v1) == size_of(v2)
    assert size_of(v1) >= 0
