"""CLI tests: `sized run/verify/bench/corpus` via the entry function."""

import pytest

from repro.cli import main


@pytest.fixture()
def scm(tmp_path):
    def write(source: str) -> str:
        path = tmp_path / "prog.scm"
        path.write_text(source)
        return str(path)

    return write


class TestRun:
    def test_run_value(self, scm, capsys):
        path = scm("(+ 1 2)")
        assert main(["run", path]) == 0
        assert capsys.readouterr().out.strip() == "3"

    def test_run_displays_output(self, scm, capsys):
        path = scm('(display "hi") (newline) 42')
        assert main(["run", path]) == 0
        out = capsys.readouterr().out
        assert "hi" in out and "42" in out

    def test_run_full_mode_catches_loop(self, scm, capsys):
        path = scm("(define (f x) (f x)) (f 1)")
        assert main(["run", path, "--mode", "full"]) == 3
        assert "size-change violation" in capsys.readouterr().err

    def test_run_contract_mode_blame(self, scm, capsys):
        path = scm('(define f (terminating/c (lambda (x) (f x)) "me")) (f 1)')
        assert main(["run", path]) == 3
        assert "me" in capsys.readouterr().err

    def test_run_timeout_exit_code(self, scm, capsys):
        path = scm("(define (f x) (f x)) (f 1)")
        assert main(["run", path, "--mode", "off", "--max-steps", "5000"]) == 4

    def test_run_rt_error(self, scm, capsys):
        path = scm("(car 5)")
        assert main(["run", path]) == 1
        assert "car" in capsys.readouterr().err

    def test_imperative_strategy(self, scm, capsys):
        path = scm("(define (c n) (if (zero? n) 'ok (c (- n 1)))) (c 50)")
        assert main(["run", path, "--mode", "full",
                     "--strategy", "imperative"]) == 0
        assert capsys.readouterr().out.strip() == "ok"


class TestVerify:
    def test_verified(self, scm, capsys):
        path = scm("(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))")
        assert main(["verify", path, "--entry", "len", "--kinds", "list"]) == 0
        assert "verified" in capsys.readouterr().out

    def test_unknown(self, scm, capsys):
        path = scm("(define (f x) (f x))")
        assert main(["verify", path, "--entry", "f", "--kinds", "nat"]) == 3
        assert "unknown" in capsys.readouterr().out

    def test_result_kind_flag(self, scm, capsys):
        path = scm("""
        (define (ack m n)
          (cond [(= 0 m) (+ 1 n)]
                [(= 0 n) (ack (- m 1) 1)]
                [else (ack (- m 1) (ack m (- n 1)))]))
        """)
        code = main(["verify", path, "--entry", "ack",
                     "--kinds", "nat,nat", "--result-kind", "nat"])
        assert code == 0


class TestCorpusListing:
    def test_corpus(self, capsys):
        assert main(["corpus"]) == 0
        out = capsys.readouterr().out
        assert "sct-3" in out and "scheme" in out

    def test_corpus_diverging(self, capsys):
        assert main(["corpus", "--diverging"]) == 0
        assert "buggy-nfa" in capsys.readouterr().out
