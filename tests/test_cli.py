"""CLI tests: `sized run/verify/bench/corpus` via the entry function."""

import pytest

from repro.cli import main


@pytest.fixture()
def scm(tmp_path):
    def write(source: str) -> str:
        path = tmp_path / "prog.scm"
        path.write_text(source)
        return str(path)

    return write


class TestRun:
    def test_run_value(self, scm, capsys):
        path = scm("(+ 1 2)")
        assert main(["run", path]) == 0
        assert capsys.readouterr().out.strip() == "3"

    def test_run_displays_output(self, scm, capsys):
        path = scm('(display "hi") (newline) 42')
        assert main(["run", path]) == 0
        out = capsys.readouterr().out
        assert "hi" in out and "42" in out

    def test_run_full_mode_catches_loop(self, scm, capsys):
        path = scm("(define (f x) (f x)) (f 1)")
        assert main(["run", path, "--mode", "full"]) == 3
        assert "size-change violation" in capsys.readouterr().err

    def test_run_contract_mode_blame(self, scm, capsys):
        path = scm('(define f (terminating/c (lambda (x) (f x)) "me")) (f 1)')
        assert main(["run", path]) == 3
        assert "me" in capsys.readouterr().err

    def test_run_timeout_exit_code(self, scm, capsys):
        path = scm("(define (f x) (f x)) (f 1)")
        assert main(["run", path, "--mode", "off", "--max-steps", "5000"]) == 4

    def test_run_rt_error(self, scm, capsys):
        path = scm("(car 5)")
        assert main(["run", path]) == 1
        assert "car" in capsys.readouterr().err

    def test_imperative_strategy(self, scm, capsys):
        path = scm("(define (c n) (if (zero? n) 'ok (c (- n 1)))) (c 50)")
        assert main(["run", path, "--mode", "full",
                     "--strategy", "imperative"]) == 0
        assert capsys.readouterr().out.strip() == "ok"


class TestVerify:
    def test_verified(self, scm, capsys):
        path = scm("(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))")
        assert main(["verify", path, "--entry", "len", "--kinds", "list"]) == 0
        assert "verified" in capsys.readouterr().out

    def test_unknown(self, scm, capsys):
        path = scm("(define (f x) (f x))")
        assert main(["verify", path, "--entry", "f", "--kinds", "nat"]) == 3
        assert "unknown" in capsys.readouterr().out

    def test_result_kind_flag(self, scm, capsys):
        path = scm("""
        (define (ack m n)
          (cond [(= 0 m) (+ 1 n)]
                [(= 0 n) (ack (- m 1) 1)]
                [else (ack (- m 1) (ack m (- n 1)))]))
        """)
        code = main(["verify", path, "--entry", "ack",
                     "--kinds", "nat,nat", "--result-kind", "nat"])
        assert code == 0


ACK = """
(define (ack m n)
  (cond [(= 0 m) (+ 1 n)]
        [(= 0 n) (ack (- m 1) 1)]
        [else (ack (- m 1) (ack m (- n 1)))]))
(ack 2 3)
"""


class TestVerifyJsonAndEngine:
    def test_json_verified(self, scm, capsys):
        import json

        path = scm(ACK)
        code = main(["verify", path, "--entry", "ack", "--kinds", "nat,nat",
                     "--result-kind", "nat", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["status"] == "verified" and data["verified"] is True
        assert data["entry"] == "ack" and data["kinds"] == ["nat", "nat"]
        assert data["witness"] is None
        assert data["discharge"]["complete"] is True
        assert "ack" in data["discharge"]["discharged"]

    def test_json_unknown_nonzero_exit(self, scm, capsys):
        import json

        path = scm("(define (f x) (f x))")
        code = main(["verify", path, "--entry", "f", "--kinds", "nat",
                     "--json"])
        assert code == 3  # CI scripts gate on the exit code
        data = json.loads(capsys.readouterr().out)
        assert data["status"] == "unknown" and data["reasons"]
        assert data["witness"]["function"] == "f"
        assert data["witness"]["path"]

    def test_engine_parity(self, scm, capsys):
        path = scm(ACK)
        results = {}
        for engine in ("bitmask", "reference"):
            code = main(["verify", path, "--entry", "ack",
                         "--kinds", "nat,nat", "--result-kind", "nat",
                         "--engine", engine])
            results[engine] = (code, capsys.readouterr().out.splitlines()[0])
        assert results["bitmask"] == results["reference"]

    def test_engine_parity_on_failure(self, scm, capsys):
        path = scm("(define (f x) (f x))")
        for engine in ("bitmask", "reference"):
            code = main(["verify", path, "--entry", "f", "--kinds", "nat",
                         "--engine", engine])
            assert code == 3
            assert "witness" in capsys.readouterr().out


class TestRunDischarge:
    def test_discharge_try_verified(self, scm, capsys):
        path = scm(ACK)
        code = main(["run", path, "--mode", "full", "--discharge", "try",
                     "--result-kind", "ack=nat"])
        assert code == 0
        assert capsys.readouterr().out.strip() == "9"

    def test_discharge_require_verified(self, scm, capsys):
        path = scm(ACK)
        code = main(["run", path, "--mode", "full", "--discharge", "require",
                     "--result-kind", "ack=nat"])
        assert code == 0
        assert capsys.readouterr().out.strip() == "9"

    def test_discharge_require_refuses(self, scm, capsys):
        path = scm("(define (f x) (f x)) (f 1)")
        code = main(["run", path, "--mode", "full",
                     "--discharge", "require"])
        assert code == 5
        assert "cannot fully discharge" in capsys.readouterr().err

    def test_discharge_try_keeps_residual_checks(self, scm, capsys):
        path = scm("(define (f x) (f x)) (f 1)")
        plain = main(["run", path, "--mode", "full"])
        plain_err = capsys.readouterr().err
        code = main(["run", path, "--mode", "full", "--discharge", "try"])
        err = capsys.readouterr().err
        assert code == plain == 3
        assert err == plain_err  # byte-identical violation

    def test_discharge_cache_on_disk(self, scm, tmp_path, capsys):
        path = scm(ACK)
        store = str(tmp_path / "certs")
        for _ in range(2):
            code = main(["run", path, "--mode", "full", "--discharge",
                         "require", "--result-kind", "ack=nat",
                         "--discharge-cache", store])
            assert code == 0
            capsys.readouterr()
        import os

        assert os.listdir(store)


class TestCorpusListing:
    def test_corpus(self, capsys):
        assert main(["corpus"]) == 0
        out = capsys.readouterr().out
        assert "sct-3" in out and "scheme" in out

    def test_corpus_diverging(self, capsys):
        assert main(["corpus", "--diverging"]) == 0
        assert "buggy-nfa" in capsys.readouterr().out
