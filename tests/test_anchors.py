"""Positive termination certificates (repro.analysis.anchors)."""

from repro.analysis.anchors import (
    FunctionAnchors,
    collect_anchors,
    explain_termination,
)
from repro.sct.graph import SCGraph, arc
from repro.symbolic.verify import verify_source


def edges_of(*pairs):
    out = {}
    for edge, graph in pairs:
        out.setdefault(edge, set()).add(graph)
    return out


class TestCollect:
    def test_single_descending_loop(self):
        g = SCGraph([arc(0, "<", 0)])
        report = collect_anchors(edges_of(((0, 0), g)))
        assert report is not None
        assert report[0].anchor_union() == {0}
        assert report[0].common_anchor() == 0

    def test_failing_scp_gives_no_certificate(self):
        g = SCGraph([arc(0, "=", 0)])
        assert collect_anchors(edges_of(((0, 0), g))) is None

    def test_alternating_anchors_have_no_common_one(self):
        # ack-style: one pattern descends on 0, another on 1 (holding 0).
        g1 = SCGraph([arc(0, "<", 0)])
        g2 = SCGraph([arc(0, "=", 0), arc(1, "<", 1)])
        report = collect_anchors(edges_of(((0, 0), g1), ((0, 0), g2)))
        assert report is not None
        anchors = report[0]
        assert anchors.common_anchor() is None or anchors.common_anchor() == 0
        assert anchors.anchor_union() >= {0}

    def test_mutual_recursion_certificate_on_composed_cycle(self):
        fg = SCGraph([arc(0, "=", 0)])
        gf = SCGraph([arc(0, "<", 0)])
        report = collect_anchors(edges_of(((0, 1), fg), ((1, 0), gf)))
        assert report is not None
        assert 0 in report and 1 in report
        assert report[0].common_anchor() == 0

    def test_closure_cap_gives_none(self):
        graphs = edges_of(
            *[((0, 0), SCGraph([arc(i, "<", j), arc(j, "<", i),
                                arc(0, "<", 0)]))
              for i in range(3) for j in range(3)]
        )
        assert collect_anchors(graphs, max_graphs=2) is None

    def test_function_anchors_accessors(self):
        fa = FunctionAnchors(7, [SCGraph([arc(1, "<", 1), arc(0, "=", 0)])])
        assert fa.all_anchored()
        assert fa.anchor_union() == {1}
        assert fa.common_anchor() == 1


class TestExplain:
    def test_named_single_anchor(self):
        g = SCGraph([arc(0, "<", 0)])
        lines = explain_termination(edges_of(((3, 3), g)), {3: "rev"},
                                    {3: ["l", "acc"]})
        assert lines == ["rev: every repeatable call pattern strictly "
                         "descends on l"]

    def test_union_phrasing(self):
        g1 = SCGraph([arc(0, "<", 0), arc(1, "=", 1)])
        g2 = SCGraph([arc(1, "<", 1), arc(0, "=", 0)])
        lines = explain_termination(edges_of(((0, 0), g1), ((0, 0), g2)),
                                    {0: "ack"}, {0: ["m", "n"]})
        assert any("one of {m, n}" in line for line in lines)

    def test_no_certificate_is_empty(self):
        g = SCGraph([arc(0, "=", 0)])
        assert explain_termination(edges_of(((0, 0), g))) == []


class TestVerdictIntegration:
    def test_verified_verdict_carries_explanation(self):
        v = verify_source(
            "(define (rev l a) (if (null? l) a (rev (cdr l) (cons (car l) a))))",
            "rev", ["list", "list"])
        assert v.verified
        assert v.explanation
        assert "descends on l" in v.render()

    def test_ack_explanation_names_both_parameters(self):
        src = """
        (define (ack m n)
          (cond [(= 0 m) (+ 1 n)]
                [(= 0 n) (ack (- m 1) 1)]
                [else (ack (- m 1) (ack m (- n 1)))]))
        """
        v = verify_source(src, "ack", ["nat", "nat"],
                          result_kinds={"ack": "nat"})
        assert v.verified
        assert any("m" in line and "n" in line for line in v.explanation)

    def test_unknown_verdict_has_no_explanation(self):
        v = verify_source("(define (f x) (f x))", "f", ["nat"])
        assert not v.verified
        assert v.explanation == []
