"""The term/c wrapping rules of Fig. 7/Fig. 13, individually."""

from repro.eval.machine import Answer, run_source
from repro.values.values import Prim, TermWrapped


def val(src, **kw):
    a = run_source(src, mode="contract", **kw)
    assert a.kind == Answer.VALUE, repr(a)
    return a.value


class TestWrapRules:
    def test_wrap_lam_produces_wrapped_closure(self):
        v = val("(terminating/c (lambda (x) x))")
        assert isinstance(v, TermWrapped)

    def test_wrap_prim_is_identity(self):
        """[Wrap-Prim]: primitives are already known-terminating."""
        v = val("(terminating/c car)")
        assert isinstance(v, Prim) and v.name == "car"

    def test_wrap_base_is_identity(self):
        assert val("(terminating/c 42)") == 42
        assert val("(terminating/c 'sym)").name == "sym"

    def test_double_wrap_keeps_first_label(self):
        v = val('(terminating/c (terminating/c (lambda (x) x) "inner") "outer")')
        assert isinstance(v, TermWrapped)
        assert not isinstance(v.closure, TermWrapped)
        assert v.blame == "inner"

    def test_wrapped_value_is_a_procedure(self):
        assert val("(procedure? (terminating/c (lambda (x) x)))") is True

    def test_wrapped_value_applies_like_the_closure(self):
        assert val("((terminating/c (lambda (x) (* x x))) 7)") == 49

    def test_default_blame_is_source_location(self):
        a = run_source("(define f (terminating/c (lambda (x) (f x)))) (f 1)",
                       mode="contract")
        assert a.kind == Answer.SC_ERROR
        assert "term/c@" in a.violation.blame

    def test_off_mode_wrap_transparent(self):
        a = run_source("((terminating/c (lambda (x) (+ x 1))) 2)", mode="off")
        assert a.kind == Answer.VALUE and a.value == 3

    def test_sc_wrap_inside_monitored_extent(self):
        """[SC-Wrap-Lam]: term/c evaluated while already monitoring still
        wraps, and [SC-App-Term] continues with the same table."""
        src = """
        (define (make) (terminating/c (lambda (n) (if (zero? n) 0 ((make) (- n 1))))))
        ((make) 4)
        """
        a = run_source(src, mode="full")
        assert a.kind == Answer.VALUE and a.value == 0
