"""Systematic primitive coverage: semantics and domain errors."""

import pytest

from repro.eval.machine import Answer, run_source
from repro.sexp.datum import intern
from repro.values.values import write_value


def ev(text):
    a = run_source(text)
    assert a.kind == Answer.VALUE, repr(a)
    return a.value


def evs(text):
    return write_value(ev(text))


def err(text):
    a = run_source(text)
    assert a.kind == Answer.RT_ERROR, repr(a)
    return str(a.error)


class TestIntegerDivision:
    """quotient/remainder truncate toward zero; modulo follows the divisor
    (R5RS semantics)."""

    @pytest.mark.parametrize("a,b,q,r,m", [
        (7, 2, 3, 1, 1),
        (-7, 2, -3, -1, 1),
        (7, -2, -3, 1, -1),
        (-7, -2, 3, -1, -1),
        (6, 3, 2, 0, 0),
        (0, 5, 0, 0, 0),
    ])
    def test_div_family(self, a, b, q, r, m):
        assert ev(f"(quotient {a} {b})") == q
        assert ev(f"(remainder {a} {b})") == r
        assert ev(f"(modulo {a} {b})") == m

    def test_division_by_zero(self):
        for op in ("quotient", "remainder", "modulo"):
            assert "zero" in err(f"({op} 1 0)")


class TestNumericPredicates:
    def test_parity(self):
        assert ev("(even? 4)") is True
        assert ev("(odd? 3)") is True
        assert ev("(even? -2)") is True
        assert ev("(odd? -3)") is True

    def test_signs(self):
        assert ev("(positive? 1)") is True
        assert ev("(negative? -1)") is True
        assert ev("(zero? 0)") is True
        assert ev("(positive? 0)") is False

    def test_minmax_abs(self):
        assert ev("(min 3 1 2)") == 1
        assert ev("(max 3 1 2)") == 3
        assert ev("(abs -9)") == 9

    def test_type_predicates(self):
        assert ev("(number? 3)") is True
        assert ev("(number? #t)") is False  # booleans are not numbers
        assert ev("(integer? 3)") is True
        assert ev("(boolean? #f)") is True
        assert ev("(symbol? 'a)") is True
        assert ev("(procedure? car)") is True
        assert ev("(procedure? (lambda (x) x))") is True
        assert ev("(procedure? 3)") is False


class TestListPrims:
    def test_accessors(self):
        assert evs("(cadr '(1 2 3))") == "2"
        assert evs("(caddr '(1 2 3))") == "3"
        assert evs("(cddr '(1 2 3))") == "(3)"
        assert evs("(cadddr '(1 2 3 4))") == "4"
        assert evs("(caar '((1 2) 3))") == "1"

    def test_list_tail_and_ref(self):
        assert evs("(list-tail '(a b c d) 2)") == "(c d)"
        assert evs("(list-ref '(a b c) 0)") == "a"
        assert "list-ref" in err("(list-ref '(a) 5)")

    def test_append_edge_cases(self):
        assert evs("(append)") == "()"
        assert evs("(append '(1))") == "(1)"
        assert evs("(append '() '(1) '() '(2 3))") == "(1 2 3)"
        assert evs("(append '(1) 2)") == "(1 . 2)"  # last arg may be improper

    def test_list_predicates(self):
        assert ev("(list? '(1 2))") is True
        assert ev("(list? '(1 . 2))") is False
        assert ev("(list? '())") is True
        assert ev("(pair? '())") is False
        assert ev("(null? '())") is True

    def test_member_assoc_families(self):
        assert evs("(member '(1) '((2) (1)))") == "((1))"  # equal?
        assert ev("(memq '(1) '((2) (1)))") is False       # eq?
        assert evs("(memv 2 '(1 2 3))") == "(2 3)"
        assert evs("(assoc '(k) '(((k) . 1)))") == "((k) . 1)"
        assert ev("(assq '(k) '(((k) . 1)))") is False
        assert evs("(assv 2 '((1 . a) (2 . b)))") == "(2 . b)"

    def test_length_improper_errors(self):
        assert "length" in err("(length '(1 . 2))")

    def test_reverse(self):
        assert evs("(reverse '())") == "()"
        assert evs("(reverse '(1 2 3))") == "(3 2 1)"


class TestStringsAndChars:
    def test_conversions(self):
        assert evs("(list->string (list #\\h #\\i))") == '"hi"'
        assert evs("(string->list \"ab\")") == "(#\\a #\\b)"
        assert ev("(symbol->string 'foo)") == "foo"
        assert ev("(string->symbol \"bar\")") is intern("bar")
        assert ev("(number->string 42)") == "42"

    def test_char_ops(self):
        assert ev("(char->integer #\\a)") == 97
        assert evs("(integer->char 98)") == "#\\b"
        assert ev("(char<? #\\a #\\b)") is True
        assert ev("(char=? #\\a #\\a #\\a)") is True

    def test_string_ops(self):
        assert ev('(string<? "abc" "abd")') is True
        assert ev('(string=? "x" "x")') is True
        assert evs('(string-ref "abc" 1)') == "#\\b"
        assert "range" in err('(string-ref "a" 3)')
        assert ev('(substring "hello" 2)') == "llo"

    def test_string_type_errors(self):
        assert "string" in err("(string-length 5)")
        assert "character" in err("(char=? 1 2)")


class TestHashPrims:
    def test_build_and_query(self):
        assert ev("(hash-count (hash))") == 0
        assert ev("(hash-ref (hash 1 'one 2 'two) 2)") is intern("two")
        assert ev("(hash-has-key? (hash 'a 1) 'b)") is False

    def test_structural_keys(self):
        assert ev("(hash-ref (hash '(1 2) 'hit) (list 1 2))") is intern("hit")

    def test_functional_update(self):
        src = """
        (define h0 (hash 'a 1))
        (define h1 (hash-set h0 'a 2))
        (list (hash-ref h0 'a) (hash-ref h1 'a))
        """
        assert evs(src) == "(1 2)"

    def test_missing_key(self):
        assert "hash-ref" in err("(hash-ref (hash) 'nope)")
        assert ev("(hash-ref (hash) 'nope 42)") == 42

    def test_odd_arity_hash(self):
        assert "even" in err("(hash 'a)")


class TestEqualityPrims:
    def test_eq_on_interned(self):
        assert ev("(eq? 'a 'a)") is True
        assert ev("(eq? '() '())") is True

    def test_eqv_numbers_vs_equal_structures(self):
        assert ev("(eqv? 100000 100000)") is True
        assert ev("(eqv? '(1) '(1))") is False
        assert ev("(equal? '(1 (2)) '(1 (2)))") is True
        assert ev('(equal? "ab" "ab")') is True

    def test_not(self):
        assert ev("(not #f)") is True
        assert ev("(not 0)") is False
        assert ev("(not '())") is False


class TestMisc:
    def test_void(self):
        assert evs("(void)") == "#<void>"
        assert ev("(void? (void))") is True

    def test_expt(self):
        assert ev("(expt 3 4)") == 81
        assert "negative" in err("(expt 2 -1)")

    def test_error_prim_formats_values(self):
        msg = err("(error \"bad value:\" '(1 2))")
        assert "bad value:" in msg and "(1 2)" in msg

    def test_boxes_roundtrip(self):
        assert ev("(unbox (box 7))") == 7
        assert ev("(box? (box 1))") is True
        assert ev("(box? 1)") is False
        assert "box" in err("(unbox 5)")
