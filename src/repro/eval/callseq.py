"""The call-sequence semantics ``↓↓`` (paper Fig. 6).

This is the "mostly-standard semantics that also evaluates to a set of
size-change tables along with the answer, but performs no guarding against
any size-change violation" — the technical device behind the completeness
results (Lemmas 3.4/3.5, Theorem 3.6).

Operationally it is the monitored machine with a *non-enforcing* monitor:
``ext`` extends tables exactly like ``upd`` but never aborts; instead every
SCP failure that *would* have aborted is recorded.  The correspondence
tests in ``tests/test_callseq.py`` check the executable content of the
completeness lemmas:

* a terminating program yields the same value as the standard semantics
  (Lemma 3.4), and
* the enforcing semantics answers ``errorSC`` **iff** the call-sequence
  semantics records a table entry violating ``prog?`` (Lemma 3.5 and its
  converse, which holds here because evaluation is deterministic).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.eval.machine import Answer, run_source
from repro.sct.monitor import SCMonitor


def run_callseq(
    source: str,
    *,
    strategy: str = "cm",
    max_steps: Optional[int] = 2_000_000,
    measures=None,
) -> Tuple[Answer, SCMonitor]:
    """Run ``source`` under the Fig. 6 semantics.

    Returns the answer (which may be a fuel timeout: without enforcement,
    diverging programs really diverge) and the collecting monitor, whose
    ``violations`` list holds every SCP failure the table sequence
    witnessed.
    """
    monitor = SCMonitor(enforce=False, measures=measures)
    answer = run_source(source, mode="full", strategy=strategy,
                        monitor=monitor, max_steps=max_steps)
    return answer, monitor
