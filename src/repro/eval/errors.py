"""Re-exports of the run-time error types (see :mod:`repro.errors`)."""

from repro.errors import FuelExhausted, MachineTimeout, SchemeError

__all__ = ["FuelExhausted", "MachineTimeout", "SchemeError"]
