"""Re-exports of the run-time error types (see :mod:`repro.errors`)."""

from repro.errors import MachineTimeout, SchemeError

__all__ = ["MachineTimeout", "SchemeError"]
