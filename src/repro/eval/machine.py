"""The CEK machine: standard, contract-monitored (λCSCT) and fully
monitored (λSCT) evaluation with proper tail calls.

The machine is a single explicit-stack loop.  Continuation frames are plain
tuples whose *last two slots* snapshot the monitoring state current when the
frame was pushed; popping a frame restores them.  Because closure entry is
the only point where monitoring state changes, this is exactly
continuation-mark dynamic scoping:

* entering a closure body *updates* the current table (``upd``, Fig. 4),
* a non-tail caller's pending frame holds the outer table, so returning
  restores the caller's dynamic extent,
* a tail call pushes no frame, so the table keeps extending — proper tail
  calls are preserved (the ``cm`` strategy).

The ``imperative`` strategy instead mutates one shared dictionary and pushes
an undo frame on *every* monitored call — cheaper per call, but the undo
frames grow the continuation on tail-recursive loops, reproducing the
broken-TCO trade-off the paper measures in Fig. 10.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.ds.hamt import Hamt
from repro.eval.errors import MachineTimeout, SchemeError
from repro.lang import ast
from repro.lang.parser import parse_program
from repro.lang.prims import PRELUDE_SOURCE, PRIMITIVES
from repro.lang.program import Program, TopDefine
from repro.sct.errors import SizeChangeViolation
from repro.sct.monitor import SCMonitor
from repro.sexp.datum import intern
from repro.values.env import Env, GlobalEnv, UnboundVariable
from repro.values.values import (
    NIL,
    VOID,
    Closure,
    Prim,
    TermWrapped,
    write_value,
)

# Frame tags.
F_IF = 0
F_APPFN = 1
F_APPARG = 2
F_BEGIN = 3
F_LET = 4
F_LETREC = 5
F_SET = 6
F_TERMC = 7
F_RESTORE = 8

_UNDEF = object()

ROOT_BLAME = "the program"

_K = ast  # short alias for kind constants


class Answer:
    """The observable outcome of a run: a value, ``errorRT``, ``errorSC``,
    or a fuel timeout (only possible without monitoring)."""

    __slots__ = ("kind", "value", "error", "violation", "output", "steps")

    VALUE = "value"
    RT_ERROR = "rt-error"
    SC_ERROR = "sc-error"
    TIMEOUT = "timeout"

    def __init__(self, kind, value=None, error=None, violation=None,
                 output: str = "", steps: int = 0):
        self.kind = kind
        self.value = value
        self.error = error
        self.violation = violation
        self.output = output
        self.steps = steps

    def is_value(self) -> bool:
        return self.kind == Answer.VALUE

    def __repr__(self) -> str:
        if self.kind == Answer.VALUE:
            return f"Answer(value={write_value(self.value)})"
        if self.kind == Answer.SC_ERROR:
            return "Answer(errorSC)"
        if self.kind == Answer.TIMEOUT:
            return "Answer(timeout)"
        return f"Answer(errorRT: {self.error})"


class _Fuel:
    """A shared step budget across all top-level forms of one run."""

    __slots__ = ("left", "limit")

    def __init__(self, limit: Optional[int]):
        self.limit = limit
        self.left = limit if limit is not None else -1


def eval_expr(
    expr: ast.Node,
    env,
    *,
    mode: str = "off",
    strategy: str = "cm",
    monitor: Optional[SCMonitor] = None,
    fuel: Optional[_Fuel] = None,
    mtable: Optional[dict] = None,
):
    """Evaluate one expression to a value (raises on errors/violations)."""
    if monitor is None:
        monitor = SCMonitor()
    if fuel is None:
        fuel = _Fuel(None)
    imperative = strategy == "imperative"
    if strategy not in ("cm", "imperative"):
        raise ValueError(f"unknown strategy: {strategy!r}")
    if mode not in ("off", "contract", "full"):
        raise ValueError(f"unknown mode: {mode!r}")

    # Monitoring state.  cm: s1 = persistent table (None = off).
    # imperative: s1 = active flag, entries live in the shared dict `mtable`.
    if mode == "full":
        s1 = True if imperative else Hamt.empty()
        s2 = ROOT_BLAME
    else:
        s1 = False if imperative else None
        s2 = None
    if imperative and mtable is None:
        mtable = {}

    kont: List[tuple] = []
    control = expr
    cenv = env
    val = None
    returning = False
    steps_left = fuel.left
    monitored_modes = mode != "off"

    while True:
        if steps_left >= 0:
            steps_left -= 1
            if steps_left < 0:
                fuel.left = 0
                raise MachineTimeout(fuel.limit or 0)

        if not returning:
            k = control.kind
            if k == 1:  # K_VAR
                try:
                    val = cenv.lookup(control.name)
                except UnboundVariable as exc:
                    raise SchemeError(str(exc), control.loc) from None
                if val is _UNDEF:
                    raise SchemeError(
                        f"{control.name.name}: used before initialization",
                        control.loc,
                    )
                returning = True
            elif k == 0:  # K_LIT
                val = control.value
                returning = True
            elif k == 3:  # K_APP
                kont.append((F_APPFN, control.args, cenv, control.loc, s1, s2))
                control = control.fn
            elif k == 4:  # K_IF
                kont.append((F_IF, control.then, control.els, cenv, s1, s2))
                control = control.test
            elif k == 2:  # K_LAM
                val = Closure(control, cenv)
                returning = True
            elif k == 6:  # K_LET
                if not control.rhss:
                    cenv = Env({}, cenv)
                    control = control.body
                else:
                    kont.append((F_LET, control, 0, [], cenv, s1, s2))
                    control = control.rhss[0]
            elif k == 7:  # K_LETREC
                new_env = Env({n: _UNDEF for n in control.names}, cenv)
                if not control.rhss:
                    cenv = new_env
                    control = control.body
                else:
                    kont.append((F_LETREC, control, 0, new_env, s1, s2))
                    control = control.rhss[0]
                    cenv = new_env
            elif k == 5:  # K_BEGIN
                body = control.body
                if len(body) > 1:
                    kont.append((F_BEGIN, body, 1, cenv, s1, s2))
                control = body[0]
            elif k == 8:  # K_SET
                kont.append((F_SET, control.name, cenv, s1, s2))
                control = control.expr
            elif k == 9:  # K_TERMC
                kont.append((F_TERMC, control.blame, s1, s2))
                control = control.expr
            else:  # pragma: no cover - parser emits only the kinds above
                raise SchemeError(f"unknown AST node kind {k}")
            continue

        # Returning `val` to the continuation.
        if not kont:
            fuel.left = steps_left
            return val
        frame = kont.pop()
        tag = frame[0]
        s1 = frame[-2]
        s2 = frame[-1]

        if tag == F_APPFN:
            _, arg_exprs, fenv, loc, _, _ = frame
            if not arg_exprs:
                fn = val
                vals: List = []
            else:
                kont.append((F_APPARG, val, [], arg_exprs, 1, fenv, loc, s1, s2))
                control = arg_exprs[0]
                cenv = fenv
                returning = False
                continue
        elif tag == F_APPARG:
            _, fn, vals, arg_exprs, idx, fenv, loc, _, _ = frame
            vals.append(val)
            if idx < len(arg_exprs):
                kont.append((F_APPARG, fn, vals, arg_exprs, idx + 1, fenv, loc, s1, s2))
                control = arg_exprs[idx]
                cenv = fenv
                returning = False
                continue
        elif tag == F_IF:
            control = frame[1] if val is not False else frame[2]
            cenv = frame[3]
            returning = False
            continue
        elif tag == F_BEGIN:
            _, body, idx, benv, _, _ = frame
            if idx < len(body) - 1:
                kont.append((F_BEGIN, body, idx + 1, benv, s1, s2))
            control = body[idx]
            cenv = benv
            returning = False
            continue
        elif tag == F_LET:
            _, node, idx, vals, lenv, _, _ = frame
            vals.append(val)
            idx += 1
            if idx < len(node.rhss):
                kont.append((F_LET, node, idx, vals, lenv, s1, s2))
                control = node.rhss[idx]
                cenv = lenv
            else:
                cenv = Env(dict(zip(node.names, vals)), lenv)
                control = node.body
            returning = False
            continue
        elif tag == F_LETREC:
            _, node, idx, new_env, _, _ = frame
            new_env.bindings[node.names[idx]] = val
            if type(val) is Closure and val.name is None:
                val.name = node.names[idx].name
            idx += 1
            if idx < len(node.rhss):
                kont.append((F_LETREC, node, idx, new_env, s1, s2))
                control = node.rhss[idx]
            else:
                control = node.body
            cenv = new_env
            returning = False
            continue
        elif tag == F_SET:
            try:
                frame[2].set(frame[1], val)
            except UnboundVariable as exc:
                raise SchemeError(str(exc)) from None
            val = VOID
            continue
        elif tag == F_TERMC:
            blame_label = frame[1]
            if type(val) is Closure:
                val = TermWrapped(val, blame_label)
            # term/c on primitives and other values is the identity
            # ([Wrap-Prim]); already-wrapped closures keep their first label.
            continue
        elif tag == F_RESTORE:
            monitor.restore_mut(mtable, frame[1], frame[2])
            continue
        else:  # pragma: no cover
            raise SchemeError(f"unknown frame tag {tag}")

        # -- application ------------------------------------------------------
        loc = frame[3] if tag == F_APPFN else frame[6]
        while True:
            tf = type(fn)
            if tf is Closure:
                params = fn.lam.params
                if len(vals) != len(params):
                    raise SchemeError(
                        f"{fn.describe()}: expected {len(params)} arguments, "
                        f"got {len(vals)}",
                        loc,
                    )
                if imperative:
                    if s1 and monitor.should_monitor(fn):
                        key, prev = monitor.upd_mut(mtable, fn, tuple(vals), s2)
                        kont.append((F_RESTORE, key, prev, s1, s2))
                else:
                    if s1 is not None and monitor.should_monitor(fn):
                        s1 = monitor.upd(s1, fn, tuple(vals), s2)
                cenv = Env(dict(zip(params, vals)), fn.env)
                control = fn.lam.body
                returning = False
                break
            if tf is Prim:
                if not fn.accepts(len(vals)):
                    raise SchemeError(
                        f"{fn.name}: arity mismatch with {len(vals)} arguments",
                        loc,
                    )
                val = fn.fn(vals)
                returning = True
                break
            if tf is TermWrapped:
                if monitored_modes:
                    s2 = fn.blame
                    if imperative:
                        s1 = True
                    elif s1 is None:
                        s1 = Hamt.empty()
                fn = fn.closure
                continue
            raise SchemeError(
                f"application of a non-procedure: {write_value(fn)}", loc
            )


# -- whole programs ------------------------------------------------------------

_PRELUDE_PROGRAM: Optional[Program] = None
_CONTRACTS_PROGRAM: Optional[Program] = None


def _prelude_program() -> Program:
    global _PRELUDE_PROGRAM
    if _PRELUDE_PROGRAM is None:
        _PRELUDE_PROGRAM = parse_program(PRELUDE_SOURCE, source="<prelude>")
    return _PRELUDE_PROGRAM


def _contracts_program() -> Program:
    global _CONTRACTS_PROGRAM
    if _CONTRACTS_PROGRAM is None:
        from repro.lang.contracts_lib import CONTRACTS_SOURCE

        _CONTRACTS_PROGRAM = parse_program(CONTRACTS_SOURCE,
                                           source="<contracts>")
    return _CONTRACTS_PROGRAM


def make_env(include_prelude: bool = True) -> GlobalEnv:
    """A fresh global environment with primitives, the prelude, and the
    contract library (:mod:`repro.lang.contracts_lib`)."""
    env = GlobalEnv(dict(PRIMITIVES))
    if include_prelude:
        fuel = _Fuel(None)
        for library in (_prelude_program(), _contracts_program()):
            for form in library.forms:
                assert isinstance(form, TopDefine)
                value = eval_expr(form.expr, env, fuel=fuel)
                if type(value) is Closure and value.name is None:
                    value.name = form.name.name
                env.define(form.name, value)
    return env


def run_program(
    program: Program,
    *,
    mode: str = "off",
    strategy: str = "cm",
    monitor: Optional[SCMonitor] = None,
    max_steps: Optional[int] = None,
    env: Optional[GlobalEnv] = None,
    include_prelude: bool = True,
) -> Answer:
    """Run a whole program; the answer holds the last expression's value.

    ``mode``: ``'off'`` (standard ⇓), ``'contract'`` (λCSCT), ``'full'``
    (λSCT).  ``strategy``: ``'cm'`` or ``'imperative'``.
    """
    if env is None:
        env = make_env(include_prelude)
    else:
        env = env.snapshot()
    if monitor is None:
        monitor = SCMonitor()
    output: List[str] = []
    env.define(intern("display"),
               Prim("display", lambda a: _display(a, output), 1, 1))
    env.define(intern("write"),
               Prim("write", lambda a: _write(a, output), 1, 1))
    env.define(intern("newline"),
               Prim("newline", lambda a: _newline(output), 0, 0))

    fuel = _Fuel(max_steps)
    mtable: dict = {}
    last = VOID
    steps_used = 0
    try:
        for form in program.forms:
            value = eval_expr(
                form.expr, env, mode=mode, strategy=strategy,
                monitor=monitor, fuel=fuel, mtable=mtable,
            )
            if isinstance(form, TopDefine):
                if type(value) is Closure and value.name is None:
                    value.name = form.name.name
                env.define(form.name, value)
            else:
                last = value
    except SchemeError as exc:
        return Answer(Answer.RT_ERROR, error=exc, output="".join(output))
    except SizeChangeViolation as exc:
        return Answer(Answer.SC_ERROR, violation=exc, output="".join(output))
    except MachineTimeout:
        return Answer(Answer.TIMEOUT, output="".join(output))
    if max_steps is not None:
        steps_used = max_steps - max(fuel.left, 0)
    return Answer(Answer.VALUE, value=last, output="".join(output), steps=steps_used)


def run_source(
    text: str,
    *,
    mode: str = "off",
    strategy: str = "cm",
    monitor: Optional[SCMonitor] = None,
    max_steps: Optional[int] = None,
    env: Optional[GlobalEnv] = None,
    include_prelude: bool = True,
    source: str = "<program>",
) -> Answer:
    """Parse and run program text."""
    program = parse_program(text, source=source)
    return run_program(
        program, mode=mode, strategy=strategy, monitor=monitor,
        max_steps=max_steps, env=env, include_prelude=include_prelude,
    )


def _display(args, out: List[str]):
    v = args[0]
    out.append(v if type(v) is str else write_value(v))
    return VOID


def _write(args, out: List[str]):
    out.append(write_value(args[0]))
    return VOID


def _newline(out: List[str]):
    out.append("\n")
    return VOID
