"""The CEK machines: standard, contract-monitored (λCSCT) and fully
monitored (λSCT) evaluation with proper tail calls.

Two evaluators share the observable semantics (differentially tested over
the whole corpus — ``tests/test_compiled_machine.py``):

* the **tree machine** (:func:`eval_expr`) walks the
  :mod:`repro.lang.ast` nodes directly over dict-rib
  :class:`~repro.values.env.Env` chains — the spec-conformance reference,
  kept close to the paper's figures;
* the **compiled machine** (:func:`eval_code`, the default) first runs the
  lexical-addressing pass (:mod:`repro.lang.resolve`) and then executes
  slot-addressed code over flat list frames: a variable reference is a
  couple of list indexings, an application reuses its evaluated-arguments
  list as the callee's frame, immediate subexpressions (literals,
  variables, λs, nested primitive calls) evaluate without touching the
  continuation, and the size-change monitor's common no-violation call
  runs through a per-closure cached key and
  :meth:`~repro.sct.monitor.SCMonitor.advance_fast`.

Both machines are single explicit-stack loops.  Continuation frames'
*last two slots* snapshot the monitoring state current when the frame was
pushed; popping a frame restores them.  Because closure entry is the only
point where monitoring state changes, this is exactly continuation-mark
dynamic scoping:

* entering a closure body *updates* the current table (``upd``, Fig. 4),
* a non-tail caller's pending frame holds the outer table, so returning
  restores the caller's dynamic extent,
* a tail call pushes no frame, so the table keeps extending — proper tail
  calls are preserved (the ``cm`` strategy).

The ``imperative`` strategy instead mutates one shared dictionary and pushes
an undo frame on *every* monitored call — cheaper per call, but the undo
frames grow the continuation on tail-recursive loops, reproducing the
broken-TCO trade-off the paper measures in Fig. 10.
"""

from __future__ import annotations

import weakref
from typing import List, Optional

from repro.ds.hamt import Hamt
from repro.ds.lru import LRU
from repro.eval.errors import FuelExhausted, MachineTimeout, SchemeError
from repro.lang import ast, libraries
from repro.lang.parser import parse_program
from repro.lang.prims import PRIMITIVES
from repro.lang.program import Program, TopDefine
from repro.lang.resolve import Code, resolve
from repro.sct.errors import SizeChangeViolation
from repro.sct.monitor import MISSING as _MISS_ENTRY
from repro.sct.monitor import Entry as _Entry
from repro.sct.monitor import SCMonitor
from repro.sexp.datum import intern
from repro.values.env import Env, GlobalEnv, UnboundVariable
from repro.values.values import (
    NIL,
    VOID,
    Closure,
    Prim,
    TermWrapped,
    write_value,
)

# Tree-machine frame tags.
F_IF = 0
F_APPFN = 1
F_APPARG = 2
F_BEGIN = 3
F_LET = 4
F_LETREC = 5
F_SET = 6
F_TERMC = 7
F_RESTORE = 8

# Compiled-machine frame tags (frames are mutable lists, reused in place).
KF_APP = 0
KF_IF = 1
KF_BEGIN = 2
KF_LET = 3
KF_LETREC = 4
KF_SETLOCAL = 5
KF_SETGLOBAL = 6
KF_TERMC = 7
KF_RESTORE = 8

_UNDEF = object()

# The compiled machine's cm-strategy fast path keeps the size-change table
# as (base, closure, entry, closure, entry, ...): a flat identity-scanned
# part in front of an optional HAMT base.  When the flat part holds 16
# closures (33 slots, ≈ where linear scan and hashed lookup break even) it
# folds into the base and starts fresh, so a loop's hot closures always
# sit in the flat part.
_TABLE_PROMOTE = 33
_EMPTY_FSET = frozenset()

ROOT_BLAME = "the program"

MACHINES = ("compiled", "tree", "native")

_K = ast  # short alias for kind constants


class Answer:
    """The observable outcome of a run: a value, ``errorRT``, ``errorSC``,
    or a fuel timeout (only possible without monitoring).

    ``tier`` names the execution tier that actually did the work:
    ``'tree'``, ``'compiled'``, or ``'native'`` when a ``machine='native'``
    run entered at least one native frame (a native run that stayed on
    the interpreter — nothing eligible — reports ``'compiled'``)."""

    __slots__ = ("kind", "value", "error", "violation", "output", "steps",
                 "tier")

    VALUE = "value"
    RT_ERROR = "rt-error"
    SC_ERROR = "sc-error"
    TIMEOUT = "timeout"

    def __init__(self, kind, value=None, error=None, violation=None,
                 output: str = "", steps: int = 0,
                 tier: Optional[str] = None):
        self.kind = kind
        self.value = value
        self.error = error
        self.violation = violation
        self.output = output
        self.steps = steps
        self.tier = tier

    def is_value(self) -> bool:
        return self.kind == Answer.VALUE

    def __repr__(self) -> str:
        if self.kind == Answer.VALUE:
            return f"Answer(value={write_value(self.value)})"
        if self.kind == Answer.SC_ERROR:
            return "Answer(errorSC)"
        if self.kind == Answer.TIMEOUT:
            return "Answer(timeout)"
        return f"Answer(errorRT: {self.error})"


class _Fuel:
    """A shared step budget across all top-level forms of one run."""

    __slots__ = ("left", "limit")

    def __init__(self, limit: Optional[int]):
        self.limit = limit
        self.left = limit if limit is not None else -1


def eval_expr(
    expr: ast.Node,
    env,
    *,
    mode: str = "off",
    strategy: str = "cm",
    monitor: Optional[SCMonitor] = None,
    fuel: Optional[_Fuel] = None,
    mtable: Optional[dict] = None,
):
    """Evaluate one expression to a value (raises on errors/violations)."""
    if monitor is None:
        monitor = SCMonitor()
    if fuel is None:
        fuel = _Fuel(None)
    imperative = strategy == "imperative"
    if strategy not in ("cm", "imperative"):
        raise ValueError(f"unknown strategy: {strategy!r}")
    if mode not in ("off", "contract", "full"):
        raise ValueError(f"unknown mode: {mode!r}")

    # Monitoring state.  cm: s1 = persistent table (None = off).
    # imperative: s1 = active flag, entries live in the shared dict `mtable`.
    if mode == "full":
        s1 = True if imperative else Hamt.empty()
        s2 = ROOT_BLAME
    else:
        s1 = False if imperative else None
        s2 = None
    if imperative and mtable is None:
        mtable = {}

    kont: List[tuple] = []
    control = expr
    cenv = env
    val = None
    returning = False
    steps_left = fuel.left
    monitored_modes = mode != "off"

    try:
        while True:
            if steps_left >= 0:
                steps_left -= 1
                if steps_left < 0:
                    steps_left = 0
                    raise FuelExhausted(fuel.limit)

            if not returning:
                k = control.kind
                if k == 1:  # K_VAR
                    try:
                        val = cenv.lookup(control.name)
                    except UnboundVariable as exc:
                        raise SchemeError(str(exc), control.loc) from None
                    if val is _UNDEF:
                        raise SchemeError(
                            f"{control.name.name}: used before initialization",
                            control.loc,
                        )
                    returning = True
                elif k == 0:  # K_LIT
                    val = control.value
                    returning = True
                elif k == 3:  # K_APP
                    kont.append((F_APPFN, control.args, cenv, control.loc, s1, s2))
                    control = control.fn
                elif k == 4:  # K_IF
                    kont.append((F_IF, control.then, control.els, cenv, s1, s2))
                    control = control.test
                elif k == 2:  # K_LAM
                    val = Closure(control, cenv)
                    returning = True
                elif k == 6:  # K_LET
                    if not control.rhss:
                        cenv = Env({}, cenv)
                        control = control.body
                    else:
                        kont.append((F_LET, control, 0, [], cenv, s1, s2))
                        control = control.rhss[0]
                elif k == 7:  # K_LETREC
                    new_env = Env({n: _UNDEF for n in control.names}, cenv)
                    if not control.rhss:
                        cenv = new_env
                        control = control.body
                    else:
                        kont.append((F_LETREC, control, 0, new_env, s1, s2))
                        control = control.rhss[0]
                        cenv = new_env
                elif k == 5:  # K_BEGIN
                    body = control.body
                    if len(body) > 1:
                        kont.append((F_BEGIN, body, 1, cenv, s1, s2))
                    control = body[0]
                elif k == 8:  # K_SET
                    kont.append((F_SET, control.name, cenv, s1, s2))
                    control = control.expr
                elif k == 9:  # K_TERMC
                    kont.append((F_TERMC, control.blame, s1, s2))
                    control = control.expr
                else:  # pragma: no cover - parser emits only the kinds above
                    raise SchemeError(f"unknown AST node kind {k}")
                continue

            # Returning `val` to the continuation.
            if not kont:
                return val  # the finally below publishes fuel.left
            frame = kont.pop()
            tag = frame[0]
            s1 = frame[-2]
            s2 = frame[-1]

            if tag == F_APPFN:
                _, arg_exprs, fenv, loc, _, _ = frame
                if not arg_exprs:
                    fn = val
                    vals: List = []
                else:
                    kont.append((F_APPARG, val, [], arg_exprs, 1, fenv, loc, s1, s2))
                    control = arg_exprs[0]
                    cenv = fenv
                    returning = False
                    continue
            elif tag == F_APPARG:
                _, fn, vals, arg_exprs, idx, fenv, loc, _, _ = frame
                vals.append(val)
                if idx < len(arg_exprs):
                    kont.append((F_APPARG, fn, vals, arg_exprs, idx + 1, fenv, loc, s1, s2))
                    control = arg_exprs[idx]
                    cenv = fenv
                    returning = False
                    continue
            elif tag == F_IF:
                control = frame[1] if val is not False else frame[2]
                cenv = frame[3]
                returning = False
                continue
            elif tag == F_BEGIN:
                _, body, idx, benv, _, _ = frame
                if idx < len(body) - 1:
                    kont.append((F_BEGIN, body, idx + 1, benv, s1, s2))
                control = body[idx]
                cenv = benv
                returning = False
                continue
            elif tag == F_LET:
                _, node, idx, vals, lenv, _, _ = frame
                vals.append(val)
                idx += 1
                if idx < len(node.rhss):
                    kont.append((F_LET, node, idx, vals, lenv, s1, s2))
                    control = node.rhss[idx]
                    cenv = lenv
                else:
                    cenv = Env(dict(zip(node.names, vals)), lenv)
                    control = node.body
                returning = False
                continue
            elif tag == F_LETREC:
                _, node, idx, new_env, _, _ = frame
                new_env.bindings[node.names[idx]] = val
                if type(val) is Closure and val.name is None:
                    val.name = node.names[idx].name
                idx += 1
                if idx < len(node.rhss):
                    kont.append((F_LETREC, node, idx, new_env, s1, s2))
                    control = node.rhss[idx]
                else:
                    control = node.body
                cenv = new_env
                returning = False
                continue
            elif tag == F_SET:
                try:
                    frame[2].set(frame[1], val)
                except UnboundVariable as exc:
                    raise SchemeError(str(exc)) from None
                val = VOID
                continue
            elif tag == F_TERMC:
                blame_label = frame[1]
                if type(val) is Closure:
                    val = TermWrapped(val, blame_label)
                # term/c on primitives and other values is the identity
                # ([Wrap-Prim]); already-wrapped closures keep their first label.
                continue
            elif tag == F_RESTORE:
                monitor.restore_mut(mtable, frame[1], frame[2])
                continue
            else:  # pragma: no cover
                raise SchemeError(f"unknown frame tag {tag}")

            # -- application ------------------------------------------------------
            loc = frame[3] if tag == F_APPFN else frame[6]
            while True:
                tf = type(fn)
                if tf is Closure:
                    params = fn.lam.params
                    if len(vals) != len(params):
                        raise SchemeError(
                            f"{fn.describe()}: expected {len(params)} arguments, "
                            f"got {len(vals)}",
                            loc,
                        )
                    if imperative:
                        if s1 and monitor.should_monitor(fn):
                            key, prev = monitor.upd_mut(mtable, fn, tuple(vals), s2)
                            kont.append((F_RESTORE, key, prev, s1, s2))
                    else:
                        if s1 is not None and monitor.should_monitor(fn):
                            s1 = monitor.upd(s1, fn, tuple(vals), s2)
                    cenv = Env(dict(zip(params, vals)), fn.env)
                    control = fn.lam.body
                    returning = False
                    break
                if tf is Prim:
                    if not fn.accepts(len(vals)):
                        raise SchemeError(
                            f"{fn.name}: arity mismatch with {len(vals)} arguments",
                            loc,
                        )
                    val = fn.fn(vals)
                    returning = True
                    break
                if tf is TermWrapped:
                    if monitored_modes:
                        s2 = fn.blame
                        if imperative:
                            s1 = True
                        elif s1 is None:
                            s1 = Hamt.empty()
                    fn = fn.closure
                    continue
                raise SchemeError(
                    f"application of a non-procedure: {write_value(fn)}", loc
                )
    finally:
        # Publish consumption on *every* exit path -- value, error,
        # violation, exhaustion -- so a shared _Fuel stays accurate
        # across top-level forms and callers can meter real spend.
        fuel.left = steps_left


# -- the compiled machine ------------------------------------------------------

# Resolved-code cache, weakly keyed by AST node (identity hash/eq), so
# repeated runs of a parsed program resolve once, while dropping the
# program frees its compiled code — a long-lived process calling
# run_source in a loop does not accumulate entries.  Each node maps to a
# small per-policy dict: discharge marks (CLam.discharged) are baked into
# the code, so a run under residual policy P must never see code compiled
# for policy Q — the inner key is the policy's frozen skip-label set
# (None for the unmarked default).
_CODE_CACHE: "weakref.WeakKeyDictionary[ast.Node, dict]" = \
    weakref.WeakKeyDictionary()


# How many distinct discharge policies stay resolved per AST node.  A
# handful covers every real workload (one unmarked + one policy per
# verification outcome); the bound exists so a long-lived process fed
# adversarial policies cannot grow a per-program cache without limit.
# Evicted policies simply re-resolve (and re-attach native code) on the
# next use.
_POLICY_CACHE_SIZE = 8


def compile_code(expr: ast.Node, skip_labels=None) -> Code:
    """The lexically-addressed code for ``expr`` (cached per AST node and
    per discharge policy, so repeated runs pay for resolution once; the
    per-node policy map is a small :class:`~repro.ds.lru.LRU`).

    ``skip_labels`` — λ labels discharged by a
    :class:`~repro.analysis.discharge.ResidualPolicy`; matching λs
    compile with the monitor-free ``discharged`` mark."""
    per_policy = _CODE_CACHE.get(expr)
    if per_policy is None:
        per_policy = _CODE_CACHE[expr] = LRU(_POLICY_CACHE_SIZE)
    code = per_policy.get(skip_labels)
    if code is None:
        code = resolve(expr, skip_labels)
        per_policy.put(skip_labels, code)
    return code


def eval_code(
    code: Code,
    genv: GlobalEnv,
    *,
    mode: str = "off",
    strategy: str = "cm",
    monitor: Optional[SCMonitor] = None,
    fuel: Optional[_Fuel] = None,
    mtable: Optional[dict] = None,
    init_state=None,
    native=None,
):
    """Evaluate one compiled form to a value (raises on errors/violations).

    The observable behaviour matches :func:`eval_expr` on the same source;
    the differences are representational: flat list frames instead of dict
    ribs (slot 0 of a frame is its parent), continuation frames that are
    mutable lists reused in place while an application accumulates
    arguments, inline evaluation of immediate subexpressions, and the
    monitor fast path (cached per-closure key, ``advance_fast``) when the
    monitor's policy permits an exact inline replication of ``upd``.

    ``init_state`` — an (s1, s2) monitoring-state pair to start from
    instead of the mode's default; the native tier's fallback uses it to
    resume interpretation under the state captured at native entry.

    ``native`` — a :class:`repro.eval.native.NativeContext`; when given,
    applying a closure the native tier covers (compiled body, and either
    an unmonitored mode or a discharged/skip-listed λ) hands the call to
    the native trampoline instead of entering the body here.  Fallbacks
    from native code pass ``native=None``, which bounds tier nesting.
    """
    if monitor is None:
        monitor = SCMonitor()
    if fuel is None:
        fuel = _Fuel(None)
    imperative = strategy == "imperative"
    if strategy not in ("cm", "imperative"):
        raise ValueError(f"unknown strategy: {strategy!r}")
    if mode not in ("off", "contract", "full"):
        raise ValueError(f"unknown mode: {mode!r}")

    monitored_modes = mode != "off"
    # Monitor fast-path eligibility, decided once per form (see
    # repro.sct.monitor): `skip_should` elides the constant-true policy
    # check, `inline_upd` replicates upd/upd_mut inline — tables keyed by
    # the closure object itself (identity semantics, no key allocation),
    # with the cm table held as a flat identity-scanned tuple that
    # promotes to the HAMT past _TABLE_PROMOTE slots — and `advance` is
    # the (possibly specialized) evidence step.
    # Residual enforcement: `skips` is the monitor's discharged-λ set and
    # every compiled λ carries a `discharged` mark, so a statically proven
    # closure takes the monitor-free path below — no policy call, no table
    # lookup, no graph construction.  `trivial_policy` may ignore the skip
    # set precisely because both checks happen inline here.
    skips = monitor.skip_labels
    skip_should = monitor.trivial_policy(ignore_skip_labels=True)
    inline_upd = monitored_modes and monitor.inline_upd_ok()
    fast_adv = inline_upd and monitor.fast_advance_ok()
    advance = monitor.advance_fast if fast_adv else monitor.advance
    # First calls can allocate the trivial entry in place when nothing
    # (measures, subclassing) distinguishes it from Entry(v⃗, ∅, 1, 2).
    fast_entry = fast_adv and not monitor.measures
    initial_entry = monitor.initial_entry
    restore_mut = monitor.restore_mut

    if mode == "full":
        s1 = True if imperative else ((None,) if inline_upd else Hamt.empty())
        s2 = ROOT_BLAME
    else:
        s1 = False if imperative else None
        s2 = None
    if init_state is not None:
        s1, s2 = init_state
    if imperative and mtable is None:
        mtable = {}

    gget = genv.by_name.get
    _MISS = _UNDEF  # distinct sentinel reuse is fine: globals never hold it

    # Hot-loop aliases: cell/local loads beat global loads in CPython, and
    # the dispatch chains below compare against literal tag values (the
    # same idiom eval_expr uses for AST kinds; see repro.lang.resolve for
    # the authoritative T_* numbering).
    _closure = Closure
    _prim = Prim
    _undef = _UNDEF

    def eval_args(exprs, i, vals, frame):
        """Evaluate ``exprs[i:]`` into ``vals`` as far as immediates (and
        nested all-immediate primitive calls) carry; return the index of
        the first element needing the continuation (``len(exprs)`` when
        done)."""
        n = len(exprs)
        while i < n:
            e = exprs[i]
            t = e.tag
            if t == 1:  # T_LOCAL
                f = frame
                d = e.depth
                while d:
                    f = f[0]
                    d -= 1
                v = f[e.idx]
                if v is _undef:
                    raise SchemeError(
                        f"{e.name.name}: used before initialization", e.loc)
            elif t == 0:  # T_LIT
                v = e.value
            elif t == 2:  # T_GLOBAL
                v = gget(e.sname, _MISS)
                if v is _MISS:
                    raise SchemeError(
                        f"unbound variable: {e.name.name}", e.loc)
            elif t == 3:  # T_LAM
                v = _closure(e, frame)
            elif t == 4 and e.cheap and not e.headclo:  # T_APP
                exprs2 = e.exprs
                if e.flat:
                    # Strictly-immediate elements: the head evaluates
                    # first (the machines' shared order), and the argument
                    # list builds directly — no slice, no recursion.
                    fe = exprs2[0]
                    st = fe.tag
                    if st == 2:  # T_GLOBAL — the typical primitive ref
                        fn0 = gget(fe.sname, _MISS)
                        if fn0 is _MISS:
                            raise SchemeError(
                                f"unbound variable: {fe.name.name}", fe.loc)
                    else:
                        fn0 = imm1(fe, frame)
                    if type(fn0) is not _prim or not fn0.pure:
                        # Not a pure primitive: abandon speculation (an
                        # abort must not replay effects), permanently.
                        e.headclo = True
                        return i
                    sub = []
                    k = 1
                    n2 = len(exprs2)
                    while k < n2:
                        se = exprs2[k]
                        st = se.tag
                        if st == 1:  # T_LOCAL
                            f2 = frame
                            d2 = se.depth
                            while d2:
                                f2 = f2[0]
                                d2 -= 1
                            v2 = f2[se.idx]
                            if v2 is _undef:
                                raise SchemeError(
                                    f"{se.name.name}: used before "
                                    f"initialization", se.loc)
                        elif st == 0:  # T_LIT
                            v2 = se.value
                        elif st == 2:  # T_GLOBAL
                            v2 = gget(se.sname, _MISS)
                            if v2 is _MISS:
                                raise SchemeError(
                                    f"unbound variable: {se.name.name}",
                                    se.loc)
                        else:  # T_LAM
                            v2 = _closure(se, frame)
                        sub.append(v2)
                        k += 1
                    nargs = n2 - 1
                    if nargs < fn0.arity_min or (fn0.arity_max is not None
                                                 and nargs > fn0.arity_max):
                        raise SchemeError(
                            f"{fn0.name}: arity mismatch with {nargs} "
                            f"arguments", e.loc)
                    v = fn0.fn(sub)
                else:
                    sub = []
                    if eval_args(exprs2, 0, sub, frame) < len(exprs2):
                        return i
                    fn0 = sub[0]
                    if type(fn0) is not _prim or not fn0.pure:
                        e.headclo = True
                        return i
                    nargs = len(sub) - 1
                    if nargs < fn0.arity_min or (fn0.arity_max is not None
                                                 and nargs > fn0.arity_max):
                        raise SchemeError(
                            f"{fn0.name}: arity mismatch with {nargs} "
                            f"arguments", e.loc)
                    v = fn0.fn(sub[1:])
            else:
                return i
            vals.append(v)
            i += 1
        return n

    def imm1(e, frame):
        """Evaluate a single immediate (``e.tag < T_IMMEDIATE``)."""
        t = e.tag
        if t == 1:  # T_LOCAL
            f = frame
            d = e.depth
            while d:
                f = f[0]
                d -= 1
            v = f[e.idx]
            if v is _undef:
                raise SchemeError(
                    f"{e.name.name}: used before initialization", e.loc)
            return v
        if t == 0:  # T_LIT
            return e.value
        if t == 2:  # T_GLOBAL
            v = gget(e.sname, _MISS)
            if v is _MISS:
                raise SchemeError(f"unbound variable: {e.name.name}", e.loc)
            return v
        return _closure(e, frame)

    kont: List[list] = []
    control = code
    cenv = None
    val = None
    vals = None
    loc = None
    returning = False
    steps_left = fuel.left

    try:
        while True:
            if steps_left >= 0:
                steps_left -= 1
                if steps_left < 0:
                    steps_left = 0
                    raise FuelExhausted(fuel.limit)

            if not returning:
                t = control.tag
                if t == 4:  # T_APP
                    exprs = control.exprs
                    vals = []
                    i = eval_args(exprs, 0, vals, cenv)
                    if i < len(exprs):
                        kont.append([KF_APP, vals, exprs, i, cenv,
                                     control.loc, s1, s2])
                        control = exprs[i]
                        continue
                    loc = control.loc
                    # fall through to APPLY
                elif t == 1:  # T_LOCAL
                    f = cenv
                    d = control.depth
                    while d:
                        f = f[0]
                        d -= 1
                    val = f[control.idx]
                    if val is _undef:
                        raise SchemeError(
                            f"{control.name.name}: used before initialization",
                            control.loc,
                        )
                    returning = True
                    continue
                elif t == 5:  # T_IF
                    t1 = control.test1
                    if t1 is not None:
                        # Immediate or cheap-application test: branch without
                        # touching the continuation.  A cheap test whose head
                        # turns out to be a closure falls through (its pure
                        # immediates re-evaluate, which is sound).
                        probe = []
                        if eval_args(t1, 0, probe, cenv):
                            control = (control.then if probe[0] is not False
                                       else control.els)
                            continue
                    kont.append([KF_IF, control.then, control.els, cenv,
                                 s1, s2])
                    control = control.test
                    continue
                elif t == 0:  # T_LIT
                    val = control.value
                    returning = True
                    continue
                elif t == 2:  # T_GLOBAL
                    val = gget(control.sname, _MISS)
                    if val is _MISS:
                        raise SchemeError(
                            f"unbound variable: {control.name.name}", control.loc)
                    returning = True
                    continue
                elif t == 3:  # T_LAM
                    val = _closure(control, cenv)
                    returning = True
                    continue
                elif t == 7:  # T_LET
                    vals = [cenv]
                    rhss = control.rhss
                    i = eval_args(rhss, 0, vals, cenv)
                    if i < len(rhss):
                        kont.append([KF_LET, control, i, vals, cenv, s1, s2])
                        control = rhss[i]
                    else:
                        cenv = vals
                        control = control.body
                    continue
                elif t == 8:  # T_LETREC
                    frame = [cenv] + [_UNDEF] * control.nslots
                    rhss = control.rhss
                    names = control.names
                    i = 0
                    n = len(rhss)
                    while i < n and rhss[i].tag < 4:
                        v = imm1(rhss[i], frame)
                        if type(v) is _closure and v.name is None:
                            v.name = names[i].name
                        frame[i + 1] = v
                        i += 1
                    cenv = frame
                    if i < n:
                        kont.append([KF_LETREC, control, i, frame, s1, s2])
                        control = rhss[i]
                    else:
                        control = control.body
                    continue
                elif t == 6:  # T_BEGIN
                    body = control.body
                    last = control.last
                    i = 0
                    while i < last and body[i].tag < 4:
                        imm1(body[i], cenv)  # evaluated for effect (may raise)
                        i += 1
                    if i < last:
                        kont.append([KF_BEGIN, body, i + 1, cenv, s1, s2])
                    control = body[i]
                    continue
                elif t == 9:  # T_SETLOCAL
                    e = control.expr
                    if e.tag < 4:
                        v = imm1(e, cenv)
                        f = cenv
                        d = control.depth
                        while d:
                            f = f[0]
                            d -= 1
                        f[control.idx] = v
                        val = VOID
                        returning = True
                    else:
                        kont.append([KF_SETLOCAL, control.depth, control.idx,
                                     cenv, s1, s2])
                        control = e
                    continue
                elif t == 10:  # T_SETGLOBAL
                    e = control.expr
                    if e.tag < 4:
                        v = imm1(e, cenv)
                        try:
                            genv.set(control.name, v)
                        except UnboundVariable as exc:
                            raise SchemeError(str(exc)) from None
                        val = VOID
                        returning = True
                    else:
                        kont.append([KF_SETGLOBAL, control.name, s1, s2])
                        control = e
                    continue
                elif t == 11:  # T_TERMC
                    e = control.expr
                    if e.tag < 4:
                        v = imm1(e, cenv)
                        if type(v) is _closure:
                            v = TermWrapped(v, control.blame)
                        val = v
                        returning = True
                    else:
                        kont.append([KF_TERMC, control.blame, s1, s2])
                        control = e
                    continue
                else:  # pragma: no cover - the resolver emits only these tags
                    raise SchemeError(f"unknown code tag {t}")
            else:
                # Returning `val` to the continuation.
                if not kont:
                    return val  # the finally below publishes fuel.left
                fr = kont.pop()
                tag = fr[0]
                s1 = fr[-2]
                s2 = fr[-1]
                if tag == 0:  # KF_APP
                    vals = fr[1]
                    vals.append(val)
                    exprs = fr[2]
                    i = fr[3] + 1
                    if i < len(exprs):  # common case: that was the last element
                        fenv = fr[4]
                        i = eval_args(exprs, i, vals, fenv)
                        if i < len(exprs):
                            fr[3] = i
                            kont.append(fr)  # reuse the frame, no allocation
                            control = exprs[i]
                            cenv = fenv
                            returning = False
                            continue
                    loc = fr[5]
                    returning = False
                    # fall through to APPLY
                elif tag == 1:  # KF_IF
                    control = fr[1] if val is not False else fr[2]
                    cenv = fr[3]
                    returning = False
                    continue
                elif tag == 2:  # KF_BEGIN
                    body = fr[1]
                    i = fr[2]
                    benv = fr[3]
                    last = len(body) - 1
                    while i < last and body[i].tag < 4:
                        imm1(body[i], benv)
                        i += 1
                    if i < last:
                        fr[2] = i + 1
                        kont.append(fr)
                    control = body[i]
                    cenv = benv
                    returning = False
                    continue
                elif tag == 3:  # KF_LET
                    node = fr[1]
                    vals = fr[3]
                    vals.append(val)
                    rhss = node.rhss
                    i = fr[2] + 1
                    if i < len(rhss):
                        lenv = fr[4]
                        i = eval_args(rhss, i, vals, lenv)
                        if i < len(rhss):
                            fr[2] = i
                            kont.append(fr)
                            control = rhss[i]
                            cenv = lenv
                            returning = False
                            continue
                    cenv = vals
                    control = node.body
                    returning = False
                    continue
                elif tag == 4:  # KF_LETREC
                    node = fr[1]
                    frame = fr[3]
                    names = node.names
                    i = fr[2]
                    if type(val) is _closure and val.name is None:
                        val.name = names[i].name
                    frame[i + 1] = val
                    i += 1
                    rhss = node.rhss
                    n = len(rhss)
                    while i < n and rhss[i].tag < 4:
                        v = imm1(rhss[i], frame)
                        if type(v) is _closure and v.name is None:
                            v.name = names[i].name
                        frame[i + 1] = v
                        i += 1
                    cenv = frame
                    if i < n:
                        fr[2] = i
                        kont.append(fr)
                        control = rhss[i]
                    else:
                        control = node.body
                    returning = False
                    continue
                elif tag == 5:  # KF_SETLOCAL
                    f = fr[3]
                    d = fr[1]
                    while d:
                        f = f[0]
                        d -= 1
                    f[fr[2]] = val
                    val = VOID
                    continue
                elif tag == 6:  # KF_SETGLOBAL
                    try:
                        genv.set(fr[1], val)
                    except UnboundVariable as exc:
                        raise SchemeError(str(exc)) from None
                    val = VOID
                    continue
                elif tag == 7:  # KF_TERMC
                    if type(val) is _closure:
                        val = TermWrapped(val, fr[1])
                    # term/c on primitives and other values is the identity
                    # ([Wrap-Prim]); already-wrapped closures keep their label.
                    continue
                elif tag == 8:  # KF_RESTORE
                    restore_mut(mtable, fr[1], fr[2])
                    continue
                else:  # pragma: no cover
                    raise SchemeError(f"unknown frame tag {tag}")

            # -- APPLY: vals = [fn, arg...], loc set --------------------------------
            # Charge fuel per argument: inline immediate evaluation skips loop
            # iterations, so without this a fuel budget would admit several
            # times more monitored calls than the tree machine's — fuel stays
            # a machine-comparable bound on work, not on dispatch count.
            if steps_left > 0:
                n = len(vals) - 1
                steps_left = steps_left - n if steps_left > n else 0
            fn = vals[0]
            while True:
                tf = type(fn)
                if tf is _closure:
                    clam = fn.lam
                    nargs = len(vals) - 1
                    if nargs != clam.nparams:
                        raise SchemeError(
                            f"{fn.describe()}: expected {clam.nparams} arguments,"
                            f" got {nargs}",
                            loc,
                        )
                    if native is not None and clam.native is not None and (
                            not monitored_modes or clam.discharged or
                            (skips is not None and clam.label in skips)):
                        # Native-tier handoff: the trampoline runs this
                        # call to completion (with interpreter fallbacks
                        # for residual-monitored callees under the state
                        # captured here).  Fuel is shared through the
                        # _Fuel cell, so publish and reload around it.
                        fuel.left = steps_left
                        try:
                            val = native.enter(fn, vals, s1, s2)
                        finally:
                            steps_left = fuel.left
                        returning = True
                        break
                    if imperative:
                        if s1 and not clam.discharged and (
                                skips is None or clam.label not in skips) and (
                                skip_should or monitor.should_monitor(fn)):
                            if nargs == 1:
                                args = (vals[1],)
                            elif nargs == 2:
                                args = (vals[1], vals[2])
                            elif nargs == 3:
                                args = (vals[1], vals[2], vals[3])
                            else:
                                args = tuple(vals[1:])
                            if inline_upd:
                                monitor.calls_seen += 1
                                prev = mtable.get(fn, _MISS_ENTRY)
                                if prev is not _MISS_ENTRY:
                                    mtable[fn] = advance(prev, fn, args, s2)
                                elif fast_entry:
                                    mtable[fn] = _Entry(args, _EMPTY_FSET, 1, 2)
                                else:
                                    mtable[fn] = initial_entry(fn, args)
                                kont.append([KF_RESTORE, fn, prev, s1, s2])
                            else:
                                key, prev = monitor.upd_mut(mtable, fn, args, s2)
                                kont.append([KF_RESTORE, key, prev, s1, s2])
                    elif s1 is not None:
                        if not clam.discharged and (
                                skips is None or clam.label not in skips) and (
                                skip_should or monitor.should_monitor(fn)):
                            if nargs == 1:
                                args = (vals[1],)
                            elif nargs == 2:
                                args = (vals[1], vals[2])
                            elif nargs == 3:
                                args = (vals[1], vals[2], vals[3])
                            else:
                                args = tuple(vals[1:])
                            if type(s1) is tuple:
                                # Hybrid identity table: (base, clo, entry,
                                # clo, entry, ...).  The flat part is scanned
                                # with `is` — closures that actually recur
                                # live there and pay no hashing; one-shot
                                # closures go straight into the `base` HAMT
                                # (slot 0), which the flat part shadows.
                                monitor.calls_seen += 1
                                L = len(s1)
                                i = 1
                                while i < L:
                                    if s1[i] is fn:
                                        break
                                    i += 2
                                if i < L:
                                    entry = advance(s1[i + 1], fn, args, s2)
                                    if L == 3:  # the one-loop common case
                                        s1 = (s1[0], fn, entry)
                                    else:
                                        s1 = s1[:i] + (fn, entry) + s1[i + 2:]
                                else:
                                    base = s1[0]
                                    entry = None if base is None \
                                        else base.get(fn)
                                    if entry is not None:
                                        # Recurring closure whose flat copy
                                        # was folded: advance and re-adopt
                                        # (the stale base copy is shadowed,
                                        # then overwritten on the next fold).
                                        entry = advance(entry, fn, args, s2)
                                    elif fast_entry:
                                        entry = _Entry(args, _EMPTY_FSET, 1, 2)
                                    else:
                                        entry = initial_entry(fn, args)
                                    if L < _TABLE_PROMOTE:
                                        s1 = s1 + (fn, entry)
                                    else:
                                        if base is None:
                                            base = Hamt.empty()
                                        j = 1
                                        while j < L:
                                            base = base.set(s1[j], s1[j + 1])
                                            j += 2
                                        s1 = (base, fn, entry)
                            else:
                                s1 = monitor.upd(s1, fn, args, s2)
                    vals[0] = fn.env
                    cenv = vals
                    control = clam.body
                    returning = False
                    break
                if tf is _prim:
                    nargs = len(vals) - 1
                    if nargs < fn.arity_min or (fn.arity_max is not None
                                                and nargs > fn.arity_max):
                        raise SchemeError(
                            f"{fn.name}: arity mismatch with {nargs} arguments",
                            loc,
                        )
                    val = fn.fn(vals[1:])
                    returning = True
                    break
                if tf is TermWrapped:
                    if monitored_modes:
                        s2 = fn.blame
                        if imperative:
                            s1 = True
                        elif s1 is None:
                            s1 = (None,) if inline_upd else Hamt.empty()
                    fn = fn.closure
                    continue
                raise SchemeError(
                    f"application of a non-procedure: {write_value(fn)}", loc
                )
    finally:
        # Publish consumption on *every* exit path -- value, error,
        # violation, exhaustion -- so a shared _Fuel stays accurate
        # across top-level forms and callers can meter real spend.
        fuel.left = steps_left


# -- whole programs ------------------------------------------------------------

# The prelude/contracts parses are process-shared (repro.lang.libraries)
# so the symbolic engines see the same λ labels the evaluator's library
# closures carry — certificates that discharge a prelude λ apply here.
_prelude_program = libraries.prelude_program
_contracts_program = libraries.contracts_program


def _check_machine(machine: str) -> None:
    if machine not in MACHINES:
        raise ValueError(f"unknown machine: {machine!r} (use 'compiled',"
                         f" 'tree' or 'native')")


def _env_family(machine: str) -> str:
    """The closure representation a machine consumes.  The native tier
    executes compiled-machine closures (same CLam, same list frames), so
    'compiled' and 'native' environments are interchangeable."""
    return "tree" if machine == "tree" else "compiled"


def make_env(include_prelude: bool = True,
             machine: str = "compiled") -> GlobalEnv:
    """A fresh global environment with primitives, the prelude, and the
    contract library (:mod:`repro.lang.contracts_lib`).

    ``machine`` selects which evaluator builds the prelude closures.  The
    tree and compiled machines' closures carry different environment
    representations (dict ribs vs list frames), so an environment is only
    usable by the machine *family* that built it (:func:`run_program`
    checks); the native tier shares the compiled representation.
    """
    _check_machine(machine)
    env = GlobalEnv(dict(PRIMITIVES))
    env.flavor = _env_family(machine)
    if include_prelude:
        fuel = _Fuel(None)
        compiled = machine != "tree"
        for library in (_prelude_program(), _contracts_program()):
            for form in library.forms:
                assert isinstance(form, TopDefine)
                if compiled:
                    value = eval_code(compile_code(form.expr), env, fuel=fuel)
                else:
                    value = eval_expr(form.expr, env, fuel=fuel)
                if type(value) is Closure and value.name is None:
                    value.name = form.name.name
                env.define(form.name, value)
    return env


def run_program(
    program: Program,
    *,
    mode: str = "off",
    strategy: str = "cm",
    monitor: Optional[SCMonitor] = None,
    max_steps: Optional[int] = None,
    fuel: Optional[int] = None,
    env: Optional[GlobalEnv] = None,
    include_prelude: bool = True,
    machine: str = "compiled",
    discharge=None,
) -> Answer:
    """Run a whole program; the answer holds the last expression's value.

    ``fuel`` is the preferred spelling of the step budget (``max_steps``
    remains as an alias; ``fuel`` wins if both are given).  When the budget
    runs dry the machines raise :class:`FuelExhausted` and the answer has
    ``kind == Answer.TIMEOUT`` with the exception on ``answer.error``, so a
    deterministic fuel bound is distinguishable from every other non-value
    outcome.

    Fuel-boundary contract (identical on both machines, and relied on by
    the ``sized serve`` budget path):

    * ``fuel=None`` — unlimited;
    * ``fuel=0`` — immediate exhaustion: *no* machine step runs, the
      answer is ``TIMEOUT`` with ``FuelExhausted(0)`` and ``steps == 0``;
    * ``fuel=N`` — at most ``N`` steps; exhaustion reports the real limit
      ``N``, never a clamped or defaulted figure.

    ``answer.steps`` carries the steps actually consumed on **every**
    outcome kind (value, rt-error, sc-error, timeout) whenever a budget
    was given — error paths are metered too, so callers can charge
    tenants for work that ended in an error.

    ``mode``: ``'off'`` (standard ⇓), ``'contract'`` (λCSCT), ``'full'``
    (λSCT).  ``strategy``: ``'cm'`` or ``'imperative'``.  ``machine``:
    ``'compiled'`` (lexical-addressing pass + slot-frame machine, the
    default) or ``'tree'`` (the direct AST walker) — observably
    equivalent, differentially tested, an order apart in speed.

    ``discharge``: a :class:`~repro.analysis.discharge.ResidualPolicy`
    (or any iterable of λ labels) whose discharged λs run monitor-free:
    the compiled machine bakes the mark in at resolution time, and the
    monitor's ``skip_labels`` (installed here — the passed monitor is
    extended in place) covers the tree machine.
    """
    _check_machine(machine)
    if fuel is not None:
        max_steps = fuel
    if env is None:
        env = make_env(include_prelude, machine=machine)
    else:
        if env.flavor is not None and env.flavor != _env_family(machine):
            raise ValueError(
                f"environment built by the {env.flavor!r} machine cannot "
                f"run on the {machine!r} machine (closure representations "
                f"differ); build it with make_env(machine={machine!r})")
        env = env.snapshot()
    if monitor is None:
        monitor = SCMonitor()
    skip_labels = None
    if discharge is not None:
        skip_labels = getattr(discharge, "skip_labels", None)
        if skip_labels is None:
            skip_labels = frozenset(discharge)
        skip_labels = frozenset(skip_labels) or None
    # The policy is scoped to this run: the monitor's skip set is
    # extended for the duration and restored on the way out, so a reused
    # monitor does not leak one program's discharge into the next.
    saved_skip_labels = monitor.skip_labels
    if skip_labels is not None:
        monitor.skip_labels = (skip_labels if saved_skip_labels is None
                               else saved_skip_labels | skip_labels)
    output: List[str] = []
    env.define(intern("display"),
               Prim("display", lambda a: _display(a, output), 1, 1,
                    pure=False))
    env.define(intern("write"),
               Prim("write", lambda a: _write(a, output), 1, 1, pure=False))
    env.define(intern("newline"),
               Prim("newline", lambda a: _newline(output), 0, 0, pure=False))

    budget = _Fuel(max_steps)
    mtable: dict = {}
    last = VOID
    compiled = machine != "tree"
    native_ctx = None
    if machine == "native":
        from repro.eval.native import (
            NativeContext,
            ensure_native,
            ensure_native_libraries,
        )

        # Library λs were resolved policy-free; their native code plus
        # the monitor's (already installed) skip set is what lets a
        # policy-covered prelude closure run natively.
        ensure_native_libraries()
        native_ctx = NativeContext(env, mode=mode, strategy=strategy,
                                   monitor=monitor, mtable=mtable,
                                   fuel=budget)

    def spent() -> int:
        # The eval loops publish fuel.left in a finally, so this is
        # accurate on error/violation/timeout paths too.
        return 0 if max_steps is None else max_steps - max(budget.left, 0)

    def tier() -> str:
        if native_ctx is not None:
            return "native" if native_ctx.entries else "compiled"
        return machine

    try:
        for form in program.forms:
            if compiled:
                code = compile_code(form.expr, skip_labels)
                if native_ctx is not None:
                    ensure_native(code)
                value = eval_code(
                    code, env, mode=mode,
                    strategy=strategy, monitor=monitor, fuel=budget,
                    mtable=mtable, native=native_ctx,
                )
            else:
                value = eval_expr(
                    form.expr, env, mode=mode, strategy=strategy,
                    monitor=monitor, fuel=budget, mtable=mtable,
                )
            if isinstance(form, TopDefine):
                if type(value) is Closure and value.name is None:
                    value.name = form.name.name
                env.define(form.name, value)
            else:
                last = value
    except SchemeError as exc:
        return Answer(Answer.RT_ERROR, error=exc, output="".join(output),
                      steps=spent(), tier=tier())
    except SizeChangeViolation as exc:
        return Answer(Answer.SC_ERROR, violation=exc,
                      output="".join(output), steps=spent(), tier=tier())
    except MachineTimeout as exc:
        return Answer(Answer.TIMEOUT, error=exc, output="".join(output),
                      steps=spent(), tier=tier())
    finally:
        monitor.skip_labels = saved_skip_labels
    return Answer(Answer.VALUE, value=last, output="".join(output),
                  steps=spent(), tier=tier())


def run_source(
    text: str,
    *,
    mode: str = "off",
    strategy: str = "cm",
    monitor: Optional[SCMonitor] = None,
    max_steps: Optional[int] = None,
    fuel: Optional[int] = None,
    env: Optional[GlobalEnv] = None,
    include_prelude: bool = True,
    source: str = "<program>",
    machine: str = "compiled",
    discharge=None,
) -> Answer:
    """Parse and run program text."""
    program = parse_program(text, source=source)
    return run_program(
        program, mode=mode, strategy=strategy, monitor=monitor,
        max_steps=max_steps, fuel=fuel, env=env,
        include_prelude=include_prelude,
        machine=machine, discharge=discharge,
    )


def _display(args, out: List[str]):
    v = args[0]
    out.append(v if type(v) is str else write_value(v))
    return VOID


def _write(args, out: List[str]):
    out.append(write_value(args[0]))
    return VOID


def _newline(out: List[str]):
    out.append("\n")
    return VOID
