"""The native tier: discharged λs compiled to exec-generated Python.

PR 4 measured that once a λ's termination checks are statically
discharged, all remaining cost is interpretation overhead — the
compiled machine still dispatches on code tags, chases frame chains and
threads an explicit continuation for work that is, semantically, a
straight-line Python function.  This module removes that layer: each
eligible :class:`~repro.lang.resolve.CLam` gets a Python function
generated from its resolved body (``exec`` of synthesized source), and
a trampoline driver strings those functions together with proper tail
calls and an interpreter fallback for everything the tier does not
cover.

Tier-selection rule (checked per *application*, so one program freely
mixes native and interpreted frames across call boundaries):

* under ``mode='off'`` every compiled λ is eligible — there is no
  monitoring state to maintain;
* under the monitored modes only λs the active
  :class:`~repro.analysis.discharge.ResidualPolicy` proved terminating
  run natively: those marked ``discharged`` at resolve time, plus
  library λs covered by the monitor's ``skip_labels`` (prelude closures
  are resolved before any policy exists, so the label set is their only
  mark).  Discharged λs never touch monitoring state, which is what
  makes a native frame transparent: the (s1, s2) pair captured at
  native entry is exactly the state any residual-monitored callee must
  observe.

Everything else falls back to :func:`repro.eval.machine.eval_code`
mid-flight — residual-monitored closures, ``term/c``-wrapped callees
under monitoring, λs whose bodies the emitter rejected.  The fallback
runs with the captured monitoring state (``init_state``) and the shared
fuel and mutation table, and it does *not* re-enter the native tier, so
tier nesting is bounded at one interpreter frame regardless of object-
language recursion depth.

Stack discipline: native functions never call each other on the Python
stack.  Tail calls *return* a :class:`_Call` request; non-tail calls
are compiled into generator functions that *yield* the request and are
resumed with the result — the driver keeps suspended generators on an
explicit list, so object-language recursion deeper than CPython's
recursion limit costs heap, not stack.  λs with no closure-risky
non-tail call sites compile to plain (non-generator) functions and skip
the generator machinery entirely.

Fuel: the driver charges the shared :class:`~repro.eval.machine._Fuel`
once per application (and compiled self-tail loops charge at their
back-edge), so a diverging program exhausts any finite budget — every
object-language loop passes through an application.  Step *counts* are
not identical across tiers (they already differ between the tree and
compiled machines); the differential oracle compares outcome kinds, not
counters.
"""

from __future__ import annotations

from typing import List, Optional

from repro.eval.errors import FuelExhausted, SchemeError
from repro.lang.prims import PRIMITIVES
from repro.lang.resolve import (
    CApp,
    CLit,
    T_APP,
    T_BEGIN,
    T_GLOBAL,
    T_IF,
    T_LAM,
    T_LET,
    T_LETREC,
    T_LIT,
    T_LOCAL,
    T_SETGLOBAL,
    T_SETLOCAL,
    T_TERMC,
)
from repro.values.env import UnboundVariable
from repro.values.values import (
    NIL,
    VOID,
    Char,
    Closure,
    Pair,
    Prim,
    TermWrapped,
    write_value,
)

__all__ = ["NativeContext", "ensure_native", "ensure_native_libraries"]

# Names statically bound to primitives in every fresh environment.  A
# non-tail call whose head is one of these is *prim-likely*: the emitter
# inlines the primitive dispatch and only a rebinding (``(define + ...)``)
# diverts it to the slow path.  Heads outside this set are closure-risky
# and force the generator calling convention.
_PRIM_NAMES = frozenset(sym.name for sym in PRIMITIVES)
_PRIM_BY_SNAME = {sym.name: prim for sym, prim in PRIMITIVES.items()}

# Emitter guard rails: programs nested past these bounds fall back to the
# interpreter rather than fight CPython's parser limits.
_MAX_INDENT = 60
_MAX_SOURCE = 262_144

# How many native frames may nest on the Python stack before call sites
# revert to the trampoline protocol.  Each level costs a handful of
# CPython frames, so the bound keeps total stack use far below the
# default recursion limit while amortizing the driver's per-call cost
# over K direct calls.
_DIRECT_DEPTH = 40


# -- inline primitive fast paths ------------------------------------------------
#
# Each entry maps a primitive's name to an expression generator: given the
# (frozen) argument temps, return a Python expression computing exactly what
# ``prim.fn(args)`` would, or None when the static argument count has no
# fast path.  Every generated expression keeps the primitive's full
# semantics by delegating to ``{h}.fn([...])`` outside its fast case (type
# mismatches, non-int numerics), so error payloads stay byte-identical.
# The emitter guards the whole expression with an identity test against
# the primitive object itself — a program that rebinds ``+`` falls through
# to the generic dispatch, same as before.

def _inl_arith(op: str):
    def gen(h, a):
        if len(a) != 2:
            return None
        x, y = a
        return (f"({x} {op} {y}) if type({x}) is int and type({y}) is int"
                f" else {h}.fn([{x}, {y}])")
    return gen


def _inl_field(attr: str):
    def gen(h, a):
        if len(a) != 1:
            return None
        x = a[0]
        return f"{x}.{attr} if type({x}) is _Pair else {h}.fn([{x}])"
    return gen


def _inl_total(tmpl: str):
    def gen(h, a):
        return tmpl.format(a=a[0]) if len(a) == 1 else None
    return gen


def _inl_zero(h, a):
    if len(a) != 1:
        return None
    x = a[0]
    return f"({x} == 0) if type({x}) is int else {h}.fn([{x}])"


def _inl_cons(h, a):
    return f"_Pair({a[0]}, {a[1]})" if len(a) == 2 else None


def _inl_list(h, a):
    expr = "_NIL"
    for x in reversed(a):
        expr = f"_Pair({x}, {expr})"
    return expr


def _inl_eq(h, a):
    if len(a) != 2:
        return None
    x, y = a
    return f"True if {x} is {y} else {h}.fn([{x}, {y}])"


def _inl_chareq(h, a):
    if len(a) != 2:
        return None
    x, y = a
    return (f"({x}.value == {y}.value) if type({x}) is _Char"
            f" and type({y}) is _Char else {h}.fn([{x}, {y}])")


_INLINE_PRIMS = {
    "+": _inl_arith("+"),
    "-": _inl_arith("-"),
    "*": _inl_arith("*"),
    "=": _inl_arith("=="),
    "<": _inl_arith("<"),
    ">": _inl_arith(">"),
    "<=": _inl_arith("<="),
    ">=": _inl_arith(">="),
    "zero?": _inl_zero,
    "null?": _inl_total("({a} is _NIL)"),
    "empty?": _inl_total("({a} is _NIL)"),
    "pair?": _inl_total("(type({a}) is _Pair)"),
    "cons?": _inl_total("(type({a}) is _Pair)"),
    "not": _inl_total("({a} is False)"),
    "cons": _inl_cons,
    "list": _inl_list,
    "eq?": _inl_eq,
    "car": _inl_field("car"),
    "cdr": _inl_field("cdr"),
    "first": _inl_field("car"),
    "rest": _inl_field("cdr"),
    "char=?": _inl_chareq,
}


class _Call:
    """A requested application, passed between native code and the
    driver.  ``vals`` is the future frame: slot 0 is a placeholder the
    driver overwrites with the callee's captured environment (the same
    zero-copy convention ``eval_code`` uses for its argument lists).
    User values can never be instances of this class, so an identity
    type check cleanly separates requests from return values."""

    __slots__ = ("fn", "vals", "loc", "tail")

    def __init__(self, fn, vals, loc, tail: bool = True):
        self.fn = fn
        self.vals = vals
        self.loc = loc
        self.tail = tail


class NativeContext:
    """Per-run state shared by every native frame: the global
    environment, the monitoring configuration for fallbacks, the fuel
    cell, and the trampoline itself."""

    __slots__ = ("genv", "gget", "mode", "strategy", "monitor", "mtable",
                 "fuel", "monitored", "skips", "entries", "s1", "s2", "d")

    def __init__(self, genv, *, mode: str, strategy: str, monitor,
                 mtable: Optional[dict], fuel):
        self.genv = genv
        self.gget = genv.by_name.get
        self.mode = mode
        self.strategy = strategy
        self.monitor = monitor
        self.mtable = mtable
        self.fuel = fuel
        self.monitored = mode != "off"
        self.skips = monitor.skip_labels
        self.entries = 0
        self.s1 = None
        self.s2 = None
        # Direct-call depth: native frames may call each other on the
        # Python stack up to _DIRECT_DEPTH deep (see the emitter's
        # direct-call fast paths); past the bound they fall back to the
        # trampoline protocol, so total stack use stays constant.  The
        # counter is monotone-correct: an exception that skips decrements
        # only makes later calls more conservative, never unsound.
        self.d = 0

    def eligible(self, clam) -> bool:
        """The tier-selection rule (mirrors the inline check in
        ``eval_code``'s APPLY)."""
        if clam.native is None:
            return False
        if not self.monitored or clam.discharged:
            return True
        skips = self.skips
        return skips is not None and clam.label in skips

    def enter(self, fn, vals, s1, s2):
        """Called from ``eval_code``'s APPLY: run an eligible closure
        natively and return its value.  (s1, s2) is the monitoring state
        at the call site; native frames never change it, so it is what
        every fallback inside this extent must see."""
        self.entries += 1
        self.s1 = s1
        self.s2 = s2
        return self._drive(fn, vals, None)

    def _drive(self, fn, vals, loc):
        """The trampoline: applies (fn, vals) to completion.  Suspended
        generator frames live on an explicit stack, so object-language
        non-tail recursion costs heap, never Python stack."""
        fuel = self.fuel
        monitored = self.monitored
        skips = self.skips
        stack: List = []
        value = None
        applying = True
        while True:
            if applying:
                left = fuel.left
                if left >= 0:
                    if left == 0:
                        raise FuelExhausted(fuel.limit)
                    fuel.left = left - 1
                tf = type(fn)
                if tf is Closure:
                    clam = fn.lam
                    if len(vals) - 1 != clam.nparams:
                        raise SchemeError(
                            f"{fn.describe()}: expected {clam.nparams} "
                            f"arguments, got {len(vals) - 1}",
                            loc,
                        )
                    nf = clam.native
                    if nf is not None and (
                            not monitored or clam.discharged or
                            (skips is not None and clam.label in skips)):
                        vals[0] = fn.env
                        if clam.native_is_gen:
                            gen = nf(fn, vals, self)
                            out = gen.send(None)
                            if type(out) is _Call:
                                if not out.tail:
                                    stack.append(gen)
                                fn = out.fn
                                vals = out.vals
                                loc = out.loc
                                continue
                            value = out
                            applying = False
                            continue
                        out = nf(fn, vals, self)
                        if type(out) is _Call:
                            fn = out.fn
                            vals = out.vals
                            loc = out.loc
                            continue
                        value = out
                        applying = False
                        continue
                    # Residual-monitored (or emitter-rejected) closure:
                    # the interpreter runs it under the captured state.
                    value = self.fallback_call(fn, vals, loc)
                    applying = False
                    continue
                if tf is Prim:
                    n = len(vals) - 1
                    if n < fn.arity_min or (fn.arity_max is not None
                                            and n > fn.arity_max):
                        raise SchemeError(
                            f"{fn.name}: arity mismatch with {n} arguments",
                            loc,
                        )
                    value = fn.fn(vals[1:])
                    applying = False
                    continue
                if tf is TermWrapped:
                    if monitored:
                        # Applying a wrapper (re)starts monitoring for
                        # the callee's extent — interpreter territory.
                        value = self.fallback_call(fn, vals, loc)
                        applying = False
                        continue
                    fn = fn.closure
                    continue
                raise SchemeError(
                    f"application of a non-procedure: {write_value(fn)}", loc
                )
            else:
                # Return `value` to the innermost suspended frame.
                if not stack:
                    return value
                out = stack[-1].send(value)
                if type(out) is _Call:
                    if out.tail:
                        stack.pop()
                    fn = out.fn
                    vals = out.vals
                    loc = out.loc
                    applying = True
                    continue
                stack.pop()
                value = out
                continue

    def fallback(self, fn, vals, loc):
        """Slow path for plain-compiled call sites whose prim-likely head
        turned out not to be a primitive."""
        tf = type(fn)
        if tf is Closure or tf is TermWrapped:
            return self.fallback_call(fn, vals, loc)
        raise SchemeError(
            f"application of a non-procedure: {write_value(fn)}", loc)

    def fallback_call(self, fn, vals, loc):
        """Apply ``fn`` on the interpreter, under the monitoring state
        captured at native entry.  The synthesized application is all
        literals, so ``eval_code`` goes straight to APPLY with the
        original source location — error and violation payloads are
        byte-identical to a fully-interpreted run.  The fallback gets no
        native context, which bounds tier nesting: however deep the
        object program recurses, at most one extra interpreter invocation
        sits on the Python stack."""
        from repro.eval.machine import eval_code

        exprs = [CLit(fn)]
        for a in vals[1:]:
            exprs.append(CLit(a))
        capp = CApp(tuple(exprs), loc)
        return eval_code(
            capp, self.genv, mode=self.mode, strategy=self.strategy,
            monitor=self.monitor, fuel=self.fuel, mtable=self.mtable,
            init_state=(self.s1, self.s2),
        )

    def setglobal(self, name, value):
        """``set!`` on a global from native code (same error contract as
        the machines: the UnboundVariable text, no location)."""
        try:
            self.genv.set(name, value)
        except UnboundVariable as exc:
            raise SchemeError(str(exc)) from None


# -- the compiler ---------------------------------------------------------------


class _Unsupported(Exception):
    """Raised by the emitter for bodies it refuses (pathological nesting
    or size); the λ keeps ``native=None`` and runs interpreted."""


class _Rib:
    """A compile-time rib: either real list frames (``frame``) or
    renamed Python locals (``locals``).  ``checking`` is True while the
    rib's letrec right-hand sides are being emitted — reads from the rib
    in that region need the used-before-initialization check."""

    __slots__ = ("kind", "var", "slots", "checking")

    def __init__(self, kind: str, var: Optional[str] = None,
                 slots: Optional[List[str]] = None,
                 checking: bool = False):
        self.kind = kind
        self.var = var
        self.slots = slots
        self.checking = checking


def _contains_lam(code) -> bool:
    """True if any nested λ occurs in ``code`` (stops the locals-mode
    optimization: a nested λ captures real frames)."""
    stack = [code]
    while stack:
        node = stack.pop()
        t = node.tag
        if t == T_LAM:
            return True
        if t == T_APP:
            stack.extend(node.exprs)
        elif t == T_IF:
            stack.append(node.test)
            stack.append(node.then)
            stack.append(node.els)
        elif t == T_BEGIN:
            stack.extend(node.body)
        elif t == T_LET or t == T_LETREC:
            stack.extend(node.rhss)
            stack.append(node.body)
        elif t == T_SETLOCAL or t == T_SETGLOBAL or t == T_TERMC:
            stack.append(node.expr)
    return False


def _has_risky_nontail(code) -> bool:
    """True if the body has a non-tail application whose head is not
    statically prim-likely — the sites that need the generator calling
    convention to suspend without growing the Python stack."""
    # Work list of (node, in_tail_position).
    stack = [(code, True)]
    while stack:
        node, tail = stack.pop()
        t = node.tag
        if t == T_APP:
            head = node.exprs[0]
            if not tail and not (head.tag == T_GLOBAL
                                 and head.sname in _PRIM_NAMES):
                return True
            for e in node.exprs:
                stack.append((e, False))
        elif t == T_IF:
            stack.append((node.test, False))
            stack.append((node.then, tail))
            stack.append((node.els, tail))
        elif t == T_BEGIN:
            body = node.body
            for e in body[:-1]:
                stack.append((e, False))
            stack.append((body[-1], tail))
        elif t == T_LET or t == T_LETREC:
            for e in node.rhss:
                stack.append((e, False))
            stack.append((node.body, tail))
        elif t == T_SETLOCAL or t == T_SETGLOBAL or t == T_TERMC:
            stack.append((node.expr, False))
        # T_LAM: nested λs compile separately; their sites don't count.
    return False


class _Emitter:
    """Generates the Python source for one λ body.

    ``compile_value`` returns a Python expression string for the node's
    value (statements for any sub-evaluation are emitted first);
    ``compile_tail`` emits the statements that finish the function —
    a value return, a tail-call request, or a compiled self-tail loop
    back-edge.  Expression strings are either *stable* (literals,
    temps — safe to use later) or *volatile* (raw reads of mutable
    slots — must be frozen into a temp before any further evaluation
    can run)."""

    def __init__(self, clam, is_gen: bool, frame_mode: bool):
        self.clam = clam
        self.is_gen = is_gen
        self.frame_mode = frame_mode
        self.lines: List[str] = []
        self.ntmp = 0
        self.consts: List = []
        self.cids: dict = {}
        self.uses_consts = False
        self.uses_gget = False
        self.uses_fuel = False
        self.uses_rt = False
        self.uses_env = False
        self.uses_direct = False
        self.ribs: List[_Rib] = []
        # Every Python local that serves as a mutable storage slot in
        # locals mode (``_pN`` parameters, let/letrec slot temps).  A
        # read of one of these is only a *name* for the slot — freeze()
        # must copy it before any further user code can set! the slot,
        # and emit_let must never adopt one as a new binding's storage.
        self.mutable_slots: set = set()

    # -- infrastructure ---------------------------------------------------------

    def gensym(self) -> str:
        self.ntmp += 1
        return f"_t{self.ntmp}"

    def line(self, ind: int, text: str) -> None:
        if ind > _MAX_INDENT:
            raise _Unsupported("nesting too deep")
        self.lines.append("    " * ind + text)

    def const(self, value) -> str:
        self.uses_consts = True
        key = id(value)
        i = self.cids.get(key)
        if i is None:
            i = len(self.consts)
            self.consts.append(value)
            self.cids[key] = i
        return f"_C[{i}]"

    def cref(self, loc) -> str:
        return "None" if loc is None else self.const(loc)

    def lit(self, value) -> str:
        """Inline representation for simple literals; a const slot for
        everything else."""
        if value is True:
            return "True"
        if value is False:
            return "False"
        if type(value) is int and -2**31 < value < 2**31:
            return f"({value})"
        if type(value) is str and len(value) < 64:
            return repr(value)
        return self.const(value)

    def freeze(self, expr: str, ind: int) -> str:
        """Materialize ``expr`` under a name later statements cannot
        disturb.  Identifiers are reused as-is *unless* they name a
        mutable storage slot — those are just aliases of the slot, so a
        sibling ``set!`` evaluated afterwards would clobber the value
        read here; they get copied into a fresh temp like any other
        volatile expression."""
        if expr.isidentifier() and expr not in self.mutable_slots:
            return expr
        t = self.gensym()
        self.line(ind, f"{t} = {expr}")
        return t

    def env_chain(self, extra: int) -> str:
        self.uses_env = True
        return "_e" + "[0]" * extra

    # -- variable access --------------------------------------------------------

    def local_read(self, depth: int, idx: int, name, loc, ind: int):
        """Returns (expr, volatile) for a lexical read, emitting the
        used-before-initialization check where one is needed."""
        nribs = len(self.ribs)
        if depth < nribs:
            rib = self.ribs[nribs - 1 - depth]
            if rib.kind == "locals":
                expr = rib.slots[idx - 1]
            else:
                expr = f"{rib.var}[{idx}]"
            if not rib.checking:
                return expr, True
        else:
            expr = f"{self.env_chain(depth - nribs)}[{idx}]"
        # Letrec-in-initialization or captured-environment read: the slot
        # may hold the undefined marker.
        t = self.gensym()
        self.line(ind, f"{t} = {expr}")
        self.line(ind, f"if {t} is _UNDEF:")
        msg = f"{name.name}: used before initialization"
        self.line(ind + 1, f"raise _SErr({msg!r}, {self.cref(loc)})")
        return t, False

    def local_target(self, depth: int, idx: int) -> str:
        nribs = len(self.ribs)
        if depth < nribs:
            rib = self.ribs[nribs - 1 - depth]
            if rib.kind == "locals":
                return rib.slots[idx - 1]
            return f"{rib.var}[{idx}]"
        return f"{self.env_chain(depth - nribs)}[{idx}]"

    def global_read(self, node, ind: int) -> str:
        self.uses_gget = True
        t = self.gensym()
        self.line(ind, f"{t} = _G({node.sname!r}, _UNDEF)")
        self.line(ind, f"if {t} is _UNDEF:")
        msg = f"unbound variable: {node.name.name}"
        self.line(ind + 1, f"raise _SErr({msg!r}, {self.cref(node.loc)})")
        return t

    # -- expression compilation -------------------------------------------------

    def compile_value(self, e, ind: int):
        """(expr, volatile) for ``e``'s value in a non-tail position."""
        t = e.tag
        if t == T_LIT:
            return self.lit(e.value), False
        if t == T_LOCAL:
            return self.local_read(e.depth, e.idx, e.name, e.loc, ind)
        if t == T_GLOBAL:
            return self.global_read(e, ind), False
        if t == T_LAM:
            # Only reachable in frame mode (locals mode excludes nested
            # λs); the innermost rib is always a real frame there.
            rib = self.ribs[-1]
            if rib.kind != "frame":  # pragma: no cover - classification
                raise _Unsupported("nested λ in locals mode")
            return f"_Closure({self.const(e)}, {rib.var})", False
        if t == T_APP:
            return self.value_app(e, ind), False
        if t == T_IF:
            target = self.gensym()
            test, _ = self.compile_value(e.test, ind)
            self.line(ind, f"if {test} is not False:")
            self.compile_into(e.then, target, ind + 1)
            self.line(ind, "else:")
            self.compile_into(e.els, target, ind + 1)
            return target, False
        if t == T_BEGIN:
            for sub in e.body[:-1]:
                self.compile_value(sub, ind)  # for effect
            return self.compile_value(e.body[-1], ind)
        if t == T_LET:
            self.emit_let(e, ind)
            target = self.gensym()
            self.compile_into(e.body, target, ind)
            self.ribs.pop()
            return target, False
        if t == T_LETREC:
            self.emit_letrec(e, ind)
            target = self.gensym()
            self.compile_into(e.body, target, ind)
            self.ribs.pop()
            return target, False
        if t == T_SETLOCAL:
            v, _ = self.compile_value(e.expr, ind)
            self.line(ind, f"{self.local_target(e.depth, e.idx)} = {v}")
            return "_VOID", False
        if t == T_SETGLOBAL:
            v, _ = self.compile_value(e.expr, ind)
            self.uses_rt = True
            self.line(ind, f"_rt.setglobal({self.const(e.name)}, {v})")
            return "_VOID", False
        if t == T_TERMC:
            v, _ = self.compile_value(e.expr, ind)
            t2 = self.gensym()
            self.line(ind, f"{t2} = {v}")
            self.line(ind, f"if type({t2}) is _Closure:")
            self.line(ind + 1, f"{t2} = _TermW({t2}, {e.blame!r})")
            return t2, False
        raise _Unsupported(f"code tag {t}")  # pragma: no cover

    def compile_into(self, e, target: str, ind: int) -> None:
        v, _ = self.compile_value(e, ind)
        if v != target:
            self.line(ind, f"{target} = {v}")

    def eval_seq(self, exprs, ind: int) -> List[str]:
        """Left-to-right evaluation of sibling expressions.  Volatile
        reads are frozen unless they are the final evaluation — after
        that point no user code runs before the values are consumed."""
        out: List[str] = []
        n = len(exprs)
        for i, e in enumerate(exprs):
            v, vol = self.compile_value(e, ind)
            if vol and i < n - 1:
                v = self.freeze(v, ind)
            out.append(v)
        return out

    def emit_fuel_charge(self, ind: int) -> None:
        self.uses_fuel = True
        t = self.gensym()
        self.line(ind, f"{t} = _F.left")
        self.line(ind, f"if {t} >= 0:")
        self.line(ind + 1, f"if {t} == 0:")
        self.line(ind + 2, "raise _FuelEx(_F.limit)")
        self.line(ind + 1, f"_F.left = {t} - 1")

    def prim_dispatch(self, h: str, args: List[str], loc: str, ind: int,
                      tail: bool, sname: Optional[str] = None
                      ) -> Optional[str]:
        """The inline primitive branch of an application.  Returns the
        result temp for non-tail sites (the else-branch filled in by the
        caller); emits a ``return`` for tail sites.

        When the head is a global statically naming an inlinable
        primitive, an identity-guarded fast path is emitted first:
        ``if {h} is <that prim>`` the call compiles to a direct Python
        expression (no argument list, no generic dispatch); the guard
        makes rebinding safe and the expression delegates to the
        primitive outside its fast case, so observables never change.
        ``args`` is frozen in place when a fast path fires — callers
        build their fallback argument lists after this returns."""
        n = len(args)
        target: Optional[str] = None
        opened = False
        gen = _INLINE_PRIMS.get(sname) if sname is not None else None
        if gen is not None:
            frozen = [self.freeze(a, ind) for a in args]
            expr = gen(h, frozen)
            if expr is not None:
                args[:] = frozen
                self.line(ind,
                          f"if {h} is {self.const(_PRIM_BY_SNAME[sname])}:")
                if tail:
                    if self.is_gen:
                        self.line(ind + 1, f"yield {expr}")
                        self.line(ind + 1, "return")
                    else:
                        self.line(ind + 1, f"return {expr}")
                else:
                    target = self.gensym()
                    self.line(ind + 1, f"{target} = {expr}")
                opened = True
        arglist = ", ".join(args)
        branch = "elif" if opened else "if"
        self.line(ind, f"{branch} type({h}) is _Prim:")
        self.line(ind + 1,
                  f"if {n} < {h}.arity_min or ({h}.arity_max is not None"
                  f" and {n} > {h}.arity_max):")
        self.line(ind + 2,
                  f"raise _SErr({h}.name + "
                  f"': arity mismatch with {n} arguments', {loc})")
        if tail:
            if self.is_gen:
                self.line(ind + 1, f"yield {h}.fn([{arglist}])")
                self.line(ind + 1, "return")
            else:
                self.line(ind + 1, f"return {h}.fn([{arglist}])")
            return None
        if target is None:
            target = self.gensym()
        self.line(ind + 1, f"{target} = {h}.fn([{arglist}])")
        return target

    def value_app(self, e, ind: int) -> str:
        vals = self.eval_seq(e.exprs, ind)
        h = self.freeze(vals[0], ind)
        args = vals[1:]
        loc = self.cref(e.loc)
        head = e.exprs[0]
        sname = head.sname if head.tag == T_GLOBAL else None
        t = self.prim_dispatch(h, args, loc, ind, tail=False, sname=sname)
        arglist = ", ".join(["None"] + args)
        self.line(ind, "else:")
        if self.is_gen:
            # Depth-bounded direct dispatch: re-entering the driver costs
            # one Python call instead of a suspend/resume round-trip;
            # past the bound, suspend as usual so stack use stays flat.
            self.uses_rt = True
            self.line(ind + 1, f"if _rt.d < {_DIRECT_DEPTH}:")
            self.line(ind + 2, "_rt.d += 1")
            self.line(ind + 2,
                      f"{t} = _rt._drive({h}, [{arglist}], {loc})")
            self.line(ind + 2, "_rt.d -= 1")
            self.line(ind + 1, "else:")
            self.line(ind + 2,
                      f"{t} = yield _Call({h}, [{arglist}], {loc}, False)")
        else:
            self.uses_rt = True
            self.line(ind + 1, f"{t} = _rt.fallback({h}, [{arglist}], {loc})")
        return t

    def tail_app(self, e, ind: int) -> None:
        vals = self.eval_seq(e.exprs, ind)
        h = self.freeze(vals[0], ind)
        args = vals[1:]
        loc = self.cref(e.loc)
        head = e.exprs[0]
        if (len(args) == self.clam.nparams
                and head.tag in (T_LOCAL, T_GLOBAL)):
            # Compiled self-tail loop: when the callee is this very
            # closure, rebind and jump — the fuel charge keeps the
            # back-edge metered like any other application.
            self.line(ind, f"if {h} is _c:")
            self.emit_fuel_charge(ind + 1)
            if self.frame_mode:
                inner = ", ".join([self.env_chain(0)] + args)
                self.line(ind + 1, f"_f = [{inner}]")
            elif args:
                params = ", ".join(f"_p{i}" for i in range(len(args)))
                self.line(ind + 1, f"{params} = {', '.join(args)}"
                          if len(args) > 1 else f"{params} = {args[0]}")
            self.line(ind + 1, "continue")
        sname = head.sname if head.tag == T_GLOBAL else None
        self.prim_dispatch(h, args, loc, ind, tail=True, sname=sname)
        # Depth-bounded direct tail call: an eligible plain native callee
        # with a matching arity is invoked on the Python stack (its
        # result — a value or the next _Call request — propagates through
        # our own return, preserving the tail protocol).  Everything this
        # guard cannot prove falls through to the trampoline request,
        # where the driver re-checks with full generality.
        self.uses_rt = True
        self.uses_direct = True
        lam = self.gensym()
        fcall = ", ".join([f"{h}.env"] + args)
        self.line(ind, f"if type({h}) is _Closure:")
        self.line(ind + 1, f"{lam} = {h}.lam")
        self.line(ind + 1,
                  f"if {lam}.native is not None and "
                  f"{lam}.native_is_gen is False and "
                  f"{lam}.nparams == {len(args)} and "
                  f"_rt.d < {_DIRECT_DEPTH} and "
                  f"(not _M or {lam}.discharged or "
                  f"(_K is not None and {lam}.label in _K)):")
        self.emit_fuel_charge(ind + 2)
        self.line(ind + 2, "_rt.d += 1")
        rt = self.gensym()
        self.line(ind + 2, f"{rt} = {lam}.native({h}, [{fcall}], _rt)")
        self.line(ind + 2, "_rt.d -= 1")
        if self.is_gen:
            self.line(ind + 2, f"yield {rt}")
            self.line(ind + 2, "return")
        else:
            self.line(ind + 2, f"return {rt}")
        arglist = ", ".join(["None"] + args)
        if self.is_gen:
            self.line(ind, f"yield _Call({h}, [{arglist}], {loc}, True)")
            self.line(ind, "return")
        else:
            self.line(ind, f"return _Call({h}, [{arglist}], {loc})")

    def emit_let(self, e, ind: int) -> None:
        """Evaluate rhss in the current scope, then push the new rib
        (parallel let: nothing binds until everything evaluated)."""
        vals: List[str] = []
        marks: List[int] = []
        n = len(e.rhss)
        for i, rhs in enumerate(e.rhss):
            mark = self.ntmp
            v, vol = self.compile_value(rhs, ind)
            if vol and (self.frame_mode is False or i < n - 1):
                # Locals mode: the binding var doubles as storage, so
                # every volatile read freezes; frame mode materializes
                # into the frame list immediately after the last rhs.
                v = self.freeze(v, ind)
            vals.append(v)
            marks.append(mark)
        if self.frame_mode:
            parent = self.ribs[-1].var
            fv = self.gensym()
            self.line(ind, f"{fv} = [{', '.join([parent] + vals)}]")
            self.ribs.append(_Rib("frame", var=fv))
        else:
            slots: List[str] = []
            for v, mark in zip(vals, marks):
                if self._fresh_temp(v, mark):
                    slots.append(v)  # this rhs's own temp is the slot
                else:
                    s = self.gensym()
                    self.line(ind, f"{s} = {v}")
                    slots.append(s)
            self.mutable_slots.update(slots)
            self.ribs.append(_Rib("locals", slots=slots))

    def _fresh_temp(self, v: str, mark: int) -> bool:
        """True iff ``v`` is a temp minted after ``mark`` — i.e. created
        while compiling the expression the mark was taken before, so
        nothing outside that expression can reference it and it is safe
        to adopt as a binding's storage slot.  An older ``_tN`` (one
        code outside this rhs may still reference, e.g. an enclosing
        binding's slot) must get fresh storage instead — adopting it
        would alias the new binding onto the outer one."""
        if not (v.startswith("_t") and v[2:].isdigit()):
            return False
        return int(v[2:]) > mark

    def emit_letrec(self, e, ind: int) -> None:
        """letrec*: undefined-marker slots first, rhss back-patch their
        slot in order; reads from the rib during initialization carry
        the used-before-initialization check (``checking``)."""
        names = e.names
        if self.frame_mode:
            parent = self.ribs[-1].var
            fv = self.gensym()
            init = ", ".join([parent] + ["_UNDEF"] * e.nslots)
            self.line(ind, f"{fv} = [{init}]")
            rib = _Rib("frame", var=fv, checking=True)
            self.ribs.append(rib)
            for i, rhs in enumerate(e.rhss):
                v, _ = self.compile_value(rhs, ind)
                t = self.freeze(v, ind)
                self.line(ind, f"if type({t}) is _Closure "
                               f"and {t}.name is None:")
                self.line(ind + 1, f"{t}.name = {names[i].name!r}")
                self.line(ind, f"{fv}[{i + 1}] = {t}")
        else:
            slots = [self.gensym() for _ in range(e.nslots)]
            self.mutable_slots.update(slots)
            for s in slots:
                self.line(ind, f"{s} = _UNDEF")
            rib = _Rib("locals", slots=slots, checking=True)
            self.ribs.append(rib)
            for i, rhs in enumerate(e.rhss):
                v, _ = self.compile_value(rhs, ind)
                t = self.freeze(v, ind)
                self.line(ind, f"if type({t}) is _Closure "
                               f"and {t}.name is None:")
                self.line(ind + 1, f"{t}.name = {names[i].name!r}")
                if t != slots[i]:
                    self.line(ind, f"{slots[i]} = {t}")
        rib.checking = False

    def compile_tail(self, e, ind: int) -> None:
        """Emit the statements that end the function for ``e`` in tail
        position."""
        t = e.tag
        if t == T_APP:
            self.tail_app(e, ind)
            return
        if t == T_IF:
            test, _ = self.compile_value(e.test, ind)
            self.line(ind, f"if {test} is not False:")
            self.compile_tail(e.then, ind + 1)
            self.line(ind, "else:")
            self.compile_tail(e.els, ind + 1)
            return
        if t == T_BEGIN:
            for sub in e.body[:-1]:
                self.compile_value(sub, ind)
            self.compile_tail(e.body[-1], ind)
            return
        if t == T_LET:
            self.emit_let(e, ind)
            self.compile_tail(e.body, ind)
            self.ribs.pop()
            return
        if t == T_LETREC:
            self.emit_letrec(e, ind)
            self.compile_tail(e.body, ind)
            self.ribs.pop()
            return
        v, _ = self.compile_value(e, ind)
        if self.is_gen:
            self.line(ind, f"yield {v}")
            self.line(ind, "return")
        else:
            self.line(ind, f"return {v}")


def _compile_lam(clam) -> None:
    """Attach native code to one CLam (best-effort: any emitter or
    CPython-compile failure leaves the λ interpreted)."""
    if clam.native_is_gen is not None:
        return  # already attempted
    try:
        frame_mode = _contains_lam(clam.body)
        is_gen = _has_risky_nontail(clam.body)
        em = _Emitter(clam, is_gen, frame_mode)
        if frame_mode:
            em.ribs.append(_Rib("frame", var="_f"))
        else:
            slots = [f"_p{i}" for i in range(clam.nparams)]
            em.mutable_slots.update(slots)
            em.ribs.append(_Rib("locals", slots=slots))
        em.compile_tail(clam.body, 2)
        prologue = ["def _nf(_c, _f, _rt):"]
        if em.uses_consts:
            prologue.append("    _C = _consts")
        if em.uses_gget:
            prologue.append("    _G = _rt.gget")
        if em.uses_fuel:
            prologue.append("    _F = _rt.fuel")
        if em.uses_direct:
            prologue.append("    _M = _rt.monitored")
            prologue.append("    _K = _rt.skips")
        if em.uses_env:
            prologue.append("    _e = _f[0]")
        if not frame_mode:
            for i in range(clam.nparams):
                prologue.append(f"    _p{i} = _f[{i + 1}]")
        prologue.append("    while True:")
        src = "\n".join(prologue + em.lines) + "\n"
        if len(src) > _MAX_SOURCE:
            raise _Unsupported("body too large")
        ns = {
            "_consts": tuple(em.consts),
            "_Call": _Call,
            "_SErr": SchemeError,
            "_FuelEx": FuelExhausted,
            "_Prim": Prim,
            "_Closure": Closure,
            "_TermW": TermWrapped,
            "_UNDEF": _machine_undef(),
            "_VOID": VOID,
            "_Pair": Pair,
            "_NIL": NIL,
            "_Char": Char,
        }
        code_obj = compile(
            src, f"<native:{clam.name or f'λ{clam.label}'}>", "exec")
        exec(code_obj, ns)
        clam.native = ns["_nf"]
        clam.native_is_gen = is_gen
    except Exception:
        clam.native = None
        clam.native_is_gen = False


def _machine_undef():
    from repro.eval.machine import _UNDEF

    return _UNDEF


def ensure_native(code) -> None:
    """Walk a resolved tree and compile every λ that has not been
    attempted yet.  Idempotent and cheap on revisits (the attempt mark
    lives on the CLam, which the code cache keeps per policy)."""
    stack = [code]
    while stack:
        node = stack.pop()
        t = node.tag
        if t == T_LAM:
            if node.native_is_gen is None:
                _compile_lam(node)
            stack.append(node.body)
        elif t == T_APP:
            stack.extend(node.exprs)
        elif t == T_IF:
            stack.append(node.test)
            stack.append(node.then)
            stack.append(node.els)
        elif t == T_BEGIN:
            stack.extend(node.body)
        elif t == T_LET or t == T_LETREC:
            stack.extend(node.rhss)
            stack.append(node.body)
        elif t == T_SETLOCAL or t == T_SETGLOBAL or t == T_TERMC:
            stack.append(node.expr)


_LIBRARIES_DONE = False


def ensure_native_libraries() -> None:
    """Compile native code for the prelude and contract libraries, once
    per process.  Their closures were resolved without any policy
    (``skip_labels=None``) during ``make_env``, so this touches exactly
    the CLam objects those library closures carry — a run whose policy
    covers a prelude λ (by label, via the monitor's skip set) then runs
    it natively."""
    global _LIBRARIES_DONE
    if _LIBRARIES_DONE:
        return
    from repro.eval.machine import _contracts_program, _prelude_program, \
        compile_code

    for library in (_prelude_program(), _contracts_program()):
        for form in library.forms:
            ensure_native(compile_code(form.expr))
    _LIBRARIES_DONE = True
