"""Evaluators for the embedded language.

:mod:`repro.eval.machine` is a CEK-style machine with proper tail calls.
It implements three modes:

* ``off`` — the standard semantics ``⇓`` (contracts are inert),
* ``contract`` — λCSCT (Fig. 7/13): monitoring starts in the dynamic extent
  of calls to ``term/c``-wrapped closures,
* ``full`` — λSCT (Fig. 3): every closure application is monitored.

and two table strategies (§5): ``cm`` (continuation-mark style — table
snapshots live in continuation frames, tail calls preserved) and
``imperative`` (mutable table with undo frames — faster in tight loops but
grows the continuation on tail calls).
"""

from repro.eval.errors import MachineTimeout, SchemeError
from repro.eval.machine import Answer, eval_expr, run_program, run_source

__all__ = [
    "MachineTimeout",
    "SchemeError",
    "Answer",
    "eval_expr",
    "run_program",
    "run_source",
]
