"""Evaluators for the embedded language.

:mod:`repro.eval.machine` holds two CEK-style machines with proper tail
calls — the ``tree`` AST walker (the spec-conformance reference) and the
default ``compiled`` machine, which first runs the lexical-addressing
pass of :mod:`repro.lang.resolve` and then executes slot-addressed code
over flat list frames.  Select with ``machine={'compiled','tree'}`` on
:func:`run_program` / :func:`run_source` / :func:`make_env`.

Both implement three modes:

* ``off`` — the standard semantics ``⇓`` (contracts are inert),
* ``contract`` — λCSCT (Fig. 7/13): monitoring starts in the dynamic extent
  of calls to ``term/c``-wrapped closures,
* ``full`` — λSCT (Fig. 3): every closure application is monitored.

and two table strategies (§5): ``cm`` (continuation-mark style — table
snapshots live in continuation frames, tail calls preserved) and
``imperative`` (mutable table with undo frames — faster in tight loops but
grows the continuation on tail calls).
"""

from repro.eval.errors import FuelExhausted, MachineTimeout, SchemeError
from repro.eval.machine import (
    Answer,
    compile_code,
    eval_code,
    eval_expr,
    make_env,
    run_program,
    run_source,
)

__all__ = [
    "FuelExhausted",
    "MachineTimeout",
    "SchemeError",
    "Answer",
    "compile_code",
    "eval_code",
    "eval_expr",
    "make_env",
    "run_program",
    "run_source",
]
