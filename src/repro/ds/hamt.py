"""A persistent hash-array-mapped trie (HAMT).

This is the workhorse immutable map of the reproduction.  It backs

* the size-change table of the continuation-mark monitoring strategy, which
  is snapshotted into every continuation frame and therefore must share
  structure between versions, and
* the object language's ``hash`` values (the Fig. 2 lambda-calculus compiler
  threads environments as hashes).

Keys may be arbitrary hashable Python objects.  Identity-keyed tables wrap
their keys in :class:`IdKey` so that structurally equal closures stay
distinct.  The implementation is a textbook 32-way HAMT with collision
buckets; no Python ``dict`` copying happens on update.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

_BITS = 5
_WIDTH = 1 << _BITS           # 32
_MASK = _WIDTH - 1
_MAX_SHIFT = 30               # enough for 32-bit hash prefixes


try:
    # Python ≥ 3.10: a single C-level call.
    _popcount = int.bit_count
except AttributeError:  # pragma: no cover - exercised on Python < 3.10
    def _popcount(x: int) -> int:
        return bin(x).count("1")


class _BitmapNode:
    """Interior node: ``bitmap`` selects occupied slots of a sparse array.

    Each entry in ``items`` is either a ``(key, value)`` pair (leaf) or a
    ``(None, child_node)`` pair (subtree).  A key of ``None`` is reserved to
    mark children, so user keys are wrapped if they are literally ``None``.
    """

    __slots__ = ("bitmap", "items")

    def __init__(self, bitmap: int, items: tuple):
        self.bitmap = bitmap
        self.items = items

    def _index(self, bit: int) -> int:
        return _popcount(self.bitmap & (bit - 1))

    def get(self, shift: int, h: int, key: Any, default: Any) -> Any:
        bit = 1 << ((h >> shift) & _MASK)
        if not (self.bitmap & bit):
            return default
        k, v = self.items[self._index(bit)]
        if k is None:
            return v.get(shift + _BITS, h, key, default)
        if k == key:
            return v
        return default

    def assoc(self, shift: int, h: int, key: Any, value: Any) -> Tuple["_BitmapNode", bool]:
        """Return ``(new_node, added)`` where ``added`` is True for new keys."""
        bit = 1 << ((h >> shift) & _MASK)
        idx = self._index(bit)
        if not (self.bitmap & bit):
            new_items = self.items[:idx] + ((key, value),) + self.items[idx:]
            return _BitmapNode(self.bitmap | bit, new_items), True
        k, v = self.items[idx]
        if k is None:
            child, added = v.assoc(shift + _BITS, h, key, value)
            new_items = self.items[:idx] + ((None, child),) + self.items[idx + 1:]
            return _BitmapNode(self.bitmap, new_items), added
        if k == key:
            if v is value:
                return self, False
            new_items = self.items[:idx] + ((key, value),) + self.items[idx + 1:]
            return _BitmapNode(self.bitmap, new_items), False
        # Hash path collision with a different key: push both down a level.
        child = _make_node(shift + _BITS, _hash_of(k), k, v, h, key, value)
        new_items = self.items[:idx] + ((None, child),) + self.items[idx + 1:]
        return _BitmapNode(self.bitmap, new_items), True

    def dissoc(self, shift: int, h: int, key: Any) -> Optional["_BitmapNode"]:
        """Return the node without ``key`` or ``self`` if absent; ``None`` if empty."""
        bit = 1 << ((h >> shift) & _MASK)
        if not (self.bitmap & bit):
            return self
        idx = self._index(bit)
        k, v = self.items[idx]
        if k is None:
            child = v.dissoc(shift + _BITS, h, key)
            if child is v:
                return self
            if child is None:
                new_items = self.items[:idx] + self.items[idx + 1:]
                if not new_items:
                    return None
                return _BitmapNode(self.bitmap & ~bit, new_items)
            new_items = self.items[:idx] + ((None, child),) + self.items[idx + 1:]
            return _BitmapNode(self.bitmap, new_items)
        if k != key:
            return self
        new_items = self.items[:idx] + self.items[idx + 1:]
        if not new_items:
            return None
        return _BitmapNode(self.bitmap & ~bit, new_items)

    def iterate(self) -> Iterator[Tuple[Any, Any]]:
        for k, v in self.items:
            if k is None:
                yield from v.iterate()
            else:
                yield k, v


class _CollisionNode:
    """Bucket of entries whose 32-bit hash prefixes are fully equal."""

    __slots__ = ("hash", "entries")

    def __init__(self, h: int, entries: tuple):
        self.hash = h
        self.entries = entries

    def get(self, shift: int, h: int, key: Any, default: Any) -> Any:
        for k, v in self.entries:
            if k == key:
                return v
        return default

    def assoc(self, shift: int, h: int, key: Any, value: Any) -> Tuple[Any, bool]:
        for i, (k, _) in enumerate(self.entries):
            if k == key:
                entries = self.entries[:i] + ((key, value),) + self.entries[i + 1:]
                return _CollisionNode(self.hash, entries), False
        return _CollisionNode(self.hash, self.entries + ((key, value),)), True

    def dissoc(self, shift: int, h: int, key: Any):
        for i, (k, _) in enumerate(self.entries):
            if k == key:
                entries = self.entries[:i] + self.entries[i + 1:]
                if not entries:
                    return None
                if len(entries) == 1:
                    # A single survivor can live in a bitmap leaf again.
                    k1, v1 = entries[0]
                    bit = 1 << ((self.hash >> shift) & _MASK)
                    return _BitmapNode(bit, ((k1, v1),))
                return _CollisionNode(self.hash, entries)
        return self

    def iterate(self) -> Iterator[Tuple[Any, Any]]:
        yield from self.entries


def _hash_of(key: Any) -> int:
    return hash(key) & 0xFFFFFFFF


def _make_node(shift: int, h1: int, k1: Any, v1: Any, h2: int, k2: Any, v2: Any):
    """Build the smallest subtree distinguishing two colliding entries."""
    if shift > _MAX_SHIFT:
        return _CollisionNode(h1, ((k1, v1), (k2, v2)))
    i1 = (h1 >> shift) & _MASK
    i2 = (h2 >> shift) & _MASK
    if i1 == i2:
        child = _make_node(shift + _BITS, h1, k1, v1, h2, k2, v2)
        return _BitmapNode(1 << i1, ((None, child),))
    if i1 < i2:
        return _BitmapNode((1 << i1) | (1 << i2), ((k1, v1), (k2, v2)))
    return _BitmapNode((1 << i1) | (1 << i2), ((k2, v2), (k1, v1)))


_SENTINEL = object()


class Hamt:
    """An immutable map with O(log32 n) ``set``/``get``/``delete``.

    >>> m = Hamt.empty().set("a", 1).set("b", 2)
    >>> m.get("a"), m.get("b"), m.get("c", 0)
    (1, 2, 0)
    >>> m.delete("a").get("a", "gone")
    'gone'
    """

    __slots__ = ("_root", "_count")

    _EMPTY: "Hamt" = None  # type: ignore[assignment]

    def __init__(self, root, count: int):
        self._root = root
        self._count = count

    @staticmethod
    def empty() -> "Hamt":
        return Hamt._EMPTY

    @staticmethod
    def from_dict(d: dict) -> "Hamt":
        m = Hamt.empty()
        for k, v in d.items():
            m = m.set(k, v)
        return m

    def get(self, key: Any, default: Any = None) -> Any:
        if self._root is None:
            return default
        return self._root.get(0, _hash_of(key), key, default)

    def __getitem__(self, key: Any) -> Any:
        value = self.get(key, _SENTINEL)
        if value is _SENTINEL:
            raise KeyError(key)
        return value

    def __contains__(self, key: Any) -> bool:
        return self.get(key, _SENTINEL) is not _SENTINEL

    def set(self, key: Any, value: Any) -> "Hamt":
        h = _hash_of(key)
        if self._root is None:
            bit = 1 << (h & _MASK)
            return Hamt(_BitmapNode(bit, ((key, value),)), 1)
        root, added = self._root.assoc(0, h, key, value)
        if root is self._root:
            return self
        return Hamt(root, self._count + (1 if added else 0))

    def delete(self, key: Any) -> "Hamt":
        if self._root is None:
            return self
        root = self._root.dissoc(0, _hash_of(key), key)
        if root is self._root:
            return self
        if root is None:
            return Hamt.empty()
        return Hamt(root, self._count - 1)

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Any]:
        for k, _ in self.items():
            yield k

    def items(self) -> Iterator[Tuple[Any, Any]]:
        if self._root is not None:
            yield from self._root.iterate()

    def keys(self) -> Iterator[Any]:
        return iter(self)

    def values(self) -> Iterator[Any]:
        for _, v in self.items():
            yield v

    def to_dict(self) -> dict:
        return dict(self.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hamt):
            return NotImplemented
        if self._count != other._count:
            return False
        for k, v in self.items():
            if other.get(k, _SENTINEL) != v:
                return False
        return True

    def __hash__(self) -> int:
        # Order-independent combination so equal maps hash equal.
        acc = 0x9E3779B9 ^ self._count
        for k, v in self.items():
            acc ^= hash((k, v)) & 0xFFFFFFFFFFFFFFFF
        return acc

    def __repr__(self) -> str:
        inner = ", ".join(f"{k!r}: {v!r}" for k, v in self.items())
        return f"Hamt({{{inner}}})"


Hamt._EMPTY = Hamt(None, 0)


class IdKey:
    """Wraps an object so HAMT lookup uses identity, not structural equality.

    The identity-keyed size-change table stores one entry per closure
    *object*; Lemma A.1 of the paper guarantees some closure object recurs on
    every infinite call sequence, so identity keying preserves the
    divergence-catching guarantee while avoiding false sharing between
    structurally equal closures.  The hash is computed once at construction.
    """

    __slots__ = ("obj", "_hash")

    def __init__(self, obj: Any):
        self.obj = obj
        self._hash = id(obj) & 0xFFFFFFFF

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IdKey) and other.obj is self.obj

    def __repr__(self) -> str:
        return f"IdKey({self.obj!r})"
