"""A minimal persistent (singly linked) list.

Used for path conditions and other analysis-side accumulators where
structure sharing between branches matters.  The object language has its own
pair type (:mod:`repro.values`); this one is host-side only.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional


class PList:
    """Immutable cons cell.  ``pnil`` is the shared empty list."""

    __slots__ = ("head", "tail", "_length")

    def __init__(self, head: Any, tail: Optional["PList"]):
        self.head = head
        self.tail = tail
        self._length = 1 + (tail._length if tail is not None else 0)

    def cons(self, value: Any) -> "PList":
        return PList(value, self)

    def __iter__(self) -> Iterator[Any]:
        node: Optional[PList] = self
        while node is not None:
            yield node.head
            node = node.tail

    def __len__(self) -> int:
        return self._length

    def __contains__(self, value: Any) -> bool:
        return any(v == value for v in self)

    def __repr__(self) -> str:
        return "PList[" + ", ".join(repr(v) for v in self) + "]"


class _Nil:
    """Empty persistent list; iterable, falsy, shared singleton."""

    __slots__ = ()
    _length = 0

    def cons(self, value: Any) -> PList:
        return PList(value, None)

    def __iter__(self) -> Iterator[Any]:
        return iter(())

    def __len__(self) -> int:
        return 0

    def __contains__(self, value: Any) -> bool:
        return False

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "PList[]"


pnil = _Nil()


def plist(*values: Any):
    """Build a persistent list from ``values`` (first value is the head)."""
    acc: Any = pnil
    for v in reversed(values):
        acc = acc.cons(v)
    return acc
