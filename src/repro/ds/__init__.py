"""Persistent (immutable) data structures used across the system.

The continuation-mark implementation strategy of the monitored machine
snapshots the size-change table into every continuation frame, so the table
must support O(log n) functional update with structural sharing.  The object
language's ``hash`` values reuse the same trie.
"""

from repro.ds.hamt import Hamt
from repro.ds.plist import PList, pnil

__all__ = ["Hamt", "PList", "pnil"]
