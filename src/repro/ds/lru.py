"""A small bounded LRU map shared by the code caches.

One eviction policy, two consumers: the per-AST *policy* cache in
:func:`repro.eval.machine.compile_code` (distinct discharge policies per
program are few, but unbounded in principle — a long-lived serve worker
must not accumulate one resolved tree per policy forever) and the native
tier's content-addressed program cache in the serve workers
(:mod:`repro.serve.workers`), which keeps recently-run programs' parsed
ASTs alive so their compiled and native code stay warm across requests.

Deliberately minimal: no locks (every consumer is single-threaded per
process), no per-entry weights, recency updated on both hits and
re-puts.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional


class LRU:
    """Bounded mapping with least-recently-used eviction."""

    __slots__ = ("maxsize", "_data", "evictions")

    def __init__(self, maxsize: int):
        if maxsize < 1:
            raise ValueError(f"LRU maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()
        self.evictions = 0

    def get(self, key, default=None):
        data = self._data
        try:
            value = data[key]
        except KeyError:
            return default
        data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        data = self._data
        if key in data:
            data[key] = value
            data.move_to_end(key)
            return
        data[key] = value
        if len(data) > self.maxsize:
            data.popitem(last=False)
            self.evictions += 1

    def __contains__(self, key) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator:
        return iter(self._data)

    def clear(self) -> None:
        self._data.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LRU({len(self._data)}/{self.maxsize})"
