"""Proving monotonicity constraints between symbolic values.

Where :func:`repro.symbolic.arcs.relate` answers only "does the callee
argument descend from / equal the caller entry value", the MC analysis
needs the *full* relation between any two values — including ascent
(``new > old``, the heart of counting-up loops) and weak bounds — and it
needs relations among source values (branch-guard context) and among
target values (the climber staying below its ceiling).

``mc_relate(a, b, pc, solver)`` compares the well-founded *sizes* of two
values under the path condition and returns one of the module constants
:data:`REL_GT` (``|a| > |b|``), :data:`REL_GE`, :data:`REL_EQ`,
:data:`REL_LE`, :data:`REL_LT`, or ``None`` when no relation is provable
— always the safe answer (omitted constraints only lose evidence).
"""

from __future__ import annotations

from typing import Optional

from repro.solver.interface import Solver
from repro.solver.linear import LinExpr, eq as eq_atom, ge, lt
from repro.symbolic.arcs import as_linexpr, _nonneg_form
from repro.symbolic.pathcond import K_NIL, K_PAIR, PathCond
from repro.symbolic.values import SVar, is_symbolic
from repro.values.values import NIL, Closure, Pair, Prim, size_of

REL_GT = ">"
REL_GE = ">="
REL_EQ = "="
REL_LE = "<="
REL_LT = "<"

_ZERO = LinExpr.constant(0)
_ONE = LinExpr.constant(1)


def flip(rel: Optional[str]) -> Optional[str]:
    """The relation seen from the other side: ``mc_relate(b, a)``."""
    if rel == REL_GT:
        return REL_LT
    if rel == REL_LT:
        return REL_GT
    if rel == REL_GE:
        return REL_LE
    if rel == REL_LE:
        return REL_GE
    return rel  # REL_EQ and None are symmetric


def _is_ground(v) -> bool:
    stack = [v]
    while stack:
        x = stack.pop()
        if is_symbolic(x):
            return False
        if type(x) is Pair:
            stack.append(x.car)
            stack.append(x.cdr)
    return True


def _symbolic_nil(v, pc: PathCond) -> bool:
    return v is NIL or (type(v) is SVar and pc.kind_of(v.name) == K_NIL)


def _pair_node(v, pc: PathCond) -> Optional[str]:
    if type(v) is SVar and pc.kind_of(v.name) == K_PAIR:
        return v.name
    return None


def mc_relate(a, b, pc: PathCond, solver: Solver) -> Optional[str]:
    """The provable relation between ``size(a)`` and ``size(b)``."""
    if b is a:
        return REL_EQ
    if _is_ground(a) and _is_ground(b):
        sa, sb = size_of(a), size_of(b)
        if sa is None or sb is None:
            return None
        if sa > sb:
            return REL_GT
        if sa < sb:
            return REL_LT
        return REL_EQ
    if isinstance(a, (Closure, Prim)) or isinstance(b, (Closure, Prim)):
        return REL_EQ if b is a else None

    # Structural facts about symbolic pairs and nil.
    a_pair, b_pair = _pair_node(a, pc), _pair_node(b, pc)
    if a_pair is not None:
        if _symbolic_nil(b, pc):
            return REL_GT  # size(pair) ≥ 1 > 0 = size(nil)
        if b_pair is not None:
            if pc.descends_to(b_pair, a_pair):
                return REL_GT
            if pc.descends_to(a_pair, b_pair):
                return REL_LT
        if type(b) is SVar and pc.descends_to(b.name, a_pair):
            return REL_GT
        return None
    if b_pair is not None:
        if _symbolic_nil(a, pc):
            return REL_LT
        if type(a) is SVar and pc.descends_to(a.name, b_pair):
            return REL_LT
        return None

    # Integer reasoning on |a| vs |b| with sign elimination.
    a_e = as_linexpr(a, pc)
    b_e = as_linexpr(b, pc)
    if a_e is not None and b_e is not None:
        if a_e == b_e or pc.entails(solver, eq_atom(a_e, b_e)):
            return REL_EQ
        a_abs = _nonneg_form(a_e, pc, solver)
        b_abs = _nonneg_form(b_e, pc, solver)
        if a_abs is None or b_abs is None:
            return None
        if pc.entails(solver, lt(b_abs, a_abs)):
            return REL_GT
        if pc.entails(solver, lt(a_abs, b_abs)):
            return REL_LT
        if pc.entails(solver, ge(a_abs, b_abs)):
            return REL_GE
        if pc.entails(solver, ge(b_abs, a_abs)):
            return REL_LE
        return None

    # Nil against nil, and an integer against nil: size(nil) = 0, so
    # |n| ≥ nil always, strictly when |n| ≥ 1.
    a_nil = _symbolic_nil(a, pc)
    b_nil = _symbolic_nil(b, pc)
    if a_nil and b_nil:
        return REL_EQ
    if b_nil and a_e is not None:
        return _int_vs_nil(a_e, pc, solver)
    if a_nil and b_e is not None:
        return flip(_int_vs_nil(b_e, pc, solver))
    return None


def _int_vs_nil(e: LinExpr, pc: PathCond, solver: Solver) -> Optional[str]:
    """|e| compared against size(nil) = 0."""
    e_abs = _nonneg_form(e, pc, solver)
    if e_abs is None:
        return None
    if pc.entails(solver, ge(e_abs, _ONE)):
        return REL_GT
    return REL_GE


def constraints_from_relation(u: int, v: int, rel: Optional[str]):
    """Translate a relation between node ids into MC-graph constraint
    triples (see :meth:`repro.mc.graph.MCGraph.build`)."""
    from repro.mc.graph import GEQ, GT

    if rel == REL_GT:
        return [(u, GT, v)]
    if rel == REL_GE:
        return [(u, GEQ, v)]
    if rel == REL_EQ:
        return [(u, GEQ, v), (v, GEQ, u)]
    if rel == REL_LE:
        return [(v, GEQ, u)]
    if rel == REL_LT:
        return [(v, GT, u)]
    return []
