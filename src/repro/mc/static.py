"""Static MC termination verification: the symbolic engine of §4 emitting
monotonicity-constraint graphs instead of size-change graphs.

The only behavioural difference from :class:`repro.symbolic.engine.Engine`
is what gets recorded at a call edge: besides the caller-entry → callee
argument relations, the MC edge also carries

* *context* constraints among the caller's entry values (facts the branch
  guards put in the path condition, e.g. ``lo < hi``), and
* constraints among the callee's arguments (e.g. ``lo+1 ≤ hi`` — the
  climber staying below its ceiling).

Every edge graph is a packed (bitmask) :class:`repro.mc.graph.MCGraph`,
so the per-edge dedup here and the transitive-closure worklist of phase 2
(:func:`repro.mc.analyze.mc_check`, with its interned-graph table) both
run on machine-int comparisons.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.lang.parser import parse_program
from repro.lang.program import Program
from repro.mc.analyze import mc_check
from repro.mc.arcs import constraints_from_relation, mc_relate
from repro.mc.graph import MCGraph
from repro.sexp.datum import intern
from repro.symbolic.engine import Budget, Engine, Frame
from repro.symbolic.verify import Verdict
from repro.values.values import Closure


class MCEngine(Engine):
    """Symbolic execution collecting MC graphs on call edges.

    ``self.edges`` maps ``(caller λ-label, callee λ-label)`` to sets of
    :class:`MCGraph` (the base class stores :class:`SCGraph` there; the
    two are never mixed in one engine).  ``evidence_kind`` routes the
    discharge certificate (:meth:`~repro.symbolic.engine.Engine.
    certificate`) to :func:`repro.mc.analyze.mc_check`, and incompleteness
    taint is inherited unchanged — both engines taint identically on
    havoc, lost applications, and budget exhaustion (property-tested).
    """

    evidence_kind = "mc"

    def _record_edge(self, frame: Frame, callee_label: int, args, pc) -> None:
        old = frame.entry_values
        a, b = len(old), len(args)
        nodes = list(enumerate(old)) + [(a + j, v) for j, v in enumerate(args)]
        constraints = []
        for x in range(len(nodes)):
            u, uv = nodes[x]
            for y in range(x + 1, len(nodes)):
                v, vv = nodes[y]
                rel = mc_relate(uv, vv, pc, self.solver)
                constraints.extend(constraints_from_relation(u, v, rel))
        key = (frame.label, callee_label)
        self.edges.setdefault(key, set()).add(MCGraph.build(a, b, constraints))


def verify_program_mc(
    program: Program,
    entry: str,
    kinds: Sequence[str],
    budget: Optional[Budget] = None,
    result_kinds=None,
) -> Verdict:
    """Like :func:`repro.symbolic.verify.verify_program`, but the collected
    evidence and the phase-2 test are monotonicity constraints.  Every
    program the SC verifier accepts is accepted here (MC graphs entail
    their SC projections); counting-up loops with a ceiling additionally
    verify without a custom measure."""
    engine = MCEngine(program, budget=budget, result_kinds=result_kinds)
    entry_value = engine.globals.bindings.get(intern(entry))
    if not isinstance(entry_value, Closure):
        return Verdict(
            Verdict.UNKNOWN,
            [f"entry {entry!r} is not a statically known closure "
             f"(got {type(entry_value).__name__})"],
            engine,
        )
    if len(kinds) != len(entry_value.lam.params):
        return Verdict(
            Verdict.UNKNOWN,
            [f"entry {entry!r} expects {len(entry_value.lam.params)} "
             f"arguments, {len(kinds)} preconditions given"],
            engine,
        )
    engine.run(entry_value, list(kinds))

    # The discharge certificate stays lazy: Verdict.certificate computes
    # it from the retained engine only when a consumer (--json, pyterm
    # discharge) actually asks.
    result = mc_check(engine.edges)
    reasons: List[str] = []
    if result.ok is False:
        fn = engine.label_names.get(result.witness_label,
                                    f"λ{result.witness_label}")
        reasons.append(
            f"monotonicity-constraint termination fails at {fn}: an "
            "idempotent, satisfiable composition has neither descent nor a "
            "bounded-ascent witness"
        )
        return Verdict(Verdict.UNKNOWN, reasons + engine.incomplete, engine,
                       witness=result.witness_graph, witness_function=fn)
    if result.ok is None:
        reasons.append("graph-closure budget exceeded")
    reasons.extend(engine.incomplete)
    if reasons:
        return Verdict(Verdict.UNKNOWN, reasons, engine)
    return Verdict(Verdict.VERIFIED, [], engine)


def verify_source_mc(text: str, entry: str, kinds: Sequence[str],
                     budget: Optional[Budget] = None,
                     result_kinds=None) -> Verdict:
    """Parse and MC-verify program text (see :func:`verify_program_mc`)."""
    return verify_program_mc(parse_program(text), entry, kinds, budget=budget,
                             result_kinds=result_kinds)
