"""Monotonicity-constraint (MC) graphs.

The paper's §6.2 points at *monotonicity constraints* (Codish, Lagoon,
Stuckey, ICLP 2005) as a strictly more general basis than size-change
graphs and suggests they "could be formulated as a dynamic contract in
future work".  This subpackage is that future work.

A size-change graph only relates *source* parameters to *target*
parameters with ``↓`` / ``↓=`` arcs.  A monotonicity-constraint graph is a
conjunction of ``u > v`` / ``u ≥ v`` constraints where ``u`` and ``v``
range over **all** of the source *and* target parameters.  The two extra
classes of constraints buy two new powers:

* **context constraints** (source–source, e.g. ``x > y`` from a branch
  guard) can make a composed transition *unsatisfiable*, pruning the
  spurious idempotent loops that make plain SCT fail;
* **bounded ascent** (target–source constraints like ``x′ > x`` together
  with a ceiling ``x′ ≤ c′``, ``c′ ≤ c``) justifies counting-*up* loops —
  the ``lh-range`` / ``acl2-fig-2`` rows that plain SCT can only handle
  with a user-supplied measure.

Representation
--------------

A graph over ``a`` source and ``b`` target parameters is a square matrix
over nodes ``0 … a-1`` (sources) and ``a … a+b-1`` (targets).  Entry
``w[u][v]`` is ``1`` for ``val(u) > val(v)``, ``0`` for ``val(u) ≥
val(v)``, and ``-1`` for "no constraint".  All values are compared in a
single well-founded measure (the node-count/absolute-value *size* of
:func:`repro.values.values.size_of`), which is a natural number — so
``>`` chains down are finite and ``>`` chains up below a fixed bound are
finite, the two facts the termination criterion leans on.

Graphs are stored **closed** (all-pairs saturating longest path), so
structural equality coincides with logical equivalence of satisfiable
constraint sets, and unsatisfiability (a ``u > u`` cycle) is detected at
construction.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

NO_EDGE = -1
GEQ = 0
GT = 1


def _close(matrix: List[List[int]]) -> bool:
    """Close ``matrix`` in place under transitivity (Floyd–Warshall with
    weights saturating at 1).  Returns False when a strict cycle makes the
    constraint set unsatisfiable."""
    n = len(matrix)
    for k in range(n):
        row_k = matrix[k]
        for i in range(n):
            w_ik = matrix[i][k]
            if w_ik == NO_EDGE:
                continue
            row_i = matrix[i]
            for j in range(n):
                w_kj = row_k[j]
                if w_kj == NO_EDGE:
                    continue
                w = w_ik + w_kj
                if w > 1:
                    w = 1
                if w > row_i[j]:
                    row_i[j] = w
    for i in range(n):
        if matrix[i][i] == GT:
            return False
    return True


class MCGraph:
    """An immutable, closed monotonicity-constraint graph.

    Use :meth:`build` (or :func:`mc_graph_of_values` /
    ``repro.mc.arcs.mc_relate``-driven construction) rather than the raw
    constructor; ``build`` closes the constraint set and collapses
    unsatisfiable ones to the shared :data:`UNSAT` witness.
    """

    __slots__ = ("pre_arity", "post_arity", "rows", "sat", "_hash")

    def __init__(self, pre_arity: int, post_arity: int,
                 rows: Tuple[Tuple[int, ...], ...], sat: bool):
        self.pre_arity = pre_arity
        self.post_arity = post_arity
        self.rows = rows
        self.sat = sat
        self._hash = hash((pre_arity, post_arity, rows, sat))

    # -- construction --------------------------------------------------------

    @staticmethod
    def build(pre_arity: int, post_arity: int,
              constraints: Iterable[Tuple[int, int, int]]) -> "MCGraph":
        """Build and close a graph from ``(u, w, v)`` triples meaning
        ``val(u) > val(v)`` when ``w`` is :data:`GT` and ``val(u) ≥
        val(v)`` when ``w`` is :data:`GEQ`.  Node ids: sources are
        ``0 … pre_arity-1``, targets ``pre_arity … pre_arity+post_arity-1``.
        """
        n = pre_arity + post_arity
        matrix = [[NO_EDGE] * n for _ in range(n)]
        for i in range(n):
            matrix[i][i] = GEQ
        for (u, w, v) in constraints:
            if u == v:
                if w == GT:
                    return MCGraph.unsat(pre_arity, post_arity)
                continue
            if w > matrix[u][v]:
                matrix[u][v] = w
        if not _close(matrix):
            return MCGraph.unsat(pre_arity, post_arity)
        return MCGraph(pre_arity, post_arity,
                       tuple(tuple(row) for row in matrix), True)

    @staticmethod
    def unsat(pre_arity: int, post_arity: int) -> "MCGraph":
        """The unsatisfiable graph: an infeasible transition.  It composes
        to itself and trivially satisfies the local termination check
        (an impossible transition cannot be iterated)."""
        return MCGraph(pre_arity, post_arity, (), False)

    @staticmethod
    def top(pre_arity: int, post_arity: int) -> "MCGraph":
        """The constraint-free graph (anything may happen)."""
        return MCGraph.build(pre_arity, post_arity, ())

    # -- node naming -----------------------------------------------------------

    def pre(self, i: int) -> int:
        """Node id of source parameter ``i``."""
        return i

    def post(self, j: int) -> int:
        """Node id of target parameter ``j``."""
        return self.pre_arity + j

    # -- structure ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MCGraph)
            and other.sat == self.sat
            and other.pre_arity == self.pre_arity
            and other.post_arity == self.post_arity
            and other.rows == self.rows
        )

    def __hash__(self) -> int:
        return self._hash

    def constraint(self, u: int, v: int) -> int:
        """The closed relation between nodes ``u`` and ``v``
        (:data:`GT`, :data:`GEQ`, or :data:`NO_EDGE`)."""
        if not self.sat:
            raise ValueError("the unsatisfiable graph has no constraints")
        return self.rows[u][v]

    def entails(self, u: int, w: int, v: int) -> bool:
        """Does the graph entail ``val(u) > val(v)`` (``w=GT``) or
        ``val(u) ≥ val(v)`` (``w=GEQ``)?  The unsatisfiable graph entails
        everything."""
        if not self.sat:
            return True
        if u == v:
            return w == GEQ
        return self.rows[u][v] >= w

    # -- composition ----------------------------------------------------------------

    def compose(self, later: "MCGraph") -> "MCGraph":
        """Sequential composition: this transition followed by ``later``.

        Built by gluing the two graphs along the shared middle layer,
        closing, and projecting onto the outer layers.  An unsatisfiable
        glued system means the two transitions can never happen in
        sequence, and yields :meth:`unsat`.
        """
        if self.post_arity != later.pre_arity:
            raise ValueError(
                f"arity mismatch: {self.post_arity} targets composed with "
                f"{later.pre_arity} sources"
            )
        a, b, c = self.pre_arity, self.post_arity, later.post_arity
        if not self.sat or not later.sat:
            return MCGraph.unsat(a, c)
        n = a + b + c
        matrix = [[NO_EDGE] * n for _ in range(n)]
        for i in range(n):
            matrix[i][i] = GEQ
        for u in range(a + b):
            row = self.rows[u]
            dest = matrix[u]
            for v in range(a + b):
                if row[v] > dest[v]:
                    dest[v] = row[v]
        for u in range(b + c):
            row = later.rows[u]
            dest = matrix[a + u]
            for v in range(b + c):
                if row[v] > dest[a + v]:
                    dest[a + v] = row[v]
        if not _close(matrix):
            return MCGraph.unsat(a, c)
        keep = list(range(a)) + list(range(a + b, n))
        rows = tuple(tuple(matrix[u][v] for v in keep) for u in keep)
        return MCGraph(a, c, rows, True)

    def is_idempotent(self) -> bool:
        return self.pre_arity == self.post_arity and self.compose(self) == self

    # -- the termination-local check ---------------------------------------------------

    def has_descent(self) -> bool:
        """Does some parameter strictly descend across the transition
        (``x > x′``)?"""
        if not self.sat:
            return False
        n = min(self.pre_arity, self.post_arity)
        return any(self.rows[i][self.pre_arity + i] == GT for i in range(n))

    def bounded_ascent_witness(self) -> Optional[Tuple[int, int]]:
        """A pair ``(u, v)`` justifying termination by *bounded ascent*:

        * ``u ≥ u′`` — the ceiling never rises,
        * ``v′ > v`` — the counter strictly climbs,
        * ``u′ ≥ v′`` — the counter stays at or below the ceiling.

        Then ``u − v`` is a strictly decreasing natural number (sizes are
        naturals and the gap stays ≥ 0), so the transition cannot repeat
        forever.  Returns ``None`` when no such pair exists.
        """
        if not self.sat or self.pre_arity != self.post_arity:
            return None
        n = self.pre_arity
        rows = self.rows
        climbers = [v for v in range(n) if rows[n + v][v] == GT]
        if not climbers:
            return None
        for u in range(n):
            if rows[u][n + u] < GEQ:
                continue
            post_u = rows[n + u]
            for v in climbers:
                if u != v and post_u[n + v] >= GEQ:
                    return (u, v)
        return None

    def desc_ok(self) -> bool:
        """The MC analogue of the paper's ``desc?``: an idempotent,
        satisfiable graph must carry a strict self-descent *or* a bounded-
        ascent witness.  Unsatisfiable and non-idempotent graphs pass (the
        former cannot occur, the latter cannot be iterated verbatim).

        The name matches :meth:`repro.sct.graph.SCGraph.desc_ok` so the
        run-time monitor can check either graph family through one
        interface.
        """
        if not self.sat:
            return True
        if not self.is_idempotent():
            return True
        if self.has_descent():
            return True
        return self.bounded_ascent_witness() is not None

    # -- conversions ----------------------------------------------------------------------

    @staticmethod
    def from_scgraph(g, pre_arity: int, post_arity: int) -> "MCGraph":
        """Embed a size-change graph: ``i ↓ j`` becomes ``pre_i > post_j``
        and ``i ↓= j`` becomes ``pre_i ≥ post_j``."""
        from repro.sct.graph import STRICT

        constraints = []
        for (i, r, j) in g.arcs:
            w = GT if r is STRICT else GEQ
            constraints.append((i, w, pre_arity + j))
        return MCGraph.build(pre_arity, post_arity, constraints)

    def to_scgraph(self):
        """Project onto a size-change graph, dropping context and ascent
        constraints (the sound direction: MC entails its SC projection)."""
        from repro.sct.graph import SCGraph, STRICT, WEAK

        if not self.sat:
            return SCGraph()
        arcs = []
        for i in range(self.pre_arity):
            row = self.rows[i]
            for j in range(self.post_arity):
                w = row[self.pre_arity + j]
                if w == GT:
                    arcs.append((i, STRICT, j))
                elif w == GEQ:
                    arcs.append((i, WEAK, j))
        return SCGraph(arcs)

    # -- display -------------------------------------------------------------------------------

    def pretty(self, pre_names: Optional[Sequence[str]] = None,
               post_names: Optional[Sequence[str]] = None) -> str:
        if not self.sat:
            return "{unsat}"
        if post_names is None:
            post_names = pre_names

        def nm(u: int) -> str:
            if u < self.pre_arity:
                if pre_names is not None and u < len(pre_names):
                    return pre_names[u]
                return f"x{u}"
            j = u - self.pre_arity
            if post_names is not None and j < len(post_names):
                return f"{post_names[j]}′"
            return f"x{j}′"

        shown = []
        n = self.pre_arity + self.post_arity
        for u in range(n):
            for v in range(n):
                if u != v and self.rows[u][v] != NO_EDGE:
                    op = ">" if self.rows[u][v] == GT else "≥"
                    shown.append(f"{nm(u)} {op} {nm(v)}")
        return "{" + ", ".join(shown) + "}"

    def __repr__(self) -> str:
        return f"MCGraph{self.pretty()}"


def mc_graph_of_sizes(pre_sizes: Sequence[Optional[int]],
                      post_sizes: Sequence[Optional[int]]) -> MCGraph:
    """Build the exact MC graph over two vectors of well-founded sizes.
    Entries of ``None`` (values with no well-founded size, e.g. floats)
    contribute no constraints."""
    sizes = list(pre_sizes) + list(post_sizes)
    a = len(pre_sizes)
    n = len(sizes)
    constraints = []
    for u in range(n):
        su = sizes[u]
        if su is None:
            continue
        for v in range(u + 1, n):
            sv = sizes[v]
            if sv is None:
                continue
            if su > sv:
                constraints.append((u, GT, v))
            elif su < sv:
                constraints.append((v, GT, u))
            else:
                constraints.append((u, GEQ, v))
                constraints.append((v, GEQ, u))
    return MCGraph.build(a, n - a, constraints)


def mc_graph_of_values(old_args: Sequence, new_args: Sequence) -> MCGraph:
    """Build the *exact* MC graph observed between two concrete argument
    vectors: every pair of values (old–old, old–new, new–new) is compared
    in the well-founded size measure.

    With concrete values the measure is a total order on the comparable
    values, so dynamic MC graphs carry full context — the information the
    static analysis must approximate with path conditions.  Values without
    a well-founded size (floats, and closures other than to themselves)
    contribute no constraints.
    """
    from repro.values.values import size_of

    return mc_graph_of_sizes([size_of(v) for v in old_args],
                             [size_of(v) for v in new_args])
