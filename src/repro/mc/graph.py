"""Monotonicity-constraint (MC) graphs.

The paper's §6.2 points at *monotonicity constraints* (Codish, Lagoon,
Stuckey, ICLP 2005) as a strictly more general basis than size-change
graphs and suggests they "could be formulated as a dynamic contract in
future work".  This subpackage is that future work.

A size-change graph only relates *source* parameters to *target*
parameters with ``↓`` / ``↓=`` arcs.  A monotonicity-constraint graph is a
conjunction of ``u > v`` / ``u ≥ v`` constraints where ``u`` and ``v``
range over **all** of the source *and* target parameters.  The two extra
classes of constraints buy two new powers:

* **context constraints** (source–source, e.g. ``x > y`` from a branch
  guard) can make a composed transition *unsatisfiable*, pruning the
  spurious idempotent loops that make plain SCT fail;
* **bounded ascent** (target–source constraints like ``x′ > x`` together
  with a ceiling ``x′ ≤ c′``, ``c′ ≤ c``) justifies counting-*up* loops —
  the ``lh-range`` / ``acl2-fig-2`` rows that plain SCT can only handle
  with a user-supplied measure.

Representation
--------------

A graph over ``a`` source and ``b`` target parameters relates nodes
``0 … a-1`` (sources) and ``a … a+b-1`` (targets).  Conceptually entry
``w[u][v]`` is ``1`` for ``val(u) > val(v)``, ``0`` for ``val(u) ≥
val(v)``, and ``-1`` for "no constraint"; physically the matrix is packed
into **two big integers** (the bitmask engine of this PR):

* ``geq_bits`` — bit ``u*n + v`` set when ``val(u) ≥ val(v)`` (weak or
  strict) is entailed,
* ``gt_bits`` — bit ``u*n + v`` set when ``val(u) > val(v)`` is entailed
  (always a subset of ``geq_bits``),

with ``n = a + b``.  Transitive closure is a bit-parallel Floyd–Warshall:
for each pivot ``k``, every row holding an edge into ``k`` ORs in row
``k`` wholesale — ``O(n²)`` word operations instead of ``O(n³)`` cell
updates — and composition glues two packed graphs along the shared middle
layer the same way.  Equality and hashing reduce to two int comparisons,
which is what makes the interned-graph table in
:func:`repro.mc.analyze.mc_check` cheap.  The matrix view is still
available as the lazy :attr:`MCGraph.rows` property.

All values are compared in a single well-founded measure (the
node-count/absolute-value *size* of :func:`repro.values.values.size_of`),
which is a natural number — so ``>`` chains down are finite and ``>``
chains up below a fixed bound are finite, the two facts the termination
criterion leans on.

Graphs are stored **closed** (all-pairs saturating longest path), so
structural equality coincides with logical equivalence of satisfiable
constraint sets, and unsatisfiability (a ``u > u`` cycle) is detected at
construction.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

NO_EDGE = -1
GEQ = 0
GT = 1


def _close_bits(geq: List[int], gt: List[int], n: int) -> bool:
    """Close the packed rows in place under transitivity (bit-parallel
    Floyd–Warshall with weights saturating at 1).  Returns False when a
    strict cycle makes the constraint set unsatisfiable.

    Relation algebra per pivot ``k``: ``geq(i,j)`` via ``k`` needs both
    legs; the path is strict when either leg is, so a row with a weak edge
    into ``k`` inherits row ``k`` verbatim while a row with a *strict*
    edge into ``k`` additionally promotes everything ``k`` weakly reaches.
    """
    for k in range(n):
        bit = 1 << k
        gk = geq[k]
        sk = gt[k]
        for i in range(n):
            if geq[i] & bit:
                new_gt = gk if gt[i] & bit else sk
                geq[i] |= gk
                gt[i] |= new_gt
    for i in range(n):
        if gt[i] & (1 << i):
            return False
    return True


def _pack_rows(rows: List[int], n: int) -> int:
    bits = 0
    for i in range(n):
        bits |= rows[i] << (i * n)
    return bits


class MCGraph:
    """An immutable, closed monotonicity-constraint graph.

    Use :meth:`build` (or :func:`mc_graph_of_values` /
    ``repro.mc.arcs.mc_relate``-driven construction) rather than the raw
    constructor; ``build`` closes the constraint set and collapses
    unsatisfiable ones to the shared :data:`UNSAT` witness.
    """

    __slots__ = ("pre_arity", "post_arity", "geq_bits", "gt_bits", "sat",
                 "_hash", "_rows")

    def __init__(self, pre_arity: int, post_arity: int,
                 geq_bits: int, gt_bits: int, sat: bool):
        self.pre_arity = pre_arity
        self.post_arity = post_arity
        self.geq_bits = geq_bits
        self.gt_bits = gt_bits
        self.sat = sat
        self._hash = hash((pre_arity, post_arity, geq_bits, gt_bits, sat))
        self._rows = None

    # -- construction --------------------------------------------------------

    @staticmethod
    def build(pre_arity: int, post_arity: int,
              constraints: Iterable[Tuple[int, int, int]]) -> "MCGraph":
        """Build and close a graph from ``(u, w, v)`` triples meaning
        ``val(u) > val(v)`` when ``w`` is :data:`GT` and ``val(u) ≥
        val(v)`` when ``w`` is :data:`GEQ`.  Node ids: sources are
        ``0 … pre_arity-1``, targets ``pre_arity … pre_arity+post_arity-1``.
        """
        n = pre_arity + post_arity
        geq = [1 << i for i in range(n)]
        gt = [0] * n
        for (u, w, v) in constraints:
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(
                    f"constraint node out of range: ({u}, {v}) with "
                    f"{n} nodes")
            if u == v:
                if w == GT:
                    return MCGraph.unsat(pre_arity, post_arity)
                continue
            bit = 1 << v
            geq[u] |= bit
            if w == GT:
                gt[u] |= bit
        if not _close_bits(geq, gt, n):
            return MCGraph.unsat(pre_arity, post_arity)
        return MCGraph(pre_arity, post_arity,
                       _pack_rows(geq, n), _pack_rows(gt, n), True)

    @staticmethod
    def unsat(pre_arity: int, post_arity: int) -> "MCGraph":
        """The unsatisfiable graph: an infeasible transition.  It composes
        to itself and trivially satisfies the local termination check
        (an impossible transition cannot be iterated)."""
        return MCGraph(pre_arity, post_arity, 0, 0, False)

    @staticmethod
    def top(pre_arity: int, post_arity: int) -> "MCGraph":
        """The constraint-free graph (anything may happen)."""
        return MCGraph.build(pre_arity, post_arity, ())

    # -- node naming -----------------------------------------------------------

    def pre(self, i: int) -> int:
        """Node id of source parameter ``i``."""
        return i

    def post(self, j: int) -> int:
        """Node id of target parameter ``j``."""
        return self.pre_arity + j

    # -- structure ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, MCGraph)
            and other.sat == self.sat
            and other.pre_arity == self.pre_arity
            and other.post_arity == self.post_arity
            and other.geq_bits == self.geq_bits
            and other.gt_bits == self.gt_bits
        )

    def __hash__(self) -> int:
        return self._hash

    @property
    def rows(self) -> Tuple[Tuple[int, ...], ...]:
        """The closed constraint matrix as nested tuples (``NO_EDGE`` /
        ``GEQ`` / ``GT`` per cell) — the pre-bitmask representation,
        materialized lazily for display, tests, and witnesses."""
        if self._rows is None:
            if not self.sat:
                self._rows = ()
            else:
                n = self.pre_arity + self.post_arity
                out = []
                for u in range(n):
                    base = u * n
                    row = []
                    for v in range(n):
                        bit = 1 << (base + v)
                        if self.gt_bits & bit:
                            row.append(GT)
                        elif self.geq_bits & bit:
                            row.append(GEQ)
                        else:
                            row.append(NO_EDGE)
                    out.append(tuple(row))
                self._rows = tuple(out)
        return self._rows

    def constraint(self, u: int, v: int) -> int:
        """The closed relation between nodes ``u`` and ``v``
        (:data:`GT`, :data:`GEQ`, or :data:`NO_EDGE`)."""
        if not self.sat:
            raise ValueError("the unsatisfiable graph has no constraints")
        n = self.pre_arity + self.post_arity
        bit = 1 << (u * n + v)
        if self.gt_bits & bit:
            return GT
        if self.geq_bits & bit:
            return GEQ
        return NO_EDGE

    def entails(self, u: int, w: int, v: int) -> bool:
        """Does the graph entail ``val(u) > val(v)`` (``w=GT``) or
        ``val(u) ≥ val(v)`` (``w=GEQ``)?  The unsatisfiable graph entails
        everything."""
        if not self.sat:
            return True
        if u == v:
            return w == GEQ
        n = self.pre_arity + self.post_arity
        bits = self.gt_bits if w == GT else self.geq_bits
        return bool(bits & (1 << (u * n + v)))

    # -- composition ----------------------------------------------------------------

    def compose(self, later: "MCGraph") -> "MCGraph":
        """Sequential composition: this transition followed by ``later``.

        Built by gluing the two packed graphs along the shared middle
        layer, closing, and projecting onto the outer layers.  An
        unsatisfiable glued system means the two transitions can never
        happen in sequence, and yields :meth:`unsat`.
        """
        if self.post_arity != later.pre_arity:
            raise ValueError(
                f"arity mismatch: {self.post_arity} targets composed with "
                f"{later.pre_arity} sources"
            )
        a, b, c = self.pre_arity, self.post_arity, later.post_arity
        if not self.sat or not later.sat:
            return MCGraph.unsat(a, c)
        n = a + b + c
        n0 = a + b
        n1 = b + c
        row0 = (1 << n0) - 1
        row1 = (1 << n1) - 1
        geq = [1 << i for i in range(n)]
        gt = [0] * n
        for u in range(n0):
            geq[u] |= (self.geq_bits >> (u * n0)) & row0
            gt[u] |= (self.gt_bits >> (u * n0)) & row0
        for u in range(n1):
            geq[a + u] |= ((later.geq_bits >> (u * n1)) & row1) << a
            gt[a + u] |= ((later.gt_bits >> (u * n1)) & row1) << a
        if not _close_bits(geq, gt, n):
            return MCGraph.unsat(a, c)
        # Project onto the outer layers: keep nodes 0…a-1 and a+b…n-1.
        low = (1 << a) - 1
        out_geq = []
        out_gt = []
        for u in list(range(a)) + list(range(n0, n)):
            out_geq.append((geq[u] & low) | ((geq[u] >> n0) << a))
            out_gt.append((gt[u] & low) | ((gt[u] >> n0) << a))
        m = a + c
        return MCGraph(a, c, _pack_rows(out_geq, m), _pack_rows(out_gt, m),
                       True)

    def is_idempotent(self) -> bool:
        return self.pre_arity == self.post_arity and self.compose(self) == self

    # -- the termination-local check ---------------------------------------------------

    def has_descent(self) -> bool:
        """Does some parameter strictly descend across the transition
        (``x > x′``)?"""
        if not self.sat:
            return False
        n = self.pre_arity + self.post_arity
        k = min(self.pre_arity, self.post_arity)
        gt_bits = self.gt_bits
        return any(gt_bits & (1 << (i * n + self.pre_arity + i))
                   for i in range(k))

    def bounded_ascent_witness(self) -> Optional[Tuple[int, int]]:
        """A pair ``(u, v)`` justifying termination by *bounded ascent*:

        * ``u ≥ u′`` — the ceiling never rises,
        * ``v′ > v`` — the counter strictly climbs,
        * ``u′ ≥ v′`` — the counter stays at or below the ceiling.

        Then ``u − v`` is a strictly decreasing natural number (sizes are
        naturals and the gap stays ≥ 0), so the transition cannot repeat
        forever.  Returns ``None`` when no such pair exists.
        """
        if not self.sat or self.pre_arity != self.post_arity:
            return None
        n = self.pre_arity
        full = 2 * n
        geq_bits = self.geq_bits
        gt_bits = self.gt_bits
        climbers = [v for v in range(n)
                    if gt_bits & (1 << ((n + v) * full + v))]
        if not climbers:
            return None
        for u in range(n):
            if not geq_bits & (1 << (u * full + n + u)):
                continue
            post_u = (geq_bits >> ((n + u) * full))
            for v in climbers:
                if u != v and post_u & (1 << (n + v)):
                    return (u, v)
        return None

    def desc_ok(self) -> bool:
        """The MC analogue of the paper's ``desc?``: an idempotent,
        satisfiable graph must carry a strict self-descent *or* a bounded-
        ascent witness.  Unsatisfiable and non-idempotent graphs pass (the
        former cannot occur, the latter cannot be iterated verbatim).

        The name matches :meth:`repro.sct.graph.SCGraph.desc_ok` so the
        run-time monitor can check either graph family through one
        interface.
        """
        if not self.sat:
            return True
        if not self.is_idempotent():
            return True
        if self.has_descent():
            return True
        return self.bounded_ascent_witness() is not None

    # -- conversions ----------------------------------------------------------------------

    @staticmethod
    def from_scgraph(g, pre_arity: int, post_arity: int) -> "MCGraph":
        """Embed a size-change graph: ``i ↓ j`` becomes ``pre_i > post_j``
        and ``i ↓= j`` becomes ``pre_i ≥ post_j``."""
        from repro.sct.graph import STRICT

        constraints = []
        for (i, r, j) in g.arcs:
            w = GT if r is STRICT else GEQ
            constraints.append((i, w, pre_arity + j))
        return MCGraph.build(pre_arity, post_arity, constraints)

    def to_scgraph(self):
        """Project onto a size-change graph, dropping context and ascent
        constraints (the sound direction: MC entails its SC projection)."""
        from repro.sct.graph import SCGraph, STRICT, WEAK

        if not self.sat:
            return SCGraph()
        n = self.pre_arity + self.post_arity
        arcs = []
        for i in range(self.pre_arity):
            base = i * n + self.pre_arity
            for j in range(self.post_arity):
                bit = 1 << (base + j)
                if self.gt_bits & bit:
                    arcs.append((i, STRICT, j))
                elif self.geq_bits & bit:
                    arcs.append((i, WEAK, j))
        return SCGraph(arcs)

    # -- display -------------------------------------------------------------------------------

    def pretty(self, pre_names: Optional[Sequence[str]] = None,
               post_names: Optional[Sequence[str]] = None) -> str:
        if not self.sat:
            return "{unsat}"
        if post_names is None:
            post_names = pre_names

        def nm(u: int) -> str:
            if u < self.pre_arity:
                if pre_names is not None and u < len(pre_names):
                    return pre_names[u]
                return f"x{u}"
            j = u - self.pre_arity
            if post_names is not None and j < len(post_names):
                return f"{post_names[j]}′"
            return f"x{j}′"

        shown = []
        rows = self.rows
        n = self.pre_arity + self.post_arity
        for u in range(n):
            for v in range(n):
                if u != v and rows[u][v] != NO_EDGE:
                    op = ">" if rows[u][v] == GT else "≥"
                    shown.append(f"{nm(u)} {op} {nm(v)}")
        return "{" + ", ".join(shown) + "}"

    def __repr__(self) -> str:
        return f"MCGraph{self.pretty()}"


def mc_graph_of_sizes(pre_sizes: Sequence[Optional[int]],
                      post_sizes: Sequence[Optional[int]]) -> MCGraph:
    """Build the exact MC graph over two vectors of well-founded sizes.
    Entries of ``None`` (values with no well-founded size, e.g. floats)
    contribute no constraints.

    Because the comparable entries are totally ordered by their sizes, the
    relation is transitively closed by construction and never
    unsatisfiable, so the rows are packed directly — no Floyd–Warshall —
    which is what keeps the dynamic MC monitor's per-call cost flat.
    """
    sizes = list(pre_sizes) + list(post_sizes)
    a = len(pre_sizes)
    n = len(sizes)
    geq = [0] * n
    gt = [0] * n
    for u in range(n):
        su = sizes[u]
        row_geq = 1 << u
        row_gt = 0
        if su is not None:
            for v in range(n):
                if v == u:
                    continue
                sv = sizes[v]
                if sv is None:
                    continue
                bit = 1 << v
                if su > sv:
                    row_geq |= bit
                    row_gt |= bit
                elif su == sv:
                    row_geq |= bit
        geq[u] = row_geq
        gt[u] = row_gt
    return MCGraph(a, n - a, _pack_rows(geq, n), _pack_rows(gt, n), True)


def mc_graph_of_values(old_args: Sequence, new_args: Sequence) -> MCGraph:
    """Build the *exact* MC graph observed between two concrete argument
    vectors: every pair of values (old–old, old–new, new–new) is compared
    in the well-founded size measure.

    With concrete values the measure is a total order on the comparable
    values, so dynamic MC graphs carry full context — the information the
    static analysis must approximate with path conditions.  Values without
    a well-founded size (floats, and closures other than to themselves)
    contribute no constraints.
    """
    from repro.values.values import size_of

    return mc_graph_of_sizes([size_of(v) for v in old_args],
                             [size_of(v) for v in new_args])
