"""The dynamic monotonicity-constraint monitor (the §6.2 future-work item
"these could be formulated as a dynamic contract", realized).

:class:`MCMonitor` is a drop-in replacement for
:class:`repro.sct.monitor.SCMonitor`: the CEK machine drives it through
the same ``upd`` interface, only the evidence it accumulates per call is
an exact :class:`repro.mc.graph.MCGraph` — every pairwise size relation
among the previous *and* current arguments — and the per-composition
check is the MC one (descent *or* a bounded-ascent witness).

Two facts worth knowing:

* **Strictly more permissive than SC monitoring.**  An MC graph entails
  its size-change projection, so any run the SC monitor accepts, the MC
  monitor accepts; additionally, counting-up-to-a-ceiling loops
  (``lh-range``, ``acl2-fig-2``) pass *without* a custom measure because
  every observed graph carries the climber-below-ceiling context.
* **Still a termination guarantee.**  If a closure is called infinitely
  often, Ramsey's theorem yields an infinite subsequence whose pairwise
  compositions all equal one idempotent, satisfiable graph G; ``desc_ok``
  on G would demand either an infinite strict descent of a natural (the
  descent case) or an infinitely shrinking non-negative gap (the
  bounded-ascent case) — both impossible — so G fails the check and the
  run is stopped.  (Unsatisfiable compositions never arise dynamically:
  the actual intermediate values witness satisfiability.)
"""

from __future__ import annotations

from typing import Tuple

from repro.mc.graph import MCGraph, mc_graph_of_values
from repro.sct.monitor import SCMonitor


class MCMonitor(SCMonitor):
    """``SCMonitor`` with monotonicity-constraint evidence.

    All policy knobs (keying, backoff, whitelist, loop entries, measures,
    tracing, ``enforce=False`` call-sequence mode) behave identically —
    including ``skip_labels``: a residual policy computed from MC
    certificates (:mod:`repro.analysis.discharge` with an
    :class:`~repro.mc.static.MCEngine`) plugs in through the same
    ``should_monitor`` skip set, so discharged λs bypass MC monitoring on
    the non-compiled path exactly as they bypass SC monitoring.
    The ``order`` option is ignored: MC graphs always compare in the
    well-founded size measure, which is what makes both termination
    arguments (descent and bounded ascent) sound.  The ``engine`` knob is
    moot here: because ``make_graph`` is overridden, the monitor always
    takes the generic evidence path, and the :class:`MCGraph` objects it
    composes are themselves bitmask-packed internally.

    The compiled machine's *call-site* fast path is inherited wholesale:
    only ``make_graph`` is overridden, so ``inline_upd_ok`` still holds —
    monitored calls key the hybrid identity table by the closure object
    and skip the policy check when it is constant-true — while
    ``fast_advance_ok`` correctly reports False (``_bitmask_fast`` is
    off), keeping the MC evidence pipeline on :meth:`SCMonitor.advance`.
    """

    def make_graph(self, old_args: Tuple, new_args: Tuple) -> MCGraph:
        return mc_graph_of_values(old_args, new_args)

    def __repr__(self) -> str:
        return f"MCMonitor(keying={self.keying!r}, backoff={self.backoff})"
