"""Monotonicity constraints: the paper's §6.2 future-work extension.

Monotonicity-constraint (MC) graphs (Codish–Lagoon–Stuckey) generalize
size-change graphs with constraints among *all* of a transition's source
and target parameters.  This package provides:

* :class:`~repro.mc.graph.MCGraph` — closed constraint graphs with
  composition, satisfiability, and the MC termination-local check
  (descent or bounded ascent),
* :class:`~repro.mc.monitor.MCMonitor` — a drop-in dynamic monitor for
  the CEK machine ("MC as a contract"),
* :func:`~repro.mc.static.verify_source_mc` — the static verifier of §4
  re-based on MC evidence,
* :func:`~repro.mc.analyze.mc_check` — the phase-2 closure test.
"""

from repro.mc.analyze import MCResult, mc_check
from repro.mc.graph import GEQ, GT, MCGraph, NO_EDGE, mc_graph_of_values
from repro.mc.monitor import MCMonitor
from repro.mc.static import MCEngine, verify_program_mc, verify_source_mc

__all__ = [
    "GEQ",
    "GT",
    "MCEngine",
    "MCGraph",
    "MCMonitor",
    "MCResult",
    "NO_EDGE",
    "mc_check",
    "mc_graph_of_values",
    "verify_program_mc",
    "verify_source_mc",
]
