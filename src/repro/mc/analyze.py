"""Phase 2 for monotonicity constraints: closure + the MC termination test.

Mirrors :mod:`repro.analysis.ljb` (the classic LJB closure) with the two
MC-specific rules:

* **unsatisfiable compositions are discarded** — they describe call paths
  that can never execute, which is exactly how context constraints kill
  the spurious loops plain SCT trips over;
* the local check is :meth:`repro.mc.graph.MCGraph.desc_ok` — strict
  self-descent *or* a bounded-ascent witness.

The worklist runs over the packed (bitmask) :class:`MCGraph`
representation and funnels every composition through an **interned-graph
table**, so each distinct closed graph exists once per closure run:
duplicate detection is a dict probe on two big ints, and repeat
compositions hit the identity fast path in ``MCGraph.__eq__``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set, Tuple

from repro.mc.graph import MCGraph

Edge = Tuple[int, int]


class MCResult:
    """``ok`` is True (MC termination holds), False (violated, see the
    witness), or None (closure blew the cap — undetermined)."""

    def __init__(self, ok: Optional[bool], witness_label: Optional[int] = None,
                 witness_graph: Optional[MCGraph] = None, total_graphs: int = 0,
                 discarded_unsat: int = 0):
        self.ok = ok
        self.witness_label = witness_label
        self.witness_graph = witness_graph
        self.total_graphs = total_graphs
        self.discarded_unsat = discarded_unsat

    def __repr__(self) -> str:
        return f"MCResult(ok={self.ok}, discarded_unsat={self.discarded_unsat})"


class _Closure:
    def __init__(self):
        self.graphs: Dict[Edge, Set[MCGraph]] = {}
        self.by_source: Dict[int, Set[int]] = {}
        self.by_target: Dict[int, Set[int]] = {}
        self.total = 0
        self._interned: Dict[MCGraph, MCGraph] = {}

    def intern(self, graph: MCGraph) -> MCGraph:
        """The canonical instance of ``graph`` for this closure run."""
        return self._interned.setdefault(graph, graph)

    def add(self, edge: Edge, graph: MCGraph) -> bool:
        bucket = self.graphs.setdefault(edge, set())
        if graph in bucket:
            return False
        bucket.add(graph)
        self.by_source.setdefault(edge[0], set()).add(edge[1])
        self.by_target.setdefault(edge[1], set()).add(edge[0])
        self.total += 1
        return True


def mc_check(edges: Dict[Edge, Set[MCGraph]], max_graphs: int = 20000) -> MCResult:
    """Close ``edges`` under composition and check MC termination."""
    state = _Closure()
    queue = deque()
    discarded = 0
    for edge, graphs in edges.items():
        for graph in graphs:
            if not graph.sat:
                discarded += 1
                continue
            graph = state.intern(graph)
            if state.add(edge, graph):
                queue.append((edge, graph))

    while queue:
        (f, g), G = queue.popleft()
        if f == g and not G.desc_ok():
            return MCResult(False, witness_label=f, witness_graph=G,
                            total_graphs=state.total, discarded_unsat=discarded)
        for h in list(state.by_source.get(g, ())):
            for H in list(state.graphs.get((g, h), ())):
                composed = G.compose(H)
                if not composed.sat:
                    discarded += 1
                else:
                    composed = state.intern(composed)
                    if state.add((f, h), composed):
                        queue.append(((f, h), composed))
        for e in list(state.by_target.get(f, ())):
            for E in list(state.graphs.get((e, f), ())):
                composed = E.compose(G)
                if not composed.sat:
                    discarded += 1
                else:
                    composed = state.intern(composed)
                    if state.add((e, g), composed):
                        queue.append(((e, g), composed))
        if state.total > max_graphs:
            return MCResult(None, total_graphs=state.total,
                            discarded_unsat=discarded)
    return MCResult(True, total_graphs=state.total, discarded_unsat=discarded)
