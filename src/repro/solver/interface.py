"""The solver facade: entailment and satisfiability with memoization.

Queries arrive as (facts, goal) pairs; entailment is refutation —
``facts ∧ ¬goal`` must be unsatisfiable.  Because ``¬goal`` can be a
disjunction (for equalities), each disjunct must be refuted.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from repro.solver.fm import unsat
from repro.solver.linear import Atom


class Solver:
    def __init__(self):
        self._unsat_cache: Dict[FrozenSet[Atom], bool] = {}
        self.queries = 0

    def _unsat(self, atoms: Tuple[Atom, ...]) -> bool:
        key = frozenset(atoms)
        hit = self._unsat_cache.get(key)
        if hit is not None:
            return hit
        self.queries += 1
        result = unsat(tuple(key))
        self._unsat_cache[key] = result
        return result

    def entails(self, facts: Tuple[Atom, ...], goal: Atom) -> bool:
        """``facts ⊨ goal`` (conservative: False when unknown)."""
        return all(self._unsat(facts + (d,)) for d in goal.negate())

    def satisfiable(self, facts: Tuple[Atom, ...]) -> bool:
        """Conservative satisfiability: True unless definitely unsat."""
        return not self._unsat(facts)
