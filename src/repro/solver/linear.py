"""Linear terms and atoms over integer variables.

A :class:`LinExpr` is ``Σ cᵢ·xᵢ + c`` with integer coefficients, stored as
a coefficient map.  An :class:`Atom` is a normalized constraint:

* ``LE``: ``e ≤ 0``
* ``EQ``: ``e = 0``
* ``NE``: ``e ≠ 0``

Strict integer inequalities normalize away: ``e < 0  ⇝  e + 1 ≤ 0``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

LE = "<="
EQ = "=="
NE = "!="


class LinExpr:
    """An immutable linear expression with integer coefficients."""

    __slots__ = ("coeffs", "const", "_hash")

    def __init__(self, coeffs: Dict[str, int] = None, const: int = 0):
        cleaned = {}
        if coeffs:
            for var, c in coeffs.items():
                if c != 0:
                    cleaned[var] = c
        self.coeffs: Dict[str, int] = cleaned
        self.const = const
        self._hash = hash((tuple(sorted(cleaned.items())), const))

    @staticmethod
    def constant(c: int) -> "LinExpr":
        return LinExpr({}, c)

    @staticmethod
    def var(name: str) -> "LinExpr":
        return LinExpr({name: 1}, 0)

    def is_constant(self) -> bool:
        return not self.coeffs

    def __add__(self, other: "LinExpr") -> "LinExpr":
        coeffs = dict(self.coeffs)
        for var, c in other.coeffs.items():
            coeffs[var] = coeffs.get(var, 0) + c
        return LinExpr(coeffs, self.const + other.const)

    def __sub__(self, other: "LinExpr") -> "LinExpr":
        return self + other.scale(-1)

    def scale(self, k: int) -> "LinExpr":
        return LinExpr({v: c * k for v, c in self.coeffs.items()}, self.const * k)

    def plus_const(self, k: int) -> "LinExpr":
        return LinExpr(self.coeffs, self.const + k)

    def variables(self) -> Iterable[str]:
        return self.coeffs.keys()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LinExpr)
            and other.coeffs == self.coeffs
            and other.const == self.const
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        parts = [f"{c}*{v}" for v, c in sorted(self.coeffs.items())]
        parts.append(str(self.const))
        return " + ".join(parts)


class Atom:
    """A normalized linear constraint ``expr (≤|=|≠) 0``."""

    __slots__ = ("op", "expr", "_hash")

    def __init__(self, op: str, expr: LinExpr):
        self.op = op
        self.expr = expr
        self._hash = hash((op, expr))

    def negate(self) -> Tuple["Atom", ...]:
        """The negation as a disjunction of atoms (integer semantics)."""
        if self.op == LE:  # ¬(e ≤ 0) ⇔ e ≥ 1 ⇔ -e + 1 ≤ 0
            return (Atom(LE, self.expr.scale(-1).plus_const(1)),)
        if self.op == EQ:
            return (Atom(NE, self.expr),)
        return (Atom(EQ, self.expr),)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Atom) and other.op == self.op and other.expr == self.expr

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"({self.expr!r} {self.op} 0)"


def le(a: LinExpr, b: LinExpr) -> Atom:
    """a ≤ b"""
    return Atom(LE, a - b)


def lt(a: LinExpr, b: LinExpr) -> Atom:
    """a < b  (integers: a ≤ b - 1)"""
    return Atom(LE, (a - b).plus_const(1))


def ge(a: LinExpr, b: LinExpr) -> Atom:
    return le(b, a)


def gt(a: LinExpr, b: LinExpr) -> Atom:
    return lt(b, a)


def eq(a: LinExpr, b: LinExpr) -> Atom:
    return Atom(EQ, a - b)


def ne(a: LinExpr, b: LinExpr) -> Atom:
    return Atom(NE, a - b)
