"""A small, self-contained decision procedure for linear integer
arithmetic, used by the symbolic executor (§4) to discharge path-condition
entailments such as ``m ≥ 0 ∧ m ≠ 0 ⊨ |m−1| < |m|``.

Scope (deliberate): conjunctions of linear constraints over ℤ, decided by
Fourier–Motzkin elimination with integer tightening, plus bounded
case-splitting on disequalities.  Non-linear terms (products of variables,
``quotient``, ``modulo``) are *uninterpreted* — this matches the rows of
Table 1 the paper's static checker could not verify (``lh-gcd``,
``isabelle-f`` ...).
"""

from repro.solver.linear import Atom, LinExpr, eq, ge, gt, le, lt, ne
from repro.solver.interface import Solver

__all__ = ["LinExpr", "Atom", "le", "lt", "ge", "gt", "eq", "ne", "Solver"]
