"""Fourier–Motzkin elimination over ℤ with integer tightening.

``unsat(atoms)`` returns ``True`` only when the conjunction is definitely
unsatisfiable over the integers:

* rational FM refutation is sound for ℤ (ℤ-solutions ⊆ ℚ-solutions);
* integer tightening (dividing by the coefficient gcd and flooring the
  constant) recovers the standard integer facts, e.g. ``x ≥ 0 ∧ x ≠ 0``
  tightens through the ``x ≤ -1 ∨ x ≥ 1`` split to ``x ≥ 1``;
* disequalities are handled by a bounded case split.

``unsat`` may answer ``False`` for genuinely unsatisfiable systems that
exceed its budgets — the verifier then simply fails to prove an arc, which
is the conservative direction.
"""

from __future__ import annotations

from math import gcd
from typing import List, Optional, Set, Tuple

from repro.solver.linear import Atom, EQ, LE, NE, LinExpr

_MAX_INEQS = 600
_MAX_NE_SPLITS = 5


def _tighten(expr: LinExpr) -> LinExpr:
    """Integer-tighten ``expr ≤ 0``: with ``expr = g·e' + c`` (g = gcd of
    the coefficients), ``e' ≤ -c/g`` and e' integral give
    ``e' ≤ ⌊-c/g⌋``, i.e. ``e' - ⌊-c/g⌋ ≤ 0``."""
    if not expr.coeffs:
        return expr
    g = 0
    for c in expr.coeffs.values():
        g = gcd(g, abs(c))
    if g > 1:
        coeffs = {v: c // g for v, c in expr.coeffs.items()}
        const = -((-expr.const) // g)  # -floor(-c/g), floor via // on ints
        return LinExpr(coeffs, const)
    return expr


def _is_trivially_true(expr: LinExpr) -> bool:
    return not expr.coeffs and expr.const <= 0


def _is_trivially_false(expr: LinExpr) -> bool:
    return not expr.coeffs and expr.const > 0


def _expand_eqs(atoms: Tuple[Atom, ...]) -> Optional[Tuple[List[LinExpr], List[LinExpr]]]:
    """Split into (inequalities ``e ≤ 0``, disequalities ``e ≠ 0``);
    equalities become two inequalities.  Returns None on a constant
    contradiction."""
    ineqs: List[LinExpr] = []
    disz: List[LinExpr] = []
    for atom in atoms:
        if atom.op == LE:
            ineqs.append(atom.expr)
        elif atom.op == EQ:
            ineqs.append(atom.expr)
            ineqs.append(atom.expr.scale(-1))
        else:
            if atom.expr.is_constant():
                if atom.expr.const == 0:
                    return None
            else:
                disz.append(atom.expr)
    return ineqs, disz


def _fm_unsat(ineqs: List[LinExpr]) -> bool:
    """Definitely-unsat check for a pure conjunction of ``e ≤ 0``."""
    work: Set[LinExpr] = set()
    for e in ineqs:
        t = _tighten(e)
        if _is_trivially_false(t):
            return True
        if not _is_trivially_true(t):
            work.add(t)

    while work:
        if len(work) > _MAX_INEQS:
            return False  # give up (conservative)
        # Pick the variable with the fewest pairings.
        occurrences = {}
        for e in work:
            for v in e.coeffs:
                occurrences.setdefault(v, [0, 0])
                if e.coeffs[v] > 0:
                    occurrences[v][0] += 1
                else:
                    occurrences[v][1] += 1
        if not occurrences:
            return any(_is_trivially_false(e) for e in work)
        var = min(occurrences, key=lambda v: occurrences[v][0] * occurrences[v][1])
        uppers = [e for e in work if e.coeffs.get(var, 0) > 0]
        lowers = [e for e in work if e.coeffs.get(var, 0) < 0]
        others = [e for e in work if var not in e.coeffs]
        new_work: Set[LinExpr] = set()
        for e in others:
            new_work.add(e)
        for up in uppers:  # a·x + r ≤ 0, a > 0
            a = up.coeffs[var]
            for lo in lowers:  # -b·x + s ≤ 0, b > 0
                b = -lo.coeffs[var]
                combined = up.scale(b) + lo.scale(a)
                t = _tighten(combined)
                if _is_trivially_false(t):
                    return True
                if not _is_trivially_true(t):
                    new_work.add(t)
        work = new_work
        if not work:
            return False
    return False


def unsat(atoms: Tuple[Atom, ...], _splits: int = _MAX_NE_SPLITS) -> bool:
    """True only if the conjunction is definitely unsatisfiable over ℤ."""
    expanded = _expand_eqs(atoms)
    if expanded is None:
        return True
    ineqs, disz = expanded
    if not disz:
        return _fm_unsat(ineqs)
    if _splits <= 0:
        # Too many disequalities: drop them (weaker system, still sound).
        return _fm_unsat(ineqs)
    head, rest = disz[0], disz[1:]
    rest_atoms = tuple(Atom(NE, e) for e in rest) + tuple(
        Atom(LE, e) for e in ineqs
    )
    # e ≠ 0  ⇔  e ≤ -1 ∨ e ≥ 1
    lo = rest_atoms + (Atom(LE, head.plus_const(1)),)
    hi = rest_atoms + (Atom(LE, head.scale(-1).plus_const(1)),)
    return unsat(lo, _splits - 1) and unsat(hi, _splits - 1)
