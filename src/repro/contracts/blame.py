"""Blame tracking for contracts (Findler–Felleisen).

A :class:`Blame` names two parties: the *positive* party (the component
that promised the contract — blamed when the value misbehaves) and the
*negative* party (the client — blamed when the value is *used* outside the
contract, e.g. a bad argument to a contracted function).  Function contracts
swap the parties on their domains.
"""

from __future__ import annotations


class Blame:
    __slots__ = ("positive", "negative", "source")

    def __init__(self, positive: str, negative: str, source: str = ""):
        self.positive = positive
        self.negative = negative
        self.source = source

    def swap(self) -> "Blame":
        return Blame(self.negative, self.positive, self.source)

    def __repr__(self) -> str:
        return f"Blame(+{self.positive!r}, -{self.negative!r})"


class ContractViolation(Exception):
    """A contract failure, charging ``party``."""

    def __init__(self, party: str, contract_name: str, value, detail: str = ""):
        self.party = party
        self.contract_name = contract_name
        self.value = value
        message = f"contract violation: {contract_name}, blaming {party}"
        message += f"\n  value: {value!r}"
        if detail:
            message += f"\n  {detail}"
        super().__init__(message)
