"""Findler–Felleisen behavioural contracts with blame, composing partial
correctness (flat / function contracts) with the paper's termination
contract into contracts for **total correctness** (§1, §2.3).

The embedded language has ``(terminating/c e)`` built into its syntax; this
package provides the same compositional story for host (Python) callables:

>>> from repro.contracts import flat, arrow, terminating_c, total, attach
>>> is_nat = flat(lambda v: isinstance(v, int) and v >= 0, "nat?")
>>> ctc = total([is_nat], is_nat)          # (-> nat? nat?) ∧ terminating
>>> @attach(ctc, positive="factorial", negative="caller")
... def fact(n):
...     return 1 if n == 0 else n * fact(n - 1)
>>> fact(5)
120
"""

from repro.contracts.blame import Blame, ContractViolation
from repro.contracts.combinators import (
    AndContract,
    ArrowContract,
    Contract,
    FlatContract,
    ListOfContract,
    OrContract,
    TerminatingContract,
    and_c,
    any_c,
    arrow,
    attach,
    flat,
    listof,
    or_c,
    terminating_c,
    total,
)

__all__ = [
    "Blame",
    "ContractViolation",
    "Contract",
    "FlatContract",
    "AndContract",
    "OrContract",
    "ListOfContract",
    "ArrowContract",
    "TerminatingContract",
    "flat",
    "and_c",
    "or_c",
    "any_c",
    "listof",
    "arrow",
    "terminating_c",
    "total",
    "attach",
]
