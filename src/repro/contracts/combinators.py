"""Contract combinators.

``flat`` checks immediately; ``arrow`` wraps callables and defers checking
to call boundaries with blame swapping on domains; ``terminating_c`` is the
paper's contribution — a contract on the *liveness-implying safety property*
of size-change termination; ``total`` conjoins an arrow with termination,
giving a contract for total correctness.
"""

from __future__ import annotations

import functools
from typing import Callable, Iterable, List, Optional, Sequence

from repro.contracts.blame import Blame, ContractViolation
from repro.pyterm.decorator import terminating


class Contract:
    """Base class.  ``wrap(value, blame)`` returns a (possibly proxied)
    value that honours the contract, or raises :class:`ContractViolation`
    immediately for first-order violations."""

    name = "contract"

    def wrap(self, value, blame: Blame):
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.name


class FlatContract(Contract):
    def __init__(self, predicate: Callable[[object], bool], name: Optional[str] = None):
        self.predicate = predicate
        self.name = name or getattr(predicate, "__name__", "flat")

    def wrap(self, value, blame: Blame):
        ok = False
        try:
            ok = bool(self.predicate(value))
        except Exception as exc:  # a crashing predicate blames its author
            raise ContractViolation(
                blame.positive, self.name, value, f"predicate raised: {exc}"
            ) from exc
        if not ok:
            raise ContractViolation(blame.positive, self.name, value)
        return value


class AndContract(Contract):
    def __init__(self, parts: Sequence[Contract]):
        self.parts = list(parts)
        self.name = "(and/c " + " ".join(p.name for p in self.parts) + ")"

    def wrap(self, value, blame: Blame):
        for part in self.parts:
            value = part.wrap(value, blame)
        return value


class OrContract(Contract):
    """First-order disjunction: tries flat parts in order; a non-flat last
    resort is applied if all flats reject."""

    def __init__(self, parts: Sequence[Contract]):
        self.parts = list(parts)
        self.name = "(or/c " + " ".join(p.name for p in self.parts) + ")"

    def wrap(self, value, blame: Blame):
        last_exc: Optional[ContractViolation] = None
        for part in self.parts:
            try:
                return part.wrap(value, blame)
            except ContractViolation as exc:
                last_exc = exc
        assert last_exc is not None
        raise ContractViolation(blame.positive, self.name, value) from last_exc


class ListOfContract(Contract):
    def __init__(self, element: Contract):
        self.element = element
        self.name = f"(listof {element.name})"

    def wrap(self, value, blame: Blame):
        if not isinstance(value, (list, tuple)):
            raise ContractViolation(blame.positive, self.name, value)
        return type(value)(self.element.wrap(v, blame) for v in value)


class ArrowContract(Contract):
    """``(-> dom ... rng)``: domains are checked with *swapped* blame (a bad
    argument is the caller's fault), the range with the original blame."""

    def __init__(self, domains: Sequence[Contract], range_: Contract):
        self.domains = list(domains)
        self.range = range_
        doms = " ".join(d.name for d in self.domains)
        self.name = f"(-> {doms} {range_.name})"

    def wrap(self, value, blame: Blame):
        if not callable(value):
            raise ContractViolation(blame.positive, self.name, value)
        domains, range_, name = self.domains, self.range, self.name

        @functools.wraps(value, assigned=("__name__", "__qualname__", "__doc__"))
        def proxy(*args):
            if len(args) != len(domains):
                raise ContractViolation(
                    blame.negative, name, args,
                    f"expected {len(domains)} arguments, got {len(args)}",
                )
            swapped = blame.swap()
            checked = [d.wrap(a, swapped) for d, a in zip(domains, args)]
            result = value(*checked)
            return range_.wrap(result, blame)

        proxy.__wrapped__ = value
        return proxy


class TerminatingContract(Contract):
    """The termination contract: wraps a callable with the size-change
    monitor; violations blame the positive party (§2.3)."""

    name = "terminating/c"

    def __init__(self, **policy):
        self.policy = policy

    def wrap(self, value, blame: Blame):
        if not callable(value):
            # [Wrap-Prim]-style: non-functions pass through unchanged.
            return value
        if getattr(value, "__sct_terminating__", False):
            return value  # already monitored; keep the first label
        return terminating(value, blame=blame.positive, **self.policy)


# -- convenience constructors ---------------------------------------------------


def flat(predicate: Callable[[object], bool], name: Optional[str] = None) -> FlatContract:
    return FlatContract(predicate, name)


any_c = FlatContract(lambda _v: True, "any/c")


def and_c(*parts: Contract) -> AndContract:
    return AndContract(parts)


def or_c(*parts: Contract) -> OrContract:
    return OrContract(parts)


def listof(element: Contract) -> ListOfContract:
    return ListOfContract(element)


def arrow(domains: Iterable[Contract], range_: Contract) -> ArrowContract:
    return ArrowContract(list(domains), range_)


def terminating_c(**policy) -> TerminatingContract:
    return TerminatingContract(**policy)


def total(domains: Iterable[Contract], range_: Contract, **policy) -> AndContract:
    """A total-correctness contract: ``(-> dom ... rng)`` ∧ terminating.

    The termination monitor wraps the raw function; the arrow proxy wraps
    the monitored function, so argument checks happen before the call is
    recorded in the size-change table.
    """
    return AndContract([TerminatingContract(**policy), ArrowContract(list(domains), range_)])


def attach(contract: Contract, positive: str, negative: str = "caller"):
    """Decorator / applier: ``attach(ctc, "server")(value)``."""

    blame = Blame(positive, negative)

    def apply(value):
        return contract.wrap(value, blame)

    return apply
