"""Extra benchmarks beyond the Table 1 rows.

Two families:

* ``register_extra`` — additional terminating Scheme benchmarks the
  dynamic monitor accepts (breadth beyond the paper's table), and
* ``register_conservative`` — *terminating* programs the size-change
  property rejects: the paper's §1 "one, unavoidable, wrinkle".  These are
  pinned as expected ``errorSC`` so the conservativeness stays documented
  and visible.
"""

from repro.corpus.registry import (
    CorpusProgram,
    register_conservative,
    register_extra,
)

register_extra(CorpusProgram(
    name="tak",
    source="""
(define (tak x y z)
  (if (not (< y x)) z
      (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))
(tak 8 4 2)
""",
    expected="3",
    paper=("", "", "", "", ""),
    ours_static=False,
    entry=("tak", ["nat", "nat", "nat"]),
    notes="Gabriel tak: triply nested recursion on permuted arguments.  "
          "Dynamically the observed call sequence maintains SCP; "
          "statically the restart call's arguments are summarized results, "
          "so no descent is provable.",
    tags=("extra", "gabriel"),
))

register_extra(CorpusProgram(
    name="tree-ops",
    source="""
(define (tree-insert t x)
  (if (null? t)
      (list x '() '())
      (if (< x (car t))
          (list (car t) (tree-insert (cadr t) x) (caddr t))
          (list (car t) (cadr t) (tree-insert (caddr t) x)))))
(define (tree-sum t)
  (if (null? t) 0
      (+ (car t) (+ (tree-sum (cadr t)) (tree-sum (caddr t))))))
(define (build l t)
  (if (null? l) t (build (cdr l) (tree-insert t (car l)))))
(tree-sum (build '(5 2 8 1 9 3 7) '()))
""",
    expected="35",
    paper=("", "", "", "", ""),
    ours_static=True,
    entry=("tree-sum", ["list"]),
    notes="Binary search tree build + fold: branching structural descent.",
    tags=("extra", "trees"),
))

register_extra(CorpusProgram(
    name="run-length",
    source="""
(define (rle-encode l)
  (if (null? l) '()
      (rle-take (car l) 1 (cdr l))))
(define (rle-take x n rest)
  (cond [(null? rest) (list (cons n x))]
        [(eqv? x (car rest)) (rle-take x (+ n 1) (cdr rest))]
        [else (cons (cons n x) (rle-encode rest))]))
(define (rle-decode pairs)
  (if (null? pairs) '()
      (rle-expand (car (car pairs)) (cdr (car pairs)) (cdr pairs))))
(define (rle-expand n x rest)
  (if (zero? n) (rle-decode rest) (cons x (rle-expand (- n 1) x rest))))
(define input '(a a a b b c c c c d))
(equal? (rle-decode (rle-encode input)) input)
""",
    expected="#t",
    paper=("", "", "", "", ""),
    ours_static=False,
    entry=None,
    notes="Run-length encode/decode round-trip: mutual recursion whose "
          "descent alternates between a list and a counter.",
    tags=("extra", "strings"),
))

register_extra(CorpusProgram(
    name="word-count",
    source="""
(define (bump counts w)
  (hash-set counts w (+ 1 (hash-ref counts w 0))))
(define (count-words ws counts)
  (if (null? ws) counts (count-words (cdr ws) (bump counts (car ws)))))
(define counts (count-words '(the cat and the hat and the bat) (hash)))
(list (hash-ref counts 'the) (hash-ref counts 'and) (hash-ref counts 'bat))
""",
    expected="(3 2 1)",
    paper=("", "", "", "", ""),
    ours_static=True,
    entry=("count-words", ["list", "any"]),
    notes="Fold into a persistent hash map: the accumulator grows while "
          "the list descends.",
    tags=("extra", "hash"),
))

register_conservative(CorpusProgram(
    name="cpstak",
    source="""
(define (cpstak x y z k)
  (if (not (< y x))
      (k z)
      (cpstak (- x 1) y z
        (lambda (v1)
          (cpstak (- y 1) z x
            (lambda (v2)
              (cpstak (- z 1) x y
                (lambda (v3) (cpstak v1 v2 v3 k)))))))))
(cpstak 8 4 2 (lambda (a) a))
""",
    expected="3",
    paper=("", "", "", "", ""),
    ours_static=False,
    entry=None,
    notes="Gabriel cpstak TERMINATES, but the continuation's restart call "
          "(cpstak v1 v2 v3 k) re-enters with computed values that ascend "
          "relative to the in-extent history, and — all calls being tail "
          "calls — the extent never resets.  SCT is a conservative safety "
          "property: this is a true positive of the *property*, a false "
          "positive for *termination* (§1's unavoidable wrinkle).",
    tags=("conservative", "gabriel", "cps"),
))

register_conservative(CorpusProgram(
    name="cross-zero",
    source="""
(define (cross x) (if (<= x 0) 'done (cross (- x 2))))
(cross 7)
""",
    expected="done",
    paper=("", "", "", "", ""),
    ours_static=False,
    entry=None,
    notes="Steps of 2 from an odd start cross zero: the final step 1 → -1 "
          "is not a descent under |·| (equal magnitudes), so the "
          "terminating run is flagged on its very last call.  The measure "
          "max(x, 0) repairs it — see tests.",
    tags=("conservative", "order"),
))

register_extra(CorpusProgram(
    name="set-order",
    source="""
(define (order-sum n acc)
  (if (zero? n)
      acc
      (order-sum (- n 1)
                 (+ acc (let ((m n)) (+ m (begin (set! m 1) m)))))))
(define (alias-sum n)
  (if (zero? n)
      0
      (+ (letrec ((a n))
           (let ((y a))
             (begin (set! y (* y 10)) (+ a y))))
         (alias-sum (- n 1)))))
(+ (order-sum 10 0) (alias-sum 5))
""",
    expected="230",
    paper=("", "", "", "", ""),
    ours_static=True,
    entry=("order-sum", ["nat", "nat"]),
    notes="set! evaluation-order and binding-aliasing probes inside "
          "statically provable loops: order-sum's left operand must be "
          "read before the sibling argument's set! fires, and alias-sum's "
          "let binding must get storage distinct from the letrec slot it "
          "was initialized from.  Pure programs cannot tell these apart; "
          "a compiling tier that copies too little answers differently "
          "(the PR 9 review repros).",
    tags=("extra", "mutation"),
))
