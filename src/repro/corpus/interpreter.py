"""The ``scheme`` benchmark: an interpreter for a Scheme subset, written in
the object language in the compile-to-closures style of §2.4, interpreting
merge-sort (and, for Fig. 10, factorial and sum).

Design notes — why this interpreter is *monitorable* (all three choices are
the ones Fig. 2 of the paper makes):

* **Compile to closures, don't eval/apply.**  A naive ``eval`` re-enters
  itself with a function body that is unrelated (as a value) to the call
  expression, which the size-change monitor must reject.  Compiled node
  closures instead recur along interpreted recursion only.
* **Per-arity code generation, no shared argument-evaluation loop.**  A
  recursive ``eval-args`` helper interleaves its own recursion with
  interpreted evaluation, so it gets re-entered with unrelated compiled-
  closure lists.  Generating ``((cf r) (a1 r) (a2 r))`` per arity (exactly
  like Fig. 2's unary ``((c1 ρ) (c2 ρ))``) removes that recursion, and it
  hands interpreted arguments to multi-argument host closures so each
  interpreted parameter occupies its own size-change graph position.
* **Environments bind values directly (no boxes), so interpreted descent
  is visible as environment-size descent.**  Compiled body closures are
  created once per AST node and re-entered across interpreted recursion
  with the environment as their only argument; with direct bindings the
  environment's memoized size shrinks exactly when the interpreted
  arguments shrink.  Only top-level definitions are boxed (for linking),
  and a box has constant size.

Interpreted subset: fixed-arity ``lambda`` (≤3 params), application,
``if``, ``quote``, numbers, booleans, variables, and primitives from the
initial environment.  Top-level recursion is tied by link-then-patch.
"""

from __future__ import annotations

import random
from typing import List

INTERPRETER_CORE = """
;; ---------- compile-to-closures Scheme interpreter (the paper's §2.4 style) ----

(define (lookup-var r x)
  (let ([v (hash-ref r x)])
    (if (box? v) (unbox v) v)))

(define (comp e)
  (cond
    [(number? e) (lambda (r) e)]
    [(boolean? e) (lambda (r) e)]
    [(symbol? e) (lambda (r) (lookup-var r e))]
    [(eq? (car e) 'quote)
     (let ([d (cadr e)]) (lambda (r) d))]
    [(eq? (car e) 'if)
     (let ([c (comp (cadr e))]
           [t (comp (caddr e))]
           [f (comp (cadddr e))])
       (lambda (r) (if (c r) (t r) (f r))))]
    [(eq? (car e) 'lambda)
     (comp-lambda (cadr e) (comp (caddr e)))]
    [else
     (comp-app (comp (car e)) (cdr e))]))

(define (comp-lambda params body)
  (cond
    [(null? params)
     (lambda (r) (lambda () (body r)))]
    [(null? (cdr params))
     (let ([p1 (car params)])
       (lambda (r) (lambda (v1) (body (hash-set r p1 v1)))))]
    [(null? (cddr params))
     (let ([p1 (car params)] [p2 (cadr params)])
       (lambda (r)
         (lambda (v1 v2)
           (body (hash-set (hash-set r p1 v1) p2 v2)))))]
    [(null? (cdddr params))
     (let ([p1 (car params)] [p2 (cadr params)] [p3 (caddr params)])
       (lambda (r)
         (lambda (v1 v2 v3)
           (body (hash-set (hash-set (hash-set r p1 v1) p2 v2) p3 v3)))))]
    [else (error "comp: unsupported arity")]))

(define (comp-app cf args)
  (cond
    [(null? args)
     (lambda (r) ((cf r)))]
    [(null? (cdr args))
     (let ([a1 (comp (car args))])
       (lambda (r) ((cf r) (a1 r))))]
    [(null? (cddr args))
     (let ([a1 (comp (car args))] [a2 (comp (cadr args))])
       (lambda (r) ((cf r) (a1 r) (a2 r))))]
    [(null? (cdddr args))
     (let ([a1 (comp (car args))]
           [a2 (comp (cadr args))]
           [a3 (comp (caddr args))])
       (lambda (r) ((cf r) (a1 r) (a2 r) (a3 r))))]
    [else (error "comp: unsupported call arity")]))

;; ---------- initial environment: interpreted primitives ----------

(define initial-env
  (hash '+     (lambda (a b) (+ a b))
        '-     (lambda (a b) (- a b))
        '*     (lambda (a b) (* a b))
        '<     (lambda (a b) (< a b))
        '=     (lambda (a b) (= a b))
        'car   (lambda (p) (car p))
        'cdr   (lambda (p) (cdr p))
        'cons  (lambda (a d) (cons a d))
        'null? (lambda (p) (null? p))))

;; ---------- linking: (define (f . params) body) forms ----------

(define (def-name d) (car (cadr d)))
(define (def-params d) (cdr (cadr d)))
(define (def-body d) (caddr d))

(define (link-defs defs r)
  (if (null? defs)
      r
      (link-defs (cdr defs) (hash-set r (def-name (car defs)) (box 0)))))

(define (patch-defs defs r)
  (if (null? defs)
      (void)
      (begin
        (let ([fn ((comp-lambda (def-params (car defs))
                                (comp (def-body (car defs)))) r)])
          (set-box! (hash-ref r (def-name (car defs))) fn))
        (patch-defs (cdr defs) r))))

(define (run-interp defs main)
  (let ([r (link-defs defs initial-env)])
    (begin
      (patch-defs defs r)
      ((comp main) r))))
"""

MSORT_DEFS = """
(define msort-program
  '((define (imerge xs ys)
      (if (null? xs) ys
          (if (null? ys) xs
              (if (< (car xs) (car ys))
                  (cons (car xs) (imerge (cdr xs) ys))
                  (cons (car ys) (imerge xs (cdr ys)))))))
    (define (isplit l)
      (if (null? l) (cons (quote ()) (quote ()))
          (if (null? (cdr l)) (cons l (quote ()))
              ((lambda (r)
                 (cons (cons (car l) (car r))
                       (cons (car (cdr l)) (cdr r))))
               (isplit (cdr (cdr l)))))))
    (define (imsort l)
      (if (null? l) l
          (if (null? (cdr l)) l
              ((lambda (h) (imerge (imsort (car h)) (imsort (cdr h))))
               (isplit l)))))))
"""

FACT_DEFS = """
(define fact-program
  '((define (ifact n)
      (if (< n 1) 1 (* n (ifact (- n 1)))))))
"""

SUM_DEFS = """
(define sum-program
  '((define (isum n)
      (if (< n 1) 0 (+ n (isum (- n 1)))))))
"""


def scheme_corpus_source() -> str:
    """The Table 1 ``scheme`` row: the interpreter running merge-sort."""
    values = _shuffled(24)
    data = " ".join(str(v) for v in values)
    return (
        INTERPRETER_CORE
        + MSORT_DEFS
        + f"\n(define (main) (run-interp msort-program '(imsort (quote ({data})))))\n"
        + "(main)\n"
    )


def interpreted_msort_source(n: int, seed: int = 7) -> str:
    values = _shuffled(n, seed)
    data = " ".join(str(v) for v in values)
    return (
        INTERPRETER_CORE
        + MSORT_DEFS
        + f"\n(run-interp msort-program '(imsort (quote ({data}))))\n"
    )


def interpreted_factorial_source(n: int) -> str:
    return (
        INTERPRETER_CORE
        + FACT_DEFS
        + f"\n(run-interp fact-program '(ifact {n}))\n"
    )


def interpreted_sum_source(n: int) -> str:
    return (
        INTERPRETER_CORE
        + SUM_DEFS
        + f"\n(run-interp sum-program '(isum {n}))\n"
    )


def _shuffled(n: int, seed: int = 7) -> List[int]:
    rng = random.Random(seed)
    values = list(range(n))
    rng.shuffle(values)
    return values


def _register() -> None:
    from repro.corpus.registry import CorpusProgram, register

    values = _shuffled(24)
    expected = "(" + " ".join(str(v) for v in sorted(values)) + ")"
    register(CorpusProgram(
        name="scheme",
        source=scheme_corpus_source(),
        expected=expected,
        paper=("Y", "N", "", "", ""),
        ours_static=False,
        entry=("main", []),
        notes="An interpreter for a Scheme subset (compile-to-closures, "
              "§2.4) interpreting merge-sort.  The paper's version is a "
              "1,100-line R5RS interpreter sorting strings; ours is the "
              "same architecture sorting integers (see DESIGN.md "
              "substitutions).  Statically unverifiable: interpreted "
              "control flow defeats the closure analysis.",
        tags=("interpreter",),
    ))


_register()
