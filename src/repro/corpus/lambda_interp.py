"""The Fig. 2 checked λ-calculus implementation, transcribed.

``comp-lc`` compiles a λ-term to a procedure over environments; the
compilation is structurally recursive (easily monitored), while the
*compiled result* is a tangle of closures whose termination depends on the
term.  Dynamic monitoring lets ``c1`` run to completion and stops ``c2``.
"""

from repro.corpus.registry import DivergingProgram, register_diverging

LAMBDA_INTERP_PRELUDE = """
(define comp-lc
  (terminating/c
   (lambda (e)
     (match e
       [`(λ (,x) ,b)
        (let ([c (comp-lc b)])
          (lambda (r) (lambda (z) (c (hash-set r x z)))))]
       [`(,e1 ,e2)
        (let ([c1 (comp-lc e1)] [c2 (comp-lc e2)])
          (lambda (r) ((c1 r) (c2 r))))]
       [(? symbol? x) (lambda (r) (hash-ref r x))]))
   "comp-lc"))
"""

# (c1 (hash)) terminates: ((λ (x) (x x)) (λ (y) y)) reduces to λy.y.
FIG2_OK = LAMBDA_INTERP_PRELUDE + """
(define c1
  (terminating/c (comp-lc '((λ (x) (x x)) (λ (y) y))) "c1"))
(procedure? (c1 (hash)))
"""

# (c2 (hash)) diverges: Ω.  The compiled closure for (y y) keeps applying
# itself to an identical argument; the monitor stops it.
FIG2_LOOPS = LAMBDA_INTERP_PRELUDE + """
(define c2
  (terminating/c (comp-lc '((λ (x) (x x)) (λ (y) (y y)))) "c2"))
(c2 (hash))
"""

register_diverging(DivergingProgram(
    name="fig2-omega",
    source=FIG2_LOOPS,
    notes="Fig. 2 verbatim: the compiled Ω term; blame lands on c2.",
))
