"""The parser-combinator benchmark: a recursive-descent arithmetic
grammar built from combinators, with the factor → expr back-edge tied
by ``delay``/``force`` — the workload that pins the new promise
support end-to-end.

A parser is a closure from a token list to ``(cons value rest)`` or
``#f``.  The grammar closures are each constructed *once* (the three
``delay``ed definitions force to a single closure per level), so
under the monitor's per-closure identity keying every recursive
re-entry is a genuine grammar cycle — and each such cycle consumes at
least one token before re-entering (``factor`` re-enters ``expr``
only after ``lp``; ``chain-more`` re-enters a parser only after its
operator token), so the input position descends strictly and the
monitor stays silent.  Forcing never nests inside another ``force``'s
dynamic extent (the forced parser is applied *after* ``force``
returns), so the prelude ``force`` closure never composes with
itself.

Left-recursion is exactly what this discipline forbids: an
``expr := expr '+' term`` grammar would re-enter the same closure on
equal input — the size-change monitor flags it as the potential
divergence it is.  The iterative ``chainl`` shape is the standard
combinator-library answer, and here the monitor *enforces* it.
"""

from repro.corpus.registry import CorpusProgram, register_extra

PARSERS_SOURCE = """
(define (p-tok t)
  (lambda (in)
    (if (null? in)
        #f
        (if (eqv? (car in) t) (cons t (cdr in)) #f))))

(define (p-num)
  (lambda (in)
    (if (null? in)
        #f
        (if (number? (car in)) (cons (car in) (cdr in)) #f))))

(define (p-alt p q)
  (lambda (in)
    (let ([r ((force p) in)])
      (if r r ((force q) in)))))

(define (p-seq3 p q s combine)
  (lambda (in)
    (let ([r1 ((force p) in)])
      (if r1
          (let ([r2 ((force q) (cdr r1))])
            (if r2
                (let ([r3 ((force s) (cdr r2))])
                  (if r3
                      (cons (combine (car r1) (car r2) (car r3)) (cdr r3))
                      #f))
                #f))
          #f))))

(define (p-chainl p op combine)
  (lambda (in)
    (let ([r ((force p) in)])
      (if r (chain-more p op combine (car r) (cdr r)) #f))))

(define (chain-more p op combine acc rest)
  (if (null? rest)
      (cons acc rest)
      (if (eqv? (car rest) op)
          (let ([r ((force p) (cdr rest))])
            (if r
                (chain-more p op combine (combine acc (car r)) (cdr r))
                (cons acc rest)))
          (cons acc rest))))

(define factor
  (delay (p-alt (p-num)
                (p-seq3 (p-tok 'lp) expr (p-tok 'rp)
                        (lambda (a b c) b)))))
(define term (delay (p-chainl factor '* (lambda (a b) (* a b)))))
(define expr (delay (p-chainl term '+ (lambda (a b) (+ a b)))))

(define (parse-arith tokens)
  (let ([r ((force expr) tokens)])
    (if (if r (null? (cdr r)) #f)
        (car r)
        'parse-error)))

(list (parse-arith '(lp 1 + 2 * lp 3 + 4 rp + 5 rp))
      (parse-arith '(7 * 3 + 1))
      (parse-arith '(lp 1 + 2)))
"""

register_extra(CorpusProgram(
    name="parsers",
    source=PARSERS_SOURCE,
    expected="(20 22 parse-error)",
    paper=("", "", "", "", ""),
    ours_static=None,
    entry=None,
    notes="Recursive-descent arithmetic via parser combinators; the "
          "factor→expr grammar back-edge is a delay/force promise.  "
          "Every grammar cycle consumes a token before re-entry, so the "
          "input list descends strictly under per-closure keying.",
    tags=("extra", "parsers", "promises", "higher-order"),
))
