"""Classic workloads beyond the Table 1 rows: search, unification,
sieves, Church numerals, memoization — the idioms §5.1.1's "larger Scheme
benchmarks" gesture at.

Each program is chosen to exercise a distinct monitoring story:

* ``queens`` — three mutually recursive loops, one of which carries an
  *ascending* distance counter that is harmless because a sibling
  argument descends strictly;
* ``unify`` — structural recursion over two term trees threading a
  substitution;
* ``sieve`` — descent via a *computed* list (each sieve pass returns a
  provably-smaller-at-run-time but statically-opaque list);
* ``church`` — the §2.2 story at scale: towers of distinct closures are
  fine under identity keying because SCP is only checked per closure;
* ``fib-memo`` — a growing hash-map accumulator threaded through an
  otherwise-descending recursion;
* ``graph-reach`` (conservative) — worklist search whose frontier grows:
  terminating, flagged by SCT, repaired by the classic
  ``(unvisited, frontier-length)`` measure.
"""

from repro.corpus.registry import (
    CorpusProgram,
    register_conservative,
    register_extra,
)
from repro.values.values import Pair

register_extra(CorpusProgram(
    name="queens",
    source="""
(define (queens n) (place n n '()))
(define (place k n placed)
  (if (zero? k) 1 (try k n n placed)))
(define (try k col n placed)
  (cond [(zero? col) 0]
        [(safe? col 1 placed)
         (+ (place (- k 1) n (cons col placed))
            (try k (- col 1) n placed))]
        [else (try k (- col 1) n placed)]))
(define (safe? col d placed)
  (cond [(null? placed) #t]
        [(= (car placed) col) #f]
        [(= (car placed) (+ col d)) #f]
        [(= (car placed) (- col d)) #f]
        [else (safe? col (+ d 1) (cdr placed))]))
(queens 5)
""",
    expected="10",
    paper=("", "", "", "", ""),
    ours_static=False,
    entry=("place", ["nat", "nat", "list"]),
    notes="n-queens by backtracking.  safe?'s diagonal distance d ascends, "
          "but `placed` descends strictly on every recursive call, so every "
          "idempotent composition keeps a strict self-arc dynamically.  "
          "Statically the try→place→try cycle resets col to the opaque n "
          "and the summarized placed loses its list shape, so the verifier "
          "stays (correctly conservative) unknown.",
    tags=("extra", "search"),
))

register_extra(CorpusProgram(
    name="unify",
    source="""
;; Terms: (quote x) variables as (v . name), constants as symbols,
;; applications as lists (f arg ...).  Substitution: assoc list.
(define (var? t) (and (pair? t) (eq? (car t) 'v)))
(define (walk t sub)
  (if (var? t)
      (let ([b (assoc (cdr t) sub)])
        (if b (walk (cdr b) sub) t))
      t))
(define (unify t1 t2 sub)
  (let ([a (walk t1 sub)] [b (walk t2 sub)])
    (cond [(equal? a b) sub]
          [(var? a) (cons (cons (cdr a) b) sub)]
          [(var? b) (cons (cons (cdr b) a) sub)]
          [(and (pair? a) (pair? b) (= (length a) (length b)))
           (unify-args a b sub)]
          [else #f])))
(define (unify-args as bs sub)
  (cond [(not sub) #f]
        [(null? as) sub]
        [else (unify-args (cdr as) (cdr bs)
                          (unify (car as) (car bs) sub))]))
(define s
  (unify '(f (v . x) (g b (v . y)))
         '(f a (g (v . z) c))
         '()))
(list (cdr (assoc 'x s)) (cdr (assoc 'y s)) (cdr (assoc 'z s)))
""",
    expected="(a c b)",
    paper=("", "", "", "", ""),
    ours_static=False,
    entry=None,
    notes="First-order unification with triangular substitutions.  Every "
          "recursive unify call descends structurally into the terms; walk "
          "descends through the (acyclic) substitution chain.",
    tags=("extra", "symbolic"),
))

register_extra(CorpusProgram(
    name="sieve",
    source="""
(define (count-down n)
  (if (< n 2) '() (cons n (count-down (- n 1)))))
(define (remove-multiples p l)
  (cond [(null? l) '()]
        [(zero? (modulo (car l) p)) (remove-multiples p (cdr l))]
        [else (cons (car l) (remove-multiples p (cdr l)))]))
(define (sieve l)
  (if (null? l) '()
      (cons (car l) (sieve (remove-multiples (car l) (cdr l))))))
(sieve (reverse (count-down 30)))
""",
    expected="(2 3 5 7 11 13 17 19 23 29)",
    paper=("", "", "", "", ""),
    ours_static=False,
    entry=("sieve", ["list"]),
    notes="Sieve of Eratosthenes.  The recursive argument is the *result* "
          "of remove-multiples — smaller at run time on every call (the "
          "monitor sees the memoized sizes), but an opaque summary "
          "statically, so the dynamic/static gap is exactly the paper's "
          "point about run-time information (§2.1).",
    tags=("extra", "lists"),
))

register_extra(CorpusProgram(
    name="church",
    source="""
(define zero (lambda (f) (lambda (x) x)))
(define (succ n) (lambda (f) (lambda (x) (f ((n f) x)))))
(define (plus m n) (lambda (f) (lambda (x) ((m f) ((n f) x)))))
(define (times m n) (lambda (f) (lambda (x) ((m (n f)) x))))
(define (from-int k) (if (zero? k) zero (succ (from-int (- k 1)))))
(define (to-int n) ((n (lambda (i) (+ i 1))) 0))
(to-int (times (from-int 3) (plus (from-int 2) (from-int 2))))
""",
    expected="12",
    paper=("", "", "", "", ""),
    ours_static=False,
    entry=None,
    notes="Church arithmetic: every succ layer is a distinct closure, so "
          "identity keying never conflates them (§2.2's 'closures are "
          "finite up to the loop that built them').  The add1 worker is "
          "applied with ascending integers, but successive applications "
          "are siblings, never nested, so no graph is ever built for it.",
    tags=("extra", "higher-order"),
))

register_extra(CorpusProgram(
    name="fib-memo",
    source="""
(define (fib n table)
  (cond [(< n 2) (cons n table)]
        [(hash-has-key? table n) (cons (hash-ref table n 0) table)]
        [else
         (let* ([r1 (fib (- n 1) table)]
                [r2 (fib (- n 2) (cdr r1))]
                [v (+ (car r1) (car r2))])
           (cons v (hash-set (cdr r2) n v)))]))
(car (fib 30 (hash)))
""",
    expected="832040",
    paper=("", "", "", "", ""),
    ours_static=True,
    entry=("fib", ["nat", "any"]),
    notes="Hash-memoized Fibonacci: the memo table grows monotonically "
          "while n descends — growth in a non-descending argument costs "
          "nothing (arcs are only ever evidence *for* termination).",
    tags=("extra", "hash", "accumulator"),
))


def _llen(v) -> int:
    """Length of an object-language list (for measures)."""
    n = 0
    while type(v) is Pair:
        n += 1
        v = v.cdr
    return n


_GRAPH_NODES = 6

register_conservative(CorpusProgram(
    name="graph-reach",
    source="""
(define graph '((a b c) (b d) (c d) (d e) (e) (f a)))
(define (reach frontier visited)
  (cond [(null? frontier) visited]
        [(memq (car frontier) visited) (reach (cdr frontier) visited)]
        [else (reach (append (cdr (assoc (car frontier) graph))
                             (cdr frontier))
                     (cons (car frontier) visited))]))
(length (reach '(a) '()))
""",
    expected="5",
    paper=("", "", "", "", ""),
    ours_static=False,
    entry=None,
    measures={"reach": lambda a: (_GRAPH_NODES - _llen(a[1]), _llen(a[0]))},
    notes="Worklist reachability TERMINATES (visited is bounded by the "
          "node set) but the frontier grows when a node is expanded, so "
          "no argument descends — SCT conservatively flags it.  The "
          "classic repair is the measure (unvisited-count, |frontier|): "
          "expansion shrinks the first component, skipping shrinks the "
          "second while preserving the first.",
    tags=("conservative", "worklist"),
))
