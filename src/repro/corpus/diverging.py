"""Diverging programs (§5.1.2): mostly single-bug mutations of correct
corpus programs, plus the paper's famous ``nfa`` bug, verbatim.

Every one of these must (a) time out under the standard semantics and
(b) be stopped with ``errorSC`` by the monitor, early.
"""

from repro.corpus.registry import DivergingProgram, register_diverging

register_diverging(DivergingProgram(
    name="buggy-ack",
    source="""
(define (ack m n)
  (cond [(= 0 m) (+ 1 n)]
        [(= 0 n) (ack (- m 1) 1)]
        [else (ack m (ack m (- n 1)))]))
(ack 2 3)
""",
    notes="§2.1: the outer recursive call keeps m instead of m-1.",
))

register_diverging(DivergingProgram(
    name="buggy-nfa",
    source="""
(define (state1 input)
  (and (not (null? input))
       (or (and (char=? (car input) #\\a) (state1 (cdr input)))
           (and (char=? (car input) #\\c) (state1 input))
           (state2 input))))
(define (state2 input)
  (and (not (null? input))
       (char=? (car input) #\\b)
       (state3 (cdr input))))
(define (state3 input)
  (and (not (null? input))
       (char=? (car input) #\\c)
       (state4 (cdr input))))
(define (state4 input)
  (and (not (null? input))
       (char=? (car input) #\\d)
       (null? (cdr input))))
(state1 (string->list "cbcd"))
""",
    notes="§5.1.2 verbatim: the (a|c)* state recurs on `input` instead of "
          "`(cdr input)` on the c branch.  The historical benchmark input "
          "a…bc never reached the bug; any input with a 'c' before 'b' "
          "diverges.",
))

register_diverging(DivergingProgram(
    name="rev-no-descent",
    source="""
(define (rev l) (r1 l '()))
(define (r1 l a)
  (if (null? l) a (r1 l (cons (car l) a))))
(rev '(1 2 3))
""",
    notes="sct-1 with the cdr dropped: l never shrinks while a grows.",
))

register_diverging(DivergingProgram(
    name="count-up",
    source="""
(define (s n) (if (= n 0) 0 (s (+ n 1))))
(s 1)
""",
    notes="Counting away from the base case.",
))

register_diverging(DivergingProgram(
    name="mutual-loop",
    source="""
(define (ping x) (pong x))
(define (pong x) (ping x))
(ping 'ball)
""",
    notes="Mutual recursion with no descent anywhere.",
))

register_diverging(DivergingProgram(
    name="omega",
    source="((lambda (x) (x x)) (lambda (x) (x x)))",
    notes="The untyped λ-calculus classic; caught because the recurring "
          "closure is re-applied to the identical (incomparable) closure.",
))

register_diverging(DivergingProgram(
    name="cps-loop",
    source="""
(define (go k) (go (lambda (n) (k n))))
(go (lambda (x) x))
""",
    notes="CPS loop growing a closure chain: closures are incomparable, so "
          "the graph between successive calls to go is empty — a violation.",
))

register_diverging(DivergingProgram(
    name="grow-list",
    source="""
(define (f l) (f (cons 1 l)))
(f '())
""",
    notes="Structural growth: no arc is ever recorded.",
))

register_diverging(DivergingProgram(
    name="buggy-merge",
    source="""
(define (merge2 xs ys)
  (cond [(null? xs) ys]
        [(null? ys) xs]
        [(< (car xs) (car ys)) (cons (car xs) (merge2 (cdr xs) ys))]
        [else (cons (car ys) (merge2 xs ys))]))
(merge2 '(1 3 5) '(2 4 6))
""",
    notes="lh-merge with (cdr ys) dropped in the else branch.",
))

register_diverging(DivergingProgram(
    name="quicksort-pivot",
    source="""
(define (qs l)
  (if (null? l) '()
      (append (qs (filter (lambda (x) (< x (car l))) l))
              (qs (filter (lambda (x) (>= x (car l))) l)))))
(qs '(3 1 2))
""",
    notes="Quicksort keeping the pivot in the upper partition: the upper "
          "partition of (3) at pivot 3 is (3) again.  A classic "
          "real-world nontermination bug.",
))

register_diverging(DivergingProgram(
    name="buggy-unify-walk",
    source="""
(define (var? t) (and (pair? t) (eq? (car t) 'v)))
(define (walk t sub)
  (if (var? t)
      (let ([b (assoc (cdr t) sub)])
        (if b (walk (cdr b) sub) t))
      t))
(walk '(v . x) '((x . (v . y)) (y . (v . x))))
""",
    notes="Unification without an occurs check: a cyclic substitution "
          "(x ↦ y, y ↦ x) makes walk chase the chain forever.  The second "
          "revisit of (v . x) carries an identical sub — caught at once.",
))

register_diverging(DivergingProgram(
    name="buggy-sieve",
    source="""
(define (count-down n)
  (if (< n 2) '() (cons n (count-down (- n 1)))))
(define (remove-multiples p l)
  (cond [(null? l) '()]
        [(zero? (modulo (car l) p)) (remove-multiples p (cdr l))]
        [else (cons (car l) (remove-multiples p l))]))
(define (sieve l)
  (if (null? l) '()
      (cons (car l) (sieve (remove-multiples (car l) (cdr l))))))
(sieve (reverse (count-down 10)))
""",
    notes="remove-multiples forgets (cdr l) on the keep branch: the first "
          "non-multiple is reconsidered forever with an identical list — "
          "the canonical copy-paste bug, stopped on its second call.",
))

register_diverging(DivergingProgram(
    name="buggy-reach",
    source="""
(define graph '((a b) (b a)))
(define (reach frontier visited)
  (cond [(null? frontier) visited]
        [(memq (car frontier) visited) (reach (cdr frontier) visited)]
        [else (reach (append (cdr (assoc (car frontier) graph))
                             (cdr frontier))
                     visited)]))
(length (reach '(a) '()))
""",
    notes="Worklist search that forgets to mark nodes visited: the a↔b "
          "cycle regenerates the frontier forever.  Even the repaired "
          "measure could not save this one — visited never grows.",
))
