"""The interpreter-tower benchmark: a step-indexed mini-Scheme
evaluator (written in the object language, closures represented as
vectors) running a *self-applying* evaluator for a smaller arithmetic
language — three levels of interpretation in one workload.

Why this tower is monitorable where a naive ``eval`` is not: every
function in the meta-level cycle (``mini-eval`` / ``eval-args`` /
``mini-apply``) threads a step index as parameter 0 and passes
``(- k 1)`` on every call, so each size-change graph the monitor
records carries the strict arc ``0 ↓ 0`` and every composition
retains it — the step-indexed-semantics trick that makes a total
evaluator out of a partial one.  Contrast with the ``scheme``
benchmark (:mod:`repro.corpus.interpreter`), which instead earns
monitorability structurally by compiling to closures; the two
benchmarks pin both known answers to "how do you run an interpreter
under a termination monitor?".

The interpreted subset: numbers, booleans, symbols, ``quote``,
``if``, fixed-arity ``lambda``, application, and primitives bound in
an initial environment.  Closures are ``(vector 'clo params body
env)`` — the vector pins the new vector support end-to-end (size
tracking, ``equal?``, both machines' printing).  The level-1 program
is an evaluator ``ev`` that ties recursion by self-application
``(ev ev expr)``; the level-2 program is arithmetic over
``add``/``dec``/``ifz``.
"""

from repro.corpus.registry import CorpusProgram, register_extra

TOWER_SOURCE = """
(define (env-get r x)
  (if (null? r)
      (list 'unbound x)
      (if (eq? (car (car r)) x)
          (cadr (car r))
          (env-get (cdr r) x))))

(define (env-bind r ps vs)
  (if (null? ps)
      r
      (env-bind (cons (list (car ps) (car vs)) r) (cdr ps) (cdr vs))))

(define (prim-apply f vs)
  (if (eq? f 'add) (+ (car vs) (cadr vs))
  (if (eq? f 'sub) (- (car vs) (cadr vs))
  (if (eq? f 'mul) (* (car vs) (cadr vs))
  (if (eq? f 'zerop) (zero? (car vs))
  (if (eq? f 'nump) (number? (car vs))
  (if (eq? f 'eqp) (eq? (car vs) (cadr vs))
  (if (eq? f 'kar) (car (car vs))
  (if (eq? f 'kdr) (cdr (car vs))
      (list 'unknown-prim f))))))))))

(define (mini-eval k e r)
  (if (zero? k)
      'out-of-fuel
      (if (number? e) e
      (if (boolean? e) e
      (if (symbol? e) (env-get r e)
      (if (eq? (car e) 'quote) (cadr e)
      (if (eq? (car e) 'if)
          (if (mini-eval (- k 1) (cadr e) r)
              (mini-eval (- k 1) (caddr e) r)
              (mini-eval (- k 1) (cadddr e) r))
      (if (eq? (car e) 'lambda)
          (vector 'clo (cadr e) (caddr e) r)
          (mini-apply (- k 1)
                      (mini-eval (- k 1) (car e) r)
                      (eval-args (- k 1) (cdr e) r))))))))))

(define (eval-args k es r)
  (if (zero? k)
      '()
      (if (null? es)
          '()
          (cons (mini-eval (- k 1) (car es) r)
                (eval-args (- k 1) (cdr es) r)))))

(define (mini-apply k f vs)
  (if (zero? k)
      'out-of-fuel
      (if (vector? f)
          (mini-eval (- k 1)
                     (vector-ref f 2)
                     (env-bind (vector-ref f 3) (vector-ref f 1) vs))
          (prim-apply f vs))))

(define prims
  '((add add) (sub sub) (mul mul) (zerop zerop) (nump nump)
    (eqp eqp) (kar kar) (kdr kdr)))

(mini-eval 100000
           '((lambda (ev)
               (ev ev (quote (add (add 1 (dec 3))
                                  (ifz (dec 1) (dec 9) 4)))))
             (lambda (self e)
               (if (nump e)
                   e
                   (if (eqp (kar e) (quote add))
                       (add (self self (kar (kdr e)))
                            (self self (kar (kdr (kdr e)))))
                       (if (eqp (kar e) (quote dec))
                           (sub (self self (kar (kdr e))) 1)
                           (if (zerop (self self (kar (kdr e))))
                               (self self (kar (kdr (kdr e))))
                               (self self (kar (kdr (kdr (kdr e)))))))))))
           prims)
"""

register_extra(CorpusProgram(
    name="tower",
    source=TOWER_SOURCE,
    expected="11",
    paper=("", "", "", "", ""),
    ours_static=True,
    entry=("mini-eval", ["nat", "any", "any"]),
    notes="Step-indexed mini-Scheme evaluator (vector closures) running "
          "a self-applying evaluator for an add/dec/ifz language.  The "
          "threaded step index gives both the monitor and the verifier "
          "a strict 0↓0 arc on every meta-level cycle — the step-"
          "indexed-semantics trick makes an interpreter, the hostile "
          "case for SCT, fully verifiable.",
    tags=("extra", "interpreter", "vectors", "tower"),
))
