"""Table 1 programs (all rows except ``scheme``, which lives in
:mod:`repro.corpus.interpreter`).

``paper`` tuples follow Table 1 column order:
(Dyn., Static, Liquid Haskell, Isabelle, ACL2) with the paper's annotations
(``A`` needs annotations, ``O`` custom order, ``R`` rewritten,
``-T`` not typable, ``-H`` no higher-order functions).
"""

from repro.corpus.registry import CorpusProgram, register

# -- size-change termination, first order (Lee–Jones–Ben-Amram 2001) -----------

register(CorpusProgram(
    name="sct-1",
    source="""
(define (rev l) (r1 l '()))
(define (r1 l a)
  (if (null? l) a (r1 (cdr l) (cons (car l) a))))
(rev '(1 2 3 4 5))
""",
    expected="(5 4 3 2 1)",
    paper=("Y", "Y", "Y-R", "Y", "Y"),
    ours_static=True,
    entry=("r1", ["list", "list"]),
    notes="LJB Example 1: accumulating reverse; descent on l while a grows.",
    tags=("sct", "first-order", "lists"),
))

register(CorpusProgram(
    name="sct-2",
    source="""
(define (f2 i x)
  (if (null? i) x (g2 (cdr i) x i)))
(define (g2 a b c)
  (f2 a (cons b c)))
(f2 '(1 2 3) 0)
""",
    expected="(((0 1 2 3) 2 3) 3)",
    paper=("Y", "Y", "N", "Y-R", "Y"),
    ours_static=True,
    entry=("f2", ["list", "any"]),
    notes="LJB Example 2 (reconstructed): indirect recursion f→g→f with "
          "descent through g's first parameter.",
    tags=("sct", "first-order", "indirect"),
))

register(CorpusProgram(
    name="sct-3",
    source="""
(define (ack m n)
  (cond [(= 0 m) (+ 1 n)]
        [(= 0 n) (ack (- m 1) 1)]
        [else (ack (- m 1) (ack m (- n 1)))]))
(ack 2 3)
""",
    expected="9",
    paper=("Y", "Y", "Y-A", "Y", "Y"),
    ours_static=True,
    entry=("ack", ["nat", "nat"]),
    result_kinds={"ack": "nat"},
    notes="The paper's running example (§2.1, §4.2); the result kind is "
          "ack's contract range, which the nested call needs (§4.2).",
    tags=("sct", "first-order", "nested"),
))

register(CorpusProgram(
    name="sct-4",
    source="""
(define (p4 m n r)
  (cond [(> r 0) (p4 m (- r 1) n)]
        [(> n 0) (p4 r (- n 1) m)]
        [else m]))
(p4 2 3 4)
""",
    expected="2",
    paper=("Y", "Y", "N", "Y", "Y"),
    ours_static=True,
    entry=("p4", ["nat", "nat", "nat"]),
    notes="LJB Example 4 (reconstructed): descent through permuted "
          "parameters; no single parameter decreases on every call.",
    tags=("sct", "first-order", "permuted"),
))

register(CorpusProgram(
    name="sct-5",
    source="""
(define (f5 x y)
  (cond [(null? y) x]
        [(null? x) (f5 y (cdr y))]
        [else (f5 (cdr x) y)]))
(f5 '(1 2) '(3 4 5))
""",
    expected="(5)",
    paper=("Y", "Y", "N", "Y", "Y"),
    ours_static=True,
    entry=("f5", ["list", "list"]),
    notes="LJB Example 5 (reconstructed): parameter swapping with descent "
          "on alternating arguments.",
    tags=("sct", "first-order", "swap"),
))

register(CorpusProgram(
    name="sct-6",
    source="""
(define (f6 a b)
  (if (null? b) (g6 a '()) (f6 (cons (car b) a) (cdr b))))
(define (g6 c d)
  (if (null? c) d (g6 (cdr c) (cons (car c) d))))
(f6 '(1 2) '(3 4))
""",
    expected="(2 1 3 4)",
    paper=("Y", "Y", "N", "Y", "Y"),
    ours_static=True,
    entry=("f6", ["list", "list"]),
    notes="LJB Example 6 (reconstructed): late-starting descent — the first "
          "loop grows a while consuming b, then a second loop consumes.",
    tags=("sct", "first-order", "phases"),
))

# -- higher order ---------------------------------------------------------------

register(CorpusProgram(
    name="ho-sc-ack",
    source="""
(define Y2
  (lambda (f)
    ((lambda (x) (f (lambda (a b) ((x x) a b))))
     (lambda (x) (f (lambda (a b) ((x x) a b)))))))
(define ack-y
  (Y2 (lambda (ack)
        (lambda (m n)
          (cond [(= m 0) (+ n 1)]
                [(= n 0) (ack (- m 1) 1)]
                [else (ack (- m 1) (ack m (- n 1)))])))))
(ack-y 2 2)
""",
    expected="7",
    paper=("Y", "N", "-T", "-T", "-H"),
    ours_static=False,
    entry=("ack-y", ["nat", "nat"]),
    result_kinds={"ack-y": "nat"},
    notes="Ackermann through the Y combinator: self-application is "
          "untypable in LH/Isabelle and defeats static closure reasoning; "
          "dynamically every eta-wrapper closure descends on (m, n).",
    tags=("higher-order", "y-combinator"),
))

register(CorpusProgram(
    name="ho-sct-fg",
    source="""
(define (fg g x)
  (if (zero? x) (g x) (fg (lambda (y) (g (+ x y))) (- x 1))))
(fg (lambda (y) y) 6)
""",
    expected="21",
    paper=("Y", "Y", "Y", "Y", "-H"),
    ours_static=True,
    entry=("fg", ["fun", "nat"]),
    notes="Sereni–Jones-style closure accumulation (reconstructed): the "
          "continuation argument grows while x descends.",
    tags=("higher-order", "closures"),
))

register(CorpusProgram(
    name="ho-sct-fold",
    source="""
(define (fold2 f z l)
  (if (null? l) z (f (car l) (fold2 f z (cdr l)))))
(fold2 (lambda (a b) (+ a b)) 0 '(1 2 3 4 5))
""",
    expected="15",
    paper=("Y", "Y", "Y-A", "Y", "-H"),
    ours_static=True,
    entry=("fold2", ["fun", "any", "list"]),
    notes="Right fold with an unknown function argument: descent on l; the "
          "callback is opaque to the verifier.",
    tags=("higher-order", "fold"),
))

# -- Isabelle (Krauss 2007) ------------------------------------------------------

register(CorpusProgram(
    name="isabelle-perm",
    source="""
(define (perm xs ys)
  (cond [(null? xs) ys]
        [(null? ys) xs]
        [else (perm (cdr ys) (cdr xs))]))
(perm '(1 2 3 4) '(5 6 7))
""",
    expected="(4)",
    paper=("Y", "Y", "N", "Y", "Y"),
    ours_static=True,
    entry=("perm", ["list", "list"]),
    notes="Krauss-style permuted descent (reconstructed): both arguments "
          "swap and shrink; no lexicographic order on the raw parameters.",
    tags=("isabelle", "swap"),
))

register(CorpusProgram(
    name="isabelle-f",
    source="""
(define (f-half x)
  (if (<= x 0) 0 (+ 1 (f-half (quotient x 2)))))
(f-half 100)
""",
    expected="7",
    paper=("Y", "N", "N", "Y", "Y"),
    ours_static=False,
    entry=("f-half", ["nat"]),
    notes="Reconstructed: descent through integer division.  The run-time "
          "monitor sees |x/2| < |x|; the symbolic verifier keeps quotient "
          "uninterpreted (as the paper's tool effectively did) and fails.",
    tags=("isabelle", "division"),
))

register(CorpusProgram(
    name="isabelle-foo",
    source="""
(define (foo x y)
  (if (zero? y) x (foo (* 2 x) (quotient y 3))))
(foo 1 27)
""",
    expected="16",
    paper=("Y", "N", "N", "Y", "Y"),
    ours_static=False,
    entry=("foo", ["nat", "nat"]),
    notes="Reconstructed: x doubles while y shrinks by division — the only "
          "descending argument moves through an uninterpreted operation.",
    tags=("isabelle", "division"),
))

register(CorpusProgram(
    name="isabelle-bar",
    source="""
(define (bar x y)
  (cond [(zero? y) x]
        [(even? y) (bar (* x x) (quotient y 2))]
        [else (bar x (- y 1))]))
(bar 2 10)
""",
    expected="256",
    paper=("Y", "N", "N", "Y", "Y"),
    ours_static=False,
    entry=("bar", ["nat", "nat"]),
    notes="Reconstructed fast-exponentiation skeleton: the even branch "
          "descends only through quotient, so one call-graph edge carries "
          "no provable arc and the static SCP check fails.",
    tags=("isabelle", "division"),
))

register(CorpusProgram(
    name="isabelle-poly",
    source="""
(define (poly x y)
  (if (<= y 0) x
      (poly (+ x 1) (quotient (* y y) (+ y 1)))))
(poly 0 10)
""",
    expected="10",
    paper=("Y", "N", "N", "N", "N"),
    ours_static=False,
    entry=("poly", ["nat", "nat"]),
    notes="Reconstructed: y ↦ ⌊y²/(y+1)⌋ = y−1 dynamically, but the descent "
          "is hidden behind non-linear arithmetic — every tool in Table 1 "
          "fails it statically; only run-time monitoring sees the descent.",
    tags=("isabelle", "nonlinear"),
))

# -- ACL2 (Manolios–Vroon 2006) ---------------------------------------------------

register(CorpusProgram(
    name="acl2-fig-2",
    source="""
(define (fig2 x)
  (cond [(= x 3) 0]
        [(< x 3) (fig2 (+ x 1))]
        [else (fig2 (- x 1))]))
(fig2 0)
""",
    expected="0",
    paper=("Y-O", "N", "N", "N", "N"),
    ours_static=False,
    entry=("fig2", ["nat"]),
    measures={"fig2": lambda args: (abs(args[0] - 3),)},
    notes="Reconstructed: x converges to 3 from both sides.  The default "
          "|·| order rejects the counting-up phase; the paper's 'custom "
          "partial order' hook (our measure |x−3|) accepts it.",
    tags=("acl2", "custom-order"),
))

register(CorpusProgram(
    name="acl2-fig-6",
    source="""
(define (fig6-f x y)
  (if (zero? x) y (fig6-g (- x 1) y)))
(define (fig6-g u v)
  (fig6-f u (+ v 1)))
(fig6-f 5 0)
""",
    expected="5",
    paper=("Y", "Y", "N", "N", "N"),
    ours_static=True,
    entry=("fig6-f", ["nat", "nat"]),
    notes="Reconstructed calling-context-graph example: mutual recursion "
          "where descent crosses the f→g→f cycle.",
    tags=("acl2", "mutual"),
))

register(CorpusProgram(
    name="acl2-fig-7",
    source="""
(define (fig7 n)
  (if (<= n 1) n (fig7 (- n (+ 1 (remainder n 2))))))
(fig7 17)
""",
    expected="1",
    paper=("Y", "N", "N", "N", "Y"),
    ours_static=False,
    entry=("fig7", ["nat"]),
    notes="Reconstructed: steps of 1 or 2 chosen by parity.  The step size "
          "goes through remainder, which the symbolic engine keeps "
          "uninterpreted, so no strict arc is provable.",
    tags=("acl2", "parity"),
))

# -- Liquid Haskell -----------------------------------------------------------------

register(CorpusProgram(
    name="lh-gcd",
    source="""
(define (gcd2 a b)
  (if (zero? b) a (gcd2 b (modulo a b))))
(gcd2 48 18)
""",
    expected="6",
    paper=("Y", "N", "Y", "Y", "Y"),
    ours_static=False,
    entry=("gcd2", ["nat", "nat"]),
    notes="Euclid's algorithm: the monitor observes (mod a b) < b; the "
          "verifier has no modulo theory (matching the paper's N verdict).",
    tags=("lh", "modulo"),
))

register(CorpusProgram(
    name="lh-map",
    source="""
(define (map1 f l)
  (if (null? l) '() (cons (f (car l)) (map1 f (cdr l)))))
(map1 (lambda (x) (* x x)) '(1 2 3 4))
""",
    expected="(1 4 9 16)",
    paper=("Y", "Y", "Y", "Y", "-H"),
    ours_static=True,
    entry=("map1", ["fun", "list"]),
    notes="Structural recursion with an opaque higher-order argument.",
    tags=("lh", "higher-order"),
))

register(CorpusProgram(
    name="lh-merge",
    source="""
(define (merge2 xs ys)
  (cond [(null? xs) ys]
        [(null? ys) xs]
        [(< (car xs) (car ys)) (cons (car xs) (merge2 (cdr xs) ys))]
        [else (cons (car ys) (merge2 xs (cdr ys)))]))
(merge2 '(1 3 5) '(2 4 6))
""",
    expected="(1 2 3 4 5 6)",
    paper=("Y", "Y", "Y-A", "Y", "Y"),
    ours_static=True,
    entry=("merge2", ["list", "list"]),
    notes="Merge of sorted lists: the Ackermann graph pattern on two list "
          "arguments (LH needs an explicit lexicographic annotation).",
    tags=("lh", "lists"),
))

register(CorpusProgram(
    name="lh-range",
    source="""
(define (range2 lo hi)
  (if (>= lo hi) '() (cons lo (range2 (+ lo 1) hi))))
(range2 0 8)
""",
    expected="(0 1 2 3 4 5 6 7)",
    paper=("Y-O", "N", "Y-A", "N", "Y"),
    ours_static=False,
    entry=("range2", ["nat", "nat"]),
    measures={"range2": lambda args: (args[1] - args[0],)},
    notes="Counting up: needs the custom measure hi−lo (the paper's O "
          "annotation) dynamically; statically no argument descends.",
    tags=("lh", "custom-order"),
))

register(CorpusProgram(
    name="lh-tfact",
    source="""
(define (tfact acc n)
  (if (zero? n) acc (tfact (* acc n) (- n 1))))
(tfact 1 10)
""",
    expected="3628800",
    paper=("Y", "Y", "Y", "Y", "Y"),
    ours_static=True,
    entry=("tfact", ["nat", "nat"]),
    notes="Tail-recursive factorial: n descends while the accumulator grows.",
    tags=("lh", "accumulator"),
))

# -- Scheme benchmarks (Gabriel suite and the nfa program) ---------------------------

register(CorpusProgram(
    name="dderiv",
    source="""
(define (dderiv-sum a)
  (list '+ (dderiv (cadr a)) (dderiv (caddr a))))
(define (dderiv-prod a)
  (list '+ (list '* (dderiv (cadr a)) (caddr a))
           (list '* (cadr a) (dderiv (caddr a)))))
(define (dderiv-diff a)
  (list '- (dderiv (cadr a)) (dderiv (caddr a))))
(define dderiv-table
  (hash '+ dderiv-sum '* dderiv-prod '- dderiv-diff))
(define (dderiv a)
  (if (not (pair? a))
      (if (eq? a 'x) 1 0)
      ((hash-ref dderiv-table (car a)) a)))
(dderiv '(+ (* x x) (- x 3)))
""",
    expected="(+ (+ (* 1 x) (* x 1)) (- 1 0))",
    paper=("Y", "Y", "", "", ""),
    ours_static=True,
    entry=("dderiv", ["any"]),
    notes="Gabriel dderiv (adapted): table-driven differentiation — the "
          "verifier case-splits the hash lookup over the concrete table.",
    tags=("gabriel", "dispatch"),
))

register(CorpusProgram(
    name="deriv",
    source="""
(define (deriv a)
  (cond [(not (pair? a)) (if (eq? a 'x) 1 0)]
        [(eq? (car a) '+) (cons '+ (map deriv (cdr a)))]
        [(eq? (car a) '-) (cons '- (map deriv (cdr a)))]
        [(eq? (car a) '*)
         (list '* a (cons '+ (map (lambda (t) (list '/ (deriv t) t)) (cdr a))))]
        [else (error "deriv: no method")]))
(deriv '(+ (* 3 x x) (* a x x) (* b x) 5))
""",
    expected="(+ (* (* 3 x x) (+ (/ 0 3) (/ 1 x) (/ 1 x))) (* (* a x x) (+ (/ 0 a) (/ 1 x) (/ 1 x))) (* (* b x) (+ (/ 0 b) (/ 1 x))) 0)",
    paper=("Y", "N", "", "", ""),
    ours_static=True,
    entry=("deriv", ["any"]),
    notes="Gabriel deriv: n-ary differentiation through map and an escaping "
          "λ.  The paper's tool fails it; ours resolves the concrete "
          "closures through map (recorded as a deviation if it verifies).",
    tags=("gabriel", "higher-order"),
))

register(CorpusProgram(
    name="destruct",
    source="""
(define (destruct l)
  (define cur (box l))
  (define (spin fuel)
    (if (null? (unbox cur))
        '()
        (begin
          (set-box! cur (cdr (unbox cur)))
          (cons fuel (spin (- fuel 1))))))
  (spin (length l)))
(destruct '(a b c d e))
""",
    expected="(5 4 3 2 1)",
    paper=("Y", "N", "", "", ""),
    ours_static=False,
    entry=("destruct", ["list"]),
    notes="Gabriel destruct (adapted to immutable pairs, like the Racket "
          "artifact must): progress lives in a mutated box, so the "
          "verifier cannot relate fuel to the list and fails.",
    tags=("gabriel", "state"),
))

register(CorpusProgram(
    name="div",
    source="""
(define (create-n n)
  (if (zero? n) '() (cons '() (create-n (- n 1)))))
(define (recursive-div2 l)
  (if (null? l) '() (cons (car l) (recursive-div2 (cddr l)))))
(define (iterative-div2 l)
  (let loop ([l l] [a '()])
    (if (null? l) a (loop (cddr l) (cons (car l) a)))))
(+ (length (recursive-div2 (create-n 20)))
   (length (iterative-div2 (create-n 30))))
""",
    expected="25",
    paper=("Y", "Y", "", "", ""),
    ours_static=True,
    entry=("recursive-div2", ["list"]),
    notes="Gabriel div: halving by cddr; both the recursive and the "
          "iterative (named-let) variants.",
    tags=("gabriel", "lists"),
))

register(CorpusProgram(
    name="nfa",
    source="""
(define (state1 input)
  (and (not (null? input))
       (or (and (char=? (car input) #\\a) (state1 (cdr input)))
           (and (char=? (car input) #\\c) (state1 (cdr input)))
           (state2 input))))
(define (state2 input)
  (and (not (null? input))
       (char=? (car input) #\\b)
       (state3 (cdr input))))
(define (state3 input)
  (and (not (null? input))
       (char=? (car input) #\\c)
       (state4 (cdr input))))
(define (state4 input)
  (and (not (null? input))
       (char=? (car input) #\\d)
       (null? (cdr input))))
(define (state5 input)
  (and (not (null? input))
       (or (and (char=? (car input) #\\a) (state5 (cdr input)))
           (and (char=? (car input) #\\b) (state6 (cdr input))))))
(define (state6 input)
  (and (not (null? input))
       (char=? (car input) #\\c)
       (null? (cdr input))))
(define (recognize s)
  (let ([l (string->list s)])
    (or (state1 l) (state5 l))))
(recognize "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaabc")
""",
    expected="#t",
    paper=("Y", "Y", "", "", ""),
    ours_static=True,
    entry=("state1", ["list"]),
    notes="The §5.1.2 NFA for ((a|c)*bcd)|(a*bc) with the decades-old bug "
          "FIXED (the buggy original is in the diverging corpus).",
    tags=("gabriel", "nfa"),
))
