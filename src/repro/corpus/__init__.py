"""The evaluation corpus: every program of the paper's Table 1, the
diverging programs of §5.1.2, the Fig. 2 λ-calculus compiler, and the
``scheme`` interpreter benchmark.

Programs whose source is not printed in the paper are behaviourally
faithful reconstructions from the cited origins (Lee–Jones–Ben-Amram 2001,
Sereni–Jones 2005, Krauss 2007, Manolios–Vroon 2006, Liquid Haskell, the
Gabriel suite); each carries a ``notes`` field saying so.
"""

from repro.corpus.registry import (
    CONSERVATIVE,
    EXTRAS,
    REGISTRY,
    CorpusProgram,
    DIVERGING,
    DivergingProgram,
    all_programs,
    conservative_programs,
    diverging_programs,
    extra_programs,
    get_program,
)

# Importing the suites populates the registry.
from repro.corpus import suites  # noqa: E402,F401
from repro.corpus import diverging  # noqa: E402,F401
from repro.corpus import interpreter  # noqa: E402,F401
from repro.corpus import lambda_interp  # noqa: E402,F401
from repro.corpus import extras  # noqa: E402,F401
from repro.corpus import classics  # noqa: E402,F401
from repro.corpus import tower  # noqa: E402,F401
from repro.corpus import parsers  # noqa: E402,F401

__all__ = [
    "REGISTRY",
    "DIVERGING",
    "EXTRAS",
    "CONSERVATIVE",
    "extra_programs",
    "conservative_programs",
    "CorpusProgram",
    "DivergingProgram",
    "all_programs",
    "diverging_programs",
    "get_program",
]
