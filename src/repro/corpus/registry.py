"""Corpus registry: program records and the two global tables."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple


class CorpusProgram:
    """One Table 1 row.

    * ``source`` — program text ending in a top-level call (the dynamic
      workload).
    * ``expected`` — external form (``write_value``) of the expected result.
    * ``paper`` — the verdicts Table 1 reports, in column order
      (dyn, static, liquid-haskell, isabelle, acl2); ``"Y"``/``"N"`` plus
      the paper's annotation letters (``A`` annotations, ``O`` custom
      order, ``R`` rewritten, ``-T``/``-H`` inexpressible).
    * ``ours_static`` — the verdict *our* static verifier is expected to
      produce (pinned by tests; deviations from the paper are listed in
      EXPERIMENTS.md).
    * ``measures`` — custom measures for the dynamic monitor (the ``O``
      rows).
    * ``entry`` — ``(function, [arg-kind, ...])`` for static verification;
      kinds: ``nat`` | ``int`` | ``list`` | ``any`` | ``fun``.
    """

    def __init__(
        self,
        name: str,
        source: str,
        expected: str,
        paper: Tuple[str, str, str, str, str],
        ours_static: Optional[bool],
        entry: Optional[Tuple[str, Sequence[str]]] = None,
        measures: Optional[Dict[str, Callable]] = None,
        result_kinds: Optional[Dict[str, str]] = None,
        notes: str = "",
        tags: Sequence[str] = (),
    ):
        self.name = name
        self.source = source
        self.expected = expected
        self.paper = paper
        self.ours_static = ours_static
        self.entry = entry
        self.measures = measures
        self.result_kinds = result_kinds
        self.notes = notes
        self.tags = tuple(tags)

    @property
    def paper_dyn(self) -> str:
        return self.paper[0]

    @property
    def paper_static(self) -> str:
        return self.paper[1]

    def __repr__(self) -> str:
        return f"CorpusProgram({self.name})"


class DivergingProgram:
    """A §5.1.2 diverging program: the monitor must stop it with errorSC."""

    def __init__(self, name: str, source: str, notes: str = "",
                 measures: Optional[Dict[str, Callable]] = None):
        self.name = name
        self.source = source
        self.notes = notes
        self.measures = measures

    def __repr__(self) -> str:
        return f"DivergingProgram({self.name})"


REGISTRY: Dict[str, CorpusProgram] = {}
DIVERGING: Dict[str, DivergingProgram] = {}

# Table 1 row order, for rendering.
TABLE1_ORDER: List[str] = []

# Extra benchmarks beyond Table 1 ("a collection of larger Scheme
# benchmarks", §5.1.1) and terminating programs the monitor must
# conservatively reject (the §1 "unavoidable wrinkle").
EXTRAS: Dict[str, CorpusProgram] = {}
CONSERVATIVE: Dict[str, CorpusProgram] = {}


def register(program: CorpusProgram) -> CorpusProgram:
    if program.name in REGISTRY:
        raise ValueError(f"duplicate corpus program: {program.name}")
    REGISTRY[program.name] = program
    TABLE1_ORDER.append(program.name)
    return program


def register_extra(program: CorpusProgram) -> CorpusProgram:
    if program.name in EXTRAS:
        raise ValueError(f"duplicate extra program: {program.name}")
    EXTRAS[program.name] = program
    return program


def register_conservative(program: CorpusProgram) -> CorpusProgram:
    if program.name in CONSERVATIVE:
        raise ValueError(f"duplicate conservative program: {program.name}")
    CONSERVATIVE[program.name] = program
    return program


def extra_programs() -> List[CorpusProgram]:
    return list(EXTRAS.values())


def conservative_programs() -> List[CorpusProgram]:
    return list(CONSERVATIVE.values())


def register_diverging(program: DivergingProgram) -> DivergingProgram:
    if program.name in DIVERGING:
        raise ValueError(f"duplicate diverging program: {program.name}")
    DIVERGING[program.name] = program
    return program


def all_programs() -> List[CorpusProgram]:
    return [REGISTRY[name] for name in TABLE1_ORDER]


def diverging_programs() -> List[DivergingProgram]:
    return list(DIVERGING.values())


def get_program(name: str) -> CorpusProgram:
    return REGISTRY[name]
