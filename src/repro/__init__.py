"""``repro`` — Size-Change Termination as a Contract.

A Python reproduction of Nguyễn, Gilray, Tobin-Hochstadt and Van Horn,
*"Size-Change Termination as a Contract: Dynamically and Statically
Enforcing Termination for Higher-Order Programs"* (PLDI 2019).

Three front doors:

* **Python decorators** — :func:`repro.pyterm.terminating` (and the
  contract combinators in :mod:`repro.contracts`) enforce size-change
  termination on ordinary Python functions at run time.
* **The embedded language** — :func:`repro.eval.run_source` evaluates a
  Scheme-like language on a proper-tail-call CEK machine under three modes
  (standard / ``terminating/c`` contracts / fully monitored λSCT).
* **The static verifier** — :func:`repro.symbolic.verify_source` proves
  termination by symbolic execution + the size-change principle, with no
  termination-specific abstraction.

See README.md for a tour, DESIGN.md for the system inventory, and
EXPERIMENTS.md for the paper-vs-measured record.
"""

from repro.contracts import arrow, attach, flat, terminating_c, total
from repro.eval.machine import Answer, run_program, run_source
from repro.mc import MCMonitor, verify_source_mc
from repro.pyterm import SizeChangeError, terminating
from repro.sct.errors import SizeChangeViolation
from repro.sct.monitor import SCMonitor
from repro.sct.order import ContainmentOrder, SizeOrder
from repro.symbolic import Verdict, verify_program, verify_source

__version__ = "1.0.0"

__all__ = [
    "terminating",
    "SizeChangeError",
    "SizeChangeViolation",
    "run_source",
    "run_program",
    "Answer",
    "SCMonitor",
    "MCMonitor",
    "SizeOrder",
    "ContainmentOrder",
    "verify_source",
    "verify_program",
    "verify_source_mc",
    "Verdict",
    "flat",
    "arrow",
    "total",
    "attach",
    "terminating_c",
    "__version__",
]
