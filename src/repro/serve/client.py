"""Clients for the ``sized serve`` JSON-lines protocol.

:class:`AsyncServeClient` multiplexes any number of in-flight requests
over one connection (a reader task resolves futures by ``id``) — the
shape ``bench_serve.py`` uses to hold thousands of concurrent requests
open.  :class:`ServeClient` is the synchronous convenience wrapper for
tests and scripts: one request outstanding at a time, so the next line
is always the matching response.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import socket
from typing import Dict, Optional

from repro.serve import protocol


class AsyncServeClient:
    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, tag: str = "c"):
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._tag = tag
        self._waiters: Dict[str, asyncio.Future] = {}
        self._reader_task = asyncio.ensure_future(self._read_loop())
        self._closed = False

    @classmethod
    async def connect(cls, host: str, port: int,
                      tag: str = "c") -> "AsyncServeClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_LINE)
        return cls(reader, writer, tag=tag)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    response = json.loads(line)
                except ValueError:
                    continue
                waiter = self._waiters.pop(response.get("id"), None)
                if waiter is not None and not waiter.done():
                    waiter.set_result(response)
        except (ConnectionError, asyncio.CancelledError, ValueError):
            pass
        finally:
            self._closed = True
            for waiter in self._waiters.values():
                if not waiter.done():
                    waiter.set_exception(
                        ConnectionError("serve connection closed"))
            self._waiters.clear()

    async def request(self, obj: dict,
                      timeout: Optional[float] = None) -> dict:
        if self._closed:
            raise ConnectionError("serve connection closed")
        obj = dict(obj)
        rid = obj.setdefault("id", f"{self._tag}-{next(self._ids)}")
        future = asyncio.get_running_loop().create_future()
        self._waiters[rid] = future
        self._writer.write(protocol.encode(obj))
        await self._writer.drain()
        if timeout is None:
            return await future
        return await asyncio.wait_for(future, timeout)

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except Exception:
            pass


class ServeClient:
    """Blocking, single-in-flight client."""

    def __init__(self, host: str, port: int, timeout: float = 120.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._ids = itertools.count(1)

    def request(self, obj: dict) -> dict:
        obj = dict(obj)
        obj.setdefault("id", f"sync-{next(self._ids)}")
        self._file.write(protocol.encode(obj))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("serve connection closed")
        return json.loads(line)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
