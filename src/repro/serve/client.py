"""Clients for the ``sized serve`` JSON-lines protocol.

:class:`AsyncServeClient` multiplexes any number of in-flight requests
over one connection (a reader task resolves futures by ``id``) — the
shape ``bench_serve.py`` uses to hold thousands of concurrent requests
open.  :class:`ServeClient` is the synchronous convenience wrapper for
tests and scripts: one request outstanding at a time, so the next line
is always the matching response.

Both are *resilient by opt-in*: pass a :class:`RetryPolicy` and
transient service errors (``overloaded``, ``shard-unavailable``,
``worker-crash``, ``connection-lost`` — see
:data:`repro.serve.protocol.RETRYABLE_ERRORS`) are retried with capped
exponential backoff plus jitter, honouring the server's ``retry_after``
hint.  Retries are idempotent by construction: the content-addressed
request key means a resent request either joins the original
execution's batch or re-runs to the same answer.  The jitter RNG is
seedable so the chaos harness's retry schedule is part of its
deterministic fault plan.

Failure behaviour without retries: a dead connection *resolves* every
pending request with a structured ``connection-lost`` error response —
nothing ever hangs forever on a silent EOF.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import random
import socket
import time
from typing import Dict, Optional, Set

from repro.serve import protocol

# ops whose responses are pure functions of the request — safe to resend
_IDEMPOTENT_OPS = frozenset({"run", "verify", "ping", "stats"})


class RetryPolicy:
    """Capped exponential backoff with full jitter.

    ``delay(attempt, hint)`` is ``uniform(0, min(cap, base * 2**attempt))``
    floored at the server's ``retry_after`` hint — the server knows how
    long a breaker stays open or a queue needs to clear better than any
    client-side guess does.
    """

    __slots__ = ("retries", "base", "cap", "_rng")

    def __init__(self, retries: int = 4, base: float = 0.05,
                 cap: float = 2.0, seed: Optional[int] = None):
        self.retries = max(int(retries), 0)
        self.base = base
        self.cap = cap
        self._rng = random.Random(seed)

    def delay(self, attempt: int, hint: float = 0.0) -> float:
        backoff = min(self.cap, self.base * (2 ** attempt))
        return max(hint, self._rng.uniform(0.0, backoff))


def _lost(rid, detail: str) -> dict:
    return protocol.error_response(
        rid, protocol.E_CONNECTION_LOST,
        f"serve connection lost: {detail}")


class AsyncServeClient:
    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, tag: str = "c",
                 retry: Optional[RetryPolicy] = None):
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._tag = tag
        self._retry = retry
        self._host: Optional[str] = None
        self._port: Optional[int] = None
        self._waiters: Dict[str, asyncio.Future] = {}
        self._reader_task = asyncio.ensure_future(self._read_loop())
        self._closed = False
        self._closing = False
        # observability (the bench and chaos harness report these)
        self.retries_used = 0
        self.connection_losses = 0
        self.unmatched_responses = 0   # a response no waiter claimed
        self.malformed_lines = 0

    @classmethod
    async def connect(cls, host: str, port: int, tag: str = "c",
                      retry: Optional[RetryPolicy] = None
                      ) -> "AsyncServeClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_LINE)
        client = cls(reader, writer, tag=tag, retry=retry)
        client._host, client._port = host, port
        return client

    # -- the read loop -------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    response = json.loads(line)
                except ValueError:
                    self.malformed_lines += 1
                    continue
                if not isinstance(response, dict):
                    self.malformed_lines += 1
                    continue
                waiter = self._waiters.pop(response.get("id"), None)
                if waiter is None:
                    self.unmatched_responses += 1
                elif not waiter.done():
                    waiter.set_result(response)
        except (ConnectionError, asyncio.CancelledError, ValueError,
                OSError):
            pass
        finally:
            self._closed = True
            if self._waiters and not self._closing:
                self.connection_losses += 1
            # resolve (don't except) every pending request with a
            # structured connection-lost error: nothing hangs forever,
            # and the retry layer treats it like any retryable error
            for rid, waiter in list(self._waiters.items()):
                if not waiter.done():
                    waiter.set_result(_lost(rid, "EOF with the request "
                                                 "in flight"))
            self._waiters.clear()

    # -- requests ------------------------------------------------------------

    async def request(self, obj: dict,
                      timeout: Optional[float] = None) -> dict:
        """Send one request and return its response dict.

        With a :class:`RetryPolicy`, retryable error responses (and
        connection loss, when the client knows its host/port) are
        retried under the same ``id``; ``timeout`` applies per attempt
        and is *not* retried — a slow answer is not a transient fault.
        """
        obj = dict(obj)
        rid = obj.setdefault("id", f"{self._tag}-{next(self._ids)}")
        retryable_op = obj.get("op") in _IDEMPOTENT_OPS
        attempts = (self._retry.retries + 1
                    if self._retry is not None and retryable_op else 1)
        response = _lost(rid, "never connected")
        for attempt in range(attempts):
            if attempt:
                self.retries_used += 1
                await asyncio.sleep(self._retry.delay(
                    attempt - 1, protocol.retry_after_hint(response)))
            response = await self._attempt(obj, rid, timeout)
            if not protocol.is_retryable(response):
                return response
            etype = (response.get("error") or {}).get("type")
            if etype == protocol.E_CONNECTION_LOST:
                if not await self._reconnect():
                    return response
        return response

    async def _attempt(self, obj: dict, rid,
                       timeout: Optional[float]) -> dict:
        if self._closed:
            return _lost(rid, "connection closed")
        future = asyncio.get_running_loop().create_future()
        self._waiters[rid] = future
        try:
            self._writer.write(protocol.encode(obj))
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self._waiters.pop(rid, None)
            return _lost(rid, f"write failed: {exc}")
        # the read loop may have died between the closed-check and the
        # registration; a registered-but-orphaned waiter must not hang
        if self._closed and not future.done():
            self._waiters.pop(rid, None)
            return _lost(rid, "connection closed during send")
        if timeout is None:
            return await future
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            # forget the waiter: a late response must not look like a
            # duplicate for the *next* request on this id
            self._waiters.pop(rid, None)
            raise

    async def _reconnect(self) -> bool:
        """Re-dial after connection loss (only possible when built via
        :meth:`connect`).  Pending requests of the old connection were
        already resolved with ``connection-lost`` by the read loop."""
        if self._host is None or self._closing:
            return False
        self._reader_task.cancel()
        try:
            self._writer.close()
        except Exception:
            pass
        try:
            self._reader, self._writer = await asyncio.open_connection(
                self._host, self._port, limit=protocol.MAX_LINE)
        except OSError:
            return False
        self._closed = False
        self._reader_task = asyncio.ensure_future(self._read_loop())
        return True

    async def close(self) -> None:
        self._closing = True
        self._reader_task.cancel()
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except Exception:
            pass


class ServeClient:
    """Blocking, single-in-flight client.

    A timed-out request no longer poisons the stream: its ``id`` is
    remembered and the late response, when it eventually arrives, is
    discarded by id instead of being mistaken for the next call's
    answer.  With ``retries > 0`` the client also resends on retryable
    errors and re-dials on connection loss.
    """

    def __init__(self, host: str, port: int, timeout: float = 120.0,
                 retries: int = 0, retry_base: float = 0.05,
                 retry_cap: float = 2.0, seed: Optional[int] = None):
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retry = RetryPolicy(retries, retry_base, retry_cap, seed)
        self._ids = itertools.count(1)
        self._stale_ids: Set[str] = set()
        self.retries_used = 0
        self.stale_discarded = 0
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout)
        self._file = self._sock.makefile("rwb")

    def _reconnect(self) -> None:
        self.close()
        self._connect()
        self._stale_ids.clear()

    def _reopen_file(self) -> None:
        """A timed-out socket file object refuses every further read
        (``cannot read from timed out object``), so reopen it over the
        *same* connection: the stream survives, and the late response
        still arrives to be discarded by id.  Bytes half-read before the
        timeout surface as one unparseable line, which the response loop
        already skips."""
        try:
            self._file.close()
        except OSError:
            pass
        self._file = self._sock.makefile("rwb")

    def request(self, obj: dict, timeout: Optional[float] = None) -> dict:
        obj = dict(obj)
        rid = obj.setdefault("id", f"sync-{next(self._ids)}")
        retryable_op = obj.get("op") in _IDEMPOTENT_OPS
        attempts = (self._retry.retries + 1) if retryable_op else 1
        response: Optional[dict] = None
        for attempt in range(attempts):
            if attempt:
                self.retries_used += 1
                time.sleep(self._retry.delay(
                    attempt - 1,
                    protocol.retry_after_hint(response or {})))
            try:
                response = self._roundtrip(obj, rid, timeout)
            except ConnectionError as exc:
                response = _lost(rid, str(exc))
                try:
                    self._reconnect()
                except OSError:
                    return response
                continue
            if not protocol.is_retryable(response):
                return response
        return response

    def _roundtrip(self, obj: dict, rid,
                   timeout: Optional[float]) -> dict:
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            self._file.write(protocol.encode(obj))
            self._file.flush()
            while True:
                try:
                    line = self._file.readline()
                except TimeoutError:
                    # remember the id: its late response must be
                    # discarded, not matched to the next call
                    self._stale_ids.add(rid)
                    self._reopen_file()
                    raise
                if not line:
                    raise ConnectionError("serve connection closed")
                try:
                    response = json.loads(line)
                except ValueError:
                    continue
                got = response.get("id") if isinstance(response, dict) \
                    else None
                if got == rid:
                    return response
                if got in self._stale_ids:
                    self._stale_ids.discard(got)
                self.stale_discarded += 1
        finally:
            if timeout is not None:
                self._sock.settimeout(self._timeout)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
