"""Warm worker processes for ``sized serve``.

One :class:`ShardPool` per shard, each a ``max_workers=1``
``ProcessPoolExecutor`` whose initializer pre-imports the language
stack, builds the prelude environment once, and opens the worker's own
injectable :class:`~repro.analysis.discharge.VerificationCache` over the
shared on-disk store (prefix-sharded, so workers never contend on a
directory).  The front-end routes a request to the shard its cache-key
prefix selects — the same program always lands on the same worker, so
the worker's *in-memory* certificate store is hot for repeated traffic,
not just the on-disk one.

Worker death is a first-class event: :meth:`ShardPool.rebuild_if` tears
the broken executor down (killing any survivor process) and stands up a
fresh warm worker; a generation counter makes concurrent rebuild
requests idempotent.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Optional

# -- worker-side (child process) ------------------------------------------------

_STATE: dict = {}


def worker_init(cache_dir: Optional[str], shard_depth: int,
                worker_id: int) -> None:
    """Process-pool initializer: pay import/prelude/verifier-warmup cost
    once per worker, not once per request."""
    from repro.analysis.discharge import VerificationCache
    from repro.ds.lru import LRU
    from repro.eval.machine import make_env

    _STATE["worker_id"] = worker_id
    _STATE["cache"] = VerificationCache(cache_dir,
                                        shard_depth=shard_depth if cache_dir
                                        else 0)
    # The native tier shares the compiled closure representation, so one
    # warm environment serves every machine a job may ask for.
    _STATE["env"] = make_env(True, machine="native")
    # Content-addressed program cache, next to the certificate cache: a
    # repeat request re-uses the parsed AST, so its compiled Code *and*
    # the native closures hanging off each CLam stay warm across
    # requests instead of being rebuilt per job.
    _STATE["programs"] = LRU(64)


def worker_job(job: dict) -> dict:
    """Execute one (deduplicated) job; always returns a response dict —
    the only exceptions that escape are worker-fatal by design
    (``os._exit`` under fault injection)."""
    op = job.get("op")
    if op == "crash":
        return _crash_job(job)
    if op == "hang":
        return _hang_job(job)
    try:
        if op == "run":
            return _run_job(job)
        if op == "verify":
            return _verify_job(job)
        return {"ok": False, "error": {
            "type": "bad-request", "message": f"unknown worker op {op!r}"}}
    except Exception as exc:  # defensive: never poison the executor
        return {"ok": False, "error": {
            "type": "worker-error",
            "message": f"{type(exc).__name__}: {exc}"}}


def _hang_job(job: dict) -> dict:
    """Fault injection: occupy the single worker for ``seconds``.  Under
    the wall-clock limit this models a *slow* worker (the response still
    arrives); over it the front-end kills and rebuilds the shard — the
    wedged-worker story the chaos harness drives deterministically."""
    import time

    seconds = job.get("seconds")
    if not isinstance(seconds, (int, float)) or isinstance(seconds, bool) \
            or not (0 <= seconds <= 600):
        return {"ok": False, "error": {
            "type": "bad-request",
            "message": "'seconds' must be a number in [0, 600]"}}
    time.sleep(seconds)
    return {"ok": True, "kind": "hang-done", "seconds": seconds,
            "worker": _STATE.get("worker_id")}


def _crash_job(job: dict) -> dict:
    marker = job.get("marker")
    if job.get("once") and marker:
        if os.path.exists(marker):
            return {"ok": True, "kind": "crash-already-injected",
                    "worker": _STATE.get("worker_id")}
        with open(marker, "w") as f:
            f.write("crashed\n")
    os._exit(17)


def _parse(job: dict):
    import hashlib

    from repro.lang.parser import parse_program

    text = job["program"]
    source = job.get("source", "<serve>")
    programs = _STATE.get("programs")
    key = None
    if programs is not None:
        key = hashlib.sha256(
            f"{source}\x00{text}".encode("utf-8", "replace")).hexdigest()
        cached = programs.get(key)
        if cached is not None:
            return cached, None
    try:
        program = parse_program(text, source=source)
    except Exception as exc:
        return None, {"ok": False, "error": {
            "type": "bad-request", "message": f"parse error: {exc}"}}
    if programs is not None:
        programs.put(key, program)
    return program, None


def _discharge(program, text: str, mc: bool, cache):
    from repro.analysis.discharge import discharge_for_run

    result = discharge_for_run(program, text=text, mc=mc, cache=cache)
    info = {
        "complete": result.complete,
        "skipped": len(result.policy.skip_labels),
        "reasons": result.reasons[:4],
    }
    return result.policy, info


def _run_job(job: dict) -> dict:
    from repro.analysis.discharge import VerificationCache
    from repro.eval.errors import FuelExhausted
    from repro.eval.machine import MACHINES, Answer, run_program
    from repro.sct.monitor import SCMonitor
    from repro.serve.protocol import EXIT_CODES
    from repro.values.values import write_value

    machine = job.get("machine", "native")
    if machine not in MACHINES:
        return {"ok": False, "error": {
            "type": "bad-request",
            "message": f"unknown machine {machine!r} "
                       f"(want one of {', '.join(MACHINES)})"}}
    program, err = _parse(job)
    if err is not None:
        return err
    cache = _STATE.get("cache") or VerificationCache()
    hits0, miss0, rej0 = cache.hits, cache.misses, cache.rejected
    policy = None
    discharge_info = None
    if job.get("discharge", "try") != "off":
        policy, discharge_info = _discharge(
            program, job["program"], bool(job.get("mc")), cache)
    # The warm env is compiled-family (shared by native); a tree job
    # needs its own env — rare enough to pay the prelude cost inline.
    env = _STATE.get("env") if machine != "tree" else None
    answer = run_program(
        program, mode=job.get("mode", "contract"),
        monitor=SCMonitor(), fuel=job.get("fuel"),
        machine=machine, discharge=policy, env=env)
    response = {
        "ok": True,
        "kind": answer.kind,
        "exit": EXIT_CODES.get(answer.kind, 1),
        "steps": answer.steps,
        "output": answer.output,
        "tier": answer.tier,
        "discharge": discharge_info,
        "cache": {"hits": cache.hits - hits0,
                  "misses": cache.misses - miss0,
                  "rejected": cache.rejected - rej0},
        "worker": _STATE.get("worker_id"),
    }
    if answer.kind == Answer.VALUE:
        response["value"] = write_value(answer.value)
    elif answer.kind == Answer.SC_ERROR:
        response["violation"] = str(answer.violation)
    elif answer.kind == Answer.TIMEOUT:
        response["fuel_exhausted"] = isinstance(answer.error, FuelExhausted)
        response["message"] = str(answer.error)
    else:
        response["message"] = str(answer.error)
    return response


def _verify_job(job: dict) -> dict:
    from repro.analysis.discharge import VerificationCache

    program, err = _parse(job)
    if err is not None:
        return err
    cache = _STATE.get("cache") or VerificationCache()
    hits0, miss0, rej0 = cache.hits, cache.misses, cache.rejected
    entry = job.get("entry")
    if entry:
        if job.get("mc"):
            from repro.mc.static import verify_program_mc as verify
        else:
            from repro.symbolic.verify import verify_program as verify
        kinds = list(job.get("kinds") or ())
        verdict = verify(program, entry, kinds,
                         result_kinds=job.get("result_kinds"))
        return {
            "ok": True,
            "kind": "verdict",
            "verified": bool(verdict.verified),
            "exit": 0 if verdict.verified else 3,
            "verdict": verdict.to_json(entry=entry, kinds=kinds),
            "worker": _STATE.get("worker_id"),
        }
    _, info = _discharge(program, job["program"], bool(job.get("mc")),
                         cache)
    return {
        "ok": True,
        "kind": "discharge",
        "verified": bool(info["complete"]),
        "exit": 0 if info["complete"] else 3,
        "discharge": info,
        "cache": {"hits": cache.hits - hits0,
                  "misses": cache.misses - miss0,
                  "rejected": cache.rejected - rej0},
        "worker": _STATE.get("worker_id"),
    }


# -- front-end-side (parent process) --------------------------------------------


def _mp_context():
    # fork keeps worker start cheap (inherits the parent's imports);
    # everything worker_init builds is rebuilt per child regardless.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0])


class ShardPool:
    """One warm single-process executor plus its rebuild machinery."""

    def __init__(self, shard_id: int, cache_dir: Optional[str],
                 shard_depth: int):
        self.shard_id = shard_id
        self.cache_dir = cache_dir
        self.shard_depth = shard_depth
        self.generation = 0
        self._ctx = _mp_context()
        self._make()

    def _make(self) -> None:
        self.executor = ProcessPoolExecutor(
            max_workers=1,
            mp_context=self._ctx,
            initializer=worker_init,
            initargs=(self.cache_dir, self.shard_depth, self.shard_id),
        )

    def submit(self, job: dict):
        return self.executor.submit(worker_job, job)

    def kill(self, executor=None) -> None:
        """Hard-stop the worker process (wall-clock timeout path)."""
        executor = executor if executor is not None else self.executor
        for proc in list(getattr(executor, "_processes", {}).values()):
            try:
                proc.kill()
            except Exception:
                pass

    def rebuild_if(self, generation: int) -> bool:
        """Replace a broken executor, but only once per failure: callers
        pass the generation they observed, so concurrent failures of the
        same worker trigger a single rebuild."""
        if generation != self.generation:
            return False
        self.generation += 1
        old = self.executor
        self._make()
        # kill any survivor before shutdown: a wedged worker would
        # otherwise keep its process alive past interpreter exit
        self.kill(old)
        try:
            old.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        return True

    def shutdown(self) -> None:
        self.kill()
        try:
            self.executor.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
