"""``sized serve`` — termination checking as a batched, multi-tenant
service.

The ROADMAP's "termination-checking as a service" item, concretely: a
stdlib-only asyncio front-end (:mod:`repro.serve.server`) speaking a
JSON-lines TCP protocol (:mod:`repro.serve.protocol`), deduplicating and
batching requests by content-addressed cache key
(:mod:`repro.serve.batching`), fanning work out to warm worker processes
that each own a shard of the on-disk verification cache
(:mod:`repro.serve.workers`), metering per-tenant fuel budgets
(:mod:`repro.serve.budgets`), and reporting a metrics surface
(:mod:`repro.serve.metrics`) via the ``stats`` request.

Request lifecycle::

    accept → admit (tenant budget) → dedupe/batch by key
           → route to shard worker → verify-or-cache-hit
           → residual run under fuel → settle budget → respond

Faults degrade gracefully: a crashed or wall-clock-timed-out worker is
killed and rebuilt, the affected request is requeued exactly once, and a
second failure yields a structured error response — a misbehaving worker
can neither wedge a batch nor drop a request.

The resilience layer on top (chaos-proven by ``sized chaos`` /
:mod:`repro.serve.chaos`): bounded admission queues with load shedding
and a global in-flight cap (retryable ``overloaded`` errors with
``retry_after`` hints), per-shard circuit breakers
(:mod:`repro.serve.breaker`) that fast-reject ``shard-unavailable``
while a flapping shard recovers, drain-on-shutdown with a deadline, and
retrying clients (:class:`~repro.serve.client.RetryPolicy`) that make
the whole loop self-healing end to end.
"""

from repro.serve.breaker import CircuitBreaker
from repro.serve.budgets import TenantBudgets
from repro.serve.client import AsyncServeClient, RetryPolicy, ServeClient
from repro.serve.metrics import Metrics
from repro.serve.protocol import RETRYABLE_ERRORS, request_key
from repro.serve.server import ServeConfig, SizedServer, serve_main

__all__ = [
    "AsyncServeClient",
    "CircuitBreaker",
    "Metrics",
    "RETRYABLE_ERRORS",
    "RetryPolicy",
    "ServeClient",
    "ServeConfig",
    "SizedServer",
    "TenantBudgets",
    "request_key",
    "serve_main",
]
