"""Key-addressed dedupe/batching for the serve front-end.

Identical jobs — equal :func:`repro.serve.protocol.request_key`, which
covers program text, libraries, and every execution knob but *not* the
tenant — are satisfied by a single worker execution.  The first arrival
opens a batch and sleeps one batch window so concurrent duplicates can
pile on; anything arriving while the job is still in flight joins too
(in-flight dedupe costs nothing and catches stragglers the window
missed).  When the shared result lands, every member gets it; each
member still settles its *own* tenant budget and latency sample.

A batch's dispatch failure (the structured error dict the dispatcher
returns after its requeue budget is spent) is shared the same way a
result is — a wedged batch is impossible because the future is always
resolved in a ``finally``.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, Tuple


class _Batch:
    __slots__ = ("future", "size")

    def __init__(self, future: "asyncio.Future"):
        self.future = future
        self.size = 1


class KeyedBatcher:
    """``submit(key, job)`` → ``(shared result dict, batch_size,
    joined)``."""

    def __init__(self, window: float,
                 dispatch: Callable[[str, dict], Awaitable[dict]]):
        self.window = window
        self.dispatch = dispatch
        self._pending: Dict[str, _Batch] = {}

    def pending(self) -> int:
        return len(self._pending)

    def has(self, key: str) -> bool:
        """True when a batch for ``key`` is open or in flight — a new
        arrival would join it for free, so admission control must not
        shed it on shard-queue depth (joining adds no shard load)."""
        return key in self._pending

    async def submit(self, key: str, job: dict) -> Tuple[dict, int, bool]:
        batch = self._pending.get(key)
        if batch is not None:
            batch.size += 1
            result = await asyncio.shield(batch.future)
            return result, batch.size, True

        loop = asyncio.get_running_loop()
        batch = _Batch(loop.create_future())
        self._pending[key] = batch
        try:
            if self.window > 0:
                await asyncio.sleep(self.window)  # let duplicates pile on
            result = await self.dispatch(key, job)
        except BaseException as exc:  # incl. cancellation: never strand waiters
            if not batch.future.done():
                batch.future.set_exception(exc)
            # keep the exception retrievable without "never retrieved"
            # noise when this leader was the only member
            batch.future.exception()
            raise
        else:
            if not batch.future.done():
                batch.future.set_result(result)
            return result, batch.size, False
        finally:
            self._pending.pop(key, None)
