"""The serve metrics surface: counters, batch shapes, latency
percentiles — everything the ``stats`` request and ``BENCH_serve.json``
report.

Latencies are kept in a bounded reservoir (the most recent
``latency_cap`` samples) so a long-lived server's stats stay O(1) in
memory; percentiles are computed on snapshot, not on record.
All methods run on the event loop thread; no locking.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, Optional


def percentile(samples, q: float) -> float:
    """Nearest-rank percentile of a sorted list; 0.0 on an empty window
    (a cold server has stats, not a stack trace)."""
    if not samples:
        return 0.0
    idx = min(int(q * (len(samples) - 1) + 0.5), len(samples) - 1)
    return samples[idx]


class Metrics:
    def __init__(self, latency_cap: int = 100_000):
        self.started = time.monotonic()
        self.requests: Dict[str, int] = {}      # op → count
        self.responses_ok = 0
        self.responses_error: Dict[str, int] = {}  # error.type → count
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_rejected = 0
        self.tiers: Dict[str, int] = {}        # executing tier → run count
        self.batches = 0
        self.batched_requests = 0
        self.max_batch = 0
        self.worker_crashes = 0
        self.request_timeouts = 0
        self.requeues = 0
        self.rebuilds = 0
        # resilience layer: load shedding, circuit breakers, drain
        self.shed_overloaded = 0        # global max-in-flight exceeded
        self.shed_shard_queue = 0       # per-shard admission queue full
        self.breaker_rejected = 0       # fast-rejected: circuit open
        self.breaker_opened = 0
        self.breaker_closed = 0
        self.drains = 0                 # graceful drains started
        self.drain_cancelled = 0        # in-flight jobs failed at deadline
        self._latencies: Deque[float] = deque(maxlen=latency_cap)

    # -- recording ----------------------------------------------------------

    def record_request(self, op: str) -> None:
        self.requests[op] = self.requests.get(op, 0) + 1

    def record_response(self, response: dict) -> None:
        if response.get("ok"):
            self.responses_ok += 1
        else:
            etype = (response.get("error") or {}).get("type", "unknown")
            self.responses_error[etype] = \
                self.responses_error.get(etype, 0) + 1

    def record_latency(self, seconds: float) -> None:
        self._latencies.append(seconds * 1000.0)

    def record_batch(self, size: int) -> None:
        self.batches += 1
        self.batched_requests += size
        if size > self.max_batch:
            self.max_batch = size

    def record_cache(self, hits: int, misses: int, rejected: int) -> None:
        self.cache_hits += hits
        self.cache_misses += misses
        self.cache_rejected += rejected

    def record_tier(self, tier: Optional[str]) -> None:
        """Count which execution tier (``native``/``compiled``/``tree``)
        actually ran a ``run`` job — the warm-path signal for
        ``BENCH_serve.json``: discharged repeat traffic should show up
        here as ``native``."""
        if tier:
            self.tiers[tier] = self.tiers.get(tier, 0) + 1

    # -- reporting ----------------------------------------------------------

    def snapshot(self) -> dict:
        lat = sorted(self._latencies)
        elapsed = time.monotonic() - self.started
        total_responses = self.responses_ok + \
            sum(self.responses_error.values())
        lookups = self.cache_hits + self.cache_misses
        return {
            "uptime_s": round(elapsed, 3),
            "requests": dict(sorted(self.requests.items())),
            "responses": {
                "ok": self.responses_ok,
                "error": dict(sorted(self.responses_error.items())),
                "total": total_responses,
            },
            "throughput_rps": round(total_responses / elapsed, 2)
            if elapsed > 0 else 0.0,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "rejected": self.cache_rejected,
                "hit_rate": round(self.cache_hits / lookups, 4)
                if lookups else 0.0,
            },
            "tiers": dict(sorted(self.tiers.items())),
            "batches": {
                "dispatched": self.batches,
                "requests": self.batched_requests,
                "max_size": self.max_batch,
                "mean_size": round(self.batched_requests / self.batches, 3)
                if self.batches else 0.0,
            },
            "latency_ms": {
                "count": len(lat),
                "p50": round(percentile(lat, 0.50), 3),
                "p99": round(percentile(lat, 0.99), 3),
                "max": round(lat[-1], 3) if lat else 0.0,
                "mean": round(sum(lat) / len(lat), 3) if lat else 0.0,
            },
            "workers": {
                "crashes": self.worker_crashes,
                "request_timeouts": self.request_timeouts,
                "requeues": self.requeues,
                "rebuilds": self.rebuilds,
            },
            "resilience": {
                "shed_overloaded": self.shed_overloaded,
                "shed_shard_queue": self.shed_shard_queue,
                "breaker_rejected": self.breaker_rejected,
                "breaker_opened": self.breaker_opened,
                "breaker_closed": self.breaker_closed,
                "drains": self.drains,
                "drain_cancelled": self.drain_cancelled,
            },
        }
