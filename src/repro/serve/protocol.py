"""The ``sized serve`` wire protocol: JSON objects, one per line.

Requests
--------

Every request is a single JSON object terminated by ``\\n``.  Common
fields: ``id`` (echoed verbatim in the response; assigned when absent)
and ``op``.  Ops:

``run``
    ``program`` (source text, required), ``tenant`` (default
    ``"anonymous"``), ``fuel`` (int step budget; ``0`` = immediate
    exhaustion, ``null`` = unlimited, absent = the server default),
    ``mode`` (``off|contract|full``, default ``contract``),
    ``discharge`` (``off|try``, default ``try``), ``mc`` (bool).
``verify``
    ``program`` plus either nothing (the workload entries are inferred
    from the top-level calls, as ``--discharge`` does) or an explicit
    ``entry`` with ``kinds``/``result_kinds``; ``mc`` selects
    monotonicity-constraint evidence.
``stats``
    The metrics surface: request/response counters, cache hit/miss/
    rejected totals, batch sizes, latency percentiles, worker faults,
    per-tenant fuel spend.
``ping`` / ``shutdown``
    Liveness probe / graceful stop (the listener closes after in-flight
    requests settle).
``crash``
    Fault injection (only when the server was started with
    ``--allow-fault-injection``): the routed worker calls ``os._exit``.
    With ``"once": true`` and a ``marker`` path the worker dies only
    while the marker file does not exist — the requeued attempt
    succeeds, which is how the crash-recovery path is tested end to end.

Responses
---------

``{"id": ..., "ok": true, ...}`` for served requests — note a run that
ended in a violation, run-time error, or fuel exhaustion is still
``ok: true``: the *service* did its job; ``kind`` carries the outcome
(``value|rt-error|sc-error|timeout``) and ``exit`` the CLI-equivalent
exit code.  ``{"id": ..., "ok": false, "error": {"type": ..., "message":
...}}`` for failures of the service itself; ``error.type`` is one of
``bad-request``, ``budget-exhausted``, ``worker-crash``, ``timeout``,
``overloaded``, ``shard-unavailable``, ``connection-lost``,
``fault-injection-disabled``, ``shutting-down``.

Retryable errors
----------------

A subset of service errors are *transient*: the same request, resent
unchanged, may well succeed (``RETRYABLE_ERRORS``).  ``overloaded``
means an admission queue shed the request (load, not brokenness);
``shard-unavailable`` means the routed shard's circuit breaker is open
after repeated faults; ``worker-crash`` means the requeue budget was
consumed by a genuinely dying worker; ``connection-lost`` is synthesised
client-side when the TCP stream dies under an in-flight request.  All
carry a best-effort ``retry_after`` hint in seconds where the server
can estimate one.  Requests are idempotent by construction — the
content-addressed :func:`request_key` covers everything the answer
depends on, so a retry either joins the original execution's batch or
re-runs to the same answer; ``timeout``, ``budget-exhausted`` and
``bad-request`` are deliberately *not* retryable (retrying cannot
change the outcome).

Responses may be written out of request order (requests on one
connection are served concurrently); match on ``id``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional, Tuple

# error.type values for service-level failures
E_BAD_REQUEST = "bad-request"
E_BUDGET = "budget-exhausted"
E_CRASH = "worker-crash"
E_TIMEOUT = "timeout"
E_FAULTS_OFF = "fault-injection-disabled"
E_SHUTDOWN = "shutting-down"
E_OVERLOADED = "overloaded"
E_SHARD_UNAVAILABLE = "shard-unavailable"
E_CONNECTION_LOST = "connection-lost"  # synthesised client-side

# Transient failures a client may resend unchanged (requests are
# idempotent by construction: request_key covers everything the answer
# depends on).  timeout/budget-exhausted/bad-request are excluded on
# purpose — retrying cannot change those outcomes.
RETRYABLE_ERRORS = frozenset({
    E_OVERLOADED, E_SHARD_UNAVAILABLE, E_CRASH, E_CONNECTION_LOST,
})


def is_retryable(response: dict) -> bool:
    """True when a response is a service error a retry may fix."""
    if response.get("ok"):
        return False
    return (response.get("error") or {}).get("type") in RETRYABLE_ERRORS


def retry_after_hint(response: dict) -> float:
    """The server's ``retry_after`` suggestion in seconds (0.0 when
    absent or malformed)."""
    hint = (response.get("error") or {}).get("retry_after")
    if isinstance(hint, (int, float)) and not isinstance(hint, bool):
        return max(float(hint), 0.0)
    return 0.0

# Answer.kind → the `sized run` exit code (the README matrix).
EXIT_CODES = {"value": 0, "rt-error": 1, "sc-error": 3, "timeout": 4}

MAX_LINE = 8 * 1024 * 1024  # one request line; programs are small


def encode(obj: dict) -> bytes:
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode()


def decode(line: bytes) -> dict:
    obj = json.loads(line)
    if not isinstance(obj, dict):
        raise ValueError("request must be a JSON object")
    return obj


def error_response(rid, etype: str, message: str, **extra) -> dict:
    err = {"type": etype, "message": message}
    err.update(extra)
    return {"id": rid, "ok": False, "error": err}


def request_key(job: dict) -> str:
    """Content-address one run/verify job for dedupe/batching and shard
    routing.

    Same discipline as :meth:`repro.analysis.discharge.VerificationCache.
    key`: the digest covers everything the answer depends on — program
    text, the shared library sources, and every execution knob (op,
    machine, mode, discharge, evidence, effective fuel, explicit
    entry/kinds) — and
    nothing it does not (tenant, request id).  Two requests with equal
    keys are satisfied by one execution.
    """
    from repro.analysis.discharge import _libraries_digest

    payload = json.dumps({
        "program_sha256":
            hashlib.sha256(job["program"].encode()).hexdigest(),
        "libraries_sha256": _libraries_digest(),
        "op": job["op"],
        "machine": job.get("machine"),
        "mode": job.get("mode"),
        "discharge": job.get("discharge"),
        "mc": bool(job.get("mc")),
        "fuel": job.get("fuel"),
        "entry": job.get("entry"),
        "kinds": list(job.get("kinds") or ()),
        "result_kinds": sorted((job.get("result_kinds") or {}).items()),
    }, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def validate_fuel(value) -> Tuple[bool, Optional[int]]:
    """``(ok, fuel)`` — fuel must be ``null`` (unlimited) or an int ≥ 0
    (``0`` = immediate exhaustion, same contract as ``run_program``)."""
    if value is None:
        return True, None
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        return False, None
    return True, value
