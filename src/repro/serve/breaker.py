"""Per-shard circuit breaker for the serve dispatcher.

A shard that keeps crashing or timing out is not helped by more
traffic: every request pays a kill→rebuild→requeue cycle only to fail
again, and the requeue traffic slows the healthy shards' event loop.
The breaker turns that into a fast, *retryable* rejection:

* **closed** — normal operation.  Failures (worker crash, wall-clock
  timeout) are timestamped into a sliding window; a success clears the
  window (the shard proved itself).  ``failure_threshold`` failures
  inside ``window_s`` trip the breaker.
* **open** — every request is rejected immediately with
  ``shard-unavailable`` and a ``retry_after`` hint of the time left
  until the next probe.  No worker contact at all.
* **half-open** — after ``open_s`` the next ``allow()`` admits exactly
  one probe request; concurrent requests keep being rejected until the
  probe resolves.  Probe success closes the breaker, probe failure
  re-opens it for another ``open_s``.

The clock is injectable so unit tests and the chaos harness can drive
state transitions deterministically.  All methods run on the event
loop thread; no locking.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Tuple

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    __slots__ = ("failure_threshold", "window_s", "open_s", "_clock",
                 "state", "_failures", "_opened_at", "_probe_in_flight",
                 "opens", "closes", "probes")

    def __init__(self, failure_threshold: int = 5, window_s: float = 30.0,
                 open_s: float = 5.0,
                 clock: Callable[[], float] = time.monotonic):
        self.failure_threshold = max(int(failure_threshold), 1)
        self.window_s = window_s
        self.open_s = open_s
        self._clock = clock
        self.state = CLOSED
        self._failures: Deque[float] = deque()
        self._opened_at = 0.0
        self._probe_in_flight = False
        # lifetime transition counters (the stats surface reads these)
        self.opens = 0
        self.closes = 0
        self.probes = 0

    # -- queries ------------------------------------------------------------

    def allow(self) -> Tuple[bool, float]:
        """``(allowed, retry_after)``.  In the open state ``retry_after``
        is the time left until a probe becomes due; an admitted request
        in the half-open state *is* the probe and must be resolved with
        :meth:`record_success` or :meth:`record_failure`."""
        if self.state == CLOSED:
            return True, 0.0
        now = self._clock()
        if self.state == OPEN:
            remaining = (self._opened_at + self.open_s) - now
            if remaining > 0:
                return False, remaining
            self.state = HALF_OPEN
            self._probe_in_flight = False
        # half-open: one probe at a time
        if self._probe_in_flight:
            return False, self.open_s
        self._probe_in_flight = True
        self.probes += 1
        return True, 0.0

    def remaining_open(self) -> float:
        if self.state != OPEN:
            return 0.0
        return max((self._opened_at + self.open_s) - self._clock(), 0.0)

    # -- outcomes -----------------------------------------------------------

    def record_success(self) -> bool:
        """A dispatched request completed (any structured response
        counts — the *shard* worked).  Returns True when this success
        closed a half-open breaker."""
        self._failures.clear()
        self._probe_in_flight = False
        if self.state != CLOSED:
            self.state = CLOSED
            self.closes += 1
            return True
        return False

    def record_failure(self) -> bool:
        """A dispatch attempt died (crash/timeout).  Returns True when
        this failure tripped the breaker open."""
        now = self._clock()
        if self.state == HALF_OPEN:
            # the probe failed: straight back to open, fresh window
            self.state = OPEN
            self._opened_at = now
            self._probe_in_flight = False
            self.opens += 1
            return True
        self._failures.append(now)
        cutoff = now - self.window_s
        while self._failures and self._failures[0] < cutoff:
            self._failures.popleft()
        if self.state == CLOSED and \
                len(self._failures) >= self.failure_threshold:
            self.state = OPEN
            self._opened_at = now
            self._failures.clear()
            self.opens += 1
            return True
        return False

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "recent_failures": len(self._failures),
            "opens": self.opens,
            "closes": self.closes,
            "probes": self.probes,
            "retry_after": round(self.remaining_open(), 3),
        }
