"""Per-tenant fuel budgets with reserve/settle accounting.

The server admits a request by *reserving* its effective fuel against
the tenant's remaining budget and *settles* on completion, refunding
whatever the run did not consume (``Answer.steps`` is metered on every
outcome kind, including errors — see :func:`repro.eval.machine.
run_program`).  Reserving up front means concurrent requests cannot
overdraw a budget: admission is decided against what is genuinely left.

The fuel-boundary contract matches the machines exactly: a request for
``fuel: 0`` is *admitted* and runs to immediate exhaustion (a structured
``timeout`` answer with ``steps == 0``); only a tenant whose remaining
budget is already ``<= 0`` gets the ``budget-exhausted`` service error.
An unlimited request (``fuel: null``) against a finite budget is clamped
to the tenant's remaining fuel — admission control, not rejection.

All methods run on the event loop thread; no locking is needed.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class TenantBudgets:
    """Fuel ledger: ``default_budget`` steps granted per tenant
    (``None`` = unlimited — spend is still metered for the stats
    surface)."""

    def __init__(self, default_budget: Optional[int] = None):
        self.default_budget = default_budget
        self._remaining: Dict[str, int] = {}
        self._spent: Dict[str, int] = {}
        self._rejected: Dict[str, int] = {}
        # reservations admitted but not yet settled — every admit must be
        # matched by exactly one settle on every path (shed, crash,
        # disconnect, drain); the chaos harness asserts this drains to
        # zero, and for finite budgets spent + remaining + outstanding
        # fuel must always equal the budget.
        self._open: Dict[str, int] = {}

    def remaining(self, tenant: str) -> Optional[int]:
        if self.default_budget is None:
            return None
        return self._remaining.setdefault(tenant, self.default_budget)

    def admit(self, tenant: str, fuel: Optional[int]
              ) -> Tuple[bool, Optional[int], Optional[str]]:
        """``(admitted, effective_fuel, reason)``.  On admission the
        effective fuel is reserved; the caller must :meth:`settle`."""
        if self.default_budget is None:
            self._open[tenant] = self._open.get(tenant, 0) + 1
            return True, fuel, None
        left = self.remaining(tenant)
        if left <= 0:
            self._rejected[tenant] = self._rejected.get(tenant, 0) + 1
            return False, None, (
                f"tenant {tenant!r} has no fuel left "
                f"(budget {self.default_budget}, spent "
                f"{self._spent.get(tenant, 0)})")
        effective = left if fuel is None else min(fuel, left)
        self._remaining[tenant] = left - effective
        self._open[tenant] = self._open.get(tenant, 0) + 1
        return True, effective, None

    def settle(self, tenant: str, reserved: Optional[int],
               steps: int) -> None:
        """Refund the unspent part of a reservation and record spend."""
        steps = max(steps, 0)
        if self._open.get(tenant, 0) > 0:
            self._open[tenant] -= 1
        if self.default_budget is None:
            self._spent[tenant] = self._spent.get(tenant, 0) + steps
            return
        if reserved is not None:
            spent = min(steps, reserved)
            self._remaining[tenant] = (
                self._remaining.get(tenant, 0) + (reserved - spent))
            self._spent[tenant] = self._spent.get(tenant, 0) + spent

    def open_reservations(self) -> int:
        """Reservations admitted but not yet settled, across tenants."""
        return sum(self._open.values())

    def snapshot(self) -> dict:
        tenants = sorted(set(self._spent) | set(self._remaining)
                         | set(self._rejected) | set(self._open))
        return {
            "default_budget": self.default_budget,
            "open_reservations": self.open_reservations(),
            "tenants": {
                t: {
                    "spent": self._spent.get(t, 0),
                    "remaining": self.remaining(t),
                    "rejected": self._rejected.get(t, 0),
                    "open": self._open.get(t, 0),
                }
                for t in tenants
            },
        }
