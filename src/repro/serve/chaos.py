"""``sized chaos`` — a seeded fault-injection campaign against a real
:class:`~repro.serve.server.SizedServer`.

The resilience layer (backpressure, circuit breakers, retrying clients,
drain-on-shutdown) is only trustworthy if every degraded path is
actually exercised, deterministically, in CI.  This module boots an
in-process server with deliberately tight limits (small admission
queues, low breaker threshold, short wall-clock timeout, finite tenant
budgets), drives ``--n`` run/verify requests through seeded retrying
clients, and injects a seeded *fault plan* while the traffic is in
flight:

``crash``
    kill a worker process mid-campaign (``op=crash``);
``slow``
    occupy a worker under the wall-clock limit (``op=hang``) — queued
    requests feel latency, nothing fails;
``hang``
    wedge a worker *past* the wall-clock limit — the front-end kills,
    rebuilds, requeues; a re-wedge surfaces as a structured timeout;
``flap``
    crash one shard repeatedly inside the breaker window so its circuit
    opens, fast-rejects, half-opens, and closes again under traffic;
``corrupt-cache``
    scribble garbage over on-disk certificate-cache entries, then crash
    every shard so rebuilt workers must reread them — the quarantine
    path re-verifies instead of trusting corrupt bytes;
``conn-cut``
    send a request and cut the connection before the response
    (mid-response connection loss from the server's point of view);
``malformed``
    truncated JSON, binary garbage, and half-frames on raw connections.

Everything random — program mix, tenants, stagger, fault positions,
client retry jitter — derives from ``--seed``, so a campaign is a
replayable artifact, in the transformation-validation spirit the rest
of the repo applies to its machines.

Invariants (campaign fails loudly if any is violated):

1. **Zero lost** — every tracked request resolves to exactly one final
   response.
2. **Zero duplicated** — no client ever observes a response line it did
   not have a request in flight for.
3. **Byte identity** — every *delivered* ``run`` result (value, output,
   kind, steps) is identical to a direct ``run_program`` with the same
   knobs — kind/value/output against the *compiled* machine (a
   different tier than the native-serving workers, so tier bugs cannot
   cancel out), steps against a direct native run; every delivered
   ``verify`` verdict matches the direct discharge pipeline.
4. **Budgets conserved** — all reservations settle (no leaks) and for
   every tenant ``spent + remaining == budget``.
5. **Server healthy at end** — ping answers, fresh programs covering
   every shard run to their oracle values, every circuit breaker is
   closed, and a drain completes with nothing left to cancel.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import shutil
import tempfile
import time
from typing import Dict, List, Optional, Tuple

from repro.serve import protocol
from repro.serve.client import AsyncServeClient, RetryPolicy
from repro.serve.server import ServeConfig, SizedServer

FAULT_KINDS = ("crash", "slow", "hang", "flap", "corrupt-cache",
               "conn-cut", "malformed")

FUEL = 200_000          # explicit per-request fuel: stable request keys
TENANTS = ("t-alpha", "t-beta", "t-gamma")
REQUEST_TIMEOUT = 1.5   # wall-clock per worker attempt (chaos-tight)


# -- the seeded plan ------------------------------------------------------------


def _program(i: int) -> str:
    """Pool program ``i``: distinct text, distinct value, a few produce
    output so byte-identity covers the output channel too."""
    depth = 8 + i % 7
    if i % 4 == 3:
        return (f"(define (f n) (if (zero? n) "
                f"(begin (display {i}) {1000 + i}) (f (- n 1))))\n"
                f"(f {depth})\n")
    return (f"(define (f n) (if (zero? n) {1000 + i} (f (- n 1))))\n"
            f"(f {depth})\n")


def _server_job(op: str, program: str) -> dict:
    """The job dict exactly as the server normalises it — needed to
    predict request keys (and therefore shard routing) client-side."""
    return {"op": op, "program": program, "fuel": FUEL,
            "mode": "contract", "discharge": "try", "mc": False,
            "entry": None, "kinds": None, "result_kinds": None}


def _shard_of(op: str, program: str, workers: int) -> int:
    key = protocol.request_key(_server_job(op, program))
    return int(key[:8], 16) % workers


class FaultPlan:
    """Seeded schedule: which faults fire, at which fraction of the
    campaign's send window, with which parameters."""

    def __init__(self, seed: int, n: int, kinds: Tuple[str, ...],
                 workers: int):
        rng = random.Random(seed ^ 0x5EED)
        self.events: List[dict] = []

        def add(kind, when, **params):
            if kind in kinds:
                self.events.append(
                    {"kind": kind, "when": when, **params})

        for _ in range(max(1, n // 60)):
            add("crash", rng.uniform(0.1, 0.9),
                shard=rng.randrange(workers))
        for _ in range(max(1, n // 60)):
            add("slow", rng.uniform(0.1, 0.9),
                shard=rng.randrange(workers),
                seconds=round(rng.uniform(0.1, 0.3), 3))
        for _ in range(max(1, n // 150)):
            add("hang", rng.uniform(0.2, 0.7),
                shard=rng.randrange(workers),
                seconds=round(REQUEST_TIMEOUT * 2.2, 3))
        add("flap", rng.uniform(0.2, 0.5), shard=rng.randrange(workers))
        add("corrupt-cache", rng.uniform(0.35, 0.55),
            limit=5)
        for _ in range(3):
            add("conn-cut", rng.uniform(0.1, 0.9),
                program=_program(rng.randrange(8)))
        for _ in range(3):
            add("malformed", rng.uniform(0.1, 0.9))
        self.events.sort(key=lambda e: e["when"])

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e["kind"]] = out.get(e["kind"], 0) + 1
        return out


# -- the direct-pipeline oracle -------------------------------------------------


def _direct_oracle(programs: List[str]) -> Dict[str, dict]:
    """Run every pool program through the direct pipeline with the same
    knobs the server uses; delivered serve results must be
    byte-identical to these.

    The semantic fields (kind, value, output) come from the *compiled*
    machine — deliberately a different tier than the serve workers
    (native), so a native-tier bug shows up as a byte-identity violation
    instead of cancelling out on both sides.  Step counts are
    tier-specific by design, so the expected ``steps`` comes from a
    direct native run; that still cross-checks the serve layer itself
    (dedupe, requeue, caching) against the direct pipeline."""
    from repro.analysis.discharge import (VerificationCache,
                                          discharge_for_run)
    from repro.eval.machine import run_program
    from repro.lang.parser import parse_program
    from repro.sct.monitor import SCMonitor
    from repro.values.values import write_value

    oracle: Dict[str, dict] = {}
    cache = VerificationCache()
    for text in programs:
        parsed = parse_program(text)
        result = discharge_for_run(parsed, text=text, cache=cache)
        answer = run_program(parsed, mode="contract", monitor=SCMonitor(),
                             fuel=FUEL, machine="compiled",
                             discharge=result.policy)
        native = run_program(parsed, mode="contract", monitor=SCMonitor(),
                             fuel=FUEL, machine="native",
                             discharge=result.policy)
        oracle[text] = {
            "kind": answer.kind,
            "value": write_value(answer.value)
            if answer.kind == "value" else None,
            "output": answer.output,
            "steps": native.steps,
            "verified": bool(result.complete),
        }
    return oracle


# -- campaign -------------------------------------------------------------------


class _Check:
    """One named invariant; collects failures instead of raising so the
    report always covers all five."""

    def __init__(self):
        self.items: List[dict] = []

    def add(self, name: str, ok: bool, detail: str = "") -> None:
        self.items.append({"name": name, "ok": bool(ok),
                           "detail": detail})

    def failures(self) -> List[str]:
        return [f"{i['name']}: {i['detail'] or 'violated'}"
                for i in self.items if not i["ok"]]


async def _raw_send(port: int, payloads: List[bytes],
                    read_reply: bool = False) -> None:
    """Fire raw bytes at the server (malformed frames / connection
    cuts); never raises — the *server's* survival is what is asserted
    later."""
    try:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        for payload in payloads:
            writer.write(payload)
        await writer.drain()
        if read_reply:
            try:
                await asyncio.wait_for(reader.readline(), 0.5)
            except asyncio.TimeoutError:
                pass
        writer.close()
    except (OSError, asyncio.TimeoutError):
        pass


def _corrupt_cache_files(cache_dir: str, rng: random.Random,
                         limit: int) -> int:
    paths = []
    for root, _dirs, files in os.walk(cache_dir):
        for name in files:
            if name.endswith(".json"):
                paths.append(os.path.join(root, name))
    paths.sort()
    rng.shuffle(paths)
    corrupted = 0
    for path in paths[:limit]:
        try:
            with open(path, "w") as f:
                f.write("{corrupt json" + "\x00garbage")
            corrupted += 1
        except OSError:
            pass
    return corrupted


async def _run_fault(event: dict, server: SizedServer,
                     fault_client: AsyncServeClient, cache_dir: str,
                     rng: random.Random, injected: Dict[str, int]) -> None:
    kind = event["kind"]
    try:
        if kind == "crash":
            await fault_client.request(
                {"op": "crash", "shard": event["shard"]}, timeout=30)
        elif kind in ("slow", "hang"):
            await fault_client.request(
                {"op": "hang", "shard": event["shard"],
                 "seconds": event["seconds"]}, timeout=30)
        elif kind == "flap":
            # enough consecutive crashes to trip the shard's breaker
            # (each crash op records a failure per requeue attempt)
            for _ in range(server.config.breaker_threshold):
                await fault_client.request(
                    {"op": "crash", "shard": event["shard"]}, timeout=30)
        elif kind == "corrupt-cache":
            injected["files-corrupted"] = _corrupt_cache_files(
                cache_dir, rng, event["limit"])
            # crash every shard: rebuilt workers must reread (and
            # quarantine) the poisoned on-disk entries
            for shard in range(len(server.pools)):
                await fault_client.request(
                    {"op": "crash", "shard": shard}, timeout=30)
        elif kind == "conn-cut":
            req = dict(_server_job("run", event["program"]))
            req.update({"id": "cut", "tenant": "t-cut"})
            await _raw_send(server.port, [protocol.encode(req)])
        elif kind == "malformed":
            await _raw_send(server.port, [
                b'{"op": "run", "progr\n',       # truncated JSON
                b"\xff\xfe\x00 binary garbage\n",  # not UTF-8 JSON
                b'{"op":"run"',                  # half frame, no newline
            ], read_reply=True)
        injected[kind] = injected.get(kind, 0) + 1
    except (ConnectionError, asyncio.TimeoutError, OSError):
        injected[kind + "-undelivered"] = \
            injected.get(kind + "-undelivered", 0) + 1


async def _campaign(n: int, seed: int, kinds: Tuple[str, ...],
                    workers: int, progress) -> Tuple[dict, List[str]]:
    rng = random.Random(seed)
    started = time.monotonic()

    pool = [_program(i) for i in range(max(8, min(n // 8, 48)))]
    progress(f"chaos: oracle over {len(pool)} pool programs...")
    oracle = _direct_oracle(pool)

    cache_dir = tempfile.mkdtemp(prefix="sized-chaos-")
    budget = FUEL * max(n, 64)
    config = ServeConfig(
        port=0, workers=workers, batch_window_ms=1.0,
        default_fuel=FUEL, tenant_budget=budget,
        request_timeout=REQUEST_TIMEOUT, cache_dir=cache_dir,
        allow_fault_injection=True,
        max_inflight=max(24, n // 3), shard_queue_limit=16,
        breaker_threshold=3, breaker_window_s=10.0, breaker_open_s=0.4,
        drain_timeout=5.0)
    server = SizedServer(config)
    await server.start()
    plan = FaultPlan(seed, n, kinds, workers)
    progress(f"chaos: server up on :{server.port}, {n} requests, "
             f"fault plan {plan.counts() or 'empty'}")

    clients = [
        await AsyncServeClient.connect(
            "127.0.0.1", server.port, tag=f"chaos{i}",
            retry=RetryPolicy(retries=6, base=0.05, cap=1.0,
                              seed=seed * 31 + i))
        for i in range(3)
    ]
    fault_client = await AsyncServeClient.connect(
        "127.0.0.1", server.port, tag="fault")

    # -- seeded request schedule ----------------------------------------
    spacing = 0.004
    window = n * spacing
    requests = []
    for i in range(n):
        op = "verify" if rng.random() < 0.1 else "run"
        requests.append({
            "op": op,
            "program": pool[rng.randrange(len(pool))],
            "delay": i * spacing,
            "tenant": TENANTS[rng.randrange(len(TENANTS))],
            "client": rng.randrange(len(clients)),
        })

    lost: List[str] = []
    outcomes: Dict[str, int] = {}
    identity_failures: List[str] = []

    async def one_request(idx: int, spec: dict) -> None:
        await asyncio.sleep(spec["delay"])
        req = {"op": spec["op"], "program": spec["program"],
               "fuel": FUEL, "tenant": spec["tenant"]}
        try:
            response = await clients[spec["client"]].request(
                req, timeout=60)
        except (asyncio.TimeoutError, ConnectionError) as exc:
            lost.append(f"request {idx}: {type(exc).__name__}")
            return
        if response.get("ok"):
            label = response.get("kind", "ok")
        else:
            label = "error:" + \
                (response.get("error") or {}).get("type", "unknown")
        outcomes[label] = outcomes.get(label, 0) + 1
        expect = oracle[spec["program"]]
        if response.get("ok") and spec["op"] == "run":
            got = (response.get("kind"), response.get("value"),
                   response.get("output"), response.get("steps"))
            want = (expect["kind"], expect["value"], expect["output"],
                    expect["steps"])
            if got != want:
                identity_failures.append(
                    f"request {idx}: served {got!r} != direct {want!r}")
        elif response.get("ok") and spec["op"] == "verify":
            if bool(response.get("verified")) != expect["verified"]:
                identity_failures.append(
                    f"request {idx}: verify {response.get('verified')} "
                    f"!= direct {expect['verified']}")

    injected: Dict[str, int] = {}
    tasks = [asyncio.ensure_future(one_request(i, spec))
             for i, spec in enumerate(requests)]
    fault_tasks = []

    async def one_fault(event):
        await asyncio.sleep(event["when"] * window)
        await _run_fault(event, server, fault_client, cache_dir, rng,
                         injected)

    for event in plan.events:
        fault_tasks.append(asyncio.ensure_future(one_fault(event)))

    await asyncio.gather(*tasks)
    await asyncio.gather(*fault_tasks)
    progress(f"chaos: traffic done — outcomes {dict(sorted(outcomes.items()))}, "
             f"injected {dict(sorted(injected.items()))}")

    # -- settle: reservations must drain to zero ------------------------
    deadline = time.monotonic() + 5.0
    while server.budgets.open_reservations() and \
            time.monotonic() < deadline:
        await asyncio.sleep(0.05)

    check = _Check()
    check.add("zero-lost", not lost,
              f"{len(lost)} lost: {lost[:3]}" if lost else "")
    dup = sum(c.unmatched_responses for c in clients + [fault_client])
    check.add("zero-duplicated", dup == 0,
              f"{dup} unclaimed responses" if dup else "")
    check.add("byte-identity", not identity_failures,
              "; ".join(identity_failures[:3]))

    budgets = server.budgets.snapshot()
    leaks = budgets["open_reservations"]
    drift = [
        t for t, row in budgets["tenants"].items()
        if row["spent"] + row["remaining"] != budget
    ]
    check.add("budgets-conserved", leaks == 0 and not drift,
              f"open={leaks} drift={drift}" if leaks or drift else "")

    # -- end-state health: every shard answers, breakers close ----------
    health_client = await AsyncServeClient.connect(
        "127.0.0.1", server.port, tag="health",
        retry=RetryPolicy(retries=8, base=0.05, cap=1.0, seed=seed + 97))
    healthy = True
    detail = ""
    ping = await health_client.request({"op": "ping"}, timeout=30)
    if not ping.get("ok"):
        healthy, detail = False, "ping failed"
    covered, i = set(), 10_000
    while len(covered) < workers and i < 10_400:
        text = _program(i)
        shard = _shard_of("run", text, workers)
        i += 1
        if shard in covered:
            continue
        covered.add(shard)
        r = await health_client.request(
            {"op": "run", "program": text, "fuel": FUEL}, timeout=60)
        if not (r.get("ok") and r.get("kind") == "value"):
            healthy = False
            detail = f"shard {shard} health run failed: {r}"
            break
    stats = (await health_client.request(
        {"op": "stats"}, timeout=30)).get("stats") or {}
    open_breakers = [
        b for b in (stats.get("shards") or {}).get("breakers", [])
        if b["state"] != "closed"
    ]
    if healthy and open_breakers:
        healthy, detail = False, f"breakers not closed: {open_breakers}"
    check.add("server-healthy", healthy, detail)
    if "corrupt-cache" in injected and injected.get("files-corrupted"):
        rejected = (stats.get("cache") or {}).get("rejected", 0)
        check.add("corrupt-entries-quarantined", rejected > 0,
                  f"{injected['files-corrupted']} files corrupted but "
                  f"cache.rejected == 0" if not rejected else "")

    retries_used = sum(c.retries_used
                       for c in clients + [health_client])
    await asyncio.gather(*[c.close()
                           for c in clients + [fault_client,
                                               health_client]])
    await server.drain(2.0)
    await server.stop()
    shutil.rmtree(cache_dir, ignore_errors=True)

    report = {
        "n": n,
        "seed": seed,
        "faults": sorted(kinds),
        "pool_programs": len(pool),
        "injected": dict(sorted(injected.items())),
        "outcomes": dict(sorted(outcomes.items())),
        "client_retries": retries_used,
        "invariants": check.items,
        "server_stats": {
            "resilience": stats.get("resilience"),
            "workers": stats.get("workers"),
            "cache": stats.get("cache"),
            "batches": stats.get("batches"),
            "responses": stats.get("responses"),
        },
        "elapsed_s": round(time.monotonic() - started, 3),
    }
    return report, check.failures()


def run_campaign(n: int = 200, seed: int = 0,
                 faults: Optional[Tuple[str, ...]] = None,
                 workers: int = 2,
                 progress=lambda *_: None) -> Tuple[dict, List[str]]:
    """Synchronous entry point: ``(report, failures)``; the campaign
    passed iff ``failures`` is empty."""
    kinds = tuple(faults) if faults else FAULT_KINDS
    unknown = [k for k in kinds if k not in FAULT_KINDS]
    if unknown:
        raise ValueError(
            f"unknown fault kinds {unknown}; choose from "
            f"{', '.join(FAULT_KINDS)}")
    return asyncio.run(_campaign(n, seed, kinds, workers, progress))
