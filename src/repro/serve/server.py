"""The ``sized serve`` asyncio front-end.

Single event loop, JSON-lines TCP (see :mod:`repro.serve.protocol`);
requests on one connection are served concurrently and responses are
matched by ``id``.  The data path is::

    handle_request → budget admit → request_key → KeyedBatcher.submit
                   → _dispatch (shard route, wall-clock timeout,
                      crash/timeout requeue-once) → settle → respond

Every failure mode resolves to a structured response: a worker crash or
wall-clock timeout kills and rebuilds the shard's warm worker, requeues
the batch exactly once, and a second failure returns ``error.type``
``worker-crash``/``timeout`` to every batch member.  Nothing is dropped
and nothing wedges — the contract ``bench_serve.py`` and the CI smoke
gate on.

The resilience layer hardens the degraded paths (chaos-proven by
``sized chaos`` / :mod:`repro.serve.chaos`):

* **Backpressure** — bounded global in-flight jobs (``max_inflight``)
  and bounded per-shard admission queues (``shard_queue_limit``); both
  shed with a retryable ``overloaded`` error plus a ``retry_after``
  hint rather than queueing without bound.  Joining an in-flight batch
  is always admitted (it adds no load), and every shed settles its
  budget reservation.
* **Circuit breakers** — one :class:`~repro.serve.breaker.
  CircuitBreaker` per shard over the kill→rebuild path: repeated
  crash/timeout inside a window opens it, open shards fast-reject with
  ``shard-unavailable``, a half-open probe closes it on success.
* **Drain-on-shutdown** — :meth:`SizedServer.drain` stops accepting,
  waits out in-flight jobs up to ``drain_timeout``, then fails the
  stragglers with ``shutting-down`` (budgets settled, response written).
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import BrokenExecutor
from typing import Optional

from repro.serve import protocol
from repro.serve.batching import KeyedBatcher
from repro.serve.breaker import CircuitBreaker
from repro.serve.budgets import TenantBudgets
from repro.serve.metrics import Metrics
from repro.serve.workers import ShardPool


class ServeConfig:
    """Knobs for one server instance (all have production-ish defaults;
    the CLI maps flags onto these 1:1)."""

    __slots__ = ("host", "port", "workers", "batch_window_ms",
                 "default_fuel", "tenant_budget", "request_timeout",
                 "cache_dir", "shard_depth", "allow_fault_injection",
                 "max_inflight", "shard_queue_limit", "breaker_threshold",
                 "breaker_window_s", "breaker_open_s", "drain_timeout")

    def __init__(self, host: str = "127.0.0.1", port: int = 8737,
                 workers: Optional[int] = None,
                 batch_window_ms: float = 2.0,
                 default_fuel: Optional[int] = 5_000_000,
                 tenant_budget: Optional[int] = None,
                 request_timeout: float = 60.0,
                 cache_dir: Optional[str] = None,
                 shard_depth: int = 2,
                 allow_fault_injection: bool = False,
                 max_inflight: int = 4096,
                 shard_queue_limit: int = 64,
                 breaker_threshold: int = 5,
                 breaker_window_s: float = 30.0,
                 breaker_open_s: float = 5.0,
                 drain_timeout: float = 10.0):
        self.host = host
        self.port = port
        self.workers = workers or min(4, max(os.cpu_count() or 1, 1))
        self.batch_window_ms = batch_window_ms
        self.default_fuel = default_fuel
        self.tenant_budget = tenant_budget
        self.request_timeout = request_timeout
        self.cache_dir = cache_dir
        self.shard_depth = shard_depth
        self.allow_fault_injection = allow_fault_injection
        self.max_inflight = max_inflight
        self.shard_queue_limit = shard_queue_limit
        self.breaker_threshold = breaker_threshold
        self.breaker_window_s = breaker_window_s
        self.breaker_open_s = breaker_open_s
        self.drain_timeout = drain_timeout

    def snapshot(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class SizedServer:
    def __init__(self, config: ServeConfig):
        self.config = config
        self.metrics = Metrics()
        self.budgets = TenantBudgets(config.tenant_budget)
        self.batcher = KeyedBatcher(config.batch_window_ms / 1000.0,
                                    self._dispatch)
        self.pools = []
        self.breakers = []
        self._shard_load = []           # dispatched batches per shard
        self._inflight_jobs = 0         # admitted run/verify jobs
        self._inflight_tasks = set()    # asyncio tasks serving job ops
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopping = asyncio.Event()
        self._draining = False
        self._crash_rr = 0  # round-robin shard for un-keyed fault ops
        self._auto_id = 0

    # -- lifecycle ----------------------------------------------------------

    @property
    def port(self) -> int:
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self.pools = [
            ShardPool(i, self.config.cache_dir, self.config.shard_depth)
            for i in range(self.config.workers)
        ]
        self.breakers = [
            CircuitBreaker(self.config.breaker_threshold,
                           self.config.breaker_window_s,
                           self.config.breaker_open_s)
            for _ in self.pools
        ]
        self._shard_load = [0] * len(self.pools)
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port,
            limit=protocol.MAX_LINE)

    async def wait_stopped(self) -> None:
        await self._stopping.wait()

    async def drain(self, timeout: Optional[float] = None) -> None:
        """Graceful shutdown: stop accepting connections, let in-flight
        jobs finish within ``timeout`` seconds, then cancel the
        stragglers — each still gets a structured ``shutting-down``
        response (and its budget reservation settled) rather than a
        silently dropped connection."""
        timeout = self.config.drain_timeout if timeout is None else timeout
        self._stopping.set()
        self._draining = True
        self.metrics.drains += 1
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while True:
            pending = {t for t in self._inflight_tasks if not t.done()}
            if not pending:
                break
            remaining = deadline - loop.time()
            if remaining <= 0:
                self.metrics.drain_cancelled += len(pending)
                for task in pending:
                    task.cancel()
                await asyncio.gather(*pending, return_exceptions=True)
                break
            await asyncio.wait(pending, timeout=remaining)

    async def stop(self) -> None:
        self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for pool in self.pools:
            pool.shutdown()

    # -- connection handling ------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        tasks = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._write(writer, write_lock,
                                      protocol.error_response(
                                          None, protocol.E_BAD_REQUEST,
                                          "request line too long"))
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._serve_line(line, writer, write_lock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _serve_line(self, line: bytes, writer, write_lock) -> None:
        rid = None
        try:
            request = protocol.decode(line)
            rid = request.get("id")
            if rid is None:
                self._auto_id += 1
                rid = f"auto-{self._auto_id}"
                request["id"] = rid
            response = await self.handle_request(request)
        except asyncio.CancelledError:
            if not self._draining:
                raise
            # drain deadline: the job is being abandoned, but the client
            # still gets a structured answer, not a silent drop
            response = protocol.error_response(
                rid, protocol.E_SHUTDOWN,
                "server shut down before the request completed "
                "(drain deadline exceeded)")
        except Exception as exc:
            response = protocol.error_response(
                rid, protocol.E_BAD_REQUEST,
                f"{type(exc).__name__}: {exc}")
        self.metrics.record_response(response)
        await self._write(writer, write_lock, response)

    @staticmethod
    async def _write(writer, write_lock, response: dict) -> None:
        try:
            async with write_lock:
                writer.write(protocol.encode(response))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass

    # -- request handling ---------------------------------------------------

    async def handle_request(self, request: dict) -> dict:
        loop = asyncio.get_running_loop()
        started = loop.time()
        rid = request.get("id")
        op = request.get("op")
        self.metrics.record_request(str(op))
        try:
            if op == "ping":
                return {"id": rid, "ok": True, "pong": True}
            if op == "stats":
                return {"id": rid, "ok": True, "stats": self.stats()}
            if op == "shutdown":
                self._stopping.set()
                return {"id": rid, "ok": True, "stopping": True}
            if op in ("run", "verify", "crash", "hang"):
                # drain() tracks (and at the deadline cancels) the tasks
                # doing real work; ping/stats/shutdown stay untracked
                task = asyncio.current_task()
                self._inflight_tasks.add(task)
                try:
                    if op == "crash":
                        return await self._handle_fault(request, "crash")
                    if op == "hang":
                        return await self._handle_fault(request, "hang")
                    return await self._handle_job(request)
                finally:
                    self._inflight_tasks.discard(task)
            return protocol.error_response(
                rid, protocol.E_BAD_REQUEST, f"unknown op {op!r}")
        finally:
            self.metrics.record_latency(loop.time() - started)

    async def _handle_job(self, request: dict) -> dict:
        rid = request.get("id")
        if self._stopping.is_set():
            return protocol.error_response(
                rid, protocol.E_SHUTDOWN, "server is shutting down")
        program = request.get("program")
        if not isinstance(program, str) or not program.strip():
            return protocol.error_response(
                rid, protocol.E_BAD_REQUEST,
                "'program' must be non-empty source text")
        ok, fuel = protocol.validate_fuel(
            request.get("fuel", self.config.default_fuel))
        if not ok:
            return protocol.error_response(
                rid, protocol.E_BAD_REQUEST,
                "'fuel' must be null or an int >= 0")
        tenant = str(request.get("tenant", "anonymous"))

        admitted, effective_fuel, reason = self.budgets.admit(tenant, fuel)
        if not admitted:
            return protocol.error_response(
                rid, protocol.E_BUDGET, reason,
                tenant=tenant, remaining=self.budgets.remaining(tenant))

        job = {
            "op": request["op"],
            "program": program,
            "fuel": effective_fuel,
            "machine": request.get("machine", "native"),
            "mode": request.get("mode", "contract"),
            "discharge": request.get("discharge", "try"),
            "mc": bool(request.get("mc")),
            "entry": request.get("entry"),
            "kinds": request.get("kinds"),
            "result_kinds": request.get("result_kinds"),
        }
        if job["mode"] not in ("off", "contract", "full") or \
                job["discharge"] not in ("off", "try"):
            self.budgets.settle(tenant, effective_fuel, 0)
            return protocol.error_response(
                rid, protocol.E_BAD_REQUEST,
                "mode must be off|contract|full, discharge off|try")
        if job["machine"] not in ("native", "compiled", "tree"):
            self.budgets.settle(tenant, effective_fuel, 0)
            return protocol.error_response(
                rid, protocol.E_BAD_REQUEST,
                "machine must be native|compiled|tree")
        key = protocol.request_key(job)

        # -- admission control: shed rather than queue without bound.
        # Both checks run *after* the budget reservation so every shed
        # path settles — reservations must never leak.  Joining an
        # in-flight batch is always admitted: it adds no shard load.
        shard = self._route(key)
        counted = not self.batcher.has(key)
        if counted:
            if self._inflight_jobs >= self.config.max_inflight:
                self.budgets.settle(tenant, effective_fuel, 0)
                self.metrics.shed_overloaded += 1
                return protocol.error_response(
                    rid, protocol.E_OVERLOADED,
                    f"server at max in-flight capacity "
                    f"({self.config.max_inflight}); retry with backoff",
                    retry_after=self._shed_retry_after())
            if self._shard_load[shard] >= self.config.shard_queue_limit:
                self.budgets.settle(tenant, effective_fuel, 0)
                self.metrics.shed_shard_queue += 1
                return protocol.error_response(
                    rid, protocol.E_OVERLOADED,
                    f"shard {shard} admission queue full "
                    f"({self.config.shard_queue_limit}); retry with "
                    f"backoff",
                    shard=shard, retry_after=self._shed_retry_after())
            self._shard_load[shard] += 1
        self._inflight_jobs += 1
        try:
            result, batch_size, joined = await self.batcher.submit(key, job)
        except BaseException:
            # settle even on cancellation: reservations must not leak
            self.budgets.settle(tenant, effective_fuel, 0)
            raise
        finally:
            self._inflight_jobs -= 1
            if counted:
                self._shard_load[shard] -= 1
        steps = result.get("steps", 0) if result.get("ok") else 0
        self.budgets.settle(tenant, effective_fuel, steps)
        if not joined:
            # the leader sees the final batch size once the result lands;
            # one record per execution, not per member
            self.metrics.record_batch(batch_size)
            cache = result.get("cache") or {}
            self.metrics.record_cache(cache.get("hits", 0),
                                      cache.get("misses", 0),
                                      cache.get("rejected", 0))
            self.metrics.record_tier(result.get("tier"))
        response = dict(result)
        response["id"] = rid
        response["tenant"] = tenant
        response["batched"] = joined
        response["key"] = key[:16]
        return response

    def _shed_retry_after(self) -> float:
        """Backoff hint for shed requests: a couple of batch windows —
        long enough for in-flight work to make room, short enough that a
        retrying client keeps the queue warm."""
        return round(max(self.config.batch_window_ms / 1000.0 * 2, 0.05), 3)

    async def _handle_fault(self, request: dict, kind: str) -> dict:
        rid = request.get("id")
        if not self.config.allow_fault_injection:
            return protocol.error_response(
                rid, protocol.E_FAULTS_OFF,
                "start the server with --allow-fault-injection to use "
                f"op={kind}")
        shard = request.get("shard")
        if not isinstance(shard, int) or not (0 <= shard < len(self.pools)):
            self._crash_rr = (self._crash_rr + 1) % len(self.pools)
            shard = self._crash_rr
        if kind == "hang":
            job = {"op": "hang", "seconds": request.get("seconds", 0.0)}
        else:
            job = {"op": "crash", "once": bool(request.get("once")),
                   "marker": request.get("marker")}
        result = await self._dispatch_to_shard(shard, job)
        response = dict(result)
        response["id"] = rid
        response["shard"] = shard
        return response

    # -- dispatch -----------------------------------------------------------

    def _route(self, key: str) -> int:
        return int(key[:8], 16) % len(self.pools)

    async def _dispatch(self, key: str, job: dict) -> dict:
        return await self._dispatch_to_shard(self._route(key), job)

    async def _dispatch_to_shard(self, shard: int, job: dict) -> dict:
        """Run one job on its shard's warm worker: wall-clock bounded,
        crash/timeout rebuilds the worker and requeues exactly once.
        The shard's circuit breaker is layered over that: while open,
        requests are rejected immediately (``shard-unavailable`` with a
        ``retry_after`` hint) without touching the worker; a half-open
        breaker admits this job as its probe."""
        pool = self.pools[shard]
        breaker = self.breakers[shard]
        last_error = (protocol.E_CRASH, "worker unavailable")
        for attempt in (1, 2):
            allowed, retry_after = breaker.allow()
            if not allowed:
                self.metrics.breaker_rejected += 1
                return protocol.error_response(
                    None, protocol.E_SHARD_UNAVAILABLE,
                    f"shard {shard} circuit breaker is open after "
                    f"repeated worker faults",
                    shard=shard, retry_after=round(retry_after, 3))
            generation = pool.generation
            try:
                future = asyncio.wrap_future(pool.submit(job))
            except Exception as exc:  # racing a crash: executor broken
                self._rebuild(pool, generation)
                self._breaker_failure(breaker)
                last_error = (protocol.E_CRASH,
                              f"worker pool broken: {exc}")
            else:
                try:
                    result = await asyncio.wait_for(
                        future, self.config.request_timeout)
                # NB: TimeoutError must be tried before OSError — since
                # 3.10 asyncio.TimeoutError IS the builtin TimeoutError,
                # an OSError subclass.
                except asyncio.TimeoutError:
                    self.metrics.request_timeouts += 1
                    pool.kill()  # the worker is wedged; stop it for real
                    self._rebuild(pool, generation)
                    self._breaker_failure(breaker)
                    last_error = (
                        protocol.E_TIMEOUT,
                        f"request exceeded the "
                        f"{self.config.request_timeout}s wall-clock "
                        f"limit; worker recycled")
                except (BrokenExecutor, OSError) as exc:
                    self.metrics.worker_crashes += 1
                    self._rebuild(pool, generation)
                    self._breaker_failure(breaker)
                    last_error = (protocol.E_CRASH,
                                  f"worker died mid-request: "
                                  f"{type(exc).__name__}: {exc}")
                else:
                    if breaker.record_success():
                        self.metrics.breaker_closed += 1
                    return result
            if attempt == 1:
                self.metrics.requeues += 1
        return protocol.error_response(
            None, last_error[0], last_error[1],
            shard=shard, requeued=True)

    def _breaker_failure(self, breaker: CircuitBreaker) -> None:
        if breaker.record_failure():
            self.metrics.breaker_opened += 1

    def _rebuild(self, pool: ShardPool, generation: int) -> None:
        if pool.rebuild_if(generation):
            self.metrics.rebuilds += 1

    # -- the stats surface --------------------------------------------------

    def stats(self) -> dict:
        snap = self.metrics.snapshot()
        snap["config"] = self.config.snapshot()
        snap["budgets"] = self.budgets.snapshot()
        snap["shards"] = {
            "count": len(self.pools),
            "generations": [p.generation for p in self.pools],
            "queued": list(self._shard_load),
            "breakers": [b.snapshot() for b in self.breakers],
        }
        snap["pending_batches"] = self.batcher.pending()
        snap["inflight"] = self._inflight_jobs
        return snap


async def serve_main(config: ServeConfig, *, announce=print) -> int:
    """Start, announce ``listening on HOST:PORT`` (parsed by
    ``bench_serve.py`` and ``make serve-smoke``), run until a shutdown
    request or cancellation, then drain."""
    server = SizedServer(config)
    await server.start()
    announce(f"sized serve listening on {config.host}:{server.port} "
             f"({config.workers} workers, shard_depth="
             f"{config.shard_depth})", flush=True)
    try:
        await server.wait_stopped()
        # grace period: let the shutdown response (and any racing
        # untracked ping/stats responses) flush, then drain: stop
        # accepting, finish in-flight jobs within the deadline, fail
        # the rest with a structured shutting-down error
        await asyncio.sleep(0.1)
        await server.drain()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
    return 0
