"""The ``sized serve`` asyncio front-end.

Single event loop, JSON-lines TCP (see :mod:`repro.serve.protocol`);
requests on one connection are served concurrently and responses are
matched by ``id``.  The data path is::

    handle_request → budget admit → request_key → KeyedBatcher.submit
                   → _dispatch (shard route, wall-clock timeout,
                      crash/timeout requeue-once) → settle → respond

Every failure mode resolves to a structured response: a worker crash or
wall-clock timeout kills and rebuilds the shard's warm worker, requeues
the batch exactly once, and a second failure returns ``error.type``
``worker-crash``/``timeout`` to every batch member.  Nothing is dropped
and nothing wedges — the contract ``bench_serve.py`` and the CI smoke
gate on.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import BrokenExecutor
from typing import Optional

from repro.serve import protocol
from repro.serve.batching import KeyedBatcher
from repro.serve.budgets import TenantBudgets
from repro.serve.metrics import Metrics
from repro.serve.workers import ShardPool


class ServeConfig:
    """Knobs for one server instance (all have production-ish defaults;
    the CLI maps flags onto these 1:1)."""

    __slots__ = ("host", "port", "workers", "batch_window_ms",
                 "default_fuel", "tenant_budget", "request_timeout",
                 "cache_dir", "shard_depth", "allow_fault_injection")

    def __init__(self, host: str = "127.0.0.1", port: int = 8737,
                 workers: Optional[int] = None,
                 batch_window_ms: float = 2.0,
                 default_fuel: Optional[int] = 5_000_000,
                 tenant_budget: Optional[int] = None,
                 request_timeout: float = 60.0,
                 cache_dir: Optional[str] = None,
                 shard_depth: int = 2,
                 allow_fault_injection: bool = False):
        self.host = host
        self.port = port
        self.workers = workers or min(4, max(os.cpu_count() or 1, 1))
        self.batch_window_ms = batch_window_ms
        self.default_fuel = default_fuel
        self.tenant_budget = tenant_budget
        self.request_timeout = request_timeout
        self.cache_dir = cache_dir
        self.shard_depth = shard_depth
        self.allow_fault_injection = allow_fault_injection

    def snapshot(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class SizedServer:
    def __init__(self, config: ServeConfig):
        self.config = config
        self.metrics = Metrics()
        self.budgets = TenantBudgets(config.tenant_budget)
        self.batcher = KeyedBatcher(config.batch_window_ms / 1000.0,
                                    self._dispatch)
        self.pools = []
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopping = asyncio.Event()
        self._crash_rr = 0  # round-robin shard for un-keyed crash ops
        self._auto_id = 0

    # -- lifecycle ----------------------------------------------------------

    @property
    def port(self) -> int:
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self.pools = [
            ShardPool(i, self.config.cache_dir, self.config.shard_depth)
            for i in range(self.config.workers)
        ]
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port,
            limit=protocol.MAX_LINE)

    async def wait_stopped(self) -> None:
        await self._stopping.wait()

    async def stop(self) -> None:
        self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for pool in self.pools:
            pool.shutdown()

    # -- connection handling ------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        tasks = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._write(writer, write_lock,
                                      protocol.error_response(
                                          None, protocol.E_BAD_REQUEST,
                                          "request line too long"))
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._serve_line(line, writer, write_lock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _serve_line(self, line: bytes, writer, write_lock) -> None:
        rid = None
        try:
            request = protocol.decode(line)
            rid = request.get("id")
            if rid is None:
                self._auto_id += 1
                rid = f"auto-{self._auto_id}"
                request["id"] = rid
            response = await self.handle_request(request)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            response = protocol.error_response(
                rid, protocol.E_BAD_REQUEST,
                f"{type(exc).__name__}: {exc}")
        self.metrics.record_response(response)
        await self._write(writer, write_lock, response)

    @staticmethod
    async def _write(writer, write_lock, response: dict) -> None:
        try:
            async with write_lock:
                writer.write(protocol.encode(response))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass

    # -- request handling ---------------------------------------------------

    async def handle_request(self, request: dict) -> dict:
        loop = asyncio.get_running_loop()
        started = loop.time()
        rid = request.get("id")
        op = request.get("op")
        self.metrics.record_request(str(op))
        try:
            if op == "ping":
                return {"id": rid, "ok": True, "pong": True}
            if op == "stats":
                return {"id": rid, "ok": True, "stats": self.stats()}
            if op == "shutdown":
                self._stopping.set()
                return {"id": rid, "ok": True, "stopping": True}
            if op == "crash":
                return await self._handle_crash(request)
            if op in ("run", "verify"):
                return await self._handle_job(request)
            return protocol.error_response(
                rid, protocol.E_BAD_REQUEST, f"unknown op {op!r}")
        finally:
            self.metrics.record_latency(loop.time() - started)

    async def _handle_job(self, request: dict) -> dict:
        rid = request.get("id")
        if self._stopping.is_set():
            return protocol.error_response(
                rid, protocol.E_SHUTDOWN, "server is shutting down")
        program = request.get("program")
        if not isinstance(program, str) or not program.strip():
            return protocol.error_response(
                rid, protocol.E_BAD_REQUEST,
                "'program' must be non-empty source text")
        ok, fuel = protocol.validate_fuel(
            request.get("fuel", self.config.default_fuel))
        if not ok:
            return protocol.error_response(
                rid, protocol.E_BAD_REQUEST,
                "'fuel' must be null or an int >= 0")
        tenant = str(request.get("tenant", "anonymous"))

        admitted, effective_fuel, reason = self.budgets.admit(tenant, fuel)
        if not admitted:
            return protocol.error_response(
                rid, protocol.E_BUDGET, reason,
                tenant=tenant, remaining=self.budgets.remaining(tenant))

        job = {
            "op": request["op"],
            "program": program,
            "fuel": effective_fuel,
            "mode": request.get("mode", "contract"),
            "discharge": request.get("discharge", "try"),
            "mc": bool(request.get("mc")),
            "entry": request.get("entry"),
            "kinds": request.get("kinds"),
            "result_kinds": request.get("result_kinds"),
        }
        if job["mode"] not in ("off", "contract", "full") or \
                job["discharge"] not in ("off", "try"):
            self.budgets.settle(tenant, effective_fuel, 0)
            return protocol.error_response(
                rid, protocol.E_BAD_REQUEST,
                "mode must be off|contract|full, discharge off|try")
        key = protocol.request_key(job)
        try:
            result, batch_size, joined = await self.batcher.submit(key, job)
        except BaseException:
            # settle even on cancellation: reservations must not leak
            self.budgets.settle(tenant, effective_fuel, 0)
            raise
        steps = result.get("steps", 0) if result.get("ok") else 0
        self.budgets.settle(tenant, effective_fuel, steps)
        if not joined:
            # the leader sees the final batch size once the result lands;
            # one record per execution, not per member
            self.metrics.record_batch(batch_size)
            cache = result.get("cache") or {}
            self.metrics.record_cache(cache.get("hits", 0),
                                      cache.get("misses", 0),
                                      cache.get("rejected", 0))
        response = dict(result)
        response["id"] = rid
        response["tenant"] = tenant
        response["batched"] = joined
        response["key"] = key[:16]
        return response

    async def _handle_crash(self, request: dict) -> dict:
        rid = request.get("id")
        if not self.config.allow_fault_injection:
            return protocol.error_response(
                rid, protocol.E_FAULTS_OFF,
                "start the server with --allow-fault-injection to use "
                "op=crash")
        shard = request.get("shard")
        if not isinstance(shard, int) or not (0 <= shard < len(self.pools)):
            self._crash_rr = (self._crash_rr + 1) % len(self.pools)
            shard = self._crash_rr
        job = {"op": "crash", "once": bool(request.get("once")),
               "marker": request.get("marker")}
        result = await self._dispatch_to_shard(shard, job)
        response = dict(result)
        response["id"] = rid
        response["shard"] = shard
        return response

    # -- dispatch -----------------------------------------------------------

    def _route(self, key: str) -> int:
        return int(key[:8], 16) % len(self.pools)

    async def _dispatch(self, key: str, job: dict) -> dict:
        return await self._dispatch_to_shard(self._route(key), job)

    async def _dispatch_to_shard(self, shard: int, job: dict) -> dict:
        """Run one job on its shard's warm worker: wall-clock bounded,
        crash/timeout rebuilds the worker and requeues exactly once."""
        pool = self.pools[shard]
        last_error = (protocol.E_CRASH, "worker unavailable")
        for attempt in (1, 2):
            generation = pool.generation
            try:
                future = asyncio.wrap_future(pool.submit(job))
            except Exception as exc:  # racing a crash: executor broken
                self._rebuild(pool, generation)
                last_error = (protocol.E_CRASH,
                              f"worker pool broken: {exc}")
            else:
                try:
                    return await asyncio.wait_for(
                        future, self.config.request_timeout)
                # NB: TimeoutError must be tried before OSError — since
                # 3.10 asyncio.TimeoutError IS the builtin TimeoutError,
                # an OSError subclass.
                except asyncio.TimeoutError:
                    self.metrics.request_timeouts += 1
                    pool.kill()  # the worker is wedged; stop it for real
                    self._rebuild(pool, generation)
                    last_error = (
                        protocol.E_TIMEOUT,
                        f"request exceeded the "
                        f"{self.config.request_timeout}s wall-clock "
                        f"limit; worker recycled")
                except (BrokenExecutor, OSError) as exc:
                    self.metrics.worker_crashes += 1
                    self._rebuild(pool, generation)
                    last_error = (protocol.E_CRASH,
                                  f"worker died mid-request: "
                                  f"{type(exc).__name__}: {exc}")
            if attempt == 1:
                self.metrics.requeues += 1
        return protocol.error_response(
            None, last_error[0], last_error[1],
            shard=shard, requeued=True)

    def _rebuild(self, pool: ShardPool, generation: int) -> None:
        if pool.rebuild_if(generation):
            self.metrics.rebuilds += 1

    # -- the stats surface --------------------------------------------------

    def stats(self) -> dict:
        snap = self.metrics.snapshot()
        snap["config"] = self.config.snapshot()
        snap["budgets"] = self.budgets.snapshot()
        snap["shards"] = {
            "count": len(self.pools),
            "generations": [p.generation for p in self.pools],
        }
        snap["pending_batches"] = self.batcher.pending()
        return snap


async def serve_main(config: ServeConfig, *, announce=print) -> int:
    """Start, announce ``listening on HOST:PORT`` (parsed by
    ``bench_serve.py`` and ``make serve-smoke``), run until a shutdown
    request or cancellation, then drain."""
    server = SizedServer(config)
    await server.start()
    announce(f"sized serve listening on {config.host}:{server.port} "
             f"({config.workers} workers, shard_depth="
             f"{config.shard_depth})", flush=True)
    try:
        await server.wait_stopped()
        # grace period: let the shutdown response (and any racing
        # responses) flush before the pools go down
        await asyncio.sleep(0.2)
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
    return 0
