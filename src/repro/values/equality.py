"""``eqv?`` / ``equal?`` and structural hashing for runtime values.

``equal?`` drives two load-bearing pieces of the system: the ``→=`` arcs of
size-change graphs (an arc ``i →= j`` is recorded when the j-th new argument
is *equal* to the i-th old one, Fig. 4) and hash-map keying.  Pairs carry
memoized sizes and hashes, so non-equal structures are almost always
rejected in O(1).
"""

from __future__ import annotations

from repro.sexp.datum import Char, Symbol
from repro.values.values import NIL, HashValue, Pair, Vector


def scheme_eqv(a, b) -> bool:
    """``eqv?``: identity, except numbers/chars/booleans compare by value.

    Note ``bool`` is checked before ``int`` because Python booleans are
    integers; ``(eqv? #t 1)`` must be false.
    """
    if a is b:
        return True
    ta, tb = type(a), type(b)
    if ta is not tb:
        return False
    if ta is bool:
        return a == b
    if ta is int or ta is float:
        return a == b
    if ta is Char:
        return a.value == b.value
    if ta is Symbol:
        return a.name == b.name
    return False


def scheme_equal(a, b) -> bool:
    """``equal?``: structural equality, iterative on the cdr spine."""
    while True:
        if a is b:
            return True
        ta, tb = type(a), type(b)
        if ta is Pair and tb is Pair:
            if a.size != b.size or a.hash != b.hash:
                return False
            if not scheme_equal(a.car, b.car):
                return False
            a, b = a.cdr, b.cdr
            continue
        if ta is not tb:
            return False
        if ta is str:
            return a == b
        if ta is HashValue:
            return _hash_equal(a, b)
        if ta is Vector:
            if len(a.items) != len(b.items) or a.size != b.size \
                    or a.hash != b.hash:
                return False
            return all(scheme_equal(x, y)
                       for x, y in zip(a.items, b.items))
        return scheme_eqv(a, b)


def _hash_equal(a: HashValue, b: HashValue) -> bool:
    if a.count() != b.count() or a.hash_code != b.hash_code:
        return False
    sentinel = object()
    for key, val in a.table.items():
        other = b.table.get(key, sentinel)
        if other is sentinel or not scheme_equal(val, other):
            return False
    return True


def value_hash(v) -> int:
    """A structural hash consistent with :func:`scheme_equal`.

    Closures hash by identity (our ``equal?`` on closures is identity); the
    monitor's optional structural-hash keying mode uses the closure's λ
    label instead (see :mod:`repro.sct.monitor`).
    """
    t = type(v)
    if t is Pair:
        return v.hash
    if t is HashValue:
        return v.hash_code
    if t is Vector:
        return v.hash
    if t is bool:
        return 7 if v else 11
    if t is int:
        return hash(v)
    if t is Symbol:
        return hash(v.name)
    if t is str:
        return hash(v)
    if t is Char:
        return hash(("char", v.value))
    if v is NIL:
        return 23
    return id(v)
