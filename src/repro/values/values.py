"""Value representation for the embedded language.

Values (paper Fig. 3): primitives, integers, pairs, and closures — extended
here with booleans, symbols, characters, strings, immutable hash maps
(needed by the Fig. 2 lambda-calculus compiler), boxes, and void.

Two design points matter for the reproduction:

* **Pairs are immutable and memoize their size and structural hash.**  The
  default well-founded order compares values by size (see
  :mod:`repro.sct.order`); memoizing ``size`` at construction makes each
  size-change arc test O(1) instead of O(n), and the memoized hash lets
  ``equal?`` reject almost all non-equal pairs without deep traversal.
* **Closures are compared by identity.**  The paper hashes closures; we key
  tables by object identity (exact, per Lemma A.1) with structural hashing
  available as an option in the monitor.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.ds.hamt import Hamt
from repro.sexp.datum import Char, Dotted, Symbol


class Nil:
    """The empty list (a singleton: use :data:`NIL`)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "'()"


NIL = Nil()


class Void:
    """The result of side-effecting forms (a singleton: use :data:`VOID`)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "#<void>"


VOID = Void()


def _value_size(v) -> int:
    """Well-founded size measure; see :func:`size_of` for the contract."""
    if type(v) is int:
        return abs(v)
    if type(v) is Pair:
        return v.size
    if type(v) is str:
        return len(v)
    if v is NIL:
        return 0
    if type(v) is HashValue:
        return v.size
    if type(v) is Vector:
        return v.size
    return 1


def _value_hash(v) -> int:
    if type(v) is Pair:
        return v.hash
    if type(v) is HashValue:
        return v.hash_code
    if type(v) is Vector:
        return v.hash
    try:
        return hash(v)
    except TypeError:
        return id(v)


class Pair:
    """An immutable cons cell with memoized size and structural hash.

    The constructor is one of the hottest allocation sites in the system
    (every ``cons``), so the size/hash of the two common field types —
    ints and pairs — compute inline instead of through the generic
    helpers.
    """

    __slots__ = ("car", "cdr", "size", "hash")

    def __init__(self, car, cdr):
        self.car = car
        self.cdr = cdr
        tc = type(car)
        if tc is int:
            sc = car if car >= 0 else -car
            hc = hash(car)
        elif tc is Pair:
            sc = car.size
            hc = car.hash
        else:
            sc = _value_size(car)
            hc = _value_hash(car)
        td = type(cdr)
        if td is Pair:
            sd = cdr.size
            hd = cdr.hash
        elif td is int:
            sd = cdr if cdr >= 0 else -cdr
            hd = hash(cdr)
        else:
            sd = _value_size(cdr)
            hd = _value_hash(cdr)
        self.size = 1 + sc + sd
        self.hash = (hc * 1000003 ^ hd) & 0x7FFFFFFF

    def __repr__(self) -> str:
        return write_value(self)


def cons(car, cdr) -> Pair:
    return Pair(car, cdr)


class Closure:
    """A closure ``(x⃗, e, ρ)``.  ``lam`` is the λ node — a source
    :class:`repro.lang.ast.Lam` under the tree machine or a compiled
    :class:`repro.lang.resolve.CLam` under the compiled machine (both carry
    ``label``, ``params``, ``name``, ``loc``); ``env`` is correspondingly a
    dict-rib :class:`~repro.values.env.Env` chain or a list frame.

    Closures hash and compare by identity (Python's defaults), which is
    what lets the compiled machine's fast path key size-change tables by
    the closure object directly — identity keying with no key wrapper."""

    __slots__ = ("lam", "env", "name")

    def __init__(self, lam, env, name: Optional[str] = None):
        self.lam = lam
        self.env = env
        self.name = name or lam.name

    @property
    def params(self) -> Tuple[Symbol, ...]:
        return self.lam.params

    def describe(self) -> str:
        return self.name or f"λ@{self.lam.loc}"

    def __repr__(self) -> str:
        return f"#<procedure:{self.describe()}>"


class Prim:
    """A primitive operation.  All primitives are total on their domain
    (no primitive may diverge — paper §3.1), so they are never monitored.

    ``pure`` marks primitives whose application is observably effect-free
    (everything except output and mutation: ``display``/``write``/
    ``newline``/``set-box!``).  The compiled machine only executes pure
    primitives speculatively — an aborted inline attempt may re-evaluate
    its subexpressions, which must not duplicate effects."""

    __slots__ = ("name", "fn", "arity_min", "arity_max", "pure")

    _SAME = object()

    def __init__(
        self,
        name: str,
        fn: Callable,
        arity_min: int,
        arity_max=_SAME,
        pure: bool = True,
    ):
        self.name = name
        self.fn = fn
        self.arity_min = arity_min
        # ``arity_max=None`` means variadic; omitted means exactly arity_min.
        self.arity_max = arity_min if arity_max is Prim._SAME else arity_max
        self.pure = pure

    def accepts(self, n: int) -> bool:
        if n < self.arity_min:
            return False
        return self.arity_max is None or n <= self.arity_max

    def __repr__(self) -> str:
        return f"#<procedure:{self.name}>"


class TermWrapped:
    """A ``term/c``-guarded closure (paper Fig. 7, value ``term/c(x⃗,e,ρ)``).

    ``blame`` names the party charged when a size-change violation occurs in
    the dynamic extent of a call to this value (§2.3).
    """

    __slots__ = ("closure", "blame")

    def __init__(self, closure: Closure, blame):
        self.closure = closure
        self.blame = blame

    def __repr__(self) -> str:
        return f"#<terminating/c {self.closure!r}>"


class HashValue:
    """An immutable hash map value backed by :class:`repro.ds.hamt.Hamt`.

    Keys are compared with ``equal?`` semantics via :class:`HashKey`
    wrappers so that pairs and symbols key structurally.
    """

    __slots__ = ("table", "size", "hash_code")

    def __init__(self, table: Hamt):
        self.table = table
        size = 1
        code = 0x5BD1E995
        for k, v in table.items():
            size += _value_size(k.value) + _value_size(v)
            code ^= (k.code * 31 + _value_hash(v)) & 0x7FFFFFFF
        self.size = size
        self.hash_code = code & 0x7FFFFFFF

    @staticmethod
    def empty() -> "HashValue":
        return _EMPTY_HASH

    def set(self, key, value) -> "HashValue":
        return HashValue(self.table.set(HashKey(key), value))

    def get(self, key, default):
        return self.table.get(HashKey(key), default)

    def has_key(self, key) -> bool:
        return HashKey(key) in self.table

    def count(self) -> int:
        return len(self.table)

    def __repr__(self) -> str:
        return write_value(self)


class HashKey:
    """Adapter giving Python hashing/equality the object language's
    ``equal?`` semantics, so :class:`Hamt` can index hash-map entries."""

    __slots__ = ("value", "code")

    def __init__(self, value):
        self.value = value
        self.code = _value_hash(value) & 0x7FFFFFFF

    def __hash__(self) -> int:
        return self.code

    def __eq__(self, other: object) -> bool:
        from repro.values.equality import scheme_equal

        return isinstance(other, HashKey) and scheme_equal(self.value, other.value)


_EMPTY_HASH = HashValue(Hamt.empty())


class Box:
    """A mutable cell (``box`` / ``unbox`` / ``set-box!``)."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self) -> str:
        return f"#&{write_value(self.value)}"


class Vector:
    """An immutable vector with memoized size and structural hash.

    Immutability keeps the well-founded size order sound (a vector's size
    can never change under a monitored extent, exactly like pairs);
    ``vector-set`` is a functional update returning a new vector.
    """

    __slots__ = ("items", "size", "hash")

    def __init__(self, items: Tuple):
        self.items = tuple(items)
        size = 1
        code = 0x9E3779B9
        for item in self.items:
            size += _value_size(item)
            code = (code * 1000003 ^ _value_hash(item)) & 0x7FFFFFFF
        self.size = size
        self.hash = code

    def __repr__(self) -> str:
        return write_value(self)


class Promise:
    """A ``delay``ed computation (``(delay e)`` / ``(force p)``).

    The thunk is an ordinary closure, so forcing it is an ordinary —
    monitored — closure call; a promise only adds the memo cell.  The
    ``force`` driver lives in the prelude (object language) because no
    primitive may invoke a closure; the primitives here just read and
    write the cell.
    """

    __slots__ = ("thunk", "value", "forced")

    def __init__(self, thunk):
        self.thunk = thunk
        self.value = None
        self.forced = False

    def __repr__(self) -> str:
        if self.forced:
            return f"#<promise!{write_value(self.value)}>"
        return "#<promise>"


def size_of(v) -> Optional[int]:
    """The default well-founded size of a value, or ``None`` if the value
    has no well-founded size (floats: ``|x| < |y|`` admits infinite descent).

    Sizes: ``|n|`` for integers, ``1 + size(car) + size(cdr)`` for pairs
    (memoized), string length, 0 for nil, 1 for atoms/closures/prims.  Any
    strict decrease of this measure is well-founded, which is all the
    size-change argument needs.
    """
    if type(v) is bool:
        return 1
    if type(v) is float:
        return None
    return _value_size(v)


# -- conversions ------------------------------------------------------------


def from_datum(datum):
    """Convert a quoted datum (reader output, stripped) to a runtime value."""
    if isinstance(datum, list):
        acc = NIL
        for item in reversed(datum):
            acc = Pair(from_datum(item), acc)
        return acc
    if isinstance(datum, Dotted):
        acc = from_datum(datum.tail)
        for item in reversed(datum.items):
            acc = Pair(from_datum(item), acc)
        return acc
    return datum  # Symbol, int, float, bool, str, Char are shared


def value_to_datum(v):
    """Inverse of :func:`from_datum` for printable values."""
    if type(v) is Pair or v is NIL:
        items = []
        node = v
        while type(node) is Pair:
            items.append(value_to_datum(node.car))
            node = node.cdr
        if node is NIL:
            return items
        return Dotted(tuple(items), value_to_datum(node))
    return v


def python_to_list(values) -> object:
    """Build an object-language list from a Python iterable."""
    acc = NIL
    for v in reversed(list(values)):
        acc = Pair(v, acc)
    return acc


def list_to_python(v) -> list:
    """Flatten a proper object-language list into a Python list."""
    out = []
    while type(v) is Pair:
        out.append(v.car)
        v = v.cdr
    if v is not NIL:
        raise ValueError("improper list")
    return out


def is_list_value(v) -> bool:
    while type(v) is Pair:
        v = v.cdr
    return v is NIL


def write_value(v) -> str:
    """Render a value for display (quote-less external form)."""
    if v is True:
        return "#t"
    if v is False:
        return "#f"
    if v is NIL:
        return "()"
    if v is VOID:
        return "#<void>"
    if type(v) is Pair:
        parts = []
        node = v
        while type(node) is Pair:
            parts.append(write_value(node.car))
            node = node.cdr
        if node is NIL:
            return "(" + " ".join(parts) + ")"
        return "(" + " ".join(parts) + " . " + write_value(node) + ")"
    if isinstance(v, Symbol):
        return v.name
    if isinstance(v, str):
        escaped = v.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(v, Char):
        return f"#\\{v.external_name()}"
    if isinstance(v, HashValue):
        inner = " ".join(
            f"({write_value(k.value)} . {write_value(val)})"
            for k, val in v.table.items()
        )
        return f"#hash({inner})"
    if isinstance(v, Vector):
        return "#(" + " ".join(write_value(x) for x in v.items) + ")"
    if isinstance(v, Promise):
        # Deliberately opaque about the memoized value: two runs must
        # print the same text whether or not a promise happens to have
        # been forced before the answer was rendered.
        return "#<promise>"
    return repr(v)
