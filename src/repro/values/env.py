"""Environments: chained mutable ribs plus a global frame.

Frames are mutable dictionaries so ``set!`` and ``letrec`` back-patching
work with ordinary Scheme semantics; closures capture the frame by
reference.  Lookup walks the (usually short) chain of ribs and falls through
to the global frame.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.sexp.datum import Symbol


class UnboundVariable(Exception):
    """A reference to a variable with no binding (a run-time error)."""

    def __init__(self, name: Symbol):
        super().__init__(f"unbound variable: {name.name}")
        self.name = name


class GlobalEnv:
    """The top-level frame: primitives, prelude closures, and defines."""

    __slots__ = ("bindings",)

    def __init__(self, bindings: Optional[Dict[Symbol, object]] = None):
        self.bindings = dict(bindings) if bindings else {}

    def lookup(self, name: Symbol):
        try:
            return self.bindings[name]
        except KeyError:
            raise UnboundVariable(name) from None

    def define(self, name: Symbol, value) -> None:
        self.bindings[name] = value

    def set(self, name: Symbol, value) -> None:
        if name not in self.bindings:
            raise UnboundVariable(name)
        self.bindings[name] = value

    def snapshot(self) -> "GlobalEnv":
        """A shallow copy, so one program run cannot pollute another."""
        return GlobalEnv(self.bindings)


class Env:
    """A local rib chained to a parent :class:`Env` or :class:`GlobalEnv`."""

    __slots__ = ("bindings", "parent")

    def __init__(self, bindings: Dict[Symbol, object], parent):
        self.bindings = bindings
        self.parent = parent

    @staticmethod
    def extend(parent, names: Iterable[Symbol], values: Iterable[object]) -> "Env":
        return Env(dict(zip(names, values)), parent)

    def lookup(self, name: Symbol):
        env = self
        while type(env) is Env:
            bindings = env.bindings
            if name in bindings:
                return bindings[name]
            env = env.parent
        return env.lookup(name)

    def set(self, name: Symbol, value) -> None:
        env = self
        while type(env) is Env:
            if name in env.bindings:
                env.bindings[name] = value
                return
            env = env.parent
        env.set(name, value)

    def define(self, name: Symbol, value) -> None:
        """Bind in this rib (used by ``letrec`` initialization)."""
        self.bindings[name] = value
