"""Environments: chained mutable ribs plus a global frame.

Frames are mutable dictionaries so ``set!`` and ``letrec`` back-patching
work with ordinary Scheme semantics; closures capture the frame by
reference.  Lookup walks the (usually short) chain of ribs and falls through
to the global frame.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.sexp.datum import Symbol


class UnboundVariable(Exception):
    """A reference to a variable with no binding (a run-time error)."""

    def __init__(self, name: Symbol):
        super().__init__(f"unbound variable: {name.name}")
        self.name = name


class GlobalEnv:
    """The top-level frame: primitives, prelude closures, and defines.

    ``flavor`` records which machine built the closures it holds
    (``'compiled'`` / ``'tree'`` / ``None`` for machine-agnostic contents
    such as bare primitives); :func:`repro.eval.machine.run_program`
    refuses to run an environment on the other machine, since the two
    closure representations are not interchangeable.
    """

    __slots__ = ("bindings", "by_name", "flavor")

    def __init__(self, bindings: Optional[Dict[Symbol, object]] = None,
                 flavor: Optional[str] = None,
                 _by_name: Optional[Dict[str, object]] = None):
        self.bindings = dict(bindings) if bindings else {}
        # String-keyed mirror for the compiled machine's global reads:
        # str hashing is C-level and cached, where Symbol.__hash__ is a
        # Python-level call per probe.  Symbols compare by name, so the
        # mirror is semantically exact.  Kept in sync by define/set — the
        # only global-write paths the evaluators use.
        if _by_name is not None:
            self.by_name = dict(_by_name)
        else:
            self.by_name = {s.name: v for s, v in self.bindings.items()}
        self.flavor = flavor

    def lookup(self, name: Symbol):
        try:
            return self.bindings[name]
        except KeyError:
            raise UnboundVariable(name) from None

    def define(self, name: Symbol, value) -> None:
        self.bindings[name] = value
        self.by_name[name.name] = value

    def set(self, name: Symbol, value) -> None:
        # Never let the backing dict's KeyError escape: ``set!`` on an
        # unbound global is the object language's UnboundVariable error,
        # carrying the offending name.
        if name not in self.bindings:
            raise UnboundVariable(name)
        self.bindings[name] = value
        self.by_name[name.name] = value

    def snapshot(self) -> "GlobalEnv":
        """A shallow copy, so one program run cannot pollute another."""
        return GlobalEnv(self.bindings, self.flavor, _by_name=self.by_name)


class Env:
    """A local rib chained to a parent :class:`Env` or :class:`GlobalEnv`."""

    __slots__ = ("bindings", "parent")

    def __init__(self, bindings: Dict[Symbol, object], parent):
        self.bindings = bindings
        self.parent = parent

    @staticmethod
    def extend(parent, names: Iterable[Symbol], values: Iterable[object]) -> "Env":
        return Env(dict(zip(names, values)), parent)

    def lookup(self, name: Symbol):
        env = self
        while type(env) is Env:
            bindings = env.bindings
            if name in bindings:
                return bindings[name]
            env = env.parent
        return env.lookup(name)

    def set(self, name: Symbol, value) -> None:
        env = self
        while type(env) is Env:
            if name in env.bindings:
                env.bindings[name] = value
                return
            env = env.parent
        env.set(name, value)

    def define(self, name: Symbol, value) -> None:
        """Bind in this rib (used by ``letrec`` initialization)."""
        self.bindings[name] = value
