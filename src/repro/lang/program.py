"""Whole programs: a sequence of top-level definitions and expressions."""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.lang import ast
from repro.sexp.datum import Symbol
from repro.sexp.reader import SrcLoc


class TopDefine:
    __slots__ = ("name", "expr", "loc")

    def __init__(self, name: Symbol, expr: ast.Node, loc: Optional[SrcLoc]):
        self.name = name
        self.expr = expr
        self.loc = loc

    def __repr__(self) -> str:
        return f"(define {self.name} ...)"


class TopExpr:
    __slots__ = ("expr", "loc")

    def __init__(self, expr: ast.Node, loc: Optional[SrcLoc]):
        self.expr = expr
        self.loc = loc

    def __repr__(self) -> str:
        return f"(top {self.expr!r})"


TopForm = Union[TopDefine, TopExpr]


class Program:
    """A parsed program.  Definitions bind in a shared global frame, so
    top-level recursion works through global lookup (Scheme semantics)."""

    __slots__ = ("forms", "source")

    def __init__(self, forms: Tuple[TopForm, ...], source: str = "<program>"):
        self.forms = forms
        self.source = source

    def defined_names(self):
        return [f.name for f in self.forms if isinstance(f, TopDefine)]

    def iter_exprs(self):
        """All top-level expressions (define right-hand sides included)."""
        for form in self.forms:
            yield form.expr

    def iter_nodes(self):
        for expr in self.iter_exprs():
            yield from ast.iter_nodes(expr)

    def __repr__(self) -> str:
        return f"Program({len(self.forms)} forms from {self.source})"
