"""The embedded language: core AST, surface-to-core compiler, primitives."""

from repro.lang.ast import (
    App,
    Begin,
    If,
    Lam,
    Let,
    LetRec,
    Lit,
    SetBang,
    TermC,
    Var,
)
from repro.lang.parser import ParseError, parse_expr, parse_program
from repro.lang.program import Program, TopDefine, TopExpr

__all__ = [
    "App",
    "Begin",
    "If",
    "Lam",
    "Let",
    "LetRec",
    "Lit",
    "SetBang",
    "TermC",
    "Var",
    "ParseError",
    "parse_expr",
    "parse_program",
    "Program",
    "TopDefine",
    "TopExpr",
]
