"""Primitive operations.

Paper §3.1: no primitive may cause divergence — every primitive here is
total on its domain and raises :class:`~repro.eval.errors.SchemeError`
(``errorRT``) outside it.  Primitives are therefore never size-change
monitored (the paper's "white-list of primitives known to terminate").

Higher-order list operations (``map``, ``foldr`` ...) are deliberately *not*
primitives: they are prelude closures (see :data:`PRELUDE_SOURCE`) so that
their recursion is monitored like user code.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import BlameError, SchemeError
from repro.sexp.datum import Char, Symbol, intern
from repro.values.env import GlobalEnv
from repro.values.equality import scheme_equal, scheme_eqv
from repro.values.values import (
    NIL,
    VOID,
    Box,
    Closure,
    HashValue,
    Pair,
    Prim,
    Promise,
    TermWrapped,
    Vector,
    is_list_value,
    list_to_python,
    python_to_list,
    write_value,
)


def _num(v, who: str):
    if type(v) is int or type(v) is float:
        return v
    raise SchemeError(f"{who}: expected a number, got {write_value(v)}")


def _int(v, who: str) -> int:
    if type(v) is int:
        return v
    raise SchemeError(f"{who}: expected an integer, got {write_value(v)}")


def _pair(v, who: str) -> Pair:
    if type(v) is Pair:
        return v
    raise SchemeError(f"{who}: expected a pair, got {write_value(v)}")


def _str(v, who: str) -> str:
    if type(v) is str:
        return v
    raise SchemeError(f"{who}: expected a string, got {write_value(v)}")


def _char(v, who: str) -> Char:
    if type(v) is Char:
        return v
    raise SchemeError(f"{who}: expected a character, got {write_value(v)}")


def _sym(v, who: str) -> Symbol:
    if type(v) is Symbol:
        return v
    raise SchemeError(f"{who}: expected a symbol, got {write_value(v)}")


def _hash(v, who: str) -> HashValue:
    if type(v) is HashValue:
        return v
    raise SchemeError(f"{who}: expected a hash, got {write_value(v)}")


def _chain(args: List, rel: Callable, who: str) -> bool:
    # Two-integer compares dominate every loop-test in the corpus.
    if len(args) == 2:
        a, b = args
        if type(a) is int and type(b) is int:
            return rel(a, b)
    prev = _num(args[0], who)
    for b in args[1:]:
        nxt = _num(b, who)
        if not rel(prev, nxt):
            return False
        prev = nxt
    return True


# -- numeric ------------------------------------------------------------------


def _p_add(args):
    if len(args) == 2:
        a, b = args
        if type(a) is int and type(b) is int:
            return a + b
    total = 0
    for a in args:
        total = total + _num(a, "+")
    return total


def _p_sub(args):
    if len(args) == 2:
        a, b = args
        if type(a) is int and type(b) is int:
            return a - b
    if len(args) == 1:
        return -_num(args[0], "-")
    total = _num(args[0], "-")
    for a in args[1:]:
        total = total - _num(a, "-")
    return total


def _p_mul(args):
    if len(args) == 2:
        a, b = args
        if type(a) is int and type(b) is int:
            return a * b
    total = 1
    for a in args:
        total = total * _num(a, "*")
    return total


def _p_quotient(args):
    a, b = _int(args[0], "quotient"), _int(args[1], "quotient")
    if b == 0:
        raise SchemeError("quotient: division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _p_remainder(args):
    a, b = _int(args[0], "remainder"), _int(args[1], "remainder")
    if b == 0:
        raise SchemeError("remainder: division by zero")
    q = abs(a) // abs(b)
    if (a >= 0) != (b >= 0):
        q = -q
    return a - q * b


def _p_modulo(args):
    a, b = _int(args[0], "modulo"), _int(args[1], "modulo")
    if b == 0:
        raise SchemeError("modulo: division by zero")
    return a % b if b > 0 else -((-a) % (-b))


def _p_min(args):
    vals = [_num(a, "min") for a in args]
    return min(vals)


def _p_max(args):
    vals = [_num(a, "max") for a in args]
    return max(vals)


def _p_expt(args):
    base, e = _num(args[0], "expt"), _int(args[1], "expt")
    if e < 0:
        raise SchemeError("expt: negative exponent on integer base")
    return base**e


# -- pairs & lists -------------------------------------------------------------


def _p_car(args):
    v = args[0]
    if type(v) is Pair:
        return v.car
    raise SchemeError(f"car: expected a pair, got {write_value(v)}")


def _p_cdr(args):
    v = args[0]
    if type(v) is Pair:
        return v.cdr
    raise SchemeError(f"cdr: expected a pair, got {write_value(v)}")


def _caxr(path: str):
    def fn(args, path=path):
        v = args[0]
        for step in reversed(path):
            p = _pair(v, f"c{path}r")
            v = p.car if step == "a" else p.cdr
        return v

    return fn


def _p_list_ref(args):
    v, n = args[0], _int(args[1], "list-ref")
    while n > 0:
        v = _pair(v, "list-ref").cdr
        n -= 1
    return _pair(v, "list-ref").car


def _p_list_tail(args):
    v, n = args[0], _int(args[1], "list-tail")
    while n > 0:
        v = _pair(v, "list-tail").cdr
        n -= 1
    return v


def _p_length(args):
    n = 0
    v = args[0]
    while type(v) is Pair:
        n += 1
        v = v.cdr
    if v is not NIL:
        raise SchemeError("length: expected a proper list")
    return n


def _p_append(args):
    if not args:
        return NIL
    acc = args[-1]
    for lst in reversed(args[:-1]):
        items = list_to_python_checked(lst, "append")
        for item in reversed(items):
            acc = Pair(item, acc)
    return acc


def list_to_python_checked(v, who: str) -> list:
    try:
        return list_to_python(v)
    except ValueError:
        raise SchemeError(f"{who}: expected a proper list, got {write_value(v)}") from None


def _p_reverse(args):
    acc = NIL
    v = args[0]
    while type(v) is Pair:
        acc = Pair(v.car, acc)
        v = v.cdr
    if v is not NIL:
        raise SchemeError("reverse: expected a proper list")
    return acc


def _member_by(args, eq, who: str):
    target, v = args[0], args[1]
    while type(v) is Pair:
        if eq(v.car, target):
            return v
        v = v.cdr
    return False


def _assoc_by(args, eq, who: str):
    target, v = args[0], args[1]
    while type(v) is Pair:
        entry = v.car
        if type(entry) is Pair and eq(entry.car, target):
            return entry
        v = v.cdr
    return False


# -- predicates ----------------------------------------------------------------


def _is_procedure(v) -> bool:
    return isinstance(v, (Closure, Prim, TermWrapped))


# -- strings & chars -------------------------------------------------------------


def _p_string_to_list(args):
    s = _str(args[0], "string->list")
    return python_to_list([Char(c) for c in s])


def _p_list_to_string(args):
    chars = list_to_python_checked(args[0], "list->string")
    return "".join(_char(c, "list->string").value for c in chars)


def _p_substring(args):
    s = _str(args[0], "substring")
    start = _int(args[1], "substring")
    end = _int(args[2], "substring") if len(args) == 3 else len(s)
    if not (0 <= start <= end <= len(s)):
        raise SchemeError("substring: index out of range")
    return s[start:end]


def _p_string_ref(args):
    s = _str(args[0], "string-ref")
    i = _int(args[1], "string-ref")
    if not (0 <= i < len(s)):
        raise SchemeError("string-ref: index out of range")
    return Char(s[i])


# -- hash maps -------------------------------------------------------------------


def _p_hash(args):
    if len(args) % 2 != 0:
        raise SchemeError("hash: expected an even number of arguments")
    h = HashValue.empty()
    for i in range(0, len(args), 2):
        h = h.set(args[i], args[i + 1])
    return h


_NO_DEFAULT = object()


def _p_hash_ref(args):
    h = _hash(args[0], "hash-ref")
    default = args[2] if len(args) == 3 else _NO_DEFAULT
    value = h.get(args[1], _NO_DEFAULT)
    if value is _NO_DEFAULT:
        if default is _NO_DEFAULT:
            raise SchemeError(f"hash-ref: no value for key {write_value(args[1])}")
        return default
    return value


# -- vectors -------------------------------------------------------------------


def _vec(v, who: str) -> Vector:
    if type(v) is Vector:
        return v
    raise SchemeError(f"{who}: expected a vector, got {write_value(v)}")


def _p_make_vector(args):
    n = _int(args[0], "make-vector")
    if n < 0:
        raise SchemeError("make-vector: expected a non-negative length")
    fill = args[1] if len(args) == 2 else 0
    return Vector((fill,) * n)


def _p_vector_ref(args):
    v = _vec(args[0], "vector-ref")
    i = _int(args[1], "vector-ref")
    if not (0 <= i < len(v.items)):
        raise SchemeError(
            f"vector-ref: index {i} out of range for length {len(v.items)}")
    return v.items[i]


def _p_vector_set(args):
    v = _vec(args[0], "vector-set")
    i = _int(args[1], "vector-set")
    if not (0 <= i < len(v.items)):
        raise SchemeError(
            f"vector-set: index {i} out of range for length {len(v.items)}")
    return Vector(v.items[:i] + (args[2],) + v.items[i + 1:])


# -- promises ------------------------------------------------------------------
#
# ``(delay e)`` parses to ``(%promise (λ () e))`` and ``force`` is a
# prelude closure: a primitive must never invoke a closure (the discharge
# pipeline's define-time safety check relies on that), so the cell
# operations below are the whole primitive surface and the actual thunk
# call happens in monitored object-language code.


def _promise(v, who: str) -> Promise:
    if type(v) is Promise:
        return v
    raise SchemeError(f"{who}: expected a promise, got {write_value(v)}")


def _p_promise_memo(args):
    p = _promise(args[0], "%promise-memo!")
    if not p.forced:
        p.value = args[1]
        p.forced = True
        p.thunk = None  # the thunk (and its captured frame) is dead now
    return p.value


# -- misc -------------------------------------------------------------------------


def _p_error(args):
    parts = []
    for a in args:
        parts.append(a if type(a) is str else write_value(a))
    raise SchemeError("error: " + " ".join(parts))


def _p_blame_error(args):
    party, name, value = args
    raise BlameError(
        party if type(party) is str else write_value(party),
        name if type(name) is str else write_value(name),
        write_value(value),
    )


def _p_void(args):
    return VOID


_PRIM_SPECS = []


def _prim(name: str, arity_min: int, arity_max: Optional[int], fn: Callable,
          pure: bool = True):
    _PRIM_SPECS.append(Prim(name, fn, arity_min, arity_max, pure=pure))


# numbers
_prim("+", 0, None, _p_add)
_prim("-", 1, None, _p_sub)
_prim("*", 0, None, _p_mul)
_prim("quotient", 2, 2, _p_quotient)
_prim("remainder", 2, 2, _p_remainder)
_prim("modulo", 2, 2, _p_modulo)
_prim("abs", 1, 1, lambda a: abs(_num(a[0], "abs")))
_prim("min", 1, None, _p_min)
_prim("max", 1, None, _p_max)
_prim("expt", 2, 2, _p_expt)
_prim("add1", 1, 1, lambda a: _num(a[0], "add1") + 1)
_prim("sub1", 1, 1, lambda a: _num(a[0], "sub1") - 1)
_prim("=", 2, None, lambda a: _chain(a, lambda x, y: x == y, "="))
_prim("<", 2, None, lambda a: _chain(a, lambda x, y: x < y, "<"))
_prim(">", 2, None, lambda a: _chain(a, lambda x, y: x > y, ">"))
_prim("<=", 2, None, lambda a: _chain(a, lambda x, y: x <= y, "<="))
_prim(">=", 2, None, lambda a: _chain(a, lambda x, y: x >= y, ">="))
_prim("zero?", 1, 1, lambda a: _num(a[0], "zero?") == 0)
_prim("positive?", 1, 1, lambda a: _num(a[0], "positive?") > 0)
_prim("negative?", 1, 1, lambda a: _num(a[0], "negative?") < 0)
_prim("even?", 1, 1, lambda a: _int(a[0], "even?") % 2 == 0)
_prim("odd?", 1, 1, lambda a: _int(a[0], "odd?") % 2 == 1)
_prim("number?", 1, 1, lambda a: type(a[0]) is int or type(a[0]) is float)
_prim("integer?", 1, 1, lambda a: type(a[0]) is int)

# pairs & lists
_prim("cons", 2, 2, lambda a: Pair(a[0], a[1]))
_prim("car", 1, 1, _p_car)
_prim("cdr", 1, 1, _p_cdr)
for _path in ("aa", "ad", "da", "dd", "aaa", "aad", "ada", "add",
              "daa", "dad", "dda", "ddd", "addd", "dddd"):
    _prim(f"c{_path}r", 1, 1, _caxr(_path))
_prim("pair?", 1, 1, lambda a: type(a[0]) is Pair)
_prim("cons?", 1, 1, lambda a: type(a[0]) is Pair)
_prim("null?", 1, 1, lambda a: a[0] is NIL)
_prim("empty?", 1, 1, lambda a: a[0] is NIL)
_prim("list", 0, None, lambda a: python_to_list(a))
_prim("list?", 1, 1, lambda a: is_list_value(a[0]))
_prim("length", 1, 1, _p_length)
_prim("append", 0, None, _p_append)
_prim("reverse", 1, 1, _p_reverse)
_prim("list-ref", 2, 2, _p_list_ref)
_prim("list-tail", 2, 2, _p_list_tail)
_prim("first", 1, 1, lambda a: _pair(a[0], "first").car)
_prim("rest", 1, 1, lambda a: _pair(a[0], "rest").cdr)
_prim("second", 1, 1, _caxr("ad"))
_prim("third", 1, 1, _caxr("add"))
_prim("member", 2, 2, lambda a: _member_by(a, scheme_equal, "member"))
_prim("memq", 2, 2, lambda a: _member_by(a, lambda x, y: x is y or scheme_eqv(x, y), "memq"))
_prim("memv", 2, 2, lambda a: _member_by(a, scheme_eqv, "memv"))
_prim("assoc", 2, 2, lambda a: _assoc_by(a, scheme_equal, "assoc"))
_prim("assq", 2, 2, lambda a: _assoc_by(a, scheme_eqv, "assq"))
_prim("assv", 2, 2, lambda a: _assoc_by(a, scheme_eqv, "assv"))

# equality & predicates
_prim("eq?", 2, 2, lambda a: a[0] is a[1] or scheme_eqv(a[0], a[1]))
_prim("eqv?", 2, 2, lambda a: scheme_eqv(a[0], a[1]))
_prim("equal?", 2, 2, lambda a: scheme_equal(a[0], a[1]))
_prim("not", 1, 1, lambda a: a[0] is False)
_prim("boolean?", 1, 1, lambda a: type(a[0]) is bool)
_prim("symbol?", 1, 1, lambda a: type(a[0]) is Symbol)
_prim("procedure?", 1, 1, lambda a: _is_procedure(a[0]))
_prim("string?", 1, 1, lambda a: type(a[0]) is str)
_prim("char?", 1, 1, lambda a: type(a[0]) is Char)
_prim("void?", 1, 1, lambda a: a[0] is VOID)

# strings & chars
_prim("char=?", 2, None,
      lambda a: all(_char(x, "char=?").value == _char(y, "char=?").value
                    for x, y in zip(a, a[1:])))
_prim("char<?", 2, None,
      lambda a: all(_char(x, "char<?").value < _char(y, "char<?").value
                    for x, y in zip(a, a[1:])))
_prim("char->integer", 1, 1, lambda a: ord(_char(a[0], "char->integer").value))
_prim("integer->char", 1, 1, lambda a: Char(chr(_int(a[0], "integer->char"))))
_prim("string=?", 2, None,
      lambda a: all(_str(x, "string=?") == _str(y, "string=?")
                    for x, y in zip(a, a[1:])))
_prim("string<?", 2, None,
      lambda a: all(_str(x, "string<?") < _str(y, "string<?")
                    for x, y in zip(a, a[1:])))
_prim("string-length", 1, 1, lambda a: len(_str(a[0], "string-length")))
_prim("string-append", 0, None,
      lambda a: "".join(_str(s, "string-append") for s in a))
_prim("string->list", 1, 1, _p_string_to_list)
_prim("list->string", 1, 1, _p_list_to_string)
_prim("string->symbol", 1, 1, lambda a: intern(_str(a[0], "string->symbol")))
_prim("symbol->string", 1, 1, lambda a: _sym(a[0], "symbol->string").name)
_prim("substring", 2, 3, _p_substring)
_prim("string-ref", 2, 2, _p_string_ref)
_prim("number->string", 1, 1, lambda a: str(_num(a[0], "number->string")))

# hash maps
_prim("hash", 0, None, _p_hash)
_prim("hash-set", 3, 3, lambda a: _hash(a[0], "hash-set").set(a[1], a[2]))
_prim("hash-ref", 2, 3, _p_hash_ref)
_prim("hash-has-key?", 2, 2, lambda a: _hash(a[0], "hash-has-key?").has_key(a[1]))
_prim("hash-count", 1, 1, lambda a: _hash(a[0], "hash-count").count())

# boxes
_prim("box", 1, 1, lambda a: Box(a[0]))
_prim("box?", 1, 1, lambda a: type(a[0]) is Box)
_prim("unbox", 1, 1, lambda a: a[0].value if type(a[0]) is Box
      else _raise(SchemeError("unbox: expected a box")))
_prim("set-box!", 2, 2, lambda a: _set_box(a), pure=False)

# vectors (immutable; vector-set is a functional update)
_prim("vector", 0, None, lambda a: Vector(tuple(a)))
_prim("vector?", 1, 1, lambda a: type(a[0]) is Vector)
_prim("make-vector", 1, 2, _p_make_vector)
_prim("vector-length", 1, 1,
      lambda a: len(_vec(a[0], "vector-length").items))
_prim("vector-ref", 2, 2, _p_vector_ref)
_prim("vector-set", 3, 3, _p_vector_set)
_prim("vector->list", 1, 1,
      lambda a: python_to_list(_vec(a[0], "vector->list").items))
_prim("list->vector", 1, 1,
      lambda a: Vector(tuple(list_to_python(a[0])))
      if is_list_value(a[0])
      else _raise(SchemeError("list->vector: expected a list")))

# promises (the cell half of delay/force; the thunk call is in the prelude)
_prim("%promise", 1, 1,
      lambda a: Promise(a[0]) if _is_procedure(a[0])
      else _raise(SchemeError("%promise: expected a procedure")))
_prim("promise?", 1, 1, lambda a: type(a[0]) is Promise)
_prim("%promise-forced?", 1, 1,
      lambda a: _promise(a[0], "%promise-forced?").forced)
_prim("%promise-value", 1, 1,
      lambda a: _promise(a[0], "%promise-value").value
      if _promise(a[0], "%promise-value").forced
      else _raise(SchemeError("%promise-value: promise not yet forced")))
_prim("%promise-thunk", 1, 1,
      lambda a: _promise(a[0], "%promise-thunk").thunk)
_prim("%promise-memo!", 2, 2, _p_promise_memo, pure=False)

# misc
_prim("void", 0, None, _p_void)
_prim("error", 1, None, _p_error)
_prim("blame-error", 3, 3, _p_blame_error)


def _raise(exc):
    raise exc


def _set_box(args):
    if type(args[0]) is not Box:
        raise SchemeError("set-box!: expected a box")
    args[0].value = args[1]
    return VOID


PRIMITIVES: Dict[Symbol, Prim] = {intern(p.name): p for p in _PRIM_SPECS}

PRIM_NAMES = frozenset(p.name for p in _PRIM_SPECS)


# -- prelude ---------------------------------------------------------------------
#
# Higher-order list operations written *in* the object language so their
# recursion is subject to size-change monitoring like any user code.

PRELUDE_SOURCE = """
(define (map f l)
  (if (null? l) '() (cons (f (car l)) (map f (cdr l)))))
(define (map2 f l1 l2)
  (if (null? l1) '() (cons (f (car l1) (car l2)) (map2 f (cdr l1) (cdr l2)))))
(define (for-each f l)
  (if (null? l) (void) (begin (f (car l)) (for-each f (cdr l)))))
(define (filter p l)
  (cond [(null? l) '()]
        [(p (car l)) (cons (car l) (filter p (cdr l)))]
        [else (filter p (cdr l))]))
(define (foldr f z l)
  (if (null? l) z (f (car l) (foldr f z (cdr l)))))
(define (foldl f z l)
  (if (null? l) z (foldl f (f z (car l)) (cdr l))))
(define (andmap p l)
  (if (null? l) #t (and (p (car l)) (andmap p (cdr l)))))
(define (ormap p l)
  (if (null? l) #f (or (p (car l)) (ormap p (cdr l)))))
(define (iota n)
  (let loop ([i 0])
    (if (= i n) '() (cons i (loop (+ i 1))))))
(define (range lo hi)
  (if (>= lo hi) '() (cons lo (range (+ lo 1) hi))))
(define (build-list n f)
  (let loop ([i 0])
    (if (= i n) '() (cons (f i) (loop (+ i 1))))))
(define (assoc-ref al k d)
  (let ([hit (assoc k al)]) (if hit (cdr hit) d)))
(define (last l)
  (if (null? (cdr l)) (car l) (last (cdr l))))
(define (force p)
  (if (promise? p)
      (if (%promise-forced? p)
          (%promise-value p)
          (%promise-memo! p ((%promise-thunk p))))
      p))
"""

_PRELUDE_NAMES = [
    "map", "map2", "for-each", "filter", "foldr", "foldl", "andmap",
    "ormap", "iota", "range", "build-list", "assoc-ref", "last",
    "force",
]


def make_global_env(include_prelude: bool = True) -> GlobalEnv:
    """A fresh global frame with all primitives (and, normally, the prelude
    closures — installed lazily by :func:`repro.eval.machine.run_program`
    to avoid an import cycle)."""
    env = GlobalEnv(dict(PRIMITIVES))
    # Through define(), not a raw bindings write: define keeps the
    # string-keyed mirror the compiled machine reads in sync.
    env.define(intern("%include-prelude"), include_prelude)
    return env
