"""Surface-to-core compiler.

Parses reader output (:class:`~repro.sexp.reader.Syntax`) into the core AST
of :mod:`repro.lang.ast`, desugaring on the way:

=============================  =============================================
surface form                   core translation
=============================  =============================================
``cond`` / ``case``            nested ``If`` (+ ``memv`` for ``case``)
``and`` / ``or``               nested ``If`` (``or`` binds a temporary)
``when`` / ``unless``          ``If`` + ``Begin``
``let*``                       nested ``Let``
named ``let``                  ``LetRec`` + application
internal ``define``            ``LetRec`` at body heads
``quasiquote``                 ``cons``/``append`` construction
``match``                      tests over ``car``/``cdr`` chains + ``Let``
``term/c``/``terminating/c``   ``TermC`` with a blame label
``->/c`` / ``->t/c``           fixed-arity Findler–Felleisen function-
                               contract projections (``->t/c`` adds a
                               ``term/c`` wrap: total correctness, §2.3)
``and/c`` / ``or/c``           n-ary folds over the library's binary cores
``define/contract``            ``define`` + ``contract`` attach with
                               name-derived blame parties
=============================  =============================================
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

from repro.lang import ast
from repro.sexp.datum import (
    Char,
    Dotted,
    S_QUASIQUOTE,
    S_QUOTE,
    S_UNQUOTE,
    S_UNQUOTE_SPLICING,
    Symbol,
    intern,
)
from repro.sexp.reader import SrcLoc, Syntax, read_many
from repro.values.values import from_datum


class ParseError(SyntaxError):
    def __init__(self, message: str, loc: Optional[SrcLoc]):
        where = f" at {loc}" if loc is not None else ""
        super().__init__(f"{message}{where}")
        self.loc = loc


_gensym_counter = itertools.count()


def gensym(prefix: str = "%t") -> Symbol:
    return intern(f"{prefix}{next(_gensym_counter)}")


# Well-known symbols --------------------------------------------------------

S_LAMBDA = intern("lambda")
S_LAMBDA_GREEK = intern("λ")
S_IF = intern("if")
S_COND = intern("cond")
S_CASE = intern("case")
S_ELSE = intern("else")
S_AND = intern("and")
S_OR = intern("or")
S_WHEN = intern("when")
S_UNLESS = intern("unless")
S_BEGIN = intern("begin")
S_LET = intern("let")
S_LETSTAR = intern("let*")
S_LETREC = intern("letrec")
S_LETRECSTAR = intern("letrec*")
S_DEFINE = intern("define")
S_SET = intern("set!")
S_MATCH = intern("match")
S_TERMC = intern("term/c")
S_TERMINATING_C = intern("terminating/c")
S_WILDCARD = intern("_")
S_QUESTION = intern("?")
S_CONS = intern("cons")
S_LIST = intern("list")
S_APPEND = intern("append")
S_CAR = intern("car")
S_CDR = intern("cdr")
S_PAIR_P = intern("pair?")
S_NULL_P = intern("null?")
S_EQ_P = intern("eq?")
S_EQUAL_P = intern("equal?")
S_MEMV = intern("memv")
S_ERROR = intern("error")
S_NOT = intern("not")
S_DELAY = intern("delay")
S_PROMISE_PRIM = intern("%promise")

_SPECIAL_FORMS = {
    S_DELAY,
    S_QUOTE,
    S_QUASIQUOTE,
    S_UNQUOTE,
    S_UNQUOTE_SPLICING,
    S_LAMBDA,
    S_LAMBDA_GREEK,
    S_IF,
    S_COND,
    S_CASE,
    S_AND,
    S_OR,
    S_WHEN,
    S_UNLESS,
    S_BEGIN,
    S_LET,
    S_LETSTAR,
    S_LETREC,
    S_LETRECSTAR,
    S_DEFINE,
    S_SET,
    S_MATCH,
    S_TERMC,
    S_TERMINATING_C,
}


def _head_symbol(stx: Syntax) -> Optional[Symbol]:
    if stx.is_list() and stx.datum:
        head = stx.datum[0].datum
        if isinstance(head, Symbol):
            return head
    return None


def parse_expr(stx: Syntax) -> ast.Node:
    """Compile one expression's syntax into the core AST."""
    d = stx.datum
    loc = stx.loc
    if isinstance(d, Symbol):
        return ast.Var(d, loc)
    if isinstance(d, (int, float, str, bool, Char)):
        return ast.Lit(d, loc)
    if isinstance(d, Dotted):
        raise ParseError("dotted list is not an expression", loc)
    assert isinstance(d, list)
    if not d:
        raise ParseError("empty application ()", loc)
    head = _head_symbol(stx)
    if head is not None:
        handler = _FORMS.get(head)
        if handler is not None:
            return handler(stx)
    fn = parse_expr(d[0])
    args = tuple(parse_expr(a) for a in d[1:])
    return ast.App(fn, args, loc)


def parse_body(forms: List[Syntax], loc) -> ast.Node:
    """A λ/let body: leading internal ``define``s become ``letrec*``."""
    if not forms:
        raise ParseError("empty body", loc)
    defines: List[Tuple[Symbol, ast.Node]] = []
    i = 0
    while i < len(forms) and _head_symbol(forms[i]) in (S_DEFINE,
                                                        S_DEFINE_CONTRACT):
        if _head_symbol(forms[i]) is S_DEFINE:
            name, rhs = _parse_define(forms[i])
        else:
            name, rhs = _parse_define_contract(forms[i])
        defines.append((name, rhs))
        i += 1
    exprs = [parse_expr(f) for f in forms[i:]]
    if not exprs:
        raise ParseError("body has only definitions", loc)
    body = exprs[0] if len(exprs) == 1 else ast.Begin(tuple(exprs), loc)
    if defines:
        names = tuple(n for n, _ in defines)
        rhss = tuple(r for _, r in defines)
        return ast.LetRec(names, rhss, body, loc)
    return body


def _parse_define(stx: Syntax) -> Tuple[Symbol, ast.Node]:
    d = stx.datum
    if len(d) < 2:
        raise ParseError("malformed define", stx.loc)
    target = d[1]
    if isinstance(target.datum, Symbol):
        if len(d) != 3:
            raise ParseError("define expects exactly one expression", stx.loc)
        rhs = parse_expr(d[2])
        if rhs.kind == ast.K_LAM and rhs.name is None:
            rhs.name = target.datum.name
        return target.datum, rhs
    if isinstance(target.datum, list) and target.datum:
        name_stx = target.datum[0]
        if not isinstance(name_stx.datum, Symbol):
            raise ParseError("bad function name in define", name_stx.loc)
        params = _parse_params(target.datum[1:])
        body = parse_body(d[2:], stx.loc)
        lam = ast.Lam(params, body, name=name_stx.datum.name, loc=stx.loc)
        return name_stx.datum, lam
    raise ParseError("malformed define", stx.loc)


def _parse_params(param_stxs: List[Syntax]) -> Tuple[Symbol, ...]:
    params = []
    for p in param_stxs:
        if not isinstance(p.datum, Symbol):
            raise ParseError("parameter must be a symbol", p.loc)
        params.append(p.datum)
    if len(set(params)) != len(params):
        raise ParseError("duplicate parameter name", param_stxs[0].loc)
    return tuple(params)


# -- individual special forms ------------------------------------------------


def _parse_quote(stx: Syntax) -> ast.Node:
    if len(stx.datum) != 2:
        raise ParseError("quote expects one datum", stx.loc)
    return ast.Lit(from_datum(stx.datum[1].strip()), stx.loc)


def _parse_lambda(stx: Syntax) -> ast.Node:
    d = stx.datum
    if len(d) < 3:
        raise ParseError("lambda expects parameters and a body", stx.loc)
    if not isinstance(d[1].datum, list):
        raise ParseError("lambda parameter list must be a list", d[1].loc)
    params = _parse_params(d[1].datum)
    body = parse_body(d[2:], stx.loc)
    return ast.Lam(params, body, loc=stx.loc)


def _parse_delay(stx: Syntax) -> ast.Node:
    # ``(delay e)`` ⇒ ``(%promise (λ () e))``: the thunk is an ordinary λ,
    # so forcing it later is an ordinary monitored call (no primitive ever
    # invokes a closure — ``force`` itself is a prelude definition).
    d = stx.datum
    if len(d) != 2:
        raise ParseError("delay expects exactly one expression", stx.loc)
    thunk = ast.Lam((), parse_expr(d[1]), name="delayed", loc=stx.loc)
    return ast.App(ast.Var(S_PROMISE_PRIM), (thunk,), stx.loc)


def _parse_if(stx: Syntax) -> ast.Node:
    d = stx.datum
    if len(d) == 3:
        return ast.If(parse_expr(d[1]), parse_expr(d[2]), ast.Lit(False), stx.loc)
    if len(d) == 4:
        return ast.If(parse_expr(d[1]), parse_expr(d[2]), parse_expr(d[3]), stx.loc)
    raise ParseError("if expects 2 or 3 sub-expressions", stx.loc)


def _parse_cond(stx: Syntax) -> ast.Node:
    clauses = stx.datum[1:]
    result: ast.Node = ast.Lit(False, stx.loc)
    for clause in reversed(clauses):
        if not clause.is_list() or not clause.datum:
            raise ParseError("malformed cond clause", clause.loc)
        head = clause.datum[0]
        if head.datum is S_ELSE:
            result = parse_body(clause.datum[1:], clause.loc)
            continue
        test = parse_expr(head)
        if len(clause.datum) == 1:
            tmp = gensym()
            result = ast.Let(
                (tmp,), (test,),
                ast.If(ast.Var(tmp), ast.Var(tmp), result, clause.loc),
                clause.loc,
            )
        else:
            body = parse_body(clause.datum[1:], clause.loc)
            result = ast.If(test, body, result, clause.loc)
    return result


def _parse_case(stx: Syntax) -> ast.Node:
    d = stx.datum
    if len(d) < 3:
        raise ParseError("case expects a key and clauses", stx.loc)
    tmp = gensym()
    result: ast.Node = ast.Lit(False, stx.loc)
    for clause in reversed(d[2:]):
        if not clause.is_list() or not clause.datum:
            raise ParseError("malformed case clause", clause.loc)
        head = clause.datum[0]
        body = parse_body(clause.datum[1:], clause.loc)
        if head.datum is S_ELSE:
            result = body
            continue
        data = ast.Lit(from_datum(head.strip()), head.loc)
        test = ast.App(ast.Var(S_MEMV), (ast.Var(tmp), data), clause.loc)
        result = ast.If(test, body, result, clause.loc)
    return ast.Let((tmp,), (parse_expr(d[1]),), result, stx.loc)


def _parse_and(stx: Syntax) -> ast.Node:
    args = [parse_expr(a) for a in stx.datum[1:]]
    if not args:
        return ast.Lit(True, stx.loc)
    result = args[-1]
    for a in reversed(args[:-1]):
        result = ast.If(a, result, ast.Lit(False), stx.loc)
    return result


def _parse_or(stx: Syntax) -> ast.Node:
    args = [parse_expr(a) for a in stx.datum[1:]]
    if not args:
        return ast.Lit(False, stx.loc)
    result = args[-1]
    for a in reversed(args[:-1]):
        tmp = gensym()
        result = ast.Let(
            (tmp,), (a,), ast.If(ast.Var(tmp), ast.Var(tmp), result, stx.loc), stx.loc
        )
    return result


def _parse_when(stx: Syntax) -> ast.Node:
    d = stx.datum
    if len(d) < 3:
        raise ParseError("when expects a test and a body", stx.loc)
    return ast.If(parse_expr(d[1]), parse_body(d[2:], stx.loc), ast.Lit(False), stx.loc)


def _parse_unless(stx: Syntax) -> ast.Node:
    d = stx.datum
    if len(d) < 3:
        raise ParseError("unless expects a test and a body", stx.loc)
    return ast.If(parse_expr(d[1]), ast.Lit(False), parse_body(d[2:], stx.loc), stx.loc)


def _parse_begin(stx: Syntax) -> ast.Node:
    return parse_body(stx.datum[1:], stx.loc)


def _parse_bindings(stx: Syntax) -> Tuple[Tuple[Symbol, ...], Tuple[ast.Node, ...]]:
    if not stx.is_list():
        raise ParseError("binding list must be a list", stx.loc)
    names, rhss = [], []
    for b in stx.datum:
        if not b.is_list() or len(b.datum) != 2 or not isinstance(b.datum[0].datum, Symbol):
            raise ParseError("malformed binding", b.loc)
        names.append(b.datum[0].datum)
        rhs = parse_expr(b.datum[1])
        if rhs.kind == ast.K_LAM and rhs.name is None:
            rhs.name = b.datum[0].datum.name
        rhss.append(rhs)
    return tuple(names), tuple(rhss)


def _parse_let(stx: Syntax) -> ast.Node:
    d = stx.datum
    if len(d) >= 3 and isinstance(d[1].datum, Symbol):
        # Named let: (let loop ([x e] ...) body) → letrec + call.
        loop_name = d[1].datum
        names, rhss = _parse_bindings(d[2])
        body = parse_body(d[3:], stx.loc)
        lam = ast.Lam(names, body, name=loop_name.name, loc=stx.loc)
        call = ast.App(ast.Var(loop_name, stx.loc), rhss, stx.loc)
        return ast.LetRec((loop_name,), (lam,), call, stx.loc)
    if len(d) < 3:
        raise ParseError("let expects bindings and a body", stx.loc)
    names, rhss = _parse_bindings(d[1])
    body = parse_body(d[2:], stx.loc)
    return ast.Let(names, rhss, body, stx.loc)


def _parse_let_star(stx: Syntax) -> ast.Node:
    d = stx.datum
    if len(d) < 3:
        raise ParseError("let* expects bindings and a body", stx.loc)
    names, rhss = _parse_bindings(d[1])
    body = parse_body(d[2:], stx.loc)
    for name, rhs in reversed(list(zip(names, rhss))):
        body = ast.Let((name,), (rhs,), body, stx.loc)
    return body


def _parse_letrec(stx: Syntax) -> ast.Node:
    d = stx.datum
    if len(d) < 3:
        raise ParseError("letrec expects bindings and a body", stx.loc)
    names, rhss = _parse_bindings(d[1])
    body = parse_body(d[2:], stx.loc)
    return ast.LetRec(names, rhss, body, stx.loc)


def _parse_set(stx: Syntax) -> ast.Node:
    d = stx.datum
    if len(d) != 3 or not isinstance(d[1].datum, Symbol):
        raise ParseError("malformed set!", stx.loc)
    return ast.SetBang(d[1].datum, parse_expr(d[2]), stx.loc)


def _parse_termc(stx: Syntax) -> ast.Node:
    d = stx.datum
    if len(d) == 2:
        blame = f"term/c@{stx.loc}"
    elif len(d) == 3 and isinstance(d[2].datum, str):
        blame = d[2].datum
    else:
        raise ParseError("term/c expects an expression and optional blame string", stx.loc)
    return ast.TermC(parse_expr(d[1]), blame, stx.loc)


# -- contract surface forms ----------------------------------------------------
#
# Contracts are library values (pairs of a first-order test and a
# projection maker; see repro/lang/contracts_lib.py).  The arrow forms are
# macros because each use has a fixed arity: (->/c d1 ... dn r) expands to
# a projection that wraps an n-ary function, checking domains with
# *swapped* blame (a bad argument is the caller's fault) and the range
# with the original blame.  (->t/c ...) additionally wraps the function in
# term/c, yielding a total-correctness contract (§2.3).

S_ARROW_C = intern("->/c")
S_TOTAL_C = intern("->t/c")
S_AND_C = intern("and/c")
S_OR_C = intern("or/c")
S_DEFINE_CONTRACT = intern("define/contract")
S_PROCEDURE_P = intern("procedure?")
S_BLAME_ERROR = intern("blame-error")
S_CONTRACT = intern("contract")
S_ANY_C = intern("any/c")
S_NONE_C = intern("none/c")
S_AND2_C = intern("and2/c")
S_OR2_C = intern("or2/c")


def _projection(ctc_name: Symbol, party1: Symbol, party2: Symbol,
                value: ast.Node, loc) -> ast.Node:
    """``(((cdr ctc) party1 party2) value)``."""
    proj_maker = ast.App(ast.Var(S_CDR), (ast.Var(ctc_name),), loc)
    proj = ast.App(proj_maker, (ast.Var(party1), ast.Var(party2)), loc)
    return ast.App(proj, (value,), loc)


def _parse_arrow_c(stx: Syntax, total: bool = False) -> ast.Node:
    d = stx.datum
    loc = stx.loc
    form = "->t/c" if total else "->/c"
    if len(d) < 2:
        raise ParseError(f"{form} expects at least a range contract", loc)
    ctc_exprs = [parse_expr(s) for s in d[1:]]
    dom_exprs, rng_expr = ctc_exprs[:-1], ctc_exprs[-1]

    dom_names = [gensym("%dom") for _ in dom_exprs]
    rng_name = gensym("%rng")
    pos, neg = gensym("%pos"), gensym("%neg")
    fn_name, xs = gensym("%fn"), [gensym("%x") for _ in dom_exprs]

    callee: ast.Node = ast.Var(fn_name)
    checked_args = tuple(
        _projection(dn, neg, pos, ast.Var(x), loc)
        for dn, x in zip(dom_names, xs)
    )
    call = ast.App(callee, checked_args, loc)
    wrapper_body = _projection(rng_name, pos, neg, call, loc)
    wrapper = ast.Lam(tuple(xs), wrapper_body, name=f"{form} wrapper", loc=loc)
    if total:
        # Wrap the raw function once, before building the proxy, so every
        # call through the contract is termination-monitored.
        monitored = gensym("%mon")
        wrapper = ast.Lam(
            tuple(xs),
            _projection(
                rng_name, pos, neg,
                ast.App(ast.Var(monitored), checked_args, loc), loc,
            ),
            name=f"{form} wrapper", loc=loc,
        )
        wrapper = ast.Let(
            (monitored,),
            (ast.TermC(ast.Var(fn_name), f"->t/c@{loc}", loc),),
            wrapper, loc,
        )
    guarded = ast.If(
        ast.App(ast.Var(S_PROCEDURE_P), (ast.Var(fn_name),), loc),
        wrapper,
        ast.App(ast.Var(S_BLAME_ERROR),
                (ast.Var(pos), ast.Lit(intern(form), loc), ast.Var(fn_name)),
                loc),
        loc,
    )
    proj_maker = ast.Lam(
        (pos, neg),
        ast.Lam((fn_name,), guarded, name=f"{form} projection", loc=loc),
        name=f"{form} maker", loc=loc,
    )
    pair = ast.App(ast.Var(S_CONS),
                   (ast.Var(S_PROCEDURE_P), proj_maker), loc)
    return ast.Let(tuple(dom_names) + (rng_name,),
                   tuple(dom_exprs) + (rng_expr,), pair, loc)


def _parse_total_c(stx: Syntax) -> ast.Node:
    return _parse_arrow_c(stx, total=True)


def _fold_binary(stx: Syntax, empty: Symbol, binary: Symbol) -> ast.Node:
    d = stx.datum
    loc = stx.loc
    parts = [parse_expr(s) for s in d[1:]]
    if not parts:
        return ast.Var(empty, loc)
    acc = parts[-1]
    for part in reversed(parts[:-1]):
        acc = ast.App(ast.Var(binary), (part, acc), loc)
    return acc


def _parse_and_c(stx: Syntax) -> ast.Node:
    return _fold_binary(stx, S_ANY_C, S_AND2_C)


def _parse_or_c(stx: Syntax) -> ast.Node:
    return _fold_binary(stx, S_NONE_C, S_OR2_C)


def _parse_define_contract(stx: Syntax) -> Tuple[Symbol, ast.Node]:
    """``(define/contract (f x ...) ctc body ...)`` or
    ``(define/contract x ctc expr)`` — the value is attached to ``ctc``
    with the defined name as the positive party and ``<name>-caller`` as
    the negative one."""
    d = stx.datum
    loc = stx.loc
    if len(d) < 4:
        raise ParseError("malformed define/contract", loc)
    target = d[1]
    ctc = parse_expr(d[2])
    if isinstance(target.datum, Symbol):
        if len(d) != 4:
            raise ParseError("define/contract expects one expression", loc)
        name = target.datum
        raw: ast.Node = parse_expr(d[3])
        if raw.kind == ast.K_LAM and raw.name is None:
            raw.name = name.name
    elif isinstance(target.datum, list) and target.datum:
        name_stx = target.datum[0]
        if not isinstance(name_stx.datum, Symbol):
            raise ParseError("bad function name in define/contract",
                             name_stx.loc)
        name = name_stx.datum
        params = _parse_params(target.datum[1:])
        raw = ast.Lam(params, parse_body(d[3:], loc), name=name.name, loc=loc)
    else:
        raise ParseError("malformed define/contract", loc)
    attached = ast.App(
        ast.Var(S_CONTRACT),
        (ctc, raw,
         ast.Lit(name, loc), ast.Lit(intern(f"{name.name}-caller"), loc)),
        loc,
    )
    return name, attached


# -- quasiquote --------------------------------------------------------------


def _parse_quasiquote(stx: Syntax) -> ast.Node:
    if len(stx.datum) != 2:
        raise ParseError("quasiquote expects one template", stx.loc)
    return _qq(stx.datum[1], 1)


def _qq(stx: Syntax, depth: int) -> ast.Node:
    """Expand one quasiquote template level into cons/append construction."""
    d = stx.datum
    head = _head_symbol(stx)
    if head is S_UNQUOTE and len(d) == 2:
        if depth == 1:
            return parse_expr(d[1])
        inner = _qq(d[1], depth - 1)
        return _qq_list([ast.Lit(S_UNQUOTE), inner], stx.loc)
    if head is S_QUASIQUOTE and len(d) == 2:
        inner = _qq(d[1], depth + 1)
        return _qq_list([ast.Lit(S_QUASIQUOTE), inner], stx.loc)
    if isinstance(d, list):
        parts: List[ast.Node] = []
        splices: List[Tuple[int, ast.Node]] = []
        for i, item in enumerate(d):
            if _head_symbol(item) is S_UNQUOTE_SPLICING and depth == 1:
                splices.append((i, parse_expr(item.datum[1])))
            else:
                parts.append(_qq(item, depth))
        if not splices:
            return _qq_list(parts, stx.loc)
        return _qq_spliced(d, depth, stx.loc)
    if isinstance(d, Dotted):
        items = [_qq(x, depth) for x in d.items]
        tail = _qq(d.tail, depth)
        acc = tail
        for item in reversed(items):
            acc = ast.App(ast.Var(S_CONS), (item, acc), stx.loc)
        return acc
    return ast.Lit(from_datum(stx.strip()), stx.loc)


def _qq_list(parts: List[ast.Node], loc) -> ast.Node:
    acc: ast.Node = ast.Lit(from_datum([]), loc)
    for part in reversed(parts):
        acc = ast.App(ast.Var(S_CONS), (part, acc), loc)
    return acc


def _qq_spliced(items: List[Syntax], depth: int, loc) -> ast.Node:
    segments: List[ast.Node] = []
    for item in items:
        if _head_symbol(item) is S_UNQUOTE_SPLICING and depth == 1:
            segments.append(parse_expr(item.datum[1]))
        else:
            segments.append(_qq_list([_qq(item, depth)], loc))
    if len(segments) == 1:
        return segments[0]
    return ast.App(ast.Var(S_APPEND), tuple(segments), loc)


# -- match -------------------------------------------------------------------
#
# Patterns supported (what the corpus and the Fig. 2 compiler need):
#   _                         wildcard
#   x                         variable binding
#   literal                   number / string / boolean / character
#   'datum                    equal? against the quoted datum
#   `template                 quasipattern: lists of sub-patterns where
#                             symbols are literals and ,p is a sub-pattern
#   (? pred)                  predicate test
#   (? pred pat)              predicate + sub-pattern on the same value
#   (cons p1 p2)              pair with car/cdr sub-patterns
#   (list p ...)              fixed-length list


def _parse_match(stx: Syntax) -> ast.Node:
    d = stx.datum
    if len(d) < 3:
        raise ParseError("match expects a scrutinee and clauses", stx.loc)
    tmp = gensym("%m")
    fail: ast.Node = ast.App(
        ast.Var(S_ERROR), (ast.Lit("match: no matching clause"),), stx.loc
    )
    result = fail
    for clause in reversed(d[2:]):
        if not clause.is_list() or len(clause.datum) < 2:
            raise ParseError("malformed match clause", clause.loc)
        pattern = clause.datum[0]
        body = parse_body(clause.datum[1:], clause.loc)
        test, bindings = _compile_pattern(pattern, ast.Var(tmp, pattern.loc))
        if bindings:
            names = tuple(n for n, _ in bindings)
            rhss = tuple(e for _, e in bindings)
            body = ast.Let(names, rhss, body, clause.loc)
        result = _make_if(test, body, result, clause.loc)
    return ast.Let((tmp,), (parse_expr(d[1]),), result, stx.loc)


def _make_if(test: Optional[ast.Node], then: ast.Node, els: ast.Node, loc) -> ast.Node:
    if test is None:  # irrefutable pattern
        return then
    return ast.If(test, then, els, loc)


def _make_and(a: Optional[ast.Node], b: Optional[ast.Node], loc) -> Optional[ast.Node]:
    if a is None:
        return b
    if b is None:
        return a
    return ast.If(a, b, ast.Lit(False), loc)


def _compile_pattern(pat: Syntax, target: ast.Node):
    """Return ``(test_expr_or_None, [(name, access_expr), ...])``."""
    d = pat.datum
    loc = pat.loc
    if d is S_WILDCARD:
        return None, []
    if isinstance(d, Symbol):
        return None, [(d, target)]
    if isinstance(d, (int, float, str, bool, Char)):
        lit = ast.Lit(d, loc)
        return ast.App(ast.Var(S_EQUAL_P), (target, lit), loc), []
    if isinstance(d, list) and d:
        head = _head_symbol(pat)
        if head is S_QUOTE and len(d) == 2:
            lit = ast.Lit(from_datum(d[1].strip()), loc)
            return ast.App(ast.Var(S_EQUAL_P), (target, lit), loc), []
        if head is S_QUASIQUOTE and len(d) == 2:
            return _compile_quasipattern(d[1], target)
        if head is S_QUESTION:
            if len(d) < 2:
                raise ParseError("(? pred pat ...) needs a predicate", loc)
            test: Optional[ast.Node] = ast.App(parse_expr(d[1]), (target,), loc)
            bindings = []
            for sub in d[2:]:
                sub_test, sub_bind = _compile_pattern(sub, target)
                test = _make_and(test, sub_test, loc)
                bindings.extend(sub_bind)
            return test, bindings
        if head is S_CONS and len(d) == 3:
            car_t, car_b = _compile_pattern(d[1], ast.App(ast.Var(S_CAR), (target,), loc))
            cdr_t, cdr_b = _compile_pattern(d[2], ast.App(ast.Var(S_CDR), (target,), loc))
            test = ast.App(ast.Var(S_PAIR_P), (target,), loc)
            test = _make_and(test, _make_and(car_t, cdr_t, loc), loc)
            return test, car_b + cdr_b
        if head is S_LIST:
            return _compile_list_pattern(d[1:], target, loc)
    if isinstance(d, list) and not d:
        return ast.App(ast.Var(S_NULL_P), (target,), loc), []
    raise ParseError(f"unsupported match pattern: {pat.strip()!r}", loc)


def _compile_list_pattern(items: List[Syntax], target: ast.Node, loc):
    if not items:
        return ast.App(ast.Var(S_NULL_P), (target,), loc), []
    head_t, head_b = _compile_pattern(items[0], ast.App(ast.Var(S_CAR), (target,), loc))
    rest_t, rest_b = _compile_list_pattern(
        items[1:], ast.App(ast.Var(S_CDR), (target,), loc), loc
    )
    test = ast.App(ast.Var(S_PAIR_P), (target,), loc)
    test = _make_and(test, _make_and(head_t, rest_t, loc), loc)
    return test, head_b + rest_b


def _compile_quasipattern(pat: Syntax, target: ast.Node):
    """A quasipattern: symbols are literal, ``,p`` is a sub-pattern."""
    d = pat.datum
    loc = pat.loc
    head = _head_symbol(pat)
    if head is S_UNQUOTE and len(d) == 2:
        return _compile_pattern(d[1], target)
    if isinstance(d, list):
        if not d:
            return ast.App(ast.Var(S_NULL_P), (target,), loc), []
        head_t, head_b = _compile_quasipattern(
            d[0], ast.App(ast.Var(S_CAR), (target,), loc)
        )
        rest = Syntax(d[1:], loc)
        rest_t, rest_b = _compile_quasipattern(
            rest, ast.App(ast.Var(S_CDR), (target,), loc)
        )
        test = ast.App(ast.Var(S_PAIR_P), (target,), loc)
        test = _make_and(test, _make_and(head_t, rest_t, loc), loc)
        return test, head_b + rest_b
    if isinstance(d, Symbol):
        lit = ast.Lit(from_datum(d), loc)
        return ast.App(ast.Var(S_EQ_P), (target, lit), loc), []
    lit = ast.Lit(from_datum(pat.strip()), loc)
    return ast.App(ast.Var(S_EQUAL_P), (target, lit), loc), []


_FORMS = {
    S_QUOTE: _parse_quote,
    S_QUASIQUOTE: _parse_quasiquote,
    S_LAMBDA: _parse_lambda,
    S_LAMBDA_GREEK: _parse_lambda,
    S_IF: _parse_if,
    S_COND: _parse_cond,
    S_CASE: _parse_case,
    S_AND: _parse_and,
    S_OR: _parse_or,
    S_WHEN: _parse_when,
    S_UNLESS: _parse_unless,
    S_BEGIN: _parse_begin,
    S_LET: _parse_let,
    S_LETSTAR: _parse_let_star,
    S_LETREC: _parse_letrec,
    S_LETRECSTAR: _parse_letrec,
    S_SET: _parse_set,
    S_DELAY: _parse_delay,
    S_MATCH: _parse_match,
    S_TERMC: _parse_termc,
    S_TERMINATING_C: _parse_termc,
    S_ARROW_C: _parse_arrow_c,
    S_TOTAL_C: _parse_total_c,
    S_AND_C: _parse_and_c,
    S_OR_C: _parse_or_c,
}


def parse_program(text: str, source: str = "<program>"):
    """Parse whole-program text; returns :class:`repro.lang.program.Program`."""
    from repro.lang.program import Program, TopDefine, TopExpr

    forms = []
    for stx in read_many(text, source):
        head = _head_symbol(stx)
        if head is S_DEFINE:
            name, rhs = _parse_define(stx)
            forms.append(TopDefine(name, rhs, stx.loc))
        elif head is S_DEFINE_CONTRACT:
            name, rhs = _parse_define_contract(stx)
            forms.append(TopDefine(name, rhs, stx.loc))
        else:
            forms.append(TopExpr(parse_expr(stx), stx.loc))
    return Program(tuple(forms), source)
