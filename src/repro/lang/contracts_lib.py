"""The Findler–Felleisen contract library of the embedded language.

§2.3 of the paper places ``terminating/c`` among ordinary behavioural
contracts: "Such contracts, when combined with traditional pre- and
post-condition contracts, form a notion of contracts for total
correctness."  This module supplies those traditional contracts — written
*in* the object language, in the classic projection encoding — so the
composition actually exists in the reproduced system.

Encoding
--------

A contract value is a pair ``(first-order? . projection-maker)``:

* ``first-order?`` — a cheap predicate used by ``or/c`` dispatch and
  available through ``contract-first-order``;
* ``projection-maker`` — ``(λ (pos neg) (λ (v) …))``: given the two blame
  parties it yields the projection that either returns (a wrapper of)
  ``v`` or calls the ``blame-error`` primitive with the party at fault.

Blame discipline: a flat check failing blames ``pos`` (the party that
promised the value).  Function contracts swap the parties on their
domains — a bad argument is the *caller's* fault — which is what the
``->/c`` surface form (expanded in :mod:`repro.lang.parser`) implements.

Attach a contract with ``(contract c v 'server 'client)``, the
``define/contract`` form, or compose with termination:
``(->t/c nat/c nat/c)`` is ``->/c`` plus ``terminating/c`` — a total-
correctness contract.
"""

CONTRACTS_SOURCE = """
;; -- attaching ---------------------------------------------------------------
(define (contract c v pos neg) (((cdr c) pos neg) v))
(define (make-contract first-order proj) (cons first-order proj))
(define (contract-first-order c) (car c))
(define (contract-projection c) (cdr c))

;; -- flat contracts ----------------------------------------------------------
(define (flat-named/c name pred)
  (cons pred
        (lambda (pos neg)
          (lambda (v) (if (pred v) v (blame-error pos name v))))))
(define (flat/c pred) (flat-named/c 'flat-contract pred))

(define any/c (cons (lambda (v) #t) (lambda (pos neg) (lambda (v) v))))
(define none/c (flat-named/c 'none/c (lambda (v) #f)))
(define nat/c (flat-named/c 'natural? (lambda (v) (and (integer? v) (>= v 0)))))
(define int/c (flat-named/c 'integer? integer?))
(define bool/c (flat-named/c 'boolean? boolean?))
(define sym/c (flat-named/c 'symbol? symbol?))
(define str/c (flat-named/c 'string? string?))
(define proc/c (flat-named/c 'procedure? procedure?))
(define nil/c (flat-named/c 'null? null?))

(define (=/c n) (flat-named/c '=/c (lambda (v) (and (number? v) (= v n)))))
(define (>/c n) (flat-named/c '>/c (lambda (v) (and (number? v) (> v n)))))
(define (>=/c n) (flat-named/c '>=/c (lambda (v) (and (number? v) (>= v n)))))
(define (</c n) (flat-named/c '</c (lambda (v) (and (number? v) (< v n)))))
(define (<=/c n) (flat-named/c '<=/c (lambda (v) (and (number? v) (<= v n)))))
(define (between/c lo hi)
  (flat-named/c 'between/c
                (lambda (v) (and (number? v) (<= lo v) (<= v hi)))))

;; -- combinators ---------------------------------------------------------------
;; and2/c / or2/c are the binary cores; the n-ary and/c and or/c surface
;; forms fold onto them in the parser.
(define (and2/c c1 c2)
  (cons (lambda (v) (and ((car c1) v) ((car c2) v)))
        (lambda (pos neg)
          (let ([p1 ((cdr c1) pos neg)]
                [p2 ((cdr c2) pos neg)])
            (lambda (v) (p2 (p1 v)))))))

(define (or2/c c1 c2)
  ;; Dispatch on the first-order tests (Racket's rule): the first branch
  ;; whose cheap test accepts gets to project the value.
  (cons (lambda (v) (or ((car c1) v) ((car c2) v)))
        (lambda (pos neg)
          (lambda (v)
            (cond [((car c1) v) (((cdr c1) pos neg) v)]
                  [((car c2) v) (((cdr c2) pos neg) v)]
                  [else (blame-error pos 'or/c v)])))))

(define (not/c c)
  (cons (lambda (v) (not ((car c) v)))
        (lambda (pos neg)
          (lambda (v) (if ((car c) v) (blame-error pos 'not/c v) v)))))

(define (listof/c c)
  (cons (lambda (v) (list? v))
        (lambda (pos neg)
          (let ([proj ((cdr c) pos neg)])
            (letrec ([wrap (lambda (v)
                             (cond [(null? v) '()]
                                   [(pair? v) (cons (proj (car v))
                                                    (wrap (cdr v)))]
                                   [else (blame-error pos 'listof/c v)]))])
              wrap)))))

(define (nonempty-listof/c c)
  (and2/c (flat-named/c 'nonempty? pair?) (listof/c c)))

(define (cons/c ca cd)
  (cons (lambda (v) (and (pair? v) ((car ca) (car v)) ((car cd) (cdr v))))
        (lambda (pos neg)
          (let ([pa ((cdr ca) pos neg)]
                [pd ((cdr cd) pos neg)])
            (lambda (v)
              (if (pair? v)
                  (cons (pa (car v)) (pd (cdr v)))
                  (blame-error pos 'cons/c v)))))))
"""

#: Names the library binds in the global frame (kept in sync by tests).
CONTRACT_LIBRARY_NAMES = [
    "contract", "make-contract", "contract-first-order",
    "contract-projection",
    "flat-named/c", "flat/c",
    "any/c", "none/c", "nat/c", "int/c", "bool/c", "sym/c", "str/c",
    "proc/c", "nil/c",
    "=/c", ">/c", ">=/c", "</c", "<=/c", "between/c",
    "and2/c", "or2/c", "not/c", "listof/c", "nonempty-listof/c", "cons/c",
]
