"""Core AST of the embedded language.

The surface language (``cond``, ``match``, ``quasiquote``, named ``let``,
internal ``define`` ...) desugars to these ten node kinds.  Each node kind
carries an integer ``kind`` tag so the CEK machine can dispatch with integer
comparisons instead of ``isinstance`` chains.

``Lam`` nodes carry a process-unique ``label`` identifying the syntactic λ
form.  Labels are what the control-flow analysis, the loop-entry optimizer
and the structural-hash table keying mode talk about.
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

from repro.sexp.datum import Symbol
from repro.sexp.reader import SrcLoc

K_LIT = 0
K_VAR = 1
K_LAM = 2
K_APP = 3
K_IF = 4
K_BEGIN = 5
K_LET = 6
K_LETREC = 7
K_SET = 8
K_TERMC = 9

_label_counter = itertools.count()


class Node:
    """Base class; exists only for isinstance checks in tooling.

    ``__weakref__`` lets the compiled machine key its resolved-code cache
    weakly by AST node, so dropping a parsed program frees its code."""

    __slots__ = ("loc", "__weakref__")
    kind: int = -1


class Lit(Node):
    """A self-evaluating constant (number, boolean, string, char, quoted
    datum already converted to a runtime value)."""

    __slots__ = ("value",)
    kind = K_LIT

    def __init__(self, value, loc: Optional[SrcLoc] = None):
        self.value = value
        self.loc = loc

    def __repr__(self) -> str:
        return f"Lit({self.value!r})"


class Var(Node):
    __slots__ = ("name",)
    kind = K_VAR

    def __init__(self, name: Symbol, loc: Optional[SrcLoc] = None):
        self.name = name
        self.loc = loc

    def __repr__(self) -> str:
        return f"Var({self.name})"


class Lam(Node):
    __slots__ = ("params", "body", "name", "label")
    kind = K_LAM

    def __init__(
        self,
        params: Tuple[Symbol, ...],
        body: Node,
        name: Optional[str] = None,
        loc: Optional[SrcLoc] = None,
    ):
        self.params = params
        self.body = body
        self.name = name
        self.loc = loc
        self.label = next(_label_counter)

    def __repr__(self) -> str:
        shown = self.name or f"λ{self.label}"
        return f"Lam({shown}, {list(self.params)})"


class App(Node):
    __slots__ = ("fn", "args")
    kind = K_APP

    def __init__(self, fn: Node, args: Tuple[Node, ...], loc: Optional[SrcLoc] = None):
        self.fn = fn
        self.args = args
        self.loc = loc

    def __repr__(self) -> str:
        return f"App({self.fn!r}, {list(self.args)})"


class If(Node):
    __slots__ = ("test", "then", "els")
    kind = K_IF

    def __init__(self, test: Node, then: Node, els: Node, loc=None):
        self.test = test
        self.then = then
        self.els = els
        self.loc = loc

    def __repr__(self) -> str:
        return f"If({self.test!r}, {self.then!r}, {self.els!r})"


class Begin(Node):
    __slots__ = ("body",)
    kind = K_BEGIN

    def __init__(self, body: Tuple[Node, ...], loc=None):
        self.body = body
        self.loc = loc

    def __repr__(self) -> str:
        return f"Begin({list(self.body)})"


class Let(Node):
    """Parallel ``let``: all right-hand sides evaluate in the outer
    environment, then bind simultaneously.  Kept as a core node (rather than
    desugaring to an immediate λ application) so that binding forms do not
    show up as monitored calls — the same effect the paper's loop-entry
    optimization achieves."""

    __slots__ = ("names", "rhss", "body")
    kind = K_LET

    def __init__(
        self,
        names: Tuple[Symbol, ...],
        rhss: Tuple[Node, ...],
        body: Node,
        loc=None,
    ):
        self.names = names
        self.rhss = rhss
        self.body = body
        self.loc = loc

    def __repr__(self) -> str:
        return f"Let({list(self.names)}, ...)"


class LetRec(Node):
    """``letrec*``: binds placeholders, then evaluates each right-hand side
    in order, back-patching the rib.  Right-hand sides are usually λs."""

    __slots__ = ("names", "rhss", "body")
    kind = K_LETREC

    def __init__(self, names, rhss, body, loc=None):
        self.names = tuple(names)
        self.rhss = tuple(rhss)
        self.body = body
        self.loc = loc

    def __repr__(self) -> str:
        return f"LetRec({list(self.names)}, ...)"


class SetBang(Node):
    __slots__ = ("name", "expr")
    kind = K_SET

    def __init__(self, name: Symbol, expr: Node, loc=None):
        self.name = name
        self.expr = expr
        self.loc = loc

    def __repr__(self) -> str:
        return f"SetBang({self.name}, {self.expr!r})"


class TermC(Node):
    """``(terminating/c e)`` / ``(term/c e)``: wrap the closure value of
    ``e`` in a termination contract carrying blame label ``blame``."""

    __slots__ = ("expr", "blame")
    kind = K_TERMC

    def __init__(self, expr: Node, blame: str, loc=None):
        self.expr = expr
        self.blame = blame
        self.loc = loc

    def __repr__(self) -> str:
        return f"TermC({self.expr!r}, blame={self.blame!r})"


def iter_nodes(node: Node):
    """Yield ``node`` and all descendants (pre-order)."""
    stack = [node]
    while stack:
        n = stack.pop()
        yield n
        k = n.kind
        if k == K_LAM:
            stack.append(n.body)
        elif k == K_APP:
            stack.append(n.fn)
            stack.extend(n.args)
        elif k == K_IF:
            stack.extend((n.test, n.then, n.els))
        elif k == K_BEGIN:
            stack.extend(n.body)
        elif k == K_LET or k == K_LETREC:
            stack.extend(n.rhss)
            stack.append(n.body)
        elif k == K_SET:
            stack.append(n.expr)
        elif k == K_TERMC:
            stack.append(n.expr)
