"""The lexical-addressing compile pass.

:mod:`repro.lang.ast` nodes name variables by interned :class:`Symbol`;
resolving a reference at run time means walking a chain of dict ribs and
hashing the symbol into each one.  This pass closure-converts an AST once,
before evaluation, into *code nodes* whose variable references are
``(depth, slot)`` pairs into flat list frames (locals) or direct symbol
reads against the global frame's one dict (globals):

* every binding form — λ, ``let``, ``letrec`` — compiles to a node that
  allocates exactly one list frame of known size; slot 0 of a frame is the
  parent frame, so a reference compiles to "go up ``depth`` frames, read
  slot ``idx``" with no hashing and no membership tests;
* :class:`CLam` carries precomputed metadata the machine would otherwise
  recompute per call: ``nparams`` (the arity check is one int compare),
  ``frame_size``, and ``free`` — the lexical addresses, relative to the
  closure's captured frame, of the free variables its body (transitively)
  reads.  ``free`` is what lets ``keying='label'`` hash a compiled
  closure's captured context exactly instead of approximating it;
* applications precompute ``exprs = (fn,) + args`` so the machine can run
  one tight left-to-right evaluation loop over a single tuple, and
  ``cheap`` — true when every element is *immediate* (literal, variable,
  λ), i.e. evaluable without touching the continuation.

Code nodes carry small integer ``tag``s; tags below :data:`T_IMMEDIATE`
are exactly the immediates, so the machine's hot test is ``tag < 4``.

The pass is purely lexical: it never consults the global environment, so
compiled code is reusable across runs (the machine caches it per AST node).
Unbound names are *not* a compile error — Scheme's top level binds
incrementally, so any name that is not lexically visible compiles to a
global reference that errors only if still unbound when executed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.lang import ast
from repro.sexp.datum import Symbol

# Code-node tags.  The first four are the immediates (tag < T_IMMEDIATE):
# evaluating them can neither push a continuation frame nor call a closure.
T_LIT = 0
T_LOCAL = 1
T_GLOBAL = 2
T_LAM = 3
T_IMMEDIATE = 4  # exclusive upper bound of the immediate tags
T_APP = 4
T_IF = 5
T_BEGIN = 6
T_LET = 7
T_LETREC = 8
T_SETLOCAL = 9
T_SETGLOBAL = 10
T_TERMC = 11


class Code:
    """Base class for compiled nodes (isinstance checks in tooling only)."""

    __slots__ = ()
    tag: int = -1


class CLit(Code):
    __slots__ = ("value",)
    tag = T_LIT

    def __init__(self, value):
        self.value = value

    def __repr__(self) -> str:
        return f"CLit({self.value!r})"


class CLocal(Code):
    """A lexically-addressed read: up ``depth`` frames, slot ``idx``
    (slot 0 of every frame is its parent, so ``idx`` starts at 1)."""

    __slots__ = ("depth", "idx", "name", "loc")
    tag = T_LOCAL

    def __init__(self, depth: int, idx: int, name: Symbol, loc=None):
        self.depth = depth
        self.idx = idx
        self.name = name
        self.loc = loc

    def __repr__(self) -> str:
        return f"CLocal({self.name}@{self.depth}.{self.idx})"


class CGlobal(Code):
    """A read of the global frame: one probe of the string-keyed mirror
    (``sname`` pre-extracts the name so the probe hashes a str, not a
    Symbol)."""

    __slots__ = ("name", "sname", "loc")
    tag = T_GLOBAL

    def __init__(self, name: Symbol, loc=None):
        self.name = name
        self.sname = name.name
        self.loc = loc

    def __repr__(self) -> str:
        return f"CGlobal({self.name})"


class CLam(Code):
    """A compiled λ.  Doubles as the ``lam`` of compiled closures, so it
    mirrors the :class:`repro.lang.ast.Lam` attributes the monitor and the
    tracer consume (``params``, ``name``, ``label``, ``loc``).

    ``free`` holds the addresses of the λ's free variables *relative to
    its captured frame* — ``(0, i)`` reads the defining frame directly.
    ``env_names`` is the name tuple of the defining rib (the rib whose
    runtime frame the closure captures; ``()`` at top level), which is
    what lets ``keying='label'`` hash a compiled closure's captured rib
    with exactly the tree machine's name×value formula.

    ``discharged`` is the residual-enforcement mark: True when the
    compile-time :class:`~repro.analysis.discharge.ResidualPolicy` proved
    this λ terminating, so the machine's monitored modes take the
    monitor-free path for its closures (no table lookup, no graph
    construction).  Compiled code is cached per policy
    (:func:`repro.eval.machine.compile_code`), so the mark never leaks
    into runs with a different policy.

    ``native``/``native_is_gen`` belong to the native tier
    (:mod:`repro.eval.native`): ``native`` holds the exec-generated
    Python function for this λ's body (None = not compiled, or
    unsupported), ``native_is_gen`` records whether it is a generator
    function (``None`` = compilation not yet attempted).  Because the
    marks live on the per-policy CLam, native code inherits the same
    no-policy-leak guarantee as ``discharged``.
    """

    __slots__ = ("params", "nparams", "frame_size", "body", "name", "label",
                 "loc", "free", "env_names", "discharged", "native",
                 "native_is_gen")
    tag = T_LAM

    def __init__(self, params: Tuple[Symbol, ...], body: Code,
                 name: Optional[str], label: int, loc,
                 free: Tuple[Tuple[int, int], ...],
                 env_names: Tuple[Symbol, ...] = (),
                 discharged: bool = False):
        self.params = params
        self.nparams = len(params)
        self.frame_size = 1 + len(params)
        self.body = body
        self.name = name
        self.label = label
        self.loc = loc
        self.free = free
        self.env_names = env_names
        self.discharged = discharged
        self.native = None
        self.native_is_gen = None

    def __repr__(self) -> str:
        shown = self.name or f"λ{self.label}"
        return f"CLam({shown}, {list(self.params)})"


class CApp(Code):
    """``exprs`` is ``(fn,) + args``; ``cheap`` means every element is
    immediate (or itself a cheap application), so when the head is a
    primitive the whole application evaluates without the continuation.

    ``headclo`` is a monomorphic run-time cache: it flips to True the
    first time the machine's inline path finds a head that is not a
    *pure* primitive (a closure, or an effectful primitive whose
    speculative execution could be replayed), so later visits skip the
    doomed inline attempt.  Purely an optimization — the generic path
    applies primitives too, so a name rebound from a closure back to a
    primitive stays correct."""

    __slots__ = ("exprs", "nargs", "cheap", "flat", "headclo", "loc")
    tag = T_APP

    def __init__(self, exprs: Tuple[Code, ...], loc=None):
        self.exprs = exprs
        self.nargs = len(exprs) - 1
        self.flat = all(e.tag < T_IMMEDIATE for e in exprs)
        self.cheap = self.flat or all(
            e.tag < T_IMMEDIATE or (e.tag == T_APP and e.cheap)
            for e in exprs
        )
        self.headclo = False
        self.loc = loc

    def __repr__(self) -> str:
        return f"CApp({list(self.exprs)})"


class CIf(Code):
    """``test1`` pre-wraps the test in a 1-tuple when it is immediate or a
    cheap application, so the machine can feed it straight to its inline
    argument-evaluation loop and branch without a continuation frame —
    the common ``(if (= n 0) ...)`` shape costs no stack traffic."""

    __slots__ = ("test", "then", "els", "test1")
    tag = T_IF

    def __init__(self, test: Code, then: Code, els: Code):
        self.test = test
        self.then = then
        self.els = els
        if test.tag < T_IMMEDIATE or (test.tag == T_APP and test.cheap):
            self.test1 = (test,)
        else:
            self.test1 = None

    def __repr__(self) -> str:
        return f"CIf({self.test!r}, ...)"


class CBegin(Code):
    __slots__ = ("body", "last")
    tag = T_BEGIN

    def __init__(self, body: Tuple[Code, ...]):
        self.body = body
        self.last = len(body) - 1

    def __repr__(self) -> str:
        return f"CBegin({list(self.body)})"


class CLet(Code):
    """Parallel ``let``: rhss evaluate in the outer frame, then one fresh
    frame of ``len(rhss)`` slots binds them simultaneously."""

    __slots__ = ("rhss", "body", "nslots")
    tag = T_LET

    def __init__(self, rhss: Tuple[Code, ...], body: Code):
        self.rhss = rhss
        self.body = body
        self.nslots = len(rhss)

    def __repr__(self) -> str:
        return f"CLet({self.nslots} slots)"


class CLetRec(Code):
    """``letrec*``: the frame is allocated up front with undefined-marker
    slots; rhss evaluate inside it in order and back-patch their slot."""

    __slots__ = ("rhss", "body", "nslots", "names")
    tag = T_LETREC

    def __init__(self, names: Tuple[Symbol, ...], rhss: Tuple[Code, ...],
                 body: Code):
        self.names = names
        self.rhss = rhss
        self.body = body
        self.nslots = len(rhss)

    def __repr__(self) -> str:
        return f"CLetRec({list(self.names)})"


class CSetLocal(Code):
    __slots__ = ("depth", "idx", "expr", "name")
    tag = T_SETLOCAL

    def __init__(self, depth: int, idx: int, expr: Code, name: Symbol):
        self.depth = depth
        self.idx = idx
        self.expr = expr
        self.name = name

    def __repr__(self) -> str:
        return f"CSetLocal({self.name}@{self.depth}.{self.idx})"


class CSetGlobal(Code):
    __slots__ = ("name", "expr", "loc")
    tag = T_SETGLOBAL

    def __init__(self, name: Symbol, expr: Code, loc=None):
        self.name = name
        self.expr = expr
        self.loc = loc

    def __repr__(self) -> str:
        return f"CSetGlobal({self.name})"


class CTermC(Code):
    __slots__ = ("expr", "blame")
    tag = T_TERMC

    def __init__(self, expr: Code, blame: str):
        self.expr = expr
        self.blame = blame

    def __repr__(self) -> str:
        return f"CTermC(blame={self.blame!r})"


class _LamScope:
    """Per-λ bookkeeping during resolution: the rib-stack height at λ
    entry (to classify references as free) and the free addresses seen."""

    __slots__ = ("mark", "free")

    def __init__(self, mark: int):
        self.mark = mark
        self.free = {}  # (depth, idx) relative to the λ's captured frame


class Resolver:
    """One resolution walk.  ``ribs`` is the static frame chain, innermost
    last; each rib is the tuple of symbols its runtime frame will hold.
    ``skip_labels`` (a residual policy's discharged λ-label set) stamps
    matching λs with the monitor-free ``discharged`` mark."""

    def __init__(self, skip_labels=None):
        self.ribs: List[Tuple[Symbol, ...]] = []
        self.lams: List[_LamScope] = []
        self.skip_labels = skip_labels

    # -- the walk --------------------------------------------------------------

    def resolve(self, node: ast.Node) -> Code:
        k = node.kind
        if k == ast.K_LIT:
            return CLit(node.value)
        if k == ast.K_VAR:
            name = node.name
            addr = self._address(name)
            if addr is None:
                return CGlobal(name, node.loc)
            return CLocal(addr[0], addr[1], name, node.loc)
        if k == ast.K_LAM:
            return self._resolve_lam(node)
        if k == ast.K_APP:
            exprs = (self.resolve(node.fn),) + tuple(
                self.resolve(a) for a in node.args)
            return CApp(exprs, node.loc)
        if k == ast.K_IF:
            return CIf(self.resolve(node.test), self.resolve(node.then),
                       self.resolve(node.els))
        if k == ast.K_BEGIN:
            body = tuple(self.resolve(e) for e in node.body)
            if len(body) == 1:
                return body[0]
            return CBegin(body)
        if k == ast.K_LET:
            # Empty binders still allocate a frame: the tree machine pushes
            # an empty rib, and λs created in the body key their captured
            # rib under keying='label' — the partitions must match.
            rhss = tuple(self.resolve(r) for r in node.rhss)
            self.ribs.append(tuple(node.names))
            body = self.resolve(node.body)
            self.ribs.pop()
            return CLet(rhss, body)
        if k == ast.K_LETREC:
            self.ribs.append(tuple(node.names))
            rhss = tuple(self.resolve(r) for r in node.rhss)
            body = self.resolve(node.body)
            self.ribs.pop()
            return CLetRec(tuple(node.names), rhss, body)
        if k == ast.K_SET:
            expr = self.resolve(node.expr)
            addr = self._address(node.name)
            if addr is None:
                return CSetGlobal(node.name, expr, node.loc)
            return CSetLocal(addr[0], addr[1], expr, node.name)
        if k == ast.K_TERMC:
            return CTermC(self.resolve(node.expr), node.blame)
        raise ValueError(f"unknown AST node kind {k}")  # pragma: no cover

    def _address(self, name: Symbol) -> Optional[Tuple[int, int]]:
        """The ``(depth, slot)`` of ``name``, or ``None`` for globals.
        Symbols are interned, so identity comparison suffices.  Records the
        reference as free in every enclosing λ it escapes."""
        ribs = self.ribs
        n = len(ribs)
        for depth in range(n):
            rib = ribs[n - 1 - depth]
            # Innermost binding wins on duplicate names: search from the end.
            for i in range(len(rib) - 1, -1, -1):
                if rib[i] is name:
                    self._note_free(depth, i + 1)
                    return depth, i + 1
        return None

    def _note_free(self, depth: int, idx: int):
        """A reference ``depth`` ribs up is free for every λ whose body
        holds fewer than ``depth + 1`` ribs at the reference point; record
        its address relative to each such λ's captured frame."""
        height = len(self.ribs)
        for scope in reversed(self.lams):
            inside = height - scope.mark
            if depth < inside:
                break
            scope.free[(depth - inside, idx)] = True

    def _resolve_lam(self, node: ast.Lam) -> CLam:
        env_names = self.ribs[-1] if self.ribs else ()
        scope = _LamScope(len(self.ribs))
        self.lams.append(scope)
        self.ribs.append(tuple(node.params))
        body = self.resolve(node.body)
        self.ribs.pop()
        self.lams.pop()
        free = tuple(sorted(scope.free))
        # A free variable of an inner λ is (transitively) free here too
        # unless bound by one of this λ's own ribs; _note_free already
        # recorded it against every scope it escapes, so nothing to merge.
        discharged = (self.skip_labels is not None
                      and node.label in self.skip_labels)
        return CLam(node.params, body, node.name, node.label, node.loc, free,
                    env_names, discharged)


def resolve(expr: ast.Node, skip_labels=None) -> Code:
    """Compile one expression (a top-level form's body) to code nodes.

    ``skip_labels`` — λ labels a :class:`~repro.analysis.discharge.
    ResidualPolicy` discharged; their :class:`CLam`\\ s get the
    ``discharged`` mark the machine's monitored modes honor."""
    return Resolver(skip_labels).resolve(expr)
