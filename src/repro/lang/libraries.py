"""Shared parses of the prelude and the contract library.

Both the machines (:mod:`repro.eval.machine`) and the symbolic engines
(:mod:`repro.symbolic.engine`) load the prelude and the contract library.
λ labels are assigned per :class:`~repro.lang.ast.Lam` construction, so
if each consumer parsed its own copy, the verifier's labels for ``map``,
``foldr``, ... would never coincide with the labels the evaluator's
closures carry.  The discharge pipeline (:mod:`repro.analysis.discharge`)
depends on that coincidence: a certificate names λ labels, and a label
proven terminating by the engine must denote the *same* syntactic λ the
monitor would otherwise instrument.  Parsing each library exactly once
per process makes label identity hold across both worlds.
"""

from __future__ import annotations

from typing import Optional

from repro.lang.program import Program

_PRELUDE_PROGRAM: Optional[Program] = None
_CONTRACTS_PROGRAM: Optional[Program] = None


def prelude_program() -> Program:
    """The parsed prelude (one shared parse per process)."""
    global _PRELUDE_PROGRAM
    if _PRELUDE_PROGRAM is None:
        from repro.lang.parser import parse_program
        from repro.lang.prims import PRELUDE_SOURCE

        _PRELUDE_PROGRAM = parse_program(PRELUDE_SOURCE, source="<prelude>")
    return _PRELUDE_PROGRAM


def contracts_program() -> Program:
    """The parsed contract library (one shared parse per process)."""
    global _CONTRACTS_PROGRAM
    if _CONTRACTS_PROGRAM is None:
        from repro.lang.contracts_lib import CONTRACTS_SOURCE
        from repro.lang.parser import parse_program

        _CONTRACTS_PROGRAM = parse_program(CONTRACTS_SOURCE,
                                           source="<contracts>")
    return _CONTRACTS_PROGRAM
