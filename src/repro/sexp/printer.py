"""Datum printer: the inverse of the reader, used for error messages,
quoted-constant display, and reader round-trip tests."""

from __future__ import annotations

from repro.sexp.datum import Char, Dotted, Symbol


def write_datum(datum) -> str:
    """Render a datum in external (re-readable) form."""
    if datum is True:
        return "#t"
    if datum is False:
        return "#f"
    if isinstance(datum, Symbol):
        return datum.name
    if isinstance(datum, (int, float)):
        return repr(datum)
    if isinstance(datum, str):
        escaped = datum.replace("\\", "\\\\").replace('"', '\\"')
        escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
        return f'"{escaped}"'
    if isinstance(datum, Char):
        return f"#\\{datum.external_name()}"
    if isinstance(datum, list):
        return "(" + " ".join(write_datum(x) for x in datum) + ")"
    if isinstance(datum, Dotted):
        inner = " ".join(write_datum(x) for x in datum.items)
        return f"({inner} . {write_datum(datum.tail)})"
    raise TypeError(f"not a datum: {datum!r}")
