"""Atomic datum types shared by the reader, the compiler and the runtime.

A *datum* is one of:

* :class:`Symbol` — interned identifier,
* ``int`` / ``float`` — numbers,
* ``bool`` — ``#t`` / ``#f``,
* ``str`` — string literal,
* :class:`Char` — character literal,
* ``list`` of datums — proper list,
* :class:`Dotted` — improper list.

Symbols are interned so they compare and hash by identity, which keeps
environment lookups and ``eq?`` cheap.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class Symbol:
    """An interned identifier.  Use :func:`intern`, not the constructor.

    The hash is computed once at construction (i.e. at interning): symbols
    key the global environment and, under the ``label`` policy, size-change
    tables, so every table probe would otherwise re-hash the name.
    """

    __slots__ = ("name", "_hash")

    _table: Dict[str, "Symbol"] = {}

    def __init__(self, name: str):
        self.name = name
        self._hash = hash(name)

    def __repr__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        # Interning makes identity equality sufficient, but structural
        # equality keeps pickled / separately constructed symbols sane.
        return isinstance(other, Symbol) and other.name == self.name


def intern(name: str) -> Symbol:
    """Return the unique :class:`Symbol` for ``name``."""
    sym = Symbol._table.get(name)
    if sym is None:
        sym = Symbol(name)
        Symbol._table[name] = sym
    return sym


_CHAR_NAMES: Dict[str, str] = {
    "space": " ",
    "newline": "\n",
    "tab": "\t",
    "nul": "\0",
    "return": "\r",
}

_CHAR_NAMES_REV = {v: k for k, v in _CHAR_NAMES.items()}


class Char:
    """A Scheme character literal such as ``#\\a``."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        if len(value) != 1:
            raise ValueError(f"Char must wrap a single character, got {value!r}")
        self.value = value

    @staticmethod
    def named(name: str) -> "Char":
        if len(name) == 1:
            return Char(name)
        if name in _CHAR_NAMES:
            return Char(_CHAR_NAMES[name])
        raise ValueError(f"unknown character name: #\\{name}")

    def external_name(self) -> str:
        return _CHAR_NAMES_REV.get(self.value, self.value)

    def __repr__(self) -> str:
        return f"#\\{self.external_name()}"

    def __hash__(self) -> int:
        return hash(("char", self.value))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Char) and other.value == self.value


class Dotted:
    """An improper list ``(a b . c)``: ``items`` then a non-list ``tail``."""

    __slots__ = ("items", "tail")

    def __init__(self, items: Tuple, tail: object):
        self.items = tuple(items)
        self.tail = tail

    def __repr__(self) -> str:
        inner = " ".join(repr(x) for x in self.items)
        return f"({inner} . {self.tail!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Dotted)
            and other.items == self.items
            and other.tail == self.tail
        )

    def __hash__(self) -> int:
        return hash(("dotted", self.items, self.tail))


# Well-known symbols used by the reader's quote sugar and the expander.
S_QUOTE = intern("quote")
S_QUASIQUOTE = intern("quasiquote")
S_UNQUOTE = intern("unquote")
S_UNQUOTE_SPLICING = intern("unquote-splicing")
