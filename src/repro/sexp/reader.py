"""S-expression reader with source locations.

``read_many`` turns program text into a list of :class:`Syntax` objects.
Every node (atoms included) carries a line/column location so the compiler
and the contract system can point blame at precise source positions.

Supported syntax: proper and dotted lists, ``[`` ``]`` as list brackets,
integers (with sign), decimal floats, ``#t``/``#f``, strings with the usual
escapes, characters (``#\\a``, ``#\\space`` ...), line comments ``;``, block
comments ``#| ... |#``, datum comments ``#;``, and the quote family
``'``/`` ` ``/``,``/``,@``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.sexp.datum import (
    Char,
    Dotted,
    S_QUASIQUOTE,
    S_QUOTE,
    S_UNQUOTE,
    S_UNQUOTE_SPLICING,
    Symbol,
    intern,
)


class SrcLoc:
    """A source position: 1-based line, 0-based column."""

    __slots__ = ("line", "col", "source")

    def __init__(self, line: int, col: int, source: str = "<string>"):
        self.line = line
        self.col = col
        self.source = source

    def __repr__(self) -> str:
        return f"{self.source}:{self.line}:{self.col}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SrcLoc)
            and (other.line, other.col, other.source)
            == (self.line, self.col, self.source)
        )


class Syntax:
    """A datum annotated with its source location.

    For list syntax, ``datum`` is a Python list of child ``Syntax`` nodes;
    atoms hold the raw datum.  :meth:`strip` recursively removes locations.
    """

    __slots__ = ("datum", "loc")

    def __init__(self, datum, loc: Optional[SrcLoc]):
        self.datum = datum
        self.loc = loc

    def is_list(self) -> bool:
        return isinstance(self.datum, list)

    def strip(self):
        if isinstance(self.datum, list):
            return [child.strip() for child in self.datum]
        if isinstance(self.datum, Dotted):
            return Dotted(
                tuple(child.strip() for child in self.datum.items),
                self.datum.tail.strip(),
            )
        return self.datum

    def __repr__(self) -> str:
        return f"#<syntax {self.strip()!r} at {self.loc}>"


class ReaderError(SyntaxError):
    """Raised on malformed input, with the offending location."""

    def __init__(self, message: str, loc: Optional[SrcLoc]):
        where = f" at {loc}" if loc is not None else ""
        super().__init__(f"{message}{where}")
        self.loc = loc


_DELIMS = set("()[]\"';` \t\n\r,")

_QUOTE_SUGAR = {
    "'": S_QUOTE,
    "`": S_QUASIQUOTE,
    ",": S_UNQUOTE,
    ",@": S_UNQUOTE_SPLICING,
}


class _Reader:
    def __init__(self, text: str, source: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.col = 0
        self.source = source

    # -- low level ---------------------------------------------------------

    def loc(self) -> SrcLoc:
        return SrcLoc(self.line, self.col, self.source)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def peek2(self) -> str:
        return self.text[self.pos : self.pos + 2]

    def advance(self) -> str:
        ch = self.text[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.col = 0
        else:
            self.col += 1
        return ch

    def skip_atmosphere(self) -> None:
        """Skip whitespace and comments (line, block, and datum comments)."""
        while self.pos < len(self.text):
            ch = self.peek()
            if ch in " \t\n\r":
                self.advance()
            elif ch == ";":
                while self.pos < len(self.text) and self.peek() != "\n":
                    self.advance()
            elif self.peek2() == "#|":
                self._skip_block_comment()
            elif self.peek2() == "#;":
                self.advance()
                self.advance()
                self.read()  # discard the next datum
            else:
                return

    def _skip_block_comment(self) -> None:
        start = self.loc()
        self.advance()
        self.advance()
        depth = 1
        while depth > 0:
            if self.pos >= len(self.text):
                raise ReaderError("unterminated block comment", start)
            if self.peek2() == "#|":
                self.advance()
                self.advance()
                depth += 1
            elif self.peek2() == "|#":
                self.advance()
                self.advance()
                depth -= 1
            else:
                self.advance()

    # -- datums ------------------------------------------------------------

    def read(self) -> Optional[Syntax]:
        self.skip_atmosphere()
        if self.pos >= len(self.text):
            return None
        loc = self.loc()
        ch = self.peek()
        if ch in "([":
            return self._read_list(")" if ch == "(" else "]", loc)
        if ch in ")]":
            raise ReaderError(f"unexpected '{ch}'", loc)
        if ch == '"':
            return Syntax(self._read_string(loc), loc)
        if ch == "'" or ch == "`":
            self.advance()
            return self._sugar(_QUOTE_SUGAR[ch], loc)
        if ch == ",":
            self.advance()
            if self.peek() == "@":
                self.advance()
                return self._sugar(S_UNQUOTE_SPLICING, loc)
            return self._sugar(S_UNQUOTE, loc)
        if ch == "#":
            return self._read_hash(loc)
        return Syntax(self._read_atom(loc), loc)

    def _sugar(self, head: Symbol, loc: SrcLoc) -> Syntax:
        inner = self.read()
        if inner is None:
            raise ReaderError(f"missing datum after {head.name} sugar", loc)
        return Syntax([Syntax(head, loc), inner], loc)

    def _read_list(self, closer: str, loc: SrcLoc) -> Syntax:
        self.advance()
        items: List[Syntax] = []
        tail: Optional[Syntax] = None
        while True:
            self.skip_atmosphere()
            if self.pos >= len(self.text):
                raise ReaderError("unterminated list", loc)
            ch = self.peek()
            if ch in ")]":
                if ch != closer:
                    raise ReaderError(
                        f"mismatched bracket: expected '{closer}', got '{ch}'",
                        self.loc(),
                    )
                self.advance()
                break
            if ch == "." and self._dot_is_delimited():
                self.advance()
                tail = self.read()
                if tail is None:
                    raise ReaderError("missing datum after '.'", loc)
                self.skip_atmosphere()
                if self.peek() != closer:
                    raise ReaderError("expected close bracket after dotted tail", loc)
                self.advance()
                break
            item = self.read()
            assert item is not None
            items.append(item)
        if tail is None:
            return Syntax(items, loc)
        if not items:
            raise ReaderError("dotted list needs at least one item", loc)
        return Syntax(Dotted(tuple(items), tail), loc)

    def _dot_is_delimited(self) -> bool:
        nxt = self.text[self.pos + 1 : self.pos + 2]
        return nxt == "" or nxt in _DELIMS

    def _read_string(self, loc: SrcLoc) -> str:
        self.advance()
        chars: List[str] = []
        while True:
            if self.pos >= len(self.text):
                raise ReaderError("unterminated string", loc)
            ch = self.advance()
            if ch == '"':
                return "".join(chars)
            if ch == "\\":
                esc = self.advance()
                chars.append(
                    {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\"}.get(esc, esc)
                )
            else:
                chars.append(ch)

    def _read_hash(self, loc: SrcLoc) -> Syntax:
        self.advance()  # '#'
        ch = self.peek()
        if ch == "t":
            self._read_symbol_text()
            return Syntax(True, loc)
        if ch == "f":
            self._read_symbol_text()
            return Syntax(False, loc)
        if ch == "\\":
            self.advance()
            if self.pos >= len(self.text):
                raise ReaderError("unterminated character literal", loc)
            first = self.advance()
            rest = ""
            if first.isalpha():
                rest = self._read_symbol_text()
            try:
                return Syntax(Char.named(first + rest), loc)
            except ValueError as exc:
                raise ReaderError(str(exc), loc) from exc
        raise ReaderError(f"unsupported '#' syntax: #{ch}", loc)

    def _read_symbol_text(self) -> str:
        chars: List[str] = []
        while self.pos < len(self.text) and self.peek() not in _DELIMS:
            chars.append(self.advance())
        return "".join(chars)

    def _read_atom(self, loc: SrcLoc):
        text = self._read_symbol_text()
        if not text:
            raise ReaderError("empty atom", loc)
        number = _parse_number(text)
        if number is not None:
            return number
        return intern(text)


def _parse_number(text: str) -> Optional[Union[int, float]]:
    body = text[1:] if text[0] in "+-" else text
    if not body:
        return None
    if body.isdigit():
        return int(text)
    if body.replace(".", "", 1).isdigit() and "." in body:
        return float(text)
    return None


def read_many(text: str, source: str = "<string>") -> List[Syntax]:
    """Read every datum in ``text``."""
    reader = _Reader(text, source)
    out: List[Syntax] = []
    while True:
        stx = reader.read()
        if stx is None:
            return out
        out.append(stx)


def read(text: str, source: str = "<string>") -> Syntax:
    """Read exactly one datum from ``text``."""
    forms = read_many(text, source)
    if len(forms) != 1:
        raise ReaderError(f"expected exactly one datum, got {len(forms)}", None)
    return forms[0]
