"""S-expression front end: datum model, reader, and printer."""

from repro.sexp.datum import Char, Symbol, intern
from repro.sexp.printer import write_datum
from repro.sexp.reader import ReaderError, Syntax, read, read_many

__all__ = [
    "Char",
    "Symbol",
    "intern",
    "Syntax",
    "ReaderError",
    "read",
    "read_many",
    "write_datum",
]
