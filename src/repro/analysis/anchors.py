"""Positive termination certificates: *why* a verified program terminates.

The LJB theorem says a program has the size-change property iff every
idempotent graph in the composition closure carries a strict self-arc.
Those self-arcs are the *anchors*: the parameters whose descent breaks
every potentially-infinite call pattern.  This module re-runs the closure
and reports them, giving verified verdicts an explanation a user can
check against their own understanding of the code:

    ack: every repeatable call pattern strictly descends on m or n
    loop: every repeatable call pattern strictly descends on l
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.sct.graph import SCGraph, STRICT

Edge = Tuple[int, int]


class FunctionAnchors:
    """Anchor report for one function (one λ label)."""

    __slots__ = ("label", "idempotents", "anchor_sets")

    def __init__(self, label: int, idempotents: List[SCGraph]):
        self.label = label
        self.idempotents = idempotents
        self.anchor_sets: List[Set[int]] = [
            {i for (i, r, j) in g.arcs if r is STRICT and i == j}
            for g in idempotents
        ]

    def all_anchored(self) -> bool:
        return all(self.anchor_sets)

    def anchor_union(self) -> Set[int]:
        out: Set[int] = set()
        for anchors in self.anchor_sets:
            out |= anchors
        return out

    def common_anchor(self) -> Optional[int]:
        """A single parameter descending in *every* repeatable pattern, if
        one exists (the simplest possible termination argument)."""
        if not self.anchor_sets:
            return None
        common = set(self.anchor_sets[0])
        for anchors in self.anchor_sets[1:]:
            common &= anchors
        return min(common) if common else None


def collect_anchors(edges: Dict[Edge, Set[SCGraph]],
                    max_graphs: int = 20000) -> Optional[Dict[int, FunctionAnchors]]:
    """Close ``edges`` and group the idempotent self-compositions by
    function.  Returns ``None`` when the closure blows the cap or some
    idempotent graph lacks a strict self-arc (no certificate: the SCP
    fails or is undetermined)."""
    graphs: Dict[Edge, Set[SCGraph]] = {}
    by_source: Dict[int, Set[int]] = {}
    by_target: Dict[int, Set[int]] = {}
    total = 0
    queue = deque()

    def add(edge: Edge, graph: SCGraph) -> bool:
        nonlocal total
        bucket = graphs.setdefault(edge, set())
        if graph in bucket:
            return False
        bucket.add(graph)
        by_source.setdefault(edge[0], set()).add(edge[1])
        by_target.setdefault(edge[1], set()).add(edge[0])
        total += 1
        return True

    for edge, graph_set in edges.items():
        for graph in graph_set:
            if add(edge, graph):
                queue.append((edge, graph))

    while queue:
        (f, g), G = queue.popleft()
        if f == g and G.is_idempotent() and not G.has_strict_self_arc():
            return None
        for h in list(by_source.get(g, ())):
            for H in list(graphs.get((g, h), ())):
                if add((f, h), G.compose(H)):
                    queue.append(((f, h), G.compose(H)))
        for e in list(by_target.get(f, ())):
            for E in list(graphs.get((e, f), ())):
                if add((e, g), E.compose(G)):
                    queue.append(((e, g), E.compose(G)))
        if total > max_graphs:
            return None

    report: Dict[int, FunctionAnchors] = {}
    for (f, g), bucket in graphs.items():
        if f != g:
            continue
        idempotents = [G for G in bucket if G.is_idempotent()]
        if idempotents:
            report[f] = FunctionAnchors(f, idempotents)
    return report


def explain_termination(
    edges: Dict[Edge, Set[SCGraph]],
    label_names: Optional[Dict[int, str]] = None,
    label_params: Optional[Dict[int, List[str]]] = None,
) -> List[str]:
    """Human-readable anchor lines for a verified program (empty when no
    certificate is available)."""
    report = collect_anchors(edges)
    if report is None:
        return []

    def nm(label: int) -> str:
        if label_names and label in label_names:
            return label_names[label]
        return f"λ{label}"

    def pnames(label: int, params: Set[int]) -> List[str]:
        names = label_params.get(label) if label_params else None
        out = []
        for i in sorted(params):
            if names and i < len(names):
                out.append(names[i])
            else:
                out.append(f"x{i}")
        return out

    lines = []
    for label in sorted(report):
        anchors = report[label]
        if not anchors.all_anchored():
            continue
        common = anchors.common_anchor()
        if common is not None:
            [name] = pnames(label, {common})
            lines.append(f"{nm(label)}: every repeatable call pattern "
                         f"strictly descends on {name}")
        else:
            names = pnames(label, anchors.anchor_union())
            lines.append(f"{nm(label)}: every repeatable call pattern "
                         f"strictly descends on one of "
                         f"{{{', '.join(names)}}}")
    return lines
