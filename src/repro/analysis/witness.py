"""SCP failure witnesses: *which call path* admits infinite descent-free
iteration.

``scp_check`` (:mod:`repro.analysis.ljb`) answers "does the size-change
principle hold" and, on failure, surfaces the violating composed graph.
For error reporting that is only half the story: a user fixing a
termination bug wants the **multipath** — the sequence of actual call
edges whose composition is the idempotent, descent-free graph.  This
module re-runs the closure with provenance: every composed graph
remembers its two parents, so the witness flattens into the base-edge
path ``f →g₁→ h →g₂→ … →gₙ→ f``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.sct.graph import SCGraph

Edge = Tuple[int, int]
_Key = Tuple[Edge, SCGraph]


class WitnessStep:
    """One base edge of the witness multipath."""

    __slots__ = ("source", "target", "graph")

    def __init__(self, source: int, target: int, graph: SCGraph):
        self.source = source
        self.target = target
        self.graph = graph

    def __repr__(self) -> str:
        return f"WitnessStep({self.source}→{self.target})"


class WitnessResult:
    """Like :class:`repro.analysis.ljb.SCPResult`, plus the multipath."""

    def __init__(self, ok: Optional[bool],
                 witness_label: Optional[int] = None,
                 witness_graph: Optional[SCGraph] = None,
                 path: Optional[List[WitnessStep]] = None,
                 total_graphs: int = 0):
        self.ok = ok
        self.witness_label = witness_label
        self.witness_graph = witness_graph
        self.path = path
        self.total_graphs = total_graphs

    def render_path(self, label_names: Optional[Dict[int, str]] = None,
                    label_params: Optional[Dict[int, list]] = None) -> str:
        """``f →{g}→ g →{h}→ f`` with pretty-printed edge graphs."""
        if not self.path:
            return ""

        def nm(label: int) -> str:
            if label_names and label in label_names:
                return label_names[label]
            return f"λ{label}"

        parts = [nm(self.path[0].source)]
        for step in self.path:
            names = label_params.get(step.target) if label_params else None
            parts.append(f"→{step.graph.pretty(names)}→")
            parts.append(nm(step.target))
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"WitnessResult(ok={self.ok})"


def scp_check_with_witness(edges: Dict[Edge, Set[SCGraph]],
                           max_graphs: int = 20000) -> WitnessResult:
    """The LJB closure with provenance tracking.

    Identical verdicts to :func:`repro.analysis.ljb.scp_check` (the same
    worklist order and cap), but each derived graph records its parents so
    a failure comes back with the flattened base-edge multipath.
    """
    graphs: Dict[Edge, Set[SCGraph]] = {}
    by_source: Dict[int, Set[int]] = {}
    by_target: Dict[int, Set[int]] = {}
    parents: Dict[_Key, Optional[Tuple[_Key, _Key]]] = {}
    total = 0
    queue = deque()

    def add(edge: Edge, graph: SCGraph, parent) -> bool:
        nonlocal total
        bucket = graphs.setdefault(edge, set())
        if graph in bucket:
            return False
        bucket.add(graph)
        by_source.setdefault(edge[0], set()).add(edge[1])
        by_target.setdefault(edge[1], set()).add(edge[0])
        parents[(edge, graph)] = parent
        total += 1
        return True

    for edge, graph_set in edges.items():
        for graph in graph_set:
            if add(edge, graph, None):
                queue.append((edge, graph))

    def flatten(key: _Key) -> List[WitnessStep]:
        """Expand a derived graph into its base edges, left-to-right in
        temporal order (a pre-order walk of the provenance tree)."""
        leaves: List[_Key] = []
        stack = [key]
        while stack:
            k = stack.pop()
            parent = parents.get(k)
            if parent is None:
                leaves.append(k)
            else:
                left, right = parent
                stack.append(right)  # popped after left: temporal order
                stack.append(left)
        # `stack.pop()` visits `left` before `right`, but both were pushed
        # after any pending siblings, so the visit order is exactly the
        # left-to-right leaf order.
        return [WitnessStep(edge[0], edge[1], g) for (edge, g) in leaves]

    while queue:
        (f, g), G = queue.popleft()
        if f == g and G.is_idempotent() and not G.has_strict_self_arc():
            return WitnessResult(False, witness_label=f, witness_graph=G,
                                 path=flatten(((f, g), G)),
                                 total_graphs=total)
        for h in list(by_source.get(g, ())):
            for H in list(graphs.get((g, h), ())):
                composed = G.compose(H)
                if add((f, h), composed, (((f, g), G), ((g, h), H))):
                    queue.append(((f, h), composed))
        for e in list(by_target.get(f, ())):
            for E in list(graphs.get((e, f), ())):
                composed = E.compose(G)
                if add((e, g), composed, (((e, f), E), ((f, g), G))):
                    queue.append(((e, g), composed))
        if total > max_graphs:
            return WitnessResult(None, total_graphs=total)
    return WitnessResult(True, total_graphs=total)
