"""Phase 2 of size-change termination (Lee–Jones–Ben-Amram, POPL 2001).

Given a multigraph of size-change graphs on call-graph edges, close it
under composition along paths; the program has the size-change property
iff every idempotent self-composition ``f → f`` carries a strict self-arc.

The closure is the standard worklist algorithm (each popped graph composes
with everything currently to its right *and* to its left, so late arrivals
still meet earlier graphs); graph sets per edge are finite, and a
configurable cap guards against pathological blowup (reported as
"undetermined" rather than as a verdict).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.sct.graph import SCGraph

Edge = Tuple[int, int]


class SCPResult:
    """``ok`` is True (SCP holds), False (violated, see witness), or None
    (closure blew the cap — undetermined)."""

    def __init__(self, ok: Optional[bool], witness_label: Optional[int] = None,
                 witness_graph: Optional[SCGraph] = None, total_graphs: int = 0):
        self.ok = ok
        self.witness_label = witness_label
        self.witness_graph = witness_graph
        self.total_graphs = total_graphs

    def __repr__(self) -> str:
        return f"SCPResult(ok={self.ok})"


class _Closure:
    def __init__(self):
        self.graphs: Dict[Edge, Set[SCGraph]] = {}
        self.by_source: Dict[int, Set[int]] = {}
        self.by_target: Dict[int, Set[int]] = {}
        self.total = 0

    def add(self, edge: Edge, graph: SCGraph) -> bool:
        bucket = self.graphs.setdefault(edge, set())
        if graph in bucket:
            return False
        bucket.add(graph)
        self.by_source.setdefault(edge[0], set()).add(edge[1])
        self.by_target.setdefault(edge[1], set()).add(edge[0])
        self.total += 1
        return True


def scp_check(edges: Dict[Edge, Set[SCGraph]], max_graphs: int = 20000) -> SCPResult:
    """Close ``edges`` under composition and check the SCP."""
    state = _Closure()
    queue = deque()
    for edge, graphs in edges.items():
        for graph in graphs:
            if state.add(edge, graph):
                queue.append((edge, graph))

    while queue:
        (f, g), G = queue.popleft()
        if f == g and G.is_idempotent() and not G.has_strict_self_arc():
            return SCPResult(False, witness_label=f, witness_graph=G,
                             total_graphs=state.total)
        # Compose to the right: G ; H for H on (g, h).
        for h in list(state.by_source.get(g, ())):
            for H in list(state.graphs.get((g, h), ())):
                composed = G.compose(H)
                if state.add((f, h), composed):
                    queue.append(((f, h), composed))
        # Compose to the left: E ; G for E on (e, f).
        for e in list(state.by_target.get(f, ())):
            for E in list(state.graphs.get((e, f), ())):
                composed = E.compose(G)
                if state.add((e, g), composed):
                    queue.append(((e, g), composed))
        if state.total > max_graphs:
            return SCPResult(None, total_graphs=state.total)
    return SCPResult(True, total_graphs=state.total)
