"""Phase 2 of size-change termination (Lee–Jones–Ben-Amram, POPL 2001).

Given a multigraph of size-change graphs on call-graph edges, close it
under composition along paths; the program has the size-change property
iff every idempotent self-composition ``f → f`` carries a strict self-arc.

The closure is the standard worklist algorithm (each popped graph composes
with everything currently to its right *and* to its left, so late arrivals
still meet earlier graphs); graph sets per edge are finite, and a
configurable cap guards against pathological blowup (reported as
"undetermined" rather than as a verdict).

Two engines run the same worklist:

* ``'bitmask'`` (default) packs every graph into a ``(strict, weak)`` int
  pair (:mod:`repro.sct.bitgraph`) at the smallest arity covering the
  input edges, and keeps an **interned-graph table** so each distinct
  packed graph exists once — dedup during the closure is a hash of two
  machine ints instead of a frozenset of tuples.  The witness handed back
  in :class:`SCPResult` is unpacked to a reference
  :class:`~repro.sct.graph.SCGraph`.
* ``'reference'`` composes the frozenset graphs directly, exactly as the
  paper writes it; kept for spec-conformance property tests.

Packing is injective below the chosen arity, so a closure that runs to
its fixpoint visits graph-for-graph the same set under both engines:
verdicts and ``total_graphs`` coincide exactly on completed runs (True)
and on violations found at the fixpoint.  Runs that stop early — a
violation met mid-closure, or the ``max_graphs`` cap — may differ in
*which* sound answer they report (one engine can find a witness before
the cap the other blows), because set iteration order differs between
the two graph representations.  Either answer is correct: a ``False``
always carries a genuine SCP counterexample, a ``None`` is always just
"undetermined".
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set, Tuple

from repro.sct import bitgraph
from repro.sct.graph import SCGraph

Edge = Tuple[int, int]


class SCPResult:
    """``ok`` is True (SCP holds), False (violated, see witness), or None
    (closure blew the cap — undetermined)."""

    def __init__(self, ok: Optional[bool], witness_label: Optional[int] = None,
                 witness_graph: Optional[SCGraph] = None, total_graphs: int = 0):
        self.ok = ok
        self.witness_label = witness_label
        self.witness_graph = witness_graph
        self.total_graphs = total_graphs

    def __repr__(self) -> str:
        return f"SCPResult(ok={self.ok})"


class _Closure:
    """Worklist state shared by both engines: per-edge graph sets plus
    source/target adjacency.  Graphs are whatever the engine composes —
    ``SCGraph`` objects or interned packed int pairs."""

    def __init__(self):
        self.graphs: Dict[Edge, Set] = {}
        self.by_source: Dict[int, Set[int]] = {}
        self.by_target: Dict[int, Set[int]] = {}
        self.total = 0

    def add(self, edge: Edge, graph) -> bool:
        bucket = self.graphs.setdefault(edge, set())
        if graph in bucket:
            return False
        bucket.add(graph)
        self.by_source.setdefault(edge[0], set()).add(edge[1])
        self.by_target.setdefault(edge[1], set()).add(edge[0])
        self.total += 1
        return True


def scp_check(edges: Dict[Edge, Set[SCGraph]], max_graphs: int = 20000,
              engine: str = "bitmask") -> SCPResult:
    """Close ``edges`` under composition and check the SCP."""
    if engine == "reference":
        return _scp_check_reference(edges, max_graphs)
    if engine != "bitmask":
        raise ValueError(f"unknown graph engine: {engine!r}")
    return _scp_check_bitmask(edges, max_graphs)


def _scp_check_bitmask(edges: Dict[Edge, Set[SCGraph]],
                       max_graphs: int) -> SCPResult:
    m = 1
    for graphs in edges.values():
        for graph in graphs:
            arity = bitgraph.required_arity(graph)
            if arity > m:
                m = arity
    mk = bitgraph.masks(m)
    compose_left = bitgraph.compose_left
    compose_right = bitgraph.compose_right
    diag = mk.diag

    # The interned-graph table: every packed graph the closure touches is
    # funneled through here, so equal graphs share one tuple and set
    # membership hits the identity fast path.
    interned: Dict[Tuple[int, int], Tuple[int, int]] = {}

    def intern(packed):
        return interned.setdefault(packed, packed)

    # The worklist meets most compositions twice — once when the left
    # graph pops with the right already placed, once the other way
    # around.  The composition event ``(f, g, h, G, H)`` (edge context
    # plus interned operands) is a perfect memo key: the second meeting
    # would re-derive a graph the first already added to ``(f, h)``, so
    # it is skipped outright.  The memo is a pure optimization
    # (``state.add`` already makes re-derivations harmless), so it stops
    # growing at a bound tied to the graph cap rather than letting a
    # pathological closure hold every event it ever performed.
    seen_pairs = set()
    memo_cap = 64 * max_graphs

    state = _Closure()
    queue = deque()
    for edge, graphs in edges.items():
        for graph in graphs:
            packed = intern(bitgraph.pack(graph, m))
            if state.add(edge, packed):
                queue.append((edge, packed))

    while queue:
        (f, g), (Gs, Gw) = queue.popleft()
        if (f == g and not (Gs & diag)
                and bitgraph.is_idempotent(mk, Gs, Gw)):
            return SCPResult(False, witness_label=f,
                             witness_graph=bitgraph.unpack(mk, Gs, Gw),
                             total_graphs=state.total)
        # A pop only mutates buckets it is iterating when it sits on a
        # self-loop (f == g); everything else can walk the live sets.
        snap = (lambda it: list(it)) if f == g else (lambda it: it)
        # Compose to the right: G ; H for H on (g, h).  G is the fixed
        # left operand, so its column masks are extracted once.
        left = bitgraph.left_factor(mk, Gs, Gw)
        G = (Gs, Gw)
        for h in snap(state.by_source.get(g, ())):
            target = (f, h)
            for H in snap(state.graphs.get((g, h), ())):
                pair = (f, g, h, G, H)
                if pair in seen_pairs:
                    continue
                if len(seen_pairs) < memo_cap:
                    seen_pairs.add(pair)
                composed = intern(compose_left(mk, left, H[0], H[1]))
                if state.add(target, composed):
                    queue.append((target, composed))
        # Compose to the left: E ; G for E on (e, f) — G's row masks,
        # extracted once, dual to the above.
        right = bitgraph.right_factor(mk, Gs, Gw)
        for e in snap(state.by_target.get(f, ())):
            source = (e, g)
            for E in snap(state.graphs.get((e, f), ())):
                pair = (e, f, g, E, G)
                if pair in seen_pairs:
                    continue
                if len(seen_pairs) < memo_cap:
                    seen_pairs.add(pair)
                composed = intern(compose_right(mk, E[0], E[1], right))
                if state.add(source, composed):
                    queue.append((source, composed))
        if state.total > max_graphs:
            return SCPResult(None, total_graphs=state.total)
    return SCPResult(True, total_graphs=state.total)


def _scp_check_reference(edges: Dict[Edge, Set[SCGraph]],
                         max_graphs: int) -> SCPResult:
    state = _Closure()
    queue = deque()
    for edge, graphs in edges.items():
        for graph in graphs:
            if state.add(edge, graph):
                queue.append((edge, graph))

    while queue:
        (f, g), G = queue.popleft()
        if f == g and G.is_idempotent() and not G.has_strict_self_arc():
            return SCPResult(False, witness_label=f, witness_graph=G,
                             total_graphs=state.total)
        # Compose to the right: G ; H for H on (g, h).
        for h in list(state.by_source.get(g, ())):
            for H in list(state.graphs.get((g, h), ())):
                composed = G.compose(H)
                if state.add((f, h), composed):
                    queue.append(((f, h), composed))
        # Compose to the left: E ; G for E on (e, f).
        for e in list(state.by_target.get(f, ())):
            for E in list(state.graphs.get((e, f), ())):
                composed = E.compose(G)
                if state.add((e, g), composed):
                    queue.append(((e, g), composed))
        if state.total > max_graphs:
            return SCPResult(None, total_graphs=state.total)
    return SCPResult(True, total_graphs=state.total)
