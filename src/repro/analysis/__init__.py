"""Static analyses: LJB phase-2 closure, 0-CFA, and the classic static SCT
baseline of §2.1/§2.2."""

from repro.analysis.ljb import SCPResult, scp_check
from repro.analysis.callgraph import CallGraph, analyze_callgraph, loop_entry_labels
from repro.analysis.discharge import (
    MONITOR,
    SKIP,
    DischargeCertificate,
    DischargeResult,
    ResidualPolicy,
    VerificationCache,
    certificate_from_engine,
    default_cache,
    discharge_for_run,
    residual_policy,
)
from repro.analysis.static_sct import StaticSCTResult, static_sct_check

__all__ = [
    "SCPResult",
    "scp_check",
    "CallGraph",
    "analyze_callgraph",
    "loop_entry_labels",
    "StaticSCTResult",
    "static_sct_check",
    "MONITOR",
    "SKIP",
    "DischargeCertificate",
    "DischargeResult",
    "ResidualPolicy",
    "VerificationCache",
    "certificate_from_engine",
    "default_cache",
    "discharge_for_run",
    "residual_policy",
]
