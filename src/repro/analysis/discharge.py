"""Static discharge of dynamic size-change checks (the §4 + §5 combination).

The paper's headline is that the static verifier and the run-time monitor
are two enforcement layers of *one* contract: wherever §4 proves
termination, the §5 monitor is redundant.  This module turns an engine
run into that bridge:

* :class:`DischargeCertificate` — the engine's per-λ-label verdict: the
  set of labels whose *reachable* call edges all pass the phase-2 check
  (SCP for :class:`~repro.symbolic.engine.Engine`, MC termination for
  :class:`~repro.mc.static.MCEngine`), minus incompleteness taint.  A
  havocked or LOST-applied analysis taints, and taint closes forward over
  call edges, so nothing downstream of an unknown is ever discharged.
* :class:`ResidualPolicy` — label → ``MONITOR`` | ``SKIP``, the
  intersection of one certificate per workload entry.  The evaluator
  consumes it at compile time (:func:`repro.lang.resolve.resolve` marks
  discharged λs; :func:`repro.eval.machine.eval_code` takes the
  monitor-free path) and at run time (the monitors' skip sets cover the
  tree machine).
* :class:`VerificationCache` — content-addressed certificates
  (program text hash + entry + kinds + result kinds + evidence family),
  in-memory per process with an optional on-disk JSON store, so repeated
  runs amortize verification.  λ labels come from a process-global
  counter, so on disk a certificate stores *stable ids* — each λ's index
  in its program's deterministic pre-order walk, namespaced by
  program/prelude/contracts — and is re-labeled on load.

Soundness inventory (what a ``SKIP`` relies on):

1. The engine's over-approximation: with no taint, every run-time call
   sequence rooted at the verified entry is covered by recorded edges.
2. Entry preconditions: :func:`infer_workload` derives each entry's kinds
   from the *actual* top-level literal arguments, so the precondition
   holds by construction; ``result_kinds`` remain trusted contract ranges
   (§4.2), exactly as for the verdict itself.
3. Whole-run coverage: the policy is only non-empty when **every**
   top-level expression is an inferable call to a verified entry and no
   ``define`` right-hand side can invoke a user closure at definition
   time — otherwise an unanalyzed call could reach a discharged λ with
   arguments outside its verified abstraction.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.ljb import scp_check
from repro.lang import ast
from repro.lang.program import Program, TopDefine
from repro.lang.prims import PRIMITIVES
from repro.values.values import NIL, Pair

MONITOR = "monitor"
SKIP = "skip"


class DischargeCertificate:
    """One engine run's per-λ-label discharge verdict.

    ``labels`` is every label the analysis saw on a call edge (plus the
    entry); ``discharged`` ⊆ ``labels`` is the set whose reachable
    sub-multigraph passed the phase-2 check with no taint in reach;
    ``tainted`` carries the forward-closed per-label taint and
    ``taint_reasons`` the human-readable causes (any reason taints the
    whole certificate under today's engines — every taint source is
    global — but the per-label field is part of the format so a finer
    engine can populate it without changing consumers).
    """

    __slots__ = ("entry", "entry_kinds", "entry_label", "evidence", "labels",
                 "discharged", "tainted", "taint_reasons", "label_names")

    def __init__(self, entry: str, entry_kinds: Tuple[str, ...],
                 entry_label: int, evidence: str,
                 labels: FrozenSet[int], discharged: FrozenSet[int],
                 tainted: FrozenSet[int], taint_reasons: Tuple[str, ...],
                 label_names: Dict[int, str]):
        self.entry = entry
        self.entry_kinds = tuple(entry_kinds)
        self.entry_label = entry_label
        self.evidence = evidence
        self.labels = frozenset(labels)
        self.discharged = frozenset(discharged)
        self.tainted = frozenset(tainted)
        self.taint_reasons = tuple(taint_reasons)
        self.label_names = dict(label_names)

    def decision(self, label: int) -> str:
        return SKIP if label in self.discharged else MONITOR

    @property
    def complete(self) -> bool:
        """True when the entry itself is discharged — and therefore (the
        check is monotone in the edge set) everything it can reach."""
        return self.entry_label in self.discharged

    def discharged_names(self) -> List[str]:
        return sorted(self.label_names.get(l, f"λ{l}")
                      for l in self.discharged)

    def summary(self) -> dict:
        """A JSON-friendly rendering (names, not process-local labels)."""
        return {
            "entry": self.entry,
            "kinds": list(self.entry_kinds),
            "evidence": self.evidence,
            "complete": self.complete,
            "discharged": self.discharged_names(),
            "monitored": sorted(self.label_names.get(l, f"λ{l}")
                                for l in self.labels - self.discharged),
            "taint_reasons": list(self.taint_reasons),
        }

    # -- stable-id (de)serialization for the on-disk cache ---------------------

    def to_stable(self, to_stable: Dict[int, str]) -> dict:
        def ids(labels):
            return sorted(to_stable[l] for l in labels if l in to_stable)

        return {
            "schema": "discharge-certificate/v1",
            "entry": self.entry,
            "entry_kinds": list(self.entry_kinds),
            "entry_label": to_stable.get(self.entry_label),
            "evidence": self.evidence,
            "labels": ids(self.labels),
            "discharged": ids(self.discharged),
            "tainted": ids(self.tainted),
            "taint_reasons": list(self.taint_reasons),
            "label_names": {to_stable[l]: n
                            for l, n in self.label_names.items()
                            if l in to_stable},
        }

    @classmethod
    def from_stable(cls, data: dict,
                    from_stable: Dict[str, int]) -> "DischargeCertificate":
        def labels(ids):
            return frozenset(from_stable[i] for i in ids if i in from_stable)

        entry_label = from_stable.get(data["entry_label"], -1)
        return cls(
            entry=data["entry"],
            entry_kinds=tuple(data["entry_kinds"]),
            entry_label=entry_label,
            evidence=data["evidence"],
            labels=labels(data["labels"]) | {entry_label},
            discharged=labels(data["discharged"]),
            tainted=labels(data["tainted"]),
            taint_reasons=tuple(data["taint_reasons"]),
            label_names={from_stable[i]: n
                         for i, n in data["label_names"].items()
                         if i in from_stable},
        )

    def __repr__(self) -> str:
        return (f"DischargeCertificate({self.entry}: "
                f"{len(self.discharged)}/{len(self.labels)} discharged)")


def _forward_reach(succ: Dict[int, Set[int]], start: int) -> Set[int]:
    seen = {start}
    stack = [start]
    while stack:
        for nxt in succ.get(stack.pop(), ()):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return seen


def certificate_from_engine(engine, max_graphs: int = 20000
                            ) -> DischargeCertificate:
    """Compute the certificate for a finished engine run (the engine has
    ``edges``, ``entry_label``, ``incomplete``/``discharge_unsafe``
    taint, and an ``evidence_kind`` selecting the phase-2 check)."""
    entry_label = engine.entry_label
    if entry_label is None:
        raise ValueError("engine has not analyzed an entry (call run first)")
    evidence = getattr(engine, "evidence_kind", "sc")
    if evidence == "mc":
        from repro.mc.analyze import mc_check

        def check(sub):
            return mc_check(sub, max_graphs=max_graphs).ok is True
    else:
        def check(sub):
            return scp_check(sub, max_graphs=max_graphs).ok is True

    edges = engine.edges
    labels: Set[int] = {entry_label}
    succ: Dict[int, Set[int]] = {}
    for (f, g) in edges:
        labels.add(f)
        labels.add(g)
        succ.setdefault(f, set()).add(g)

    taint_reasons = tuple(engine.incomplete) + tuple(engine.discharge_unsafe)
    # Per-label taint closes forward: an unknown inside L hides calls, so
    # everything L can reach may have unseen edges too.
    tainted: Set[int] = set()
    for seed in engine.tainted_labels:
        tainted |= _forward_reach(succ, seed)
    if taint_reasons:
        # Every taint source today is global (a lost application or a blown
        # budget can call anything): the whole label set is tainted.
        tainted = set(labels)

    discharged: Set[int] = set()
    if not taint_reasons:
        check_memo: Dict[FrozenSet[int], bool] = {}
        for label in labels:
            reach = _forward_reach(succ, label)
            if reach & tainted:
                continue
            key = frozenset(reach)
            ok = check_memo.get(key)
            if ok is None:
                sub = {e: gs for e, gs in edges.items() if e[0] in reach}
                ok = check_memo[key] = check(sub)
            if ok:
                discharged.add(label)

    return DischargeCertificate(
        entry=engine.label_names.get(entry_label, f"λ{entry_label}"),
        entry_kinds=getattr(engine, "entry_kinds", ()),
        entry_label=entry_label,
        evidence=evidence,
        labels=frozenset(labels),
        discharged=frozenset(discharged),
        tainted=frozenset(tainted),
        taint_reasons=taint_reasons,
        label_names=dict(engine.label_names),
    )


class ResidualPolicy:
    """label → ``MONITOR`` | ``SKIP`` for one run, from certificates."""

    __slots__ = ("skip_labels", "certificates")

    def __init__(self, skip_labels: FrozenSet[int] = frozenset(),
                 certificates: Sequence[DischargeCertificate] = ()):
        self.skip_labels = frozenset(skip_labels)
        self.certificates = tuple(certificates)

    def decision(self, label: int) -> str:
        return SKIP if label in self.skip_labels else MONITOR

    def __bool__(self) -> bool:
        return bool(self.skip_labels)

    def __repr__(self) -> str:
        return f"ResidualPolicy({len(self.skip_labels)} skipped)"


def residual_policy(certificates: Sequence[DischargeCertificate]
                    ) -> ResidualPolicy:
    """Intersect certificates into one policy.

    A label is skipped iff some certificate discharges it and every other
    certificate either discharges it too or provably never reaches it
    (the label is outside that certificate's analyzed set).  A tainted
    certificate's reach is *not* trustworthy — its missing edges could
    hide calls into any label — so any taint empties the policy.
    """
    certs = [c for c in certificates if c is not None]
    if not certs or any(c.taint_reasons for c in certs):
        return ResidualPolicy(frozenset(), certs)
    candidates: Set[int] = set()
    for c in certs:
        candidates |= c.discharged
    skip = frozenset(
        label for label in candidates
        if all(label in c.discharged or label not in c.labels for c in certs)
    )
    return ResidualPolicy(skip, certs)


# -- the verification cache -----------------------------------------------------


def _label_spaces(program: Program) -> Tuple[Dict[int, str], Dict[str, int]]:
    """Bidirectional label ↔ stable-id maps for ``program`` plus the
    process-shared library parses (``space:index`` in pre-order walk)."""
    from repro.lang.libraries import contracts_program, prelude_program

    spaces = (("program", program),
              ("prelude", prelude_program()),
              ("contracts", contracts_program()))
    to_stable: Dict[int, str] = {}
    from_stable: Dict[str, int] = {}
    for space, prog in spaces:
        index = 0
        for node in prog.iter_nodes():
            if node.kind == ast.K_LAM:
                sid = f"{space}:{index}"
                to_stable[node.label] = sid
                from_stable[sid] = node.label
                index += 1
    return to_stable, from_stable


_LIBRARIES_DIGEST: Optional[str] = None


def _libraries_digest() -> str:
    """One digest over the prelude + contract-library sources (cached:
    they are import-time constants)."""
    global _LIBRARIES_DIGEST
    if _LIBRARIES_DIGEST is None:
        from repro.lang.contracts_lib import CONTRACTS_SOURCE
        from repro.lang.prims import PRELUDE_SOURCE

        _LIBRARIES_DIGEST = hashlib.sha256(
            (PRELUDE_SOURCE + "\0" + CONTRACTS_SOURCE).encode()
        ).hexdigest()
    return _LIBRARIES_DIGEST


class VerificationCache:
    """Content-addressed certificate store.

    In memory, certificates live in their *stable* form and are re-labeled
    against the consumer's parse on every :meth:`get` — the same program
    text parsed twice carries different λ labels, so a raw certificate
    would silently stop matching.  With ``path`` set, every certificate is
    additionally written to ``<path>/<key>.json`` and picked up by future
    processes.

    ``shard_depth=N`` spreads the on-disk store over ``<path>/<key[:N]>/``
    prefix directories — the layout ``sized serve`` workers use so each
    worker owns the shard(s) its routed keys land in and concurrent
    writers never contend on one directory.  A depth-0 cache reads a
    depth-N store as a miss (and vice versa) — pick one layout per
    directory.

    A corrupt or schema-mismatched on-disk entry is **quarantined** on
    first read (renamed to ``<file>.rejected``) and counted in
    ``rejected`` rather than ``misses`` — leaving the bad file in place
    would make every future ``get`` re-open and re-reject it, and a
    concurrent writer's schema bump would never self-heal.  After
    quarantine the next ``put`` simply rewrites the entry.

    Instances are independent: nothing here touches process-global state,
    so concurrent requests (serve workers, tests) each get their own
    counters by constructing their own cache — see :func:`default_cache`
    for the one deliberately shared instance.
    """

    SCHEMA = "discharge-certificate/v1"

    def __init__(self, path: Optional[str] = None, *, shard_depth: int = 0):
        self._mem: Dict[str, dict] = {}
        self.path = path
        self.shard_depth = shard_depth
        self.hits = 0
        self.misses = 0
        self.rejected = 0

    def reset(self) -> None:
        """Drop the in-memory store and zero the counters (the on-disk
        store, if any, is untouched)."""
        self._mem.clear()
        self.hits = 0
        self.misses = 0
        self.rejected = 0

    def snapshot(self) -> dict:
        """A point-in-time stats view (counters + store shape)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "rejected": self.rejected,
            "entries": len(self._mem),
            "path": self.path,
            "shard_depth": self.shard_depth,
        }

    def _file(self, key: str) -> str:
        if self.shard_depth:
            return os.path.join(self.path, key[:self.shard_depth],
                                f"{key}.json")
        return os.path.join(self.path, f"{key}.json")

    def _quarantine(self, file: str) -> None:
        self.rejected += 1
        try:
            os.replace(file, f"{file}.rejected")
        except OSError:
            try:
                os.unlink(file)
            except OSError:
                pass

    @staticmethod
    def key(text: str, entry: str, kinds: Sequence[str],
            result_kinds: Optional[Dict[str, str]], evidence: str) -> str:
        payload = json.dumps({
            "program_sha256": hashlib.sha256(text.encode()).hexdigest(),
            # Certificates name library λs by positional stable id, and
            # the verdict itself depends on library definitions — a
            # certificate cached on disk must die with the library text
            # it was computed against, or a package upgrade could
            # discharge the wrong (never-verified) λ.
            "libraries_sha256": _libraries_digest(),
            "entry": entry,
            "kinds": list(kinds),
            "result_kinds": sorted((result_kinds or {}).items()),
            "evidence": evidence,
        }, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def get(self, key: str,
            program: Program) -> Optional[DischargeCertificate]:
        stable = self._mem.get(key)
        if stable is None and self.path is not None:
            file = self._file(key)
            raw = None
            try:
                with open(file) as f:
                    raw = f.read()
            except OSError:
                raw = None  # absent (or unreadable): a true miss
            if raw is not None:
                try:
                    stable = json.loads(raw)
                except ValueError:
                    stable = None
                if not (isinstance(stable, dict)
                        and stable.get("schema") == self.SCHEMA):
                    # Corrupt / wrong-schema: quarantine and report a
                    # *rejection*, not a miss — `rejected` was already
                    # bumped, and the file is gone so the next get is a
                    # clean miss and the next put self-heals.
                    self._quarantine(file)
                    return None
                self._mem[key] = stable
        if stable is None:
            self.misses += 1
            return None
        self.hits += 1
        _, from_stable = _label_spaces(program)
        return DischargeCertificate.from_stable(stable, from_stable)

    def put(self, key: str, certificate: DischargeCertificate,
            program: Program) -> None:
        to_stable, _ = _label_spaces(program)
        stable = certificate.to_stable(to_stable)
        self._mem[key] = stable
        if self.path is not None:
            file = self._file(key)
            os.makedirs(os.path.dirname(file), exist_ok=True)
            tmp = f"{file}.tmp.{os.getpid()}"
            with open(tmp, "w") as f:
                json.dump(stable, f, indent=2)
            os.replace(tmp, file)


_DEFAULT_CACHE = VerificationCache()


def default_cache() -> VerificationCache:
    """The process-wide in-memory cache — the *fallback* when no cache is
    injected (``@terminating`` without ``cache=``, ``discharge_for_run``
    with ``cache=None``).  Every other consumer (the CLI, the serve
    workers, the benches, tests) injects its own
    :class:`VerificationCache`, so this instance's ``hits``/``misses``
    never bleed across independent requests; call ``default_cache().
    reset()`` to isolate a test that must exercise the fallback itself."""
    return _DEFAULT_CACHE


# -- workload inference ---------------------------------------------------------


class WorkloadEntry:
    """One inferred top-level call: the entry name and the kinds its
    actual literal arguments inhabit (so the verified precondition holds
    by construction)."""

    __slots__ = ("name", "kinds")

    def __init__(self, name: str, kinds: Tuple[str, ...]):
        self.name = name
        self.kinds = kinds

    def __repr__(self) -> str:
        return f"WorkloadEntry({self.name} {list(self.kinds)})"


def _literal_kind(value) -> str:
    t = type(value)
    if t is bool:
        return "any"
    if t is int:
        return "nat" if value >= 0 else "int"
    if value is NIL:
        return "nil"
    if t is Pair:
        return "pair"
    return "any"


def infer_workload(program: Program
                   ) -> Tuple[Optional[List[WorkloadEntry]], List[str]]:
    """Infer (entry, kinds) for every top-level expression, or explain
    why the workload is not coverable (all-or-nothing: one uncovered
    expression means no discharge at all)."""
    defined: Dict = {}
    for form in program.forms:
        if isinstance(form, TopDefine):
            defined[form.name] = form.expr
    entries: List[WorkloadEntry] = []
    seen: Set[Tuple[str, Tuple[str, ...]]] = set()
    for form in program.forms:
        if isinstance(form, TopDefine):
            continue
        e = form.expr
        if not (e.kind == ast.K_APP and e.fn.kind == ast.K_VAR
                and e.fn.name in defined
                and defined[e.fn.name].kind == ast.K_LAM):
            return None, [
                "top-level expression is not a direct call to a "
                f"defined function: {e!r}"
            ]
        lam = defined[e.fn.name]
        if len(e.args) != len(lam.params):
            return None, [f"top-level call to {e.fn.name.name} has the "
                          "wrong arity"]
        kinds: List[str] = []
        for a in e.args:
            if a.kind == ast.K_LIT:
                kinds.append(_literal_kind(a.value))
            elif a.kind == ast.K_LAM:
                kinds.append("fun")
            else:
                return None, [
                    f"argument {a!r} of the top-level call to "
                    f"{e.fn.name.name} is not a literal or a λ"
                ]
        entry = WorkloadEntry(e.fn.name.name, tuple(kinds))
        if (entry.name, entry.kinds) not in seen:
            seen.add((entry.name, entry.kinds))
            entries.append(entry)
    return entries, []


def _define_rhs_safe(node: ast.Node, defined_names: Set) -> bool:
    """True when evaluating ``node`` at definition time cannot call a
    user closure: λs, literals, variable reads, and applications of
    unshadowed primitives to safe arguments (no primitive invokes a
    closure, so a closure *value* flowing through one is inert)."""
    k = node.kind
    if k in (ast.K_LIT, ast.K_VAR, ast.K_LAM):
        return True
    if k == ast.K_APP:
        fn = node.fn
        if not (fn.kind == ast.K_VAR and fn.name in PRIMITIVES
                and fn.name not in defined_names):
            return False
        return all(_define_rhs_safe(a, defined_names) for a in node.args)
    return False


def defines_are_safe(program: Program) -> Tuple[bool, Optional[str]]:
    defined_names = {form.name for form in program.forms
                     if isinstance(form, TopDefine)}
    for form in program.forms:
        if isinstance(form, TopDefine) and \
                not _define_rhs_safe(form.expr, defined_names):
            return False, (f"(define {form.name} ...) may call a closure "
                           "at definition time, outside any verified entry")
    return True, None


# -- the pipeline entry point ---------------------------------------------------


class DischargeResult:
    """What :func:`discharge_for_run` hands the evaluator and the CLI."""

    __slots__ = ("policy", "certificates", "entries", "reasons")

    def __init__(self, policy: ResidualPolicy,
                 certificates: Sequence[DischargeCertificate] = (),
                 entries: Sequence[WorkloadEntry] = (),
                 reasons: Sequence[str] = ()):
        self.policy = policy
        self.certificates = tuple(certificates)
        self.entries = tuple(entries)
        self.reasons = list(reasons)

    @property
    def complete(self) -> bool:
        """True when every top-level call's entry is fully discharged —
        the whole workload runs monitor-free."""
        return not self.reasons and \
            all(c.complete for c in self.certificates)

    def render(self) -> str:
        lines = []
        for cert in self.certificates:
            state = "discharged" if cert.complete else "residual"
            lines.append(f"{cert.entry}: {state} "
                         f"({len(cert.discharged)}/{len(cert.labels)} λs, "
                         f"evidence={cert.evidence})")
        for reason in self.reasons:
            lines.append(f"  - {reason}")
        return "\n".join(lines)


def discharge_for_run(
    program: Program,
    text: Optional[str] = None,
    mc: bool = False,
    result_kinds: Optional[Dict[str, str]] = None,
    cache: Optional[VerificationCache] = None,
    budget=None,
    max_graphs: int = 20000,
) -> DischargeResult:
    """Verify the program's inferred workload entries and compute the
    residual policy.  ``text`` (the program source text) enables the
    verification cache; without it every call re-verifies."""
    from repro.sexp.datum import intern
    from repro.values.values import Closure

    entries, reasons = infer_workload(program)
    if entries is None:
        return DischargeResult(ResidualPolicy(), reasons=reasons)
    safe, safe_reason = defines_are_safe(program)
    if not safe:
        return DischargeResult(ResidualPolicy(), entries=entries,
                               reasons=[safe_reason])
    if cache is None:
        cache = default_cache()
    evidence = "mc" if mc else "sc"
    certificates: List[DischargeCertificate] = []
    problems: List[str] = []
    for entry in entries:
        key = None
        cert = None
        if text is not None:
            key = cache.key(text, entry.name, entry.kinds, result_kinds,
                            evidence)
            cert = cache.get(key, program)
        if cert is None:
            if mc:
                from repro.mc.static import MCEngine as engine_cls
            else:
                from repro.symbolic.engine import Engine as engine_cls
            engine = engine_cls(program, budget=budget,
                                result_kinds=result_kinds)
            entry_value = engine.globals.bindings.get(intern(entry.name))
            if not isinstance(entry_value, Closure):
                return DischargeResult(
                    ResidualPolicy(), certificates, entries,
                    [f"entry {entry.name!r} is not a statically known "
                     "closure"])
            engine.run(entry_value, list(entry.kinds))
            cert = certificate_from_engine(engine, max_graphs=max_graphs)
            if key is not None:
                cache.put(key, cert, program)
        certificates.append(cert)
        if not cert.complete:
            why = "; ".join(cert.taint_reasons) or \
                "the collected graphs do not pass the static check"
            problems.append(f"entry {cert.entry!r} not discharged: {why}")
    policy = residual_policy(certificates)
    return DischargeResult(policy, certificates, entries, problems)
