"""The classic static SCT analysis (Lee–Jones–Ben-Amram, as sketched in
§2.1), on top of 0-CFA.

Phase 1 derives size-change graphs *syntactically*: an argument expression
relates to a caller parameter when it is the parameter itself (``↓=``) or a
structurally smaller projection of it (``car``/``cdr`` chains, ``sub1``,
``(- x k)`` for positive literals ``k`` — strict ``↓``).  Phase 2 is the
shared LJB closure (:mod:`repro.analysis.ljb`).

This baseline exists to reproduce the paper's §2.2 point: on the CPS
``len`` function, 0-CFA must conflate the continuation closures, the
conflated entry shows a spurious "call with a larger argument", and the
analysis rejects — while the dynamic monitor accepts the same program.
It is also what justifies the monitor's whitelist: anything this analysis
verifies needs no instrumentation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.callgraph import TOP, CallGraph, analyze_callgraph
from repro.analysis.ljb import SCPResult, scp_check
from repro.lang import ast
from repro.lang.program import Program
from repro.sct.graph import SCGraph, STRICT, WEAK
from repro.sexp.datum import Symbol, intern

_STRICT_UNARY = {
    intern("car"), intern("cdr"), intern("first"), intern("rest"),
    intern("sub1"), intern("caar"), intern("cadr"), intern("cdar"),
    intern("cddr"), intern("caddr"), intern("cdddr"), intern("cadddr"),
    intern("second"), intern("third"),
}

_MINUS = intern("-")


class StaticSCTResult:
    def __init__(self, ok: Optional[bool], witness_name: str = "",
                 witness_graph=None, edges=None, graph: Optional[CallGraph] = None):
        self.ok = ok
        self.witness_name = witness_name
        self.witness_graph = witness_graph
        self.edges = edges or {}
        self.callgraph = graph

    def __repr__(self) -> str:
        return f"StaticSCTResult(ok={self.ok})"


def _syntactic_relation(arg: ast.Node, param: Symbol) -> Optional[bool]:
    """STRICT/WEAK/None: how ``arg`` relates to the binding of ``param``."""
    if arg.kind == ast.K_VAR:
        return WEAK if arg.name is param else None
    if arg.kind == ast.K_APP and arg.fn.kind == ast.K_VAR:
        head = arg.fn.name
        if head in _STRICT_UNARY and len(arg.args) == 1:
            inner = _syntactic_relation(arg.args[0], param)
            return STRICT if inner is not None else None
        if head is _MINUS and len(arg.args) == 2:
            k = arg.args[1]
            if k.kind == ast.K_LIT and type(k.value) is int and k.value > 0:
                inner = _syntactic_relation(arg.args[0], param)
                # (- x k) is a *conventional* strict descent (classic SCT
                # assumes well-founded naturals); the symbolic verifier is
                # the path-sensitive refinement of this rule.
                return STRICT if inner is not None else None
    return None


def static_sct_check(program: Program,
                     engine: str = "bitmask") -> StaticSCTResult:
    """Run phases 1 and 2; ``ok=None`` when the closure blows its cap.

    ``engine`` selects the phase-2 closure representation (see
    :func:`repro.analysis.ljb.scp_check`): packed bitmask graphs by
    default, the frozenset reference on request.
    """
    graph = analyze_callgraph(program)
    edges: Dict[Tuple[int, int], Set[SCGraph]] = {}
    for app, owner in _apps_with_owner(program):
        if owner == TOP:
            continue
        caller = graph.lambdas[owner]
        for callee_label in graph.app_callees.get(id(app), ()):
            callee = graph.lambdas[callee_label]
            if len(callee.params) != len(app.args):
                continue
            arcs = []
            for i, param in enumerate(caller.params):
                for j, arg in enumerate(app.args):
                    rel = _syntactic_relation(arg, param)
                    if rel is not None:
                        arcs.append((i, rel, j))
            edges.setdefault((owner, callee_label), set()).add(SCGraph(arcs))
    scp = scp_check(edges, engine=engine)
    if scp.ok is False:
        return StaticSCTResult(
            False,
            witness_name=graph.label_name(scp.witness_label),
            witness_graph=scp.witness_graph,
            edges=edges,
            graph=graph,
        )
    return StaticSCTResult(scp.ok, edges=edges, graph=graph)


def _apps_with_owner(program: Program) -> List[Tuple[ast.App, int]]:
    out: List[Tuple[ast.App, int]] = []

    def walk(node: ast.Node, owner: int) -> None:
        k = node.kind
        if k == ast.K_LAM:
            walk(node.body, node.label)
        elif k == ast.K_APP:
            out.append((node, owner))
            walk(node.fn, owner)
            for a in node.args:
                walk(a, owner)
        elif k == ast.K_IF:
            walk(node.test, owner)
            walk(node.then, owner)
            walk(node.els, owner)
        elif k == ast.K_BEGIN:
            for e in node.body:
                walk(e, owner)
        elif k in (ast.K_LET, ast.K_LETREC):
            for e in node.rhss:
                walk(e, owner)
            walk(node.body, owner)
        elif k in (ast.K_SET, ast.K_TERMC):
            walk(node.expr, owner)

    for form in program.forms:
        walk(form.expr, TOP)
    return out
