"""Monovariant control-flow analysis (0-CFA) for the core language.

Computes which λ labels can flow to each application's operator, giving

* a higher-order call graph (needed by the classic static SCT baseline of
  §2.1/§2.2, where "computing call-graphs is itself a significant,
  extensively studied problem"), and
* the *loop-entry* label set used by the monitor's loop-entry optimization
  (§5): only closures whose label sits on a call-graph cycle can witness
  divergence, so monitoring just those is sound.

Closures escaping into data structures are tracked through a single global
"store" set (constructor primitives feed it, accessor primitives read it) —
coarse, but sound, and exactly coarse enough to reproduce the paper's
observation that static analysis conflates the CPS continuations of §2.2.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lang import ast
from repro.lang.program import Program, TopDefine
from repro.sexp.datum import Symbol

TOP = -1

_CONSTRUCTORS = frozenset({
    "cons", "list", "append", "reverse", "hash", "hash-set", "box",
    "set-box!",
})
_ACCESSORS = frozenset({
    "car", "cdr", "first", "rest", "second", "third", "caar", "cadr",
    "cdar", "cddr", "caddr", "cdddr", "cadddr", "list-ref", "member",
    "memq", "memv", "assoc", "assq", "assv", "hash-ref", "unbox", "last",
})


class CallGraph:
    def __init__(self):
        # λ label (or TOP) → labels it may call.
        self.edges: Set[Tuple[int, int]] = set()
        self.lambdas: Dict[int, ast.Lam] = {}
        self.app_callees: Dict[int, FrozenSet[int]] = {}
        self.var_flow: Dict[Symbol, Set[int]] = {}

    def callees_of(self, label: int) -> Set[int]:
        return {g for (f, g) in self.edges if f == label}

    def label_name(self, label: int) -> str:
        if label == TOP:
            return "<top>"
        lam = self.lambdas.get(label)
        return (lam.name if lam and lam.name else f"λ{label}")


class _Analyzer:
    def __init__(self, program: Program):
        self.program = program
        self.node_flow: Dict[int, Set[int]] = {}
        self.var_flow: Dict[Symbol, Set[int]] = {}
        self.store: Set[int] = set()
        self.lambdas: Dict[int, ast.Lam] = {}
        self.apps: List[Tuple[ast.App, int]] = []   # (node, owner label)
        self.changed = True
        self.graph = CallGraph()
        self._collect()

    # -- structure collection -------------------------------------------------

    def _collect(self) -> None:
        for form in self.program.forms:
            self._walk(form.expr, TOP)
            if isinstance(form, TopDefine):
                self._flow_var(form.name, self._flow(form.expr))

    def _walk(self, node: ast.Node, owner: int) -> None:
        k = node.kind
        if k == ast.K_LAM:
            self.lambdas[node.label] = node
            self._walk(node.body, node.label)
        elif k == ast.K_APP:
            self.apps.append((node, owner))
            self._walk(node.fn, owner)
            for a in node.args:
                self._walk(a, owner)
        elif k == ast.K_IF:
            self._walk(node.test, owner)
            self._walk(node.then, owner)
            self._walk(node.els, owner)
        elif k == ast.K_BEGIN:
            for e in node.body:
                self._walk(e, owner)
        elif k in (ast.K_LET, ast.K_LETREC):
            for e in node.rhss:
                self._walk(e, owner)
            self._walk(node.body, owner)
        elif k == ast.K_SET:
            self._walk(node.expr, owner)
        elif k == ast.K_TERMC:
            self._walk(node.expr, owner)

    # -- flow lattice -------------------------------------------------------------

    def _flow(self, node: ast.Node) -> Set[int]:
        return self.node_flow.setdefault(id(node), set())

    def _add_flow(self, node: ast.Node, labels: Set[int]) -> None:
        flow = self._flow(node)
        before = len(flow)
        flow.update(labels)
        if len(flow) != before:
            self.changed = True

    def _flow_var(self, name: Symbol, labels: Set[int]) -> None:
        flow = self.var_flow.setdefault(name, set())
        before = len(flow)
        flow.update(labels)
        if len(flow) != before:
            self.changed = True

    # -- constraint propagation ------------------------------------------------------

    def run(self) -> CallGraph:
        while self.changed:
            self.changed = False
            for form in self.program.forms:
                self._pass(form.expr)
                if isinstance(form, TopDefine):
                    self._flow_var(form.name, self._flow(form.expr))
        graph = self.graph
        graph.lambdas = self.lambdas
        graph.var_flow = self.var_flow
        for app, owner in self.apps:
            callees = self._callees(app)
            graph.app_callees[id(app)] = frozenset(callees)
            for callee in callees:
                graph.edges.add((owner, callee))
        return graph

    def _callees(self, app: ast.App) -> Set[int]:
        return set(self._flow(app.fn))

    def _pass(self, node: ast.Node) -> None:
        k = node.kind
        if k == ast.K_LIT:
            return
        if k == ast.K_VAR:
            self._add_flow(node, self.var_flow.get(node.name, set()))
            return
        if k == ast.K_LAM:
            self._add_flow(node, {node.label})
            self._pass(node.body)
            return
        if k == ast.K_APP:
            self._pass(node.fn)
            for a in node.args:
                self._pass(a)
            fn_name = node.fn.name.name if node.fn.kind == ast.K_VAR else None
            known_var = (
                node.fn.kind == ast.K_VAR and node.fn.name in self.var_flow
            )
            for label in list(self._flow(node.fn)):
                lam = self.lambdas[label]
                if len(lam.params) == len(node.args):
                    for p, a in zip(lam.params, node.args):
                        self._flow_var(p, self._flow(a))
                    self._add_flow(node, self._flow(lam.body))
            # Primitive data flow: constructors feed the store, accessors
            # read it.  (A variable holding closures is not a primitive.)
            if fn_name is not None and not known_var:
                if fn_name in _CONSTRUCTORS:
                    for a in node.args:
                        before = len(self.store)
                        self.store.update(self._flow(a))
                        if len(self.store) != before:
                            self.changed = True
                if fn_name in _ACCESSORS:
                    self._add_flow(node, self.store)
            return
        if k == ast.K_IF:
            self._pass(node.test)
            self._pass(node.then)
            self._pass(node.els)
            self._add_flow(node, self._flow(node.then))
            self._add_flow(node, self._flow(node.els))
            return
        if k == ast.K_BEGIN:
            for e in node.body:
                self._pass(e)
            self._add_flow(node, self._flow(node.body[-1]))
            return
        if k in (ast.K_LET, ast.K_LETREC):
            for name, rhs in zip(node.names, node.rhss):
                self._pass(rhs)
                self._flow_var(name, self._flow(rhs))
            self._pass(node.body)
            self._add_flow(node, self._flow(node.body))
            return
        if k == ast.K_SET:
            self._pass(node.expr)
            self._flow_var(node.name, self._flow(node.expr))
            return
        if k == ast.K_TERMC:
            self._pass(node.expr)
            self._add_flow(node, self._flow(node.expr))
            return


def analyze_callgraph(program: Program) -> CallGraph:
    return _Analyzer(program).run()


def loop_entry_labels(program: Program) -> Set[int]:
    """Labels possibly on a call-graph cycle (sound loop-entry set for the
    monitor: every divergence must pass through one infinitely often)."""
    graph = analyze_callgraph(program)
    succ: Dict[int, Set[int]] = {}
    for (f, g) in graph.edges:
        if f != TOP:
            succ.setdefault(f, set()).add(g)
    return _labels_in_cycles(succ)


def _labels_in_cycles(succ: Dict[int, Set[int]]) -> Set[int]:
    """Nodes inside a non-trivial SCC or carrying a self-loop (iterative
    Tarjan)."""
    index: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    counter = [0]
    result: Set[int] = set()
    nodes = set(succ)
    for targets in succ.values():
        nodes.update(targets)

    for root in nodes:
        if root in index:
            continue
        work = [(root, iter(sorted(succ.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(succ.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                if len(scc) > 1:
                    result.update(scc)
                elif scc[0] in succ.get(scc[0], ()):
                    result.add(scc[0])  # self loop
    return result
