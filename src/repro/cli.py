"""Command-line interface: ``sized`` (or ``python -m repro``).

Subcommands::

    sized run FILE [--mode off|contract|full] [--strategy cm|imperative]
                   [--machine compiled|tree] [--backoff] [--mc]
                   [--engine bitmask|reference] [--max-steps N]
    sized verify FILE --entry NAME [--kinds nat,nat] [--result-kind nat]
                      [--mc]
    sized trace FILE [--mode full|contract] [--machine compiled|tree]
                     [--mc] [--max-steps N] [--max-depth N] [--max-nodes N]
    sized bench table1|fig10|divergence|ablation|mc|compose|interp
                [--scale quick|full] [--smoke] [--out PATH]
    sized corpus [--diverging]

``--mc`` switches the evidence from size-change graphs to monotonicity-
constraint graphs (the paper's §6.2 future-work extension): counting-up-
to-a-ceiling loops pass without custom measures.

``--engine`` selects the size-change graph representation the monitor
composes: ``bitmask`` (default, two machine ints per graph) or
``reference`` (the paper's frozenset of arcs).  Both raise on the same
call sequences; ``sized bench compose`` measures the gap.

``--machine`` selects the evaluator: ``compiled`` (default — the
lexical-addressing pass of :mod:`repro.lang.resolve` plus the slot-frame
machine) or ``tree`` (the direct AST walker).  Both produce identical
answers; ``sized bench interp`` measures the gap and writes
``BENCH_interp.json``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.eval.machine import Answer, run_source
from repro.sct.monitor import SCMonitor
from repro.values.values import write_value


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sized",
        description="Size-change termination as a contract (PLDI 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a program in the embedded language")
    p_run.add_argument("file")
    p_run.add_argument("--mode", choices=["off", "contract", "full"],
                       default="contract")
    p_run.add_argument("--strategy", choices=["cm", "imperative"], default="cm")
    p_run.add_argument("--backoff", action="store_true")
    p_run.add_argument("--mc", action="store_true",
                       help="monitor with monotonicity-constraint graphs")
    p_run.add_argument("--engine", choices=["bitmask", "reference"],
                       default="bitmask",
                       help="size-change graph representation to compose")
    p_run.add_argument("--machine", choices=["compiled", "tree"],
                       default="compiled",
                       help="evaluator: lexically-addressed slot-frame "
                            "machine (default) or the tree walker")
    p_run.add_argument("--max-steps", type=int, default=None)

    p_verify = sub.add_parser("verify", help="statically verify termination")
    p_verify.add_argument("file")
    p_verify.add_argument("--entry", required=True)
    p_verify.add_argument("--kinds", default="",
                          help="comma-separated: nat,int,list,pair,fun,any")
    p_verify.add_argument("--result-kind", default=None,
                          help="contract range of the entry (nat/int)")
    p_verify.add_argument("--mc", action="store_true",
                          help="verify with monotonicity constraints")

    p_trace = sub.add_parser(
        "trace", help="print the Fig. 1 style call/size-change tree")
    p_trace.add_argument("file")
    p_trace.add_argument("--mode", choices=["contract", "full"],
                         default="full")
    p_trace.add_argument("--mc", action="store_true")
    p_trace.add_argument("--engine", choices=["bitmask", "reference"],
                         default="bitmask")
    p_trace.add_argument("--machine", choices=["compiled", "tree"],
                         default="compiled")
    p_trace.add_argument("--max-steps", type=int, default=None)
    p_trace.add_argument("--max-depth", type=int, default=None)
    p_trace.add_argument("--max-nodes", type=int, default=200)

    p_bench = sub.add_parser("bench", help="regenerate a table or figure")
    p_bench.add_argument("which",
                         choices=["table1", "fig10", "divergence", "ablation",
                                  "mc", "compose", "interp"])
    p_bench.add_argument("--scale", choices=["quick", "full"], default="quick")
    p_bench.add_argument("--repeats", type=int, default=None,
                         help="best-of repeats per cell (default: 3, or the"
                              " interp scale's own default)")
    p_bench.add_argument("--smoke", action="store_true",
                         help="interp only: the tiny CI subset")
    p_bench.add_argument("--out", default="BENCH_interp.json",
                         help="interp only: where to write the JSON report")

    p_corpus = sub.add_parser("corpus", help="list the evaluation corpus")
    p_corpus.add_argument("--diverging", action="store_true")

    args = parser.parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "corpus":
        return _cmd_corpus(args)
    return 2


def _make_monitor(mc: bool, **options):
    if mc:
        from repro.mc.monitor import MCMonitor

        return MCMonitor(**options)
    return SCMonitor(**options)


def _cmd_run(args) -> int:
    with open(args.file) as f:
        source = f.read()
    monitor = _make_monitor(args.mc, backoff=args.backoff,
                            engine=args.engine)
    answer = run_source(source, mode=args.mode, strategy=args.strategy,
                        monitor=monitor, max_steps=args.max_steps,
                        source=args.file, machine=args.machine)
    if answer.output:
        sys.stdout.write(answer.output)
        if not answer.output.endswith("\n"):
            sys.stdout.write("\n")
    if answer.kind == Answer.VALUE:
        print(write_value(answer.value))
        return 0
    if answer.kind == Answer.SC_ERROR:
        print(answer.violation, file=sys.stderr)
        return 3
    if answer.kind == Answer.TIMEOUT:
        print("machine timeout (step budget exhausted)", file=sys.stderr)
        return 4
    print(f"run-time error: {answer.error}", file=sys.stderr)
    return 1


def _cmd_verify(args) -> int:
    if args.mc:
        from repro.mc.static import verify_source_mc as verify
    else:
        from repro.symbolic import verify_source as verify

    with open(args.file) as f:
        source = f.read()
    kinds = [k for k in args.kinds.split(",") if k]
    result_kinds = {args.entry: args.result_kind} if args.result_kind else None
    verdict = verify(source, args.entry, kinds, result_kinds=result_kinds)
    print(verdict.render())
    return 0 if verdict.verified else 3


def _cmd_trace(args) -> int:
    from repro.sct.trace import render_tree, trace_source

    with open(args.file) as f:
        source = f.read()
    result = trace_source(source,
                          monitor=_make_monitor(args.mc, engine=args.engine),
                          mode=args.mode, max_steps=args.max_steps,
                          machine=args.machine)
    print(render_tree(result.roots, max_depth=args.max_depth,
                      max_nodes=args.max_nodes))
    answer = result.answer
    if answer.kind == Answer.VALUE:
        print(f"⇒ {write_value(answer.value)}")
        return 0
    if answer.kind == Answer.SC_ERROR:
        print(answer.violation, file=sys.stderr)
        return 3
    if answer.kind == Answer.TIMEOUT:
        print("machine timeout (step budget exhausted)", file=sys.stderr)
        return 4
    print(f"run-time error: {answer.error}", file=sys.stderr)
    return 1


def _cmd_bench(args) -> int:
    if args.which == "table1":
        from repro.bench import render_table1, run_table1

        print(render_table1(run_table1()))
    elif args.which == "fig10":
        from repro.bench import render_fig10, run_fig10

        print(render_fig10(run_fig10(scale=args.scale,
                                     repeats=args.repeats or 3)))
    elif args.which == "divergence":
        from repro.bench import render_divergence, run_divergence

        print(render_divergence(run_divergence()))
    elif args.which == "mc":
        from repro.bench import render_mc, run_mc_dynamic, run_mc_static

        print(render_mc(run_mc_static(),
                        run_mc_dynamic(scale=args.scale,
                                       repeats=args.repeats or 3)))
    elif args.which == "compose":
        from repro.bench import render_compose, run_compose

        print(render_compose(run_compose(scale=args.scale,
                                         repeats=args.repeats or 3)))
    elif args.which == "interp":
        from repro.bench import render_interp, run_interp, write_interp_json

        scale = "smoke" if args.smoke else args.scale
        cells = run_interp(scale=scale, repeats=args.repeats)
        print(render_interp(cells))
        write_interp_json(cells, args.out, scale=scale, repeats=args.repeats)
        print(f"\nwrote {args.out}")
    else:
        from repro.bench import render_ablation, run_ablation

        print(render_ablation(run_ablation(scale=args.scale,
                                           repeats=args.repeats or 3)))
    return 0


def _cmd_corpus(args) -> int:
    from repro.corpus import all_programs, diverging_programs

    if args.diverging:
        for d in diverging_programs():
            print(f"{d.name:20s} {d.notes.splitlines()[0] if d.notes else ''}")
    else:
        for p in all_programs():
            paper = "/".join(c or "-" for c in p.paper)
            print(f"{p.name:15s} paper={paper:22s} {p.notes.splitlines()[0]}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
